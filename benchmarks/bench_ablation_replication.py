"""A3 — ablation: replication count vs coefficient stability.

Each sweep point averages several randomized protection runs.  This
ablation refits equation (2) under different replication counts and
protection seeds and reports the spread of the fitted coefficients:
more replications buy a steadier model.  The benchmark times one
protect-and-measure evaluation, the unit the replication knob
multiplies.
"""

import numpy as np

from repro import ExperimentRunner, fit_system_model, geo_ind_system
from repro.report import format_table

from conftest import report

SEEDS = (101, 202, 303)
N_POINTS = 10


def _coefficients(dataset, n_replications, base_seed):
    runner = ExperimentRunner(
        geo_ind_system(), dataset,
        n_replications=n_replications, base_seed=base_seed,
    )
    sweep = runner.sweep(n_points=N_POINTS)
    return np.asarray(fit_system_model(sweep).coefficients)


def bench_replication_stability(benchmark, taxi_dataset, capsys):
    spreads = {}
    for reps in (1, 3):
        coeffs = np.stack([
            _coefficients(taxi_dataset, reps, seed) for seed in SEEDS
        ])
        spreads[reps] = coeffs.std(axis=0)

    names = ("a", "b", "alpha", "beta")
    rows = [
        (name, f"{spreads[1][i]:.4f}", f"{spreads[3][i]:.4f}")
        for i, name in enumerate(names)
    ]
    text = format_table(
        ["coefficient", "std over seeds (1 rep)", "std over seeds (3 reps)"],
        rows,
    )
    report(capsys, "ablation_replication", text)

    # --- invariants -----------------------------------------------------
    # The utility fit (many active points) must be steady already;
    # averaging must not make the overall spread worse.
    assert np.all(np.isfinite(spreads[1]))
    assert np.all(np.isfinite(spreads[3]))
    assert spreads[3].sum() <= spreads[1].sum() * 1.5
    # Utility coefficients are tight in absolute terms either way.
    assert spreads[3][3] < 0.05, "beta should be stable across seeds"

    # --- timed unit: one protect-and-measure evaluation -----------------
    def evaluate_once():
        runner = ExperimentRunner(geo_ind_system(), taxi_dataset,
                                  n_replications=1)
        return runner.evaluate_once({"epsilon": 0.01}, seed=0)

    pr, ut = benchmark.pedantic(evaluate_once, rounds=3, iterations=1)
    assert 0.0 <= pr <= 1.0
