"""A2 — ablation: saturation-zone detection on vs off.

The paper fits equation (2) only "on the interval where eps impacts the
privacy and utility metrics" (between Figure 1's vertical lines).  This
ablation fits with and without that restriction: fitting across the
plateaus flattens the privacy slope and degrades the fit, which is
precisely why the vertical lines exist.  The benchmark times the
active-region detector itself.
"""

from repro import find_active_region, fit_system_model
from repro.report import format_table

from conftest import report


def bench_saturation_ablation(benchmark, geoi_sweep, capsys):
    with_zone = fit_system_model(geoi_sweep, use_active_region=True)
    without_zone = fit_system_model(geoi_sweep, use_active_region=False)

    rows = [
        ("privacy R2", f"{with_zone.privacy.r2:.3f}",
         f"{without_zone.privacy.r2:.3f}"),
        ("privacy slope b", f"{with_zone.privacy.slope:.3f}",
         f"{without_zone.privacy.slope:.3f}"),
        ("utility R2", f"{with_zone.utility.r2:.3f}",
         f"{without_zone.utility.r2:.3f}"),
        ("utility slope beta", f"{with_zone.utility.slope:.3f}",
         f"{without_zone.utility.slope:.3f}"),
    ]
    text = format_table(
        ["quantity", "active zone only (paper)", "full sweep"], rows
    )
    report(capsys, "ablation_saturation", text)

    # --- invariants: the paper's choice must pay off --------------------
    assert with_zone.privacy.r2 >= without_zone.privacy.r2 - 1e-9, (
        "restricting to the active zone must not worsen the privacy fit"
    )
    # Fitting across plateaus dilutes the privacy slope (the transition
    # is averaged with flat stretches).
    assert abs(without_zone.privacy.slope) < abs(with_zone.privacy.slope)
    # Both remain invertible either way.
    assert without_zone.privacy.slope != 0

    # --- timed unit: active-region detection ----------------------------
    privacy_curve = geoi_sweep.privacy()
    region = benchmark(find_active_region, privacy_curve)
    assert region.n_points >= 2
