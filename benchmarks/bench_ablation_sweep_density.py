"""A1 — ablation: sweep density vs model quality.

The offline sweep is the framework's only real cost, so how many points
does it actually need?  We fit equation (2) from sweeps of increasing
density and track (i) fit quality and (ii) how far the headline
configuration drifts from the dense-sweep reference.  The benchmark
times the model fit at the densest setting.
"""


from repro import (
    Configurator,
    ExperimentRunner,
    Objective,
    fit_system_model,
    geo_ind_system,
)
from repro.report import format_table

from conftest import PAPER_MAX_PRIVACY, PAPER_MIN_UTILITY, report

DENSITIES = (6, 9, 12, 16, 24)
OBJECTIVES = [
    Objective("privacy", "<=", PAPER_MAX_PRIVACY),
    Objective("utility", ">=", PAPER_MIN_UTILITY),
]


def _recommend_at_density(system, dataset, n_points):
    configurator = Configurator(system, dataset, n_points=n_points,
                                n_replications=1)
    model = configurator.fit()
    rec = configurator.recommend(OBJECTIVES)
    return model, rec, configurator.runner.n_evaluations


def bench_sweep_density(benchmark, taxi_dataset, capsys):
    system = geo_ind_system()
    reference = None
    rows = []
    results = {}
    for n in DENSITIES:
        model, rec, cost = _recommend_at_density(system, taxi_dataset, n)
        results[n] = (model, rec)
        rows.append((
            n,
            cost,
            f"{model.privacy.r2:.3f}",
            f"{model.utility.r2:.3f}",
            f"{rec.value:.4g}" if rec.feasible else "infeasible",
        ))
        if n == DENSITIES[-1]:
            reference = rec
    text = format_table(
        ["sweep points", "evaluations", "privacy R2", "utility R2",
         "recommended eps"], rows
    )
    report(capsys, "ablation_sweep_density", text)

    # --- invariants -----------------------------------------------------
    assert reference is not None and reference.feasible
    # Moderate density already lands near the dense answer.
    for n in DENSITIES[2:]:
        _, rec = results[n]
        assert rec.feasible, f"{n}-point sweep failed to configure"
        ratio = rec.value / reference.value
        assert 0.4 <= ratio <= 2.5, f"density {n} drifted: {ratio:.2f}x"
    # The sparsest sweep must at least fit *something* invertible.
    sparse_model, _ = results[DENSITIES[0]]
    assert sparse_model.privacy.slope != 0

    # --- timed unit: fit at the densest sweep ---------------------------
    runner = ExperimentRunner(system, taxi_dataset, n_replications=1)
    dense_sweep = runner.sweep(n_points=DENSITIES[-1])
    model = benchmark(fit_system_model, dense_sweep)
    assert model.utility.slope > 0
