"""E6 — the framework vs the ALP greedy baseline.

ALP (the paper's only named prior art) converges by repeatedly
protecting the dataset and re-measuring metrics: every configuration
query costs several online evaluations.  The framework's inversion
answers queries from the already-fitted model.  We compare (i) online
evaluations per query and (ii) the final epsilon each approach lands
on.  The benchmark times one full ALP search (fresh cache each round),
to contrast with the microsecond-scale inversion timed in E4.
"""

from repro import ExperimentRunner, Objective, alp_configure, geo_ind_system
from repro.report import format_table

from conftest import PAPER_MAX_PRIVACY, PAPER_MIN_UTILITY, report

OBJECTIVES = [
    Objective("privacy", "<=", PAPER_MAX_PRIVACY),
    Objective("utility", ">=", PAPER_MIN_UTILITY),
]
STARTS = (1e-4, 1e-2, 1.0)


def bench_alp_vs_model(benchmark, taxi_dataset, geoi_runner, geoi_sweep,
                       geoi_model, capsys):
    system = geo_ind_system()

    # --- ALP from several starting points ------------------------------
    rows = []
    alp_evals = []
    for start in STARTS:
        runner = ExperimentRunner(system, taxi_dataset, n_replications=1)
        result = alp_configure(system, runner, OBJECTIVES, initial=start)
        alp_evals.append(result.n_evaluations)
        rows.append((
            f"{start:g}",
            result.n_evaluations,
            f"{result.final_value:.4g}" if result.final_value else "-",
            "yes" if result.satisfied else "no",
        ))

    # --- the framework: offline sweep amortised, zero online cost ------
    offline = geoi_runner.n_evaluations
    before = geoi_runner.n_evaluations
    from repro import Configurator

    configurator = Configurator(system, taxi_dataset)
    configurator.runner = geoi_runner
    configurator._sweep = geoi_sweep
    configurator._model = geoi_model
    recommendation = configurator.recommend(OBJECTIVES)
    online = geoi_runner.n_evaluations - before

    text = format_table(
        ["ALP start eps", "online evals", "final eps", "met"], rows
    )
    text += (
        f"\nframework: offline evals (once) = {offline}, "
        f"online evals per query = {online}, "
        f"recommended eps = {recommendation.value:.4g}"
    )
    report(capsys, "alp_vs_model", text)

    # --- reproduced invariants -----------------------------------------
    assert all(e >= 1 for e in alp_evals), "ALP must pay online evaluations"
    assert max(alp_evals) >= 2, "far starts must require an actual search"
    assert online == 0, "model inversion must need no online evaluations"
    assert recommendation.feasible
    # Both approaches agree on the answer's order of magnitude.
    finals = [float(r[2]) for r in rows if r[2] != "-"]
    assert finals, "ALP never converged from any start"
    for final in finals:
        assert 0.2 <= final / recommendation.value <= 5.0

    # --- timed unit: one full ALP search (fresh runner per round) ------
    def run_alp():
        # Start far from the answer so the timing reflects a real search.
        runner = ExperimentRunner(system, taxi_dataset, n_replications=1)
        return alp_configure(system, runner, OBJECTIVES, initial=1e-4)

    result = benchmark.pedantic(run_alp, rounds=3, iterations=1)
    assert result.n_evaluations >= 2
