#!/usr/bin/env python3
"""Engine throughput benchmark: backends × cache states.

Measures the wall-clock of the framework's only real cost — the offline
sweep — under the evaluation engine's four interesting regimes:

* serial backend, cold cache (the seed behaviour);
* process backend, cold cache (job-level fan-out);
* serial backend, warm disk cache (re-run in a fresh engine);
* process backend, warm disk cache.

The warm rows must show **zero executions**: the sweep is answered
entirely from the content-addressed store.  Run with ``--smoke`` for a
fast CI-sized configuration.

Run:  PYTHONPATH=src python benchmarks/bench_engine.py
"""

from __future__ import annotations

import argparse
import json
import shutil
import tempfile
import time
from pathlib import Path

from repro import (
    EvaluationEngine,
    ExperimentRunner,
    TaxiFleetConfig,
    generate_taxi_fleet,
    geo_ind_system,
)


def _time_sweep(engine: EvaluationEngine, dataset, n_points: int,
                n_replications: int) -> tuple[float, int]:
    runner = ExperimentRunner(
        geo_ind_system(), dataset,
        n_replications=n_replications, engine=engine,
    )
    start = time.perf_counter()
    runner.sweep(n_points=n_points)
    elapsed = time.perf_counter() - start
    return elapsed, runner.n_evaluations


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--cabs", type=int, default=12, help="fleet size")
    parser.add_argument("--points", type=int, default=12, help="sweep points")
    parser.add_argument("--replications", type=int, default=3)
    parser.add_argument("--jobs", type=int, default=None,
                        help="process-pool workers (default: CPU count)")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny configuration for CI smoke runs")
    parser.add_argument("--json", metavar="FILE", default=None,
                        help="also write the rows as JSON (CI artifacts "
                             "and the step-summary table read this)")
    args = parser.parse_args()
    if args.smoke:
        args.cabs, args.points, args.replications = 4, 4, 2

    dataset = generate_taxi_fleet(
        TaxiFleetConfig(n_cabs=args.cabs, shift_hours=2.0, seed=11)
    )
    total_jobs = args.points * args.replications
    print(f"dataset: {len(dataset)} cabs, {dataset.n_records} records; "
          f"sweep: {args.points} points x {args.replications} seeds "
          f"= {total_jobs} evaluations")

    cache_dir = Path(tempfile.mkdtemp(prefix="bench-engine-cache-"))
    rows = []
    try:
        serial_cold, n1 = _time_sweep(
            EvaluationEngine(engine="serial", cache_dir=cache_dir / "serial"),
            dataset, args.points, args.replications,
        )
        rows.append(("serial", "cold", serial_cold, n1))
        process_cold, n2 = _time_sweep(
            EvaluationEngine(engine="process", jobs=args.jobs,
                             cache_dir=cache_dir / "process"),
            dataset, args.points, args.replications,
        )
        rows.append(("process", "cold", process_cold, n2))
        serial_warm, n3 = _time_sweep(
            EvaluationEngine(engine="serial", cache_dir=cache_dir / "serial"),
            dataset, args.points, args.replications,
        )
        rows.append(("serial", "warm", serial_warm, n3))
        process_warm, n4 = _time_sweep(
            EvaluationEngine(engine="process", jobs=args.jobs,
                             cache_dir=cache_dir / "process"),
            dataset, args.points, args.replications,
        )
        rows.append(("process", "warm", process_warm, n4))
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)

    print()
    print(f"{'backend':<9} {'cache':<6} {'wall-clock':>12} {'executions':>11}")
    for backend, state, elapsed, n_evals in rows:
        print(f"{backend:<9} {state:<6} {elapsed:>10.3f} s {n_evals:>11}")
    if process_cold > 0:
        print(f"\nspeedup (cold, serial/process): "
              f"{serial_cold / process_cold:.2f}x")
    print(f"speedup (serial, cold/warm):    {serial_cold / max(serial_warm, 1e-9):.0f}x")

    if args.json is not None:
        payload = {
            "config": {
                "cabs": args.cabs,
                "points": args.points,
                "replications": args.replications,
                "total_jobs": total_jobs,
                "smoke": bool(args.smoke),
            },
            "rows": [
                {
                    "backend": backend,
                    "cache": state,
                    "wall_clock_s": round(elapsed, 6),
                    "executions": n_evals,
                }
                for backend, state, elapsed, n_evals in rows
            ],
            "speedup_cold_serial_over_process": (
                round(serial_cold / process_cold, 4)
                if process_cold > 0 else None
            ),
            "speedup_serial_cold_over_warm": round(
                serial_cold / max(serial_warm, 1e-9), 1
            ),
        }
        Path(args.json).write_text(json.dumps(payload, indent=2) + "\n")
        print(f"\nwrote {args.json}")

    for backend, state, _, n_evals in rows:
        if state == "warm" and n_evals != 0:
            raise SystemExit(
                f"FAIL: warm {backend} cache ran {n_evals} evaluations"
            )
    print("\nwarm-cache invariant holds: 0 executions on re-run")


if __name__ == "__main__":
    main()
