"""E3 — Equation (2): the invertible log-linear model.

Paper: ln(eps) = (Pr - a)/b = (Ut - alpha)/beta with a=0.84, b=0.17,
alpha=1.21, beta=0.09, fitted inside the non-saturated zones.  Absolute
coefficients depend on the dataset (ours is synthetic); the reproduced
invariants are the signs (both metrics grow with eps), the fit quality
inside the active zones, and invertibility.  The benchmark times the
whole model-fitting step (saturation detection + two least-squares
fits) — the paper's offline "modeling phase" minus the sweep itself.
"""

from repro import fit_system_model
from repro.report import model_summary

from conftest import PAPER_COEFFS, report


def bench_equation_2(benchmark, geoi_sweep, geoi_model, capsys):
    a, b, alpha, beta = geoi_model.coefficients
    text = model_summary(geoi_model)
    text += (
        f"\npaper coefficients: a={PAPER_COEFFS['a']}, b={PAPER_COEFFS['b']}, "
        f"alpha={PAPER_COEFFS['alpha']}, beta={PAPER_COEFFS['beta']}"
    )
    report(capsys, "eq2_model_fit", text)

    # --- reproduced invariants ----------------------------------------
    assert b > 0, "privacy must grow with epsilon (paper: b = 0.17 > 0)"
    assert beta > 0, "utility must grow with epsilon (paper: beta = 0.09 > 0)"
    assert geoi_model.privacy.r2 >= 0.85, "poor privacy fit in active zone"
    assert geoi_model.utility.r2 >= 0.85, "poor utility fit in active zone"
    # Invertibility round-trip at the centre of each active zone.
    for metric_model in (geoi_model.privacy, geoi_model.utility):
        mid_y = (metric_model.y_low + metric_model.y_high) / 2.0
        x = metric_model.invert(mid_y)
        assert metric_model.x_low * 0.5 <= x <= metric_model.x_high * 2.0

    # --- timed unit: the full fit from sweep data ----------------------
    model = benchmark(fit_system_model, geoi_sweep)
    assert model.coefficients == geoi_model.coefficients
