"""E1 — Figure 1a: privacy metric vs epsilon.

Paper shape: the POI-retrieval privacy metric sits on a low plateau for
small epsilon, rises rapidly across a transition band (0.007 -> 0.08 in
the paper), and saturates above it.  The benchmark times one privacy
metric evaluation — the unit cost every point of the figure pays.
"""

import numpy as np

from repro import GeoIndistinguishability, PoiRetrievalPrivacy
from repro.framework import find_active_region
from repro.report import format_table

from conftest import report


def bench_figure_1a(benchmark, geoi_sweep, taxi_dataset, capsys):
    eps = geoi_sweep.param_values()
    privacy = geoi_sweep.privacy()

    # --- reproduce the figure as a printed series ---------------------
    rows = [(f"{e:.3e}", f"{p:.3f}") for e, p in zip(eps, privacy)]
    region = find_active_region(privacy)
    text = format_table(["epsilon (1/m)", "privacy metric"], rows)
    text += (
        f"\nactive (non-saturated) zone: eps in "
        f"[{eps[region.start]:.3e}, {eps[region.stop]:.3e}] "
        f"(paper: [7e-3, 8e-2])"
    )
    report(capsys, "fig1a_privacy_curve", text)

    # --- shape assertions (who wins / where the transition falls) -----
    assert privacy[0] <= 0.05, "low plateau missing"
    assert privacy[-1] >= 0.9, "high plateau missing"
    assert np.all(np.diff(privacy) >= -0.1), "curve not monotone"
    assert 1e-3 <= eps[region.start] <= 1e-1, "transition outside paper band"

    # --- timed unit: one privacy evaluation at the headline epsilon ---
    protected = GeoIndistinguishability(0.01).protect(taxi_dataset, seed=0)
    metric = PoiRetrievalPrivacy()
    value = benchmark(metric.evaluate, taxi_dataset, protected)
    assert 0.0 <= value <= 1.0
