"""E2 — Figure 1b: utility metric vs epsilon.

Paper shape: the area-coverage utility rises slowly and monotonically
across the whole sweep (0.2 -> 1 over eps 1e-4 -> 1), on a much wider
epsilon band than the privacy transition of Figure 1a.  The benchmark
times one utility metric evaluation.
"""

import numpy as np

from repro import AreaCoverageUtility, GeoIndistinguishability
from repro.framework import find_active_region
from repro.report import format_table

from conftest import report


def bench_figure_1b(benchmark, geoi_sweep, taxi_dataset, capsys):
    eps = geoi_sweep.param_values()
    utility = geoi_sweep.utility()
    privacy = geoi_sweep.privacy()

    # --- reproduce the figure as a printed series ---------------------
    rows = [(f"{e:.3e}", f"{u:.3f}") for e, u in zip(eps, utility)]
    text = format_table(["epsilon (1/m)", "utility metric"], rows)
    report(capsys, "fig1b_utility_curve", text)

    # --- shape assertions ---------------------------------------------
    assert utility[0] <= 0.3, "utility should start low (paper: 0.2)"
    assert utility[-1] >= 0.95, "utility should saturate near 1"
    assert np.all(np.diff(utility) >= -0.05), "curve not monotone"
    # Utility responds over a wider log-band than privacy (paper's
    # central observation motivating per-metric saturation zones).
    ut_region = find_active_region(utility)
    pr_region = find_active_region(privacy)
    ut_span = np.log(eps[ut_region.stop] / eps[ut_region.start])
    pr_span = np.log(eps[pr_region.stop] / eps[pr_region.start])
    assert ut_span > pr_span, "utility band should be wider than privacy band"

    # --- timed unit: one utility evaluation at the headline epsilon ---
    protected = GeoIndistinguishability(0.01).protect(taxi_dataset, seed=0)
    metric = AreaCoverageUtility(cell_size_m=600.0)
    value = benchmark(metric.evaluate, taxi_dataset, protected)
    assert 0.0 <= value <= 1.0
