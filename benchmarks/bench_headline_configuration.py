"""E4 — the §2 worked example: invert the model at the objectives.

Paper: "to guarantee 10% privacy, configuring eps = 0.01 ensures 80%
utility."  We ask the configurator for Pr <= 0.1 and Ut >= 0.8, check
the recommended epsilon lands in the paper's order of magnitude, and —
closing the loop the poster leaves open — re-measure both metrics at
the recommendation.  The benchmark times the *online* step (model
inversion), which is the framework's headline cost advantage: no
protect-and-attack evaluation is needed per query.
"""

from repro import Configurator, Objective, geo_ind_system
from repro.report import recommendation_summary

from conftest import PAPER_MAX_PRIVACY, PAPER_MIN_UTILITY, report

OBJECTIVES = [
    Objective("privacy", "<=", PAPER_MAX_PRIVACY),
    Objective("utility", ">=", PAPER_MIN_UTILITY),
]


def bench_headline_configuration(benchmark, taxi_dataset, geoi_runner,
                                 geoi_sweep, geoi_model, capsys):
    configurator = Configurator(geo_ind_system(), taxi_dataset)
    # Reuse the session sweep/model instead of re-running the offline phase.
    configurator.runner = geoi_runner
    configurator._sweep = geoi_sweep
    configurator._model = geoi_model

    recommendation = configurator.recommend(OBJECTIVES)
    assert recommendation.feasible, recommendation.notes
    measured_pr, measured_ut = configurator.verify(recommendation)

    text = "objectives: " + ", ".join(str(o) for o in OBJECTIVES)
    text += "\n" + recommendation_summary(recommendation)
    text += (
        f"\nverification at eps={recommendation.value:.4g}: "
        f"privacy {measured_pr:.3f} (target <= {PAPER_MAX_PRIVACY}), "
        f"utility {measured_ut:.3f} (target >= {PAPER_MIN_UTILITY})"
    )
    text += "\npaper: eps = 0.01 -> <=10% POIs retrieved, ~80% utility"
    report(capsys, "headline_configuration", text)

    # --- reproduced result: same order of magnitude, objectives met ---
    assert 3e-3 <= recommendation.value <= 3e-2, "eps far from paper's 0.01"
    assert measured_pr <= PAPER_MAX_PRIVACY + 0.02
    assert measured_ut >= PAPER_MIN_UTILITY - 0.02

    # --- timed unit: the online recommendation query -------------------
    rec = benchmark(configurator.recommend, OBJECTIVES)
    assert rec.feasible
