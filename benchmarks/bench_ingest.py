#!/usr/bin/env python3
"""Dataset-ingestion throughput: records/s and peak RSS per format.

Generates a Cabspotting-layout fixture (a fleet of random-walk cabs
with minute cadence, sub-second timestamps on a fraction of fixes —
the case the integer-truncation bug used to destroy), then measures
the streaming parsers of ``repro.mobility.io`` end to end:

* **write + read records/s** for the Cabspotting, CSV and GeoLife
  layouts, with a round-trip fidelity check per format (exact
  timestamps for CSV/Cabspotting, 1e-6-degree coordinates for the
  fixed-precision layouts);
* **scenario-registry resolution** (``repro.scenarios``): registering
  the fixture as a file-backed ``cabspotting`` scenario and resolving
  it twice — the second resolve must be an LRU cache hit;
* **streaming replay** (``repro.streaming``): the whole fleet pushed
  through a bounded :class:`SessionManager` in small chunks, gated on
  sustained throughput (>= 2000 records/s) and on RSS growth across
  the replay (<= 256 MB — sliding windows must not accumulate the
  stream), with the final sliding-window metrics reported;
* **peak RSS** of the whole process (``getrusage``), the number that
  blows up if a parser ever slurps whole files again.

Run:  PYTHONPATH=src python benchmarks/bench_ingest.py
      (--smoke for the CI-sized run, --json PATH for artifacts)
"""

from __future__ import annotations

import argparse
import json
import resource
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.lppm import GeoIndistinguishability
from repro.mobility import (
    Dataset,
    Trace,
    read_cabspotting,
    read_csv,
    read_geolife,
    write_cabspotting,
    write_csv,
    write_geolife,
)
from repro.scenarios import ScenarioRegistry, ScenarioSpec
from repro.streaming import SessionManager


def synth_fleet(n_records: int, n_users: int, seed: int = 0) -> Dataset:
    """A Cabspotting-shaped fleet: random walks at minute cadence.

    A quarter of the fixes carry millisecond-resolution timestamps, so
    the round-trip check exercises sub-second precision, not just the
    integer times the real dataset happens to use.
    """
    rng = np.random.default_rng(seed)
    per_user = max(1, n_records // n_users)
    base = 1_300_000_000.0
    traces = []
    for user in range(n_users):
        times = base + np.arange(per_user) * 60.0
        subsec = rng.random(per_user) < 0.25
        times = times + subsec * np.round(rng.uniform(0, 0.999, per_user), 3)
        lats = np.clip(
            37.75 + np.cumsum(rng.normal(0.0, 1e-4, per_user)), -90, 90
        )
        lons = np.clip(
            -122.39 + np.cumsum(rng.normal(0.0, 1e-4, per_user)), -180, 180
        )
        traces.append(Trace(f"cab{user:04d}", times, lats, lons))
    return Dataset.from_traces(traces)


def _coords_close(a: Dataset, b: Dataset, atol: float) -> bool:
    return all(
        np.allclose(a[u].lats, b[u].lats, atol=atol)
        and np.allclose(a[u].lons, b[u].lons, atol=atol)
        for u in a.users
    )


def _times_exact(a: Dataset, b: Dataset) -> bool:
    return all(np.array_equal(a[u].times_s, b[u].times_s) for u in a.users)


def bench_format(
    name: str, dataset: Dataset, root: Path
) -> dict:
    """Write + read one format; returns rates and fidelity flags."""
    writers = {
        "cabspotting": write_cabspotting,
        "csv": lambda d, p: write_csv(d, Path(p) / "data.csv"),
        "geolife": write_geolife,
    }
    readers = {
        "cabspotting": read_cabspotting,
        "csv": lambda p: read_csv(Path(p) / "data.csv"),
        "geolife": read_geolife,
    }
    target = root / name
    n = dataset.n_records

    start = time.perf_counter()
    writers[name](dataset, target)
    write_s = time.perf_counter() - start

    start = time.perf_counter()
    back = readers[name](target)
    read_s = time.perf_counter() - start

    # GeoLife's day-number column keeps ~ms resolution at 2011 epochs;
    # CSV and Cabspotting must round-trip timestamps exactly.
    times_ok = (
        _times_exact(dataset, back)
        if name != "geolife"
        else all(
            np.allclose(dataset[u].times_s, back[u].times_s, atol=0.01)
            for u in dataset.users
        )
    )
    round_trip_ok = (
        back.users == dataset.users
        and back.n_records == n
        and _coords_close(dataset, back, atol=5e-7)
        and times_ok
    )
    return {
        "records": n,
        "write_s": round(write_s, 4),
        "write_rps": round(n / write_s) if write_s else None,
        "read_s": round(read_s, 4),
        "read_rps": round(n / read_s) if read_s else None,
        "round_trip_ok": bool(round_trip_ok),
    }


def bench_scenario(root: Path) -> dict:
    """Cold vs LRU-hit resolution of the fixture as a named scenario."""
    registry = ScenarioRegistry(include_builtins=False)
    registry.register(ScenarioSpec.make(
        "bench-cabs", "cabspotting",
        {"path": str(root / "cabspotting")},
        "the generated benchmark fleet",
    ))
    start = time.perf_counter()
    cold = registry.resolve("bench-cabs")
    cold_s = time.perf_counter() - start
    start = time.perf_counter()
    warm = registry.resolve("bench-cabs")
    warm_s = time.perf_counter() - start
    stats = registry.cache_stats()
    return {
        "cold_s": round(cold_s, 4),
        "warm_s": round(warm_s, 6),
        "warm_is_cache_hit": bool(warm is cold and stats["hits"] == 1),
        "cache": stats,
    }


#: Streaming-tier gates: minimum sustained throughput and maximum
#: growth of the process high-water RSS across the replay.
STREAM_MIN_RPS = 2000.0
STREAM_MAX_RSS_GROWTH_MB = 256.0


def _rss_kb() -> int:
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss


def bench_streaming(dataset: Dataset, batch: int = 256) -> dict:
    """Replay the fleet through live sessions in ``batch``-sized chunks.

    Mimics a field deployment: every user is a long-lived session fed
    incremental updates, with sliding-window metrics maintained as the
    stream goes by.  RSS growth is measured on the *high-water* mark,
    so a well-behaved replay (bounded windows, no stream accumulation
    beyond the per-session trace buffers) typically shows ~0 growth
    after the format tiers have already touched the data.
    """
    manager = SessionManager(
        max_sessions=len(dataset) + 8, window_s=1800.0
    )
    lppm = GeoIndistinguishability(0.01)
    rss_before_kb = _rss_kb()
    released = 0
    start = time.perf_counter()
    for user in dataset.users:
        trace = dataset[user]
        records = list(zip(
            trace.times_s.tolist(), trace.lats.tolist(),
            trace.lons.tolist(),
        ))
        for lo in range(0, len(records), batch):
            _, out = manager.update(
                "bench", user, records[lo:lo + batch],
                lppm=lppm, user=user, seed=7,
            )
            released += sum(1 for r in out if r is not None)
    replay_s = time.perf_counter() - start
    window = manager.get("bench", dataset.users[0]).metrics()["window"]
    stats = manager.stats()
    manager.close()
    growth_mb = max(0, _rss_kb() - rss_before_kb) / 1024.0
    rps = dataset.n_records / replay_s if replay_s else float("inf")
    return {
        "records": dataset.n_records,
        "sessions": stats["sessions_opened"],
        "batch": batch,
        "replay_s": round(replay_s, 4),
        "replay_rps": round(rps),
        "released": released,
        "rss_growth_mb": round(growth_mb, 1),
        "window": window,
        "throughput_ok": bool(rps >= STREAM_MIN_RPS),
        "rss_ok": bool(growth_mb <= STREAM_MAX_RSS_GROWTH_MB),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--records", type=int, default=250_000,
                        help="fixture size in records (default: 250000)")
    parser.add_argument("--users", type=int, default=50,
                        help="fixture users/cabs (default: 50)")
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run (100k records)")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="also write the numbers as JSON")
    args = parser.parse_args(argv)

    n_records = 100_000 if args.smoke else args.records
    dataset = synth_fleet(n_records, args.users)
    results: dict = {
        "records": dataset.n_records,
        "users": len(dataset),
        "smoke": bool(args.smoke),
        "formats": {},
    }

    with tempfile.TemporaryDirectory(prefix="bench_ingest_") as tmp:
        root = Path(tmp)
        for name in ("cabspotting", "csv", "geolife"):
            results["formats"][name] = bench_format(name, dataset, root)
        results["scenario"] = bench_scenario(root)
    results["streaming"] = bench_streaming(dataset)

    peak_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    results["peak_rss_mb"] = round(peak_kb / 1024.0, 1)

    print(f"ingestion fixture: {results['records']} records, "
          f"{results['users']} users\n")
    print(f"{'format':<12} {'write rec/s':>12} {'read rec/s':>12} "
          f"{'round trip':>11}")
    for name, row in results["formats"].items():
        print(f"{name:<12} {row['write_rps']:>12} {row['read_rps']:>12} "
              f"{'ok' if row['round_trip_ok'] else 'FAILED':>11}")
    scenario = results["scenario"]
    print(f"\nscenario resolve: cold {scenario['cold_s']}s, "
          f"warm {scenario['warm_s']}s "
          f"({'LRU hit' if scenario['warm_is_cache_hit'] else 'MISS'})")
    streaming = results["streaming"]
    print(f"streaming replay: {streaming['replay_rps']} rec/s over "
          f"{streaming['sessions']} sessions "
          f"(RSS growth {streaming['rss_growth_mb']} MB) "
          f"{'ok' if streaming['throughput_ok'] and streaming['rss_ok'] else 'FAILED'}")
    print(f"peak RSS: {results['peak_rss_mb']} MB")

    ok = (
        all(r["round_trip_ok"] for r in results["formats"].values())
        and scenario["warm_is_cache_hit"]
        and streaming["throughput_ok"]
        and streaming["rss_ok"]
    )
    results["ok"] = bool(ok)
    if args.json:
        Path(args.json).write_text(json.dumps(results, indent=2))
        print(f"\nJSON written to {args.json}")
    if not ok:
        print("FAILED: a round trip lost data, the LRU missed, or the "
              "streaming replay broke a gate", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
