"""E10 — the modularity claim: different metrics, same machinery.

"By using different metrics, a system designer is able to fine-tune
her LPPM according to her expected privacy and utility guarantees."
This bench runs the identical pipeline under three metric pairs and
checks that each yields a feasible, *different* epsilon — i.e. the
choice of metrics genuinely matters and the framework absorbs it.
The benchmark times a full fit under the cheapest alternative pair.
"""

import numpy as np

from repro import (
    AreaCoverageUtility,
    Configurator,
    GeoIndistinguishability,
    HeatmapPreservationUtility,
    LogDistortionPrivacy,
    Objective,
    ParameterSpec,
    PoiRetrievalPrivacy,
    SpatialDistortionUtility,
    SystemDefinition,
)
from repro.report import format_table

from conftest import report


def _system(privacy_metric, utility_metric) -> SystemDefinition:
    return SystemDefinition(
        name="geo_ind",
        lppm_factory=GeoIndistinguishability,
        parameters=[ParameterSpec("epsilon", 1e-4, 1.0, scale="log")],
        privacy_metric=privacy_metric,
        utility_metric=utility_metric,
    )


SCENARIOS = [
    (
        "poi_retrieval / area_coverage (paper)",
        _system(PoiRetrievalPrivacy(), AreaCoverageUtility(cell_size_m=600.0)),
        [Objective("privacy", "<=", 0.10), Objective("utility", ">=", 0.80)],
    ),
    (
        "log_distortion / spatial_distortion",
        _system(LogDistortionPrivacy(), SpatialDistortionUtility(scale_m=500.0)),
        # A localisation-error floor of 300 m, expressed in log space
        # where the metric is linear in ln(eps).
        [Objective("privacy", ">=", float(np.log(300.0))),
         Objective("utility", ">=", 0.4)],
    ),
    (
        "poi_retrieval / heatmap",
        _system(PoiRetrievalPrivacy(), HeatmapPreservationUtility(600.0)),
        [Objective("privacy", "<=", 0.10), Objective("utility", ">=", 0.90)],
    ),
]


def bench_metric_modularity(benchmark, taxi_dataset, capsys):
    rows = []
    recommendations = {}
    for label, system, objectives in SCENARIOS:
        configurator = Configurator(system, taxi_dataset, n_points=12,
                                    n_replications=1)
        configurator.fit()
        rec = configurator.recommend(objectives)
        recommendations[label] = rec
        rows.append((
            label,
            ", ".join(str(o) for o in objectives),
            f"{rec.value:.4g}" if rec.feasible else "infeasible",
        ))
    report(
        capsys,
        "metric_modularity",
        format_table(["metric pair", "objectives", "recommended eps"], rows),
    )

    # --- invariants -----------------------------------------------------
    values = [r.value for r in recommendations.values() if r.feasible]
    assert len(values) == len(SCENARIOS), "every metric pair must configure"
    # The recommended epsilons genuinely differ across metric pairs.
    assert max(values) / min(values) > 1.2

    # --- timed unit: a full fit under the distortion pair (cheapest) ----
    def fit_distortion_pair():
        configurator = Configurator(SCENARIOS[1][1], taxi_dataset,
                                    n_points=8, n_replications=1)
        return configurator.fit()

    model = benchmark.pedantic(fit_distortion_pair, rounds=3, iterations=1)
    assert model.privacy.slope != 0
