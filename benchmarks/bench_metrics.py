#!/usr/bin/env python3
"""Metric evaluation cost: analysis cache cold vs warm, kernel speedups.

Four measurements — the first three on a 50-user synthetic commuter
dataset:

* **per-metric wall time** — each registered heavyweight metric
  evaluated with a cold analysis cache (every artifact computed) and
  again warm (actual- and protected-side artifacts answered from the
  cache);
* **sweep cost** — a ``poi_retrieval`` + ``reidentification`` sweep
  over several protected datasets, run cold (a fresh cache per metric
  call, the pre-analysis-layer behaviour) vs warm (one shared cache,
  the engine's behaviour): the headline number the analysis layer is
  gated on (≥ 3× expected);
* **kernel speedups** — the vectorised ``extract_stay_points`` (on a
  100k-record trace) and ``cluster_stay_points`` against the seed
  implementations, which must stay bit-identical while being faster
  (≥ 1.5× expected for stay-point extraction);
* **protect speedups** — the columnar ``protect_block`` path of every
  vectorised LPPM against the seed per-trace loop, on a many-user
  dataset (2500 users × 40 records full, the short-trace fleet shape
  where per-trace overhead dominates the seed loop); must stay
  bit-identical while ≥ 4× faster for ``geo_ind`` and ``gaussian``
  (≥ 2× in smoke).

Run:  PYTHONPATH=src python benchmarks/bench_metrics.py
      (--smoke for the CI-sized run, --json PATH for artifacts)
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro import (
    CommuterConfig,
    ElasticGeoIndistinguishability,
    GaussianPerturbation,
    GeoIndistinguishability,
    GridRounding,
    Subsampling,
    TimePerturbation,
    UniformDiskNoise,
    generate_commuters,
)
from repro.analysis import AnalysisCache, use_cache
from repro.attacks import cluster_stay_points, extract_stay_points
from repro.attacks.staypoints import StayPoint
from repro.metrics import metric_class

#: Metrics whose evaluation is dominated by derived-artifact analysis.
BENCH_METRICS = (
    "poi_retrieval",
    "reidentification",
    "home_identification",
    "heatmap",
    "distortion",
)


def _reference_module():
    """The seed kernels and the shared dwelling-trace fixture.

    One canonical copy lives with the parity suite
    (``tests/analysis/reference.py``) so the bench's speedup baseline
    and the tests' bit-identity baseline can never drift apart; the
    tests package is imported from the repo root, wherever the bench
    is launched from.
    """
    repo_root = Path(__file__).resolve().parents[1]
    if str(repo_root) not in sys.path:
        sys.path.insert(0, str(repo_root))
    from tests.analysis import reference

    return reference


def _lppm_reference_module():
    """The seed per-trace protect implementations and dataset builder.

    Same arrangement as :func:`_reference_module`: the canonical copy
    lives with the block-parity suite (``tests/lppm/reference.py``) so
    the bench baseline and the bit-identity baseline cannot drift.
    """
    repo_root = Path(__file__).resolve().parents[1]
    if str(repo_root) not in sys.path:
        sys.path.insert(0, str(repo_root))
    from tests.lppm import reference

    return reference


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


# ----------------------------------------------------------------------
# Sections
# ----------------------------------------------------------------------
def bench_per_metric(actual, protected) -> dict:
    """Cold vs warm analysis cache, one evaluation per metric."""
    rows = {}
    for name in BENCH_METRICS:
        metric = metric_class(name)()
        cache = AnalysisCache()
        with use_cache(cache):
            cold_s = _timed(lambda: metric.evaluate(actual, protected))
            warm_s = _timed(lambda: metric.evaluate(actual, protected))
        rows[name] = {
            "cold_s": round(cold_s, 4),
            "warm_s": round(warm_s, 4),
            "speedup": round(cold_s / warm_s, 2) if warm_s > 0 else None,
        }
    return rows


def bench_sweep(actual, protected_worlds) -> dict:
    """The headline number: a poi_retrieval + reidentification sweep.

    Three timings of the same sweep:

    * **cold** — a fresh cache per metric call: no artifact reuse
      anywhere, which is exactly what every evaluation paid before the
      analysis layer existed;
    * **first pass** — one shared cache, populated as it goes: the
      actual side is analysed once for the whole sweep and each
      protected world's extraction is shared between the two metrics
      (what one engine batch pays today);
    * **warm** — the identical sweep again over the populated cache:
      every artifact on both sides is answered from the LRU (what a
      re-evaluated sweep pays, e.g. after a metric-parameter change
      that misses the result cache but not the artifact cache).
    """
    metrics = [metric_class("poi_retrieval")(), metric_class("reidentification")()]

    def run_point(protected, cache) -> None:
        for metric in metrics:
            with use_cache(cache):
                metric.evaluate(actual, protected)

    def cold_run() -> None:
        for protected in protected_worlds:
            for metric in metrics:
                with use_cache(AnalysisCache()):
                    metric.evaluate(actual, protected)

    cold_s = _timed(cold_run)

    shared = AnalysisCache()

    def shared_run() -> None:
        for protected in protected_worlds:
            run_point(protected, shared)

    first_pass_s = _timed(shared_run)
    warm_s = _timed(shared_run)
    return {
        "points": len(protected_worlds),
        "metrics": [m.name for m in metrics],
        "cold_s": round(cold_s, 3),
        "first_pass_s": round(first_pass_s, 3),
        "warm_s": round(warm_s, 4),
        "speedup": round(cold_s / warm_s, 2) if warm_s > 0 else None,
        "first_pass_speedup": (
            round(cold_s / first_pass_s, 2) if first_pass_s > 0 else None
        ),
        "analysis_cache": shared.stats,
    }


def bench_kernels(n_records: int, n_stays: int) -> dict:
    """Vectorised kernels vs the seed implementations (bit-identical)."""
    reference = _reference_module()
    trace = reference.make_dwelling_trace(
        n_records, n_places=8, block=400, user="bench"
    )
    new = extract_stay_points(trace)  # warm numpy before timing
    new_s = _timed(lambda: extract_stay_points(trace))
    ref = reference._reference_extract_stay_points(trace)
    ref_s = _timed(lambda: reference._reference_extract_stay_points(trace))
    stay_identical = new == ref

    rng = np.random.default_rng(1)
    stays = [
        StayPoint(
            lat=48.85 + float(rng.normal(0, 0.02)),
            lon=2.35 + float(rng.normal(0, 0.02)),
            t_start_s=float(i * 1000),
            t_end_s=float(i * 1000 + rng.uniform(900, 5000)),
            n_records=10,
        )
        for i in range(n_stays)
    ]
    cluster_new_s = _timed(lambda: cluster_stay_points(stays))
    cluster_ref_s = _timed(
        lambda: reference._reference_cluster_stay_points(stays)
    )
    cluster_identical = (
        cluster_stay_points(stays)
        == reference._reference_cluster_stay_points(stays)
    )
    return {
        "stay_points": {
            "records": n_records,
            "n_stays": len(new),
            "reference_s": round(ref_s, 3),
            "vectorized_s": round(new_s, 3),
            "speedup": round(ref_s / new_s, 1) if new_s > 0 else None,
            "bit_identical": bool(stay_identical),
        },
        "cluster": {
            "stays": n_stays,
            "reference_s": round(cluster_ref_s, 3),
            "vectorized_s": round(cluster_new_s, 3),
            "speedup": (
                round(cluster_ref_s / cluster_new_s, 2)
                if cluster_new_s > 0 else None
            ),
            "bit_identical": bool(cluster_identical),
        },
    }


def bench_protect(n_users: int, records_per_user: int) -> dict:
    """Columnar protect vs the seed per-trace loop (bit-identical).

    Many users with moderate traces — the shape where the seed loop's
    per-trace Python overhead (projection objects, small-array ufunc
    dispatch) dominates, and the one sweeps over real fleets have.
    Each mechanism is timed cold except for the dataset's memoised
    columnar block, which is prebuilt once: that is exactly what a
    sweep pays (one concatenation, many protect calls).
    """
    reference = _lppm_reference_module()
    dataset = reference.make_block_dataset(n_users, records_per_user, seed=0)
    dataset.columns()  # shared across every mechanism, as in a sweep
    mechanisms = {
        "geo_ind": GeoIndistinguishability(0.05),
        "elastic_geo_ind": ElasticGeoIndistinguishability(
            0.05, cell_size_m=250.0
        ),
        "gaussian": GaussianPerturbation(25.0),
        "uniform_disk": UniformDiskNoise(60.0),
        "rounding": GridRounding(150.0),
        "subsampling": Subsampling(0.5),
        "time_perturbation": TimePerturbation(45.0),
    }
    rows = {}
    for name, lppm in mechanisms.items():
        block_out = lppm.protect(dataset, seed=1)  # warm numpy paths
        # Best of three: the short block timings (tens of ms) are
        # noise-sensitive on shared runners, and the gate is a floor.
        block_s = min(
            _timed(lambda: lppm.protect(dataset, seed=1)) for _ in range(3)
        )
        ref_out = reference._reference_protect(lppm, dataset, seed=1)
        ref_s = min(
            _timed(
                lambda: reference._reference_protect(lppm, dataset, seed=1)
            )
            for _ in range(3)
        )
        identical = block_out.users == ref_out.users and all(
            block_out[u] == ref_out[u] for u in block_out.users
        )
        rows[name] = {
            "reference_s": round(ref_s, 3),
            "block_s": round(block_s, 3),
            "speedup": round(ref_s / block_s, 1) if block_s > 0 else None,
            "bit_identical": bool(identical),
        }
    return {
        "users": n_users,
        "records": n_users * records_per_user,
        "per_lppm": rows,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--users", type=int, default=50,
                        help="synthetic commuter users (default: 50)")
    parser.add_argument("--days", type=int, default=2,
                        help="simulated days per user (default: 2)")
    parser.add_argument("--sweep-points", type=int, default=5,
                        help="protected datasets in the sweep (default: 5)")
    parser.add_argument("--kernel-records", type=int, default=100_000,
                        help="records in the kernel trace (default: 100000)")
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run (1 day, 3 points, 20k records)")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="also write the numbers as JSON")
    args = parser.parse_args(argv)

    days = 1 if args.smoke else args.days
    sweep_points = 3 if args.smoke else args.sweep_points
    kernel_records = 20_000 if args.smoke else args.kernel_records
    protect_users, protect_records = (600, 40) if args.smoke else (2500, 40)

    actual = generate_commuters(
        CommuterConfig(n_users=args.users, n_days=days, seed=0)
    )
    epsilons = np.geomspace(2e-3, 5e-2, sweep_points)
    protected_worlds = [
        GeoIndistinguishability(epsilon=float(eps)).protect(actual, seed=s)
        for s, eps in enumerate(epsilons)
    ]
    protected = protected_worlds[0]

    results = {
        "users": len(actual),
        "records": actual.n_records,
        "smoke": bool(args.smoke),
        "per_metric": bench_per_metric(actual, protected),
        "sweep": bench_sweep(actual, protected_worlds),
        "kernels": bench_kernels(kernel_records, 2500 if args.smoke else 4000),
        "protect": bench_protect(protect_users, protect_records),
    }

    print(f"metric fixture: {results['records']} records, "
          f"{results['users']} users\n")
    print(f"{'metric':<20} {'cold s':>9} {'warm s':>9} {'speedup':>8}")
    for name, row in results["per_metric"].items():
        print(f"{name:<20} {row['cold_s']:>9} {row['warm_s']:>9} "
              f"{row['speedup']:>7}x")
    sweep = results["sweep"]
    print(f"\nsweep ({sweep['points']} points, poi_retrieval + "
          f"reidentification): cold {sweep['cold_s']}s, first pass "
          f"{sweep['first_pass_s']}s ({sweep['first_pass_speedup']}x), "
          f"warm {sweep['warm_s']}s -> {sweep['speedup']}x")
    for kernel, row in results["kernels"].items():
        print(f"{kernel}: reference {row['reference_s']}s, vectorized "
              f"{row['vectorized_s']}s -> {row['speedup']}x "
              f"({'bit-identical' if row['bit_identical'] else 'MISMATCH'})")
    protect = results["protect"]
    print(f"\nprotect fixture: {protect['records']} records, "
          f"{protect['users']} users")
    print(f"{'lppm':<20} {'ref s':>9} {'block s':>9} {'speedup':>8}")
    for name, row in protect["per_lppm"].items():
        flag = "" if row["bit_identical"] else "  MISMATCH"
        print(f"{name:<20} {row['reference_s']:>9} {row['block_s']:>9} "
              f"{row['speedup']:>7}x{flag}")

    # Gates: parity always; speedup floors sized for the full run (CI
    # smoke keeps a margin for noisy shared runners).
    sweep_floor = 2.0 if args.smoke else 3.0
    kernel_floor = 1.2 if args.smoke else 1.5
    protect_floor = 2.0 if args.smoke else 4.0
    per_lppm = results["protect"]["per_lppm"]
    ok = (
        all(r["bit_identical"] for r in results["kernels"].values())
        and sweep["speedup"] is not None
        and sweep["speedup"] >= sweep_floor
        and results["kernels"]["stay_points"]["speedup"] >= kernel_floor
        and all(r["bit_identical"] for r in per_lppm.values())
        and all(
            per_lppm[name]["speedup"] is not None
            and per_lppm[name]["speedup"] >= protect_floor
            for name in ("geo_ind", "gaussian")
        )
    )
    results["ok"] = bool(ok)
    if args.json:
        Path(args.json).write_text(json.dumps(results, indent=2))
        print(f"\nJSON written to {args.json}")
    if not ok:
        print("FAILED: kernel/protect parity broke or a speedup floor "
              "was missed", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
