"""E8 — paper future work: other datasets.

Repeats the whole analysis on the GeoLife-like commuter workload and
compares the fitted equation-(2) coefficients with the taxi fit: the
*shape* invariants (signs, fit quality, privacy transition inside the
sweep) must transfer even though the coefficient values are dataset
specific — exactly why the paper's framework re-fits per dataset and
why its step 1 tracks dataset properties.  The benchmark times one
sweep point on the commuter dataset.
"""

from repro import ExperimentRunner, fit_system_model, geo_ind_system
from repro.report import format_table, model_summary

from conftest import report


def bench_other_datasets(benchmark, commuter_dataset, geoi_model, capsys):
    runner = ExperimentRunner(geo_ind_system(), commuter_dataset,
                              n_replications=1)
    sweep = runner.sweep(n_points=12)
    model = fit_system_model(sweep)

    a_t, b_t, al_t, be_t = geoi_model.coefficients
    a_c, b_c, al_c, be_c = model.coefficients
    rows = [
        ("a (privacy intercept)", f"{a_t:.3f}", f"{a_c:.3f}"),
        ("b (privacy slope)", f"{b_t:.3f}", f"{b_c:.3f}"),
        ("alpha (utility intercept)", f"{al_t:.3f}", f"{al_c:.3f}"),
        ("beta (utility slope)", f"{be_t:.3f}", f"{be_c:.3f}"),
    ]
    text = format_table(["coefficient", "taxi (Cabspotting-like)",
                         "commuters (GeoLife-like)"], rows)
    text += "\n\n" + model_summary(model)
    report(capsys, "other_datasets", text)

    # --- transfer invariants -------------------------------------------
    assert b_c > 0 and be_c > 0, "shape must transfer across datasets"
    assert model.privacy.r2 >= 0.7
    assert model.utility.r2 >= 0.8
    eps = sweep.param_values()
    assert eps[model.privacy_region.start] > eps[0], (
        "privacy transition must sit inside the sweep, not at its edge"
    )
    # Coefficients are dataset-specific: at least one differs noticeably,
    # which is the motivation for per-dataset refitting (and the d_i).
    assert any(
        abs(x - y) / max(abs(x), abs(y), 1e-9) > 0.05
        for x, y in [(a_t, a_c), (b_t, b_c), (al_t, al_c), (be_t, be_c)]
    )

    # --- timed unit: one sweep-point evaluation on commuters -----------
    def evaluate_once():
        fresh = ExperimentRunner(geo_ind_system(), commuter_dataset,
                                 n_replications=1)
        return fresh.evaluate_once({"epsilon": 0.01}, seed=0)

    pr, ut = benchmark.pedantic(evaluate_once, rounds=3, iterations=1)
    assert 0.0 <= pr <= 1.0
