"""E7 — paper future work: "testing other LPPMs".

Runs the identical framework analysis (sweep + fit) for every
comparator mechanism in the registry, demonstrating that the framework
is mechanism-agnostic.  Reproduced invariants are the response *shapes*
each mechanism family must show (see compare_lppms example for the
narrative).  The benchmark times one full evaluation (protect + both
metrics) of the Gaussian comparator — the unit cost of any sweep point.
"""

import numpy as np

from repro import (
    ExperimentRunner,
    GaussianPerturbation,
    GridRounding,
    ParameterSpec,
    Subsampling,
    SystemDefinition,
    UniformDiskNoise,
)
from repro.metrics import AreaCoverageUtility, PoiRetrievalPrivacy
from repro.report import format_table

from conftest import report

COMPARATORS = [
    ("gaussian", GaussianPerturbation, ParameterSpec("sigma_m", 10.0, 5000.0)),
    ("uniform_disk", UniformDiskNoise, ParameterSpec("radius_m", 10.0, 5000.0)),
    ("rounding", GridRounding, ParameterSpec("cell_size_m", 50.0, 5000.0)),
    ("subsampling", Subsampling,
     ParameterSpec("keep_fraction", 0.02, 1.0, scale="log")),
]


def _system(name, factory, spec) -> SystemDefinition:
    return SystemDefinition(
        name=name,
        lppm_factory=factory,
        parameters=[spec],
        privacy_metric=PoiRetrievalPrivacy(),
        utility_metric=AreaCoverageUtility(cell_size_m=600.0),
    )


def bench_other_lppms(benchmark, taxi_dataset, capsys):
    sweeps = {}
    for name, factory, spec in COMPARATORS:
        runner = ExperimentRunner(_system(name, factory, spec), taxi_dataset,
                                  n_replications=1)
        sweeps[name] = runner.sweep(n_points=7)

    sections = []
    for name, sweep in sweeps.items():
        rows = [
            (f"{v:.4g}", f"{pr:.3f}", f"{ut:.3f}")
            for v, pr, _, ut, _ in sweep.to_rows()
        ]
        sections.append(
            f"== {name} ({sweep.param_name}) ==\n"
            + format_table([sweep.param_name, "privacy", "utility"], rows)
        )
    report(capsys, "other_lppms", "\n\n".join(sections))

    # --- family-specific shape invariants ------------------------------
    # Noise mechanisms: more noise => less retrieval, less utility.
    for name in ("gaussian", "uniform_disk"):
        sweep = sweeps[name]
        assert sweep.privacy()[0] > sweep.privacy()[-1]
        assert sweep.utility()[0] > sweep.utility()[-1]
    # Subsampling: keeping everything is full exposure and full utility.
    sub = sweeps["subsampling"]
    assert sub.privacy()[-1] == 1.0
    assert sub.utility()[-1] == 1.0
    assert sub.privacy()[0] < 0.5
    # Rounding: small cells leave POIs fully retrievable (deterministic
    # snapping preserves recurrence); huge cells destroy them.
    rnd = sweeps["rounding"]
    assert rnd.privacy()[0] >= 0.9
    assert rnd.privacy()[-1] <= 0.5
    # Crossover: at matched parameter 'scale', noise beats rounding at
    # hiding POIs (paper-adjacent observation motivating GEO-I).
    assert np.interp(500.0, sweeps["gaussian"].param_values(),
                     sweeps["gaussian"].privacy()) < np.interp(
        500.0, rnd.param_values(), rnd.privacy()
    )

    # --- timed unit: one full evaluation of a comparator ---------------
    def evaluate_once():
        runner = ExperimentRunner(
            _system(*COMPARATORS[0]), taxi_dataset, n_replications=1
        )
        return runner.evaluate_once({"sigma_m": 200.0}, seed=0)

    pr, ut = benchmark.pedantic(evaluate_once, rounds=3, iterations=1)
    assert 0.0 <= pr <= 1.0
    assert 0.0 <= ut <= 1.0
