"""E5 — framework step 1: PCA selection of dataset properties.

Paper: the dataset properties d_i are "soundly chosen using a principal
component analysis".  We build a population of taxi-fleet variants,
extract the library's standard property set from each, and rank the
properties by PCA importance.  The benchmark times the PCA itself on
the precomputed feature matrix.
"""

from repro import TaxiFleetConfig, generate_taxi_fleet
from repro.properties import DEFAULT_EXTRACTORS, feature_matrix, run_pca
from repro.report import format_table

from conftest import report

VARIANTS = [
    (6, 4.0, 0.0), (6, 8.0, 0.6), (10, 6.0, 0.3),
    (12, 8.0, 0.6), (10, 10.0, 0.8), (8, 6.0, 0.0),
]


def bench_pca_property_selection(benchmark, capsys):
    datasets = [
        generate_taxi_fleet(TaxiFleetConfig(
            n_cabs=n, shift_hours=h, heterogeneity=het, seed=i,
        ))
        for i, (n, h, het) in enumerate(VARIANTS)
    ]
    names = [e.name for e in DEFAULT_EXTRACTORS]
    matrix = feature_matrix(datasets)

    result = run_pca(matrix, names)
    importance = dict(zip(result.feature_names, result.importance()))
    rows = [(name, f"{importance[name]:.3f}") for name in result.ranked_features()]
    text = format_table(["property (most impactful first)", "importance"], rows)
    text += (
        f"\ntop component explains "
        f"{result.explained_variance_ratio[0]:.0%} of dataset variance"
    )
    report(capsys, "pca_properties", text)

    # --- invariants ----------------------------------------------------
    assert result.explained_variance_ratio[0] >= 0.3
    assert len(result.ranked_features()) == len(names)
    # Properties that the variants actually vary must rank above ones
    # they cannot (uniqueness is structurally ~constant here).
    ranked = result.ranked_features()
    assert ranked.index("mean_records_per_user") < len(ranked) - 1

    # --- timed unit: the PCA ranking -----------------------------------
    res = benchmark(run_pca, matrix, names)
    assert res.n_components >= 1
