"""A4 — scaling: evaluation cost vs dataset size.

The framework's offline phase is a sweep of protect-and-measure
evaluations, so its wall-clock scales with the dataset.  This bench
measures one evaluation at three fleet sizes and checks the growth is
near-linear (the POI attack is the dominant cost and is linear in
records per user) — evidence the offline phase stays tractable on
real Cabspotting-scale data.  The benchmark times the mid-size case.
"""

import time

from repro import ExperimentRunner, TaxiFleetConfig, generate_taxi_fleet, geo_ind_system
from repro.report import format_table

from conftest import report

SIZES = (4, 8, 16)


def bench_scaling(benchmark, capsys):
    system = geo_ind_system()
    rows = []
    costs = {}
    for n_cabs in SIZES:
        dataset = generate_taxi_fleet(
            TaxiFleetConfig(n_cabs=n_cabs, shift_hours=8.0, seed=1)
        )
        runner = ExperimentRunner(system, dataset, n_replications=1)
        start = time.perf_counter()
        runner.evaluate_once({"epsilon": 0.01}, seed=0)
        elapsed = time.perf_counter() - start
        costs[n_cabs] = (dataset.n_records, elapsed)
        rows.append((n_cabs, dataset.n_records, f"{elapsed * 1000:.1f} ms"))
    report(
        capsys,
        "scaling",
        format_table(["cabs", "records", "one evaluation"], rows),
    )

    # --- invariants: near-linear growth in record count -----------------
    small_records, small_t = costs[SIZES[0]]
    large_records, large_t = costs[SIZES[-1]]
    record_ratio = large_records / small_records
    time_ratio = large_t / small_t
    assert time_ratio < record_ratio * 3.0, (
        f"evaluation cost grew superlinearly: records x{record_ratio:.1f}, "
        f"time x{time_ratio:.1f}"
    )

    # --- timed unit: one evaluation at the mid size ----------------------
    dataset = generate_taxi_fleet(
        TaxiFleetConfig(n_cabs=SIZES[1], shift_hours=8.0, seed=1)
    )

    def evaluate_once():
        runner = ExperimentRunner(system, dataset, n_replications=1)
        return runner.evaluate_once({"epsilon": 0.01}, seed=0)

    pr, ut = benchmark.pedantic(evaluate_once, rounds=3, iterations=1)
    assert 0.0 <= pr <= 1.0
