#!/usr/bin/env python3
"""Configuration-service throughput: requests/sec, cold vs warm cache.

Measures the daemon's three amortisation tiers on a repeated ``/sweep``
workload:

* **cold** — first request: the engine executes every (point, seed)
  protect + measure job;
* **warm engine** — response cache cleared, configurator registry
  cleared: the framework re-fits, but every evaluation is an engine
  cache hit (zero executions);
* **warm response cache** — the repeated identical request short-
  circuits in the middleware pipeline (one dict lookup per request).

Then an HTTP section reports requests/sec over real sockets (threaded
stdlib server, warm cache) for ``/sweep`` and ``/healthz``.

The warm rows must report **zero new executions** — the service-level
restatement of the engine benchmark's invariant.  Run with ``--smoke``
for a CI-sized configuration.

Run:  PYTHONPATH=src python benchmarks/bench_service.py
"""

from __future__ import annotations

import argparse
import threading
import time

from repro.service import ConfigService, HttpServiceClient, ServiceClient


def _time_requests(fn, n: int) -> float:
    start = time.perf_counter()
    for _ in range(n):
        fn()
    return time.perf_counter() - start


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--users", type=int, default=8, help="fleet size")
    parser.add_argument("--points", type=int, default=10, help="sweep points")
    parser.add_argument("--replications", type=int, default=2)
    parser.add_argument("--repeats", type=int, default=200,
                        help="warm requests to average over")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny configuration for CI smoke runs")
    args = parser.parse_args()
    if args.smoke:
        args.users, args.points, args.replications = 4, 5, 1
        args.repeats = 50

    dataset = {"workload": "taxi", "users": args.users, "seed": 11}
    app = ConfigService()
    client = ServiceClient(app)
    sweep = lambda: client.sweep(dataset, points=args.points,
                                 replications=args.replications)

    total_jobs = args.points * args.replications
    print(f"workload: {args.users} cabs; sweep {args.points} points x "
          f"{args.replications} seeds = {total_jobs} evaluations/request")

    rows = []

    cold_s = _time_requests(sweep, 1)
    cold_exec = client.metrics()["engine"]["executions"]
    rows.append(("cold (engine executes)", 1, cold_s, cold_exec))

    # Warm engine, cold service registries: the framework re-fits from
    # cached evaluations.
    app.response_cache.clear()
    app.state.clear_registries()
    warm_engine_s = _time_requests(sweep, 1)
    warm_engine_exec = (
        client.metrics()["engine"]["executions"] - cold_exec
    )
    rows.append(("warm engine cache", 1, warm_engine_s, warm_engine_exec))

    before = client.metrics()["engine"]["executions"]
    warm_response_s = _time_requests(sweep, args.repeats)
    warm_response_exec = client.metrics()["engine"]["executions"] - before
    rows.append(("warm response cache", args.repeats, warm_response_s,
                 warm_response_exec))

    print()
    print(f"{'tier':<24} {'requests':>8} {'wall-clock':>12} "
          f"{'req/s':>10} {'new executions':>15}")
    for tier, n, elapsed, n_exec in rows:
        rate = n / elapsed if elapsed > 0 else float("inf")
        print(f"{tier:<24} {n:>8} {elapsed:>10.4f} s {rate:>10.0f} "
              f"{n_exec:>15}")

    # ------------------------------------------------------------------
    # Over real sockets
    # ------------------------------------------------------------------
    server = app.make_server("127.0.0.1", 0)
    host, port = server.server_address[:2]
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    http = HttpServiceClient(f"http://{host}:{port}")
    try:
        exec_before = client.metrics()["engine"]["executions"]
        http_sweep_s = _time_requests(
            lambda: http.sweep(dataset, points=args.points,
                               replications=args.replications),
            args.repeats,
        )
        http_exec = client.metrics()["engine"]["executions"] - exec_before
        http_health_s = _time_requests(http.healthz, args.repeats)
    finally:
        server.shutdown()
        server.server_close()
        client.close()

    print()
    print(f"HTTP /sweep   (warm): {args.repeats / http_sweep_s:>8.0f} req/s")
    print(f"HTTP /healthz       : {args.repeats / http_health_s:>8.0f} req/s")

    failures = [
        (tier, n_exec)
        for tier, _, _, n_exec in rows[1:]
        if n_exec != 0
    ] + ([("http /sweep warm", http_exec)] if http_exec != 0 else [])
    if failures:
        raise SystemExit(f"FAIL: warm tiers ran executions: {failures}")
    print("\nwarm-service invariant holds: 0 executions after the first "
          "request")


if __name__ == "__main__":
    main()
