#!/usr/bin/env python3
"""Configuration-service throughput: requests/sec, cold vs warm cache.

Measures the daemon's three amortisation tiers on a repeated ``/sweep``
workload:

* **cold** — first request: the engine executes every (point, seed)
  protect + measure job;
* **warm engine** — response cache cleared, configurator registry
  cleared: the framework re-fits, but every evaluation is an engine
  cache hit (zero executions);
* **warm response cache** — the repeated identical request short-
  circuits in the middleware pipeline (one dict lookup per request).

Then an HTTP section reports requests/sec over real sockets (threaded
stdlib server, warm cache) for ``/sweep`` and ``/healthz``, and an
**async tier** compares N concurrent *distinct* cold sweeps issued
synchronously (each client thread blocks on its own POST /sweep)
against the same workload submitted as jobs (POST /jobs + poll):
per-request p50/p95 latency and overall throughput, plus the p95
latency of ``GET /healthz`` probes fired *while* the sweeps run — the
number that shows the request path staying clear of evaluation work.

A **hardening tier** prices the production middleware: warm req/s on a
keyed + rate-limited service vs the anonymous default (gated at <=10%
overhead), and the bytes gzip saves on a record-bearing ``/protect``
response over real sockets (gated: compressed < plain).

A **processes tier** boots two real daemons as subprocesses — one with
``--processes 1``, one with ``--processes N`` (pre-fork) — and runs
the same cold-then-warm sweep set against each.  Gated everywhere:
the warm bodies must be bit-identical between the two deployments and
the warm pass must report zero new executions.  On a multi-core host
(and outside ``--smoke``) the pre-fork fleet must also deliver >=1.5x
the single process's warm concurrent throughput.

The warm rows must report **zero new executions** — the service-level
restatement of the engine benchmark's invariant.  Run with ``--smoke``
for a CI-sized configuration; ``--json PATH`` writes the numbers for
CI artifacts and step summaries.

Run:  PYTHONPATH=src python benchmarks/bench_service.py
"""

from __future__ import annotations

import argparse
import contextlib
import json
import os
import re
import shutil
import signal
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

from repro.service import ConfigService, HttpServiceClient, ServiceClient

REPO_ROOT = Path(__file__).resolve().parent.parent

_LISTENING = re.compile(r"listening on (http://[\d.]+:\d+)")


def _time_requests(fn, n: int) -> float:
    start = time.perf_counter()
    for _ in range(n):
        fn()
    return time.perf_counter() - start


def _percentiles(samples):
    ordered = sorted(samples)
    if not ordered:
        return {"p50_ms": None, "p95_ms": None}

    def pct(q: float) -> float:
        idx = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
        return ordered[idx] * 1000.0

    return {"p50_ms": round(pct(0.50), 3), "p95_ms": round(pct(0.95), 3)}


@contextlib.contextmanager
def _probed_service(workers: int):
    """A fresh daemon over sockets with a background /healthz prober.

    Yields ``(http, health_samples)``; tears the prober, server and
    service down on exit.  The client timeout is large: the sync
    baseline deliberately blocks each request for a whole cold sweep,
    which at non-smoke sizes can outlast the default 60 s.
    """
    app = ConfigService(workers=workers)
    server = app.make_server("127.0.0.1", 0)
    host, port = server.server_address[:2]
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    http = HttpServiceClient(f"http://{host}:{port}", timeout_s=600.0)
    stop = threading.Event()
    health = {"samples": [], "failures": 0}

    def probe() -> None:
        while not stop.is_set():
            start = time.perf_counter()
            try:
                http.healthz()
            except Exception:
                # A transient socket error must not kill the prober —
                # that would silently truncate the under-load sample
                # window this harness exists to measure.
                health["failures"] += 1
            else:
                health["samples"].append(time.perf_counter() - start)
            time.sleep(0.01)

    prober = threading.Thread(target=probe, daemon=True)
    prober.start()
    try:
        yield http, health
    finally:
        stop.set()
        prober.join(timeout=2)
        server.shutdown()
        server.server_close()
        app.close()


def _run_async_tier(args, results: dict) -> None:
    """N concurrent distinct sweeps: sync threads vs async jobs."""
    n = args.concurrency
    sweep_kwargs = {"points": args.points, "replications": args.replications}
    errors: list = []

    # -- sync baseline: N client threads, each blocking on its sweep --
    latencies: list = []
    with _probed_service(workers=n) as (http, sync_health):
        def sync_one(i: int) -> None:
            dataset = {"workload": "taxi", "users": args.users,
                       "seed": 100 + i}
            start = time.perf_counter()
            try:
                http.sweep(dataset, **sweep_kwargs)
            except Exception as exc:
                errors.append(f"sync[{i}]: {exc!r}")
                return
            latencies.append(time.perf_counter() - start)

        wall_start = time.perf_counter()
        threads = [
            threading.Thread(target=sync_one, args=(i,)) for i in range(n)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        sync_wall = time.perf_counter() - wall_start
    if errors:
        raise SystemExit(f"FAIL: async tier (sync baseline): {errors}")
    results["async_tier"] = {
        "concurrency": n,
        "sync": {
            "wall_s": round(sync_wall, 4),
            "throughput_rps": round(n / sync_wall, 3),
            **_percentiles(latencies),
            "healthz_under_load": {
                **_percentiles(sync_health["samples"]),
                "probe_failures": sync_health["failures"],
            },
        },
    }

    # -- jobs: submit all N, then poll round-robin to completion ------
    # Round-robin (not sequential waits): a job finishing while the
    # poller is parked on an earlier one must not have its latency
    # recorded late.
    job_latencies, submit_latencies = [], []
    with _probed_service(workers=n) as (http, jobs_health):
        wall_start = time.perf_counter()
        pending = {}
        for i in range(n):
            dataset = {"workload": "taxi", "users": args.users,
                       "seed": 200 + i}
            start = time.perf_counter()
            job = http.submit("sweep", {"dataset": dataset, **sweep_kwargs})
            submit_latencies.append(time.perf_counter() - start)
            pending[job["job_id"]] = start
        deadline = time.monotonic() + 600.0
        while pending and time.monotonic() < deadline:
            for job_id in list(pending):
                snapshot = http.status(job_id)
                if snapshot["status"] == "done":
                    job_latencies.append(
                        time.perf_counter() - pending.pop(job_id)
                    )
                elif snapshot["status"] in ("failed", "cancelled"):
                    errors.append(f"{job_id}: {snapshot['status']}")
                    pending.pop(job_id)
            if pending:
                time.sleep(0.005)
        jobs_wall = time.perf_counter() - wall_start
        if pending:
            errors.append(f"jobs never finished: {sorted(pending)}")
    if errors:
        raise SystemExit(f"FAIL: async tier (jobs): {errors}")
    results["async_tier"]["jobs"] = {
        "wall_s": round(jobs_wall, 4),
        "throughput_rps": round(n / jobs_wall, 3),
        **_percentiles(job_latencies),
        "submit": _percentiles(submit_latencies),
        "healthz_under_load": {
            **_percentiles(jobs_health["samples"]),
            "probe_failures": jobs_health["failures"],
        },
    }

    def _ms(value, width=8):
        return f"{value:>{width}.1f}ms" if value is not None \
            else f"{'n/a':>{width + 2}}"

    sync_block = results["async_tier"]["sync"]
    jobs_block = results["async_tier"]["jobs"]
    print()
    print(f"async tier: {n} concurrent distinct /sweep requests")
    print(f"{'mode':<6} {'wall':>9} {'req/s':>8} {'p50':>9} {'p95':>9} "
          f"{'healthz p95 under load':>24}")
    for label, block in (("sync", sync_block), ("jobs", jobs_block)):
        print(f"{label:<6} {block['wall_s']:>8.3f}s "
              f"{block['throughput_rps']:>8.2f} "
              f"{_ms(block['p50_ms'])} {_ms(block['p95_ms'])} "
              f"{_ms(block['healthz_under_load']['p95_ms'], 23)}")
    print(f"jobs submit p95: {_ms(jobs_block['submit']['p95_ms'], 0)} "
          f"(the latency a client actually blocks for)")


def _run_hardening_tier(args, results: dict) -> None:
    """Auth + limiter overhead on the warm path, and gzip savings."""
    from repro.service import ApiKeyStore

    dataset = {"workload": "taxi", "users": args.users, "seed": 33}
    sweep_kwargs = {"points": args.points,
                    "replications": args.replications}

    def warm_rps(service: ConfigService, api_key=None) -> float:
        client = ServiceClient(service, api_key=api_key)
        client.sweep(dataset, **sweep_kwargs)  # prime every cache
        best = min(
            _time_requests(
                lambda: client.sweep(dataset, **sweep_kwargs),
                args.repeats,
            )
            for _ in range(3)
        )
        return args.repeats / best

    anon_app = ConfigService()
    try:
        anon_rps = warm_rps(anon_app)
    finally:
        anon_app.close()

    store = ApiKeyStore()
    store.add("bench-key", "bench")
    # The limiter is configured but never rejecting (huge rate), so the
    # measurement prices the bookkeeping, not the denials.
    hardened_app = ConfigService(
        api_keys=store, rate_limit_rps=1e9, rate_limit_burst=10**6
    )
    try:
        authed_rps = warm_rps(hardened_app, api_key="bench-key")
    finally:
        hardened_app.close()
    overhead_pct = 100.0 * (1.0 - authed_rps / anon_rps)

    # -- gzip savings over real sockets -------------------------------
    app = ConfigService()
    server = app.make_server("127.0.0.1", 0)
    host, port = server.server_address[:2]
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        import urllib.request

        def protect_bytes(accept_gzip: bool) -> int:
            headers = {"Content-Type": "application/json"}
            if accept_gzip:
                headers["Accept-Encoding"] = "gzip"
            request = urllib.request.Request(
                f"http://{host}:{port}/protect",
                data=json.dumps({"dataset": dataset}).encode("utf-8"),
                headers=headers,
            )
            with urllib.request.urlopen(request, timeout=60) as raw:
                return len(raw.read())

        plain_bytes = protect_bytes(accept_gzip=False)
        gzip_bytes = protect_bytes(accept_gzip=True)
    finally:
        server.shutdown()
        server.server_close()
        app.close()
        thread.join(timeout=5)
    saved_pct = 100.0 * (1.0 - gzip_bytes / plain_bytes)

    print()
    print("hardening tier: auth + rate-limit overhead, gzip savings")
    print(f"  warm /sweep anonymous      : {anon_rps:>8.0f} req/s")
    print(f"  warm /sweep keyed + limited: {authed_rps:>8.0f} req/s "
          f"({overhead_pct:+.1f}% overhead)")
    print(f"  /protect response          : {plain_bytes} B plain, "
          f"{gzip_bytes} B gzip ({saved_pct:.1f}% saved)")

    results["hardening"] = {
        "anon_sweep_rps": round(anon_rps, 3),
        "authed_sweep_rps": round(authed_rps, 3),
        "overhead_pct": round(overhead_pct, 3),
        "gzip": {
            "plain_bytes": plain_bytes,
            "gzip_bytes": gzip_bytes,
            "saved_pct": round(saved_pct, 3),
        },
    }

    if authed_rps < 0.90 * anon_rps:
        raise SystemExit(
            f"FAIL: auth + rate-limit overhead exceeds 10%: "
            f"{authed_rps:.0f} vs {anon_rps:.0f} req/s "
            f"({overhead_pct:.1f}%)"
        )
    if gzip_bytes >= plain_bytes:
        raise SystemExit(
            f"FAIL: gzip did not shrink the /protect response: "
            f"{gzip_bytes} >= {plain_bytes} bytes"
        )


def _start_daemon(
    processes: int, cache_dir: Path
) -> "tuple[subprocess.Popen, str]":
    """Boot a real ``repro-lppm serve`` subprocess; returns its URL."""
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        str(REPO_ROOT / "src")
        + (os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    )
    command = [sys.executable, "-m", "repro.cli", "serve",
               "--port", "0", "--workers", "2", "--grace", "5",
               "--cache-dir", str(cache_dir)]
    if processes > 1:
        command += ["--processes", str(processes)]
    process = subprocess.Popen(
        command, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True, env=env, cwd=str(REPO_ROOT),
    )
    deadline = time.monotonic() + 60.0
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if not line:
            break
        match = _LISTENING.search(line)
        if match:
            return process, match.group(1)
    process.kill()
    raise SystemExit(
        f"FAIL: processes tier: daemon (--processes {processes}) "
        "never announced its address"
    )


def _run_processes_tier(args, results: dict) -> None:
    """Single process vs pre-fork fleet over real daemons (gated)."""
    n_fleet = args.processes
    sweep_kwargs = {"points": args.points,
                    "replications": args.replications}
    datasets = [
        {"workload": "taxi", "users": args.users, "seed": 300 + i}
        for i in range(3)
    ]
    threads_n = max(2, min(4, n_fleet * 2))
    outcomes: dict = {}

    for n in (1, n_fleet):
        cache_dir = Path(tempfile.mkdtemp(prefix=f"bench-proc-{n}-"))
        process, url = _start_daemon(n, cache_dir)
        try:
            http = HttpServiceClient(url, timeout_s=600.0)
            cold_start = time.perf_counter()
            for dataset in datasets:
                http.sweep(dataset, **sweep_kwargs)
            cold_wall = time.perf_counter() - cold_start

            # Warm pass: every request must replay from a cache tier.
            warm_points, warm_exec = [], 0
            warm_start = time.perf_counter()
            for dataset in datasets:
                response = http.sweep(dataset, **sweep_kwargs)
                warm_exec += response["engine"]["executions_this_request"]
                warm_points.append(response["points"])
            warm_wall = time.perf_counter() - warm_start

            # Concurrent warm throughput: the number the fleet exists
            # to scale.  Each thread gets its own client (urllib
            # openers are not thread-safe to share mid-request).
            per_thread = max(1, args.repeats // threads_n)
            errors: list = []

            def hammer(slot: int) -> None:
                worker_http = HttpServiceClient(url, timeout_s=600.0)
                dataset = datasets[slot % len(datasets)]
                try:
                    for _ in range(per_thread):
                        worker_http.sweep(dataset, **sweep_kwargs)
                except Exception as exc:
                    errors.append(f"hammer[{slot}]: {exc!r}")

            hammer_start = time.perf_counter()
            hammer_threads = [
                threading.Thread(target=hammer, args=(i,))
                for i in range(threads_n)
            ]
            for t in hammer_threads:
                t.start()
            for t in hammer_threads:
                t.join()
            hammer_wall = time.perf_counter() - hammer_start
            if errors:
                raise SystemExit(f"FAIL: processes tier: {errors}")
            throughput = (threads_n * per_thread) / hammer_wall

            process.send_signal(signal.SIGTERM)
            returncode = process.wait(timeout=30.0)
            if returncode != 0:
                raise SystemExit(
                    f"FAIL: processes tier: daemon (--processes {n}) "
                    f"exited {returncode} on SIGTERM"
                )
            outcomes[n] = {
                "cold_wall_s": round(cold_wall, 4),
                "warm_wall_s": round(warm_wall, 4),
                "warm_executions": warm_exec,
                "warm_concurrent_rps": round(throughput, 3),
                "_points": warm_points,
            }
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=10.0)
            shutil.rmtree(cache_dir, ignore_errors=True)

    single, fleet = outcomes[1], outcomes[n_fleet]
    speedup = (
        fleet["warm_concurrent_rps"] / single["warm_concurrent_rps"]
        if single["warm_concurrent_rps"] > 0 else float("inf")
    )

    print()
    print(f"processes tier: 1 vs {n_fleet} pre-fork workers "
          f"({len(datasets)} sweeps, {threads_n} client threads)")
    print(f"{'deployment':<14} {'cold':>9} {'warm':>9} "
          f"{'warm req/s':>11} {'new executions':>15}")
    for label, block in (("processes=1", single),
                         (f"processes={n_fleet}", fleet)):
        print(f"{label:<14} {block['cold_wall_s']:>8.3f}s "
              f"{block['warm_wall_s']:>8.3f}s "
              f"{block['warm_concurrent_rps']:>11.1f} "
              f"{block['warm_executions']:>15}")
    print(f"warm concurrent speedup (fleet/single): {speedup:.2f}x")

    # -- gates ---------------------------------------------------------
    if fleet["_points"] != single["_points"]:
        raise SystemExit(
            "FAIL: processes tier: warm sweep bodies differ between "
            "--processes 1 and the pre-fork fleet"
        )
    for n, block in outcomes.items():
        if block["warm_executions"] != 0:
            raise SystemExit(
                f"FAIL: processes tier: warm pass on --processes {n} "
                f"ran {block['warm_executions']} executions"
            )
    cpu_count = os.cpu_count() or 1
    gate_throughput = not args.smoke and cpu_count >= 2
    if gate_throughput and speedup < 1.5:
        raise SystemExit(
            f"FAIL: processes tier: pre-fork speedup {speedup:.2f}x "
            f"< 1.5x on a {cpu_count}-core host"
        )
    print("processes-tier invariants hold: bit-identical warm bodies, "
          "0 warm executions"
          + (f", {speedup:.2f}x >= 1.5x" if gate_throughput else
             " (throughput gate skipped: "
             + ("smoke mode" if args.smoke else f"{cpu_count} CPU") + ")"))

    results["processes"] = {
        "fleet_size": n_fleet,
        "client_threads": threads_n,
        "throughput_gated": gate_throughput,
        "speedup_warm_concurrent": round(speedup, 3),
        "single": {k: v for k, v in single.items() if k != "_points"},
        "fleet": {k: v for k, v in fleet.items() if k != "_points"},
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--users", type=int, default=8, help="fleet size")
    parser.add_argument("--points", type=int, default=10, help="sweep points")
    parser.add_argument("--replications", type=int, default=2)
    parser.add_argument("--repeats", type=int, default=200,
                        help="warm requests to average over")
    parser.add_argument("--concurrency", type=int, default=4,
                        help="concurrent sweeps in the async tier")
    parser.add_argument("--processes", type=int, default=2,
                        help="pre-fork fleet size compared against a "
                             "single process in the processes tier")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="also write the numbers to this JSON file")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny configuration for CI smoke runs")
    args = parser.parse_args()
    if args.smoke:
        args.users, args.points, args.replications = 4, 5, 1
        args.repeats = 50
        args.concurrency = min(args.concurrency, 3)

    dataset = {"workload": "taxi", "users": args.users, "seed": 11}
    app = ConfigService()
    client = ServiceClient(app)

    def sweep():
        return client.sweep(dataset, points=args.points,
                            replications=args.replications)

    total_jobs = args.points * args.replications
    print(f"workload: {args.users} cabs; sweep {args.points} points x "
          f"{args.replications} seeds = {total_jobs} evaluations/request")

    rows = []

    cold_s = _time_requests(sweep, 1)
    cold_exec = client.metrics()["engine"]["executions"]
    rows.append(("cold (engine executes)", 1, cold_s, cold_exec))

    # Warm engine, cold service registries: the framework re-fits from
    # cached evaluations.
    app.response_cache.clear()
    app.state.clear_registries()
    warm_engine_s = _time_requests(sweep, 1)
    warm_engine_exec = (
        client.metrics()["engine"]["executions"] - cold_exec
    )
    rows.append(("warm engine cache", 1, warm_engine_s, warm_engine_exec))

    before = client.metrics()["engine"]["executions"]
    warm_response_s = _time_requests(sweep, args.repeats)
    warm_response_exec = client.metrics()["engine"]["executions"] - before
    rows.append(("warm response cache", args.repeats, warm_response_s,
                 warm_response_exec))

    print()
    print(f"{'tier':<24} {'requests':>8} {'wall-clock':>12} "
          f"{'req/s':>10} {'new executions':>15}")
    for tier, n, elapsed, n_exec in rows:
        rate = n / elapsed if elapsed > 0 else float("inf")
        print(f"{tier:<24} {n:>8} {elapsed:>10.4f} s {rate:>10.0f} "
              f"{n_exec:>15}")

    # ------------------------------------------------------------------
    # Over real sockets
    # ------------------------------------------------------------------
    server = app.make_server("127.0.0.1", 0)
    host, port = server.server_address[:2]
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    http = HttpServiceClient(f"http://{host}:{port}")
    try:
        exec_before = client.metrics()["engine"]["executions"]
        http_sweep_s = _time_requests(
            lambda: http.sweep(dataset, points=args.points,
                               replications=args.replications),
            args.repeats,
        )
        http_exec = client.metrics()["engine"]["executions"] - exec_before
        http_health_s = _time_requests(http.healthz, args.repeats)
    finally:
        server.shutdown()
        server.server_close()
        client.close()

    print()
    print(f"HTTP /sweep   (warm): {args.repeats / http_sweep_s:>8.0f} req/s")
    print(f"HTTP /healthz       : {args.repeats / http_health_s:>8.0f} req/s")

    results = {
        "workload": {"users": args.users, "points": args.points,
                     "replications": args.replications,
                     "evaluations_per_request": total_jobs},
        "tiers": {
            tier: {
                "requests": n,
                "wall_s": round(elapsed, 6),
                "rps": round(n / elapsed, 3) if elapsed > 0 else None,
                "new_executions": n_exec,
            }
            for tier, n, elapsed, n_exec in rows
        },
        "http": {
            "sweep_warm_rps": round(args.repeats / http_sweep_s, 3),
            "healthz_rps": round(args.repeats / http_health_s, 3),
        },
    }

    # ------------------------------------------------------------------
    # Async tier: concurrent sweeps, sync vs jobs
    # ------------------------------------------------------------------
    _run_async_tier(args, results)

    # ------------------------------------------------------------------
    # Hardening tier: auth + limiter overhead, gzip savings (gated)
    # ------------------------------------------------------------------
    _run_hardening_tier(args, results)

    # ------------------------------------------------------------------
    # Processes tier: 1 vs N pre-fork workers over real daemons (gated)
    # ------------------------------------------------------------------
    _run_processes_tier(args, results)

    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(results, fh, indent=2, sort_keys=True)
        print(f"\nresults written to {args.json}")

    failures = [
        (tier, n_exec)
        for tier, _, _, n_exec in rows[1:]
        if n_exec != 0
    ] + ([("http /sweep warm", http_exec)] if http_exec != 0 else [])
    if failures:
        raise SystemExit(f"FAIL: warm tiers ran executions: {failures}")
    print("\nwarm-service invariant holds: 0 executions after the first "
          "request")


if __name__ == "__main__":
    main()
