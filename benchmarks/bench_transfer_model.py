"""E9 — equation (1)'s dataset side: cross-dataset model transfer.

The paper's model takes dataset properties d_i as inputs so that the
relationship generalises beyond one dataset.  This bench trains the
coefficient-transfer regression on a population of taxi fleets and
configures a held-out fleet from its properties alone, then verifies
the transferred recommendation by actually protecting the held-out
data.  The benchmark times the transfer prediction (the zero-sweep
online path for a brand-new dataset).
"""

from repro import (
    Configurator,
    ModelTransfer,
    Objective,
    PropertyExtractor,
    TaxiFleetConfig,
    generate_taxi_fleet,
    geo_ind_system,
)
from repro.report import format_table

from conftest import PAPER_MAX_PRIVACY, PAPER_MIN_UTILITY, report

OBJECTIVES = [
    Objective("privacy", "<=", PAPER_MAX_PRIVACY),
    Objective("utility", ">=", PAPER_MIN_UTILITY),
]
N_USERS = PropertyExtractor("n_users", lambda ds: float(len(ds)))


def bench_transfer_model(benchmark, capsys):
    system = geo_ind_system()
    training = [
        generate_taxi_fleet(TaxiFleetConfig(n_cabs=n, shift_hours=8.0, seed=n))
        for n in (6, 8, 10, 14)
    ]
    held_out = generate_taxi_fleet(
        TaxiFleetConfig(n_cabs=12, shift_hours=8.0, seed=99)
    )

    # Ground truth on the held-out fleet (full offline phase).
    configurator = Configurator(system, held_out, n_points=14, n_replications=2)
    true_model = configurator.fit()
    true_rec = configurator.recommend(OBJECTIVES)

    # Transfer: learn coefficients from properties across the fleet pool.
    transfer = ModelTransfer(system, [N_USERS], n_points=14)
    transfer.fit(training)
    predicted = transfer.predict_model(held_out)

    rows = [
        (name, f"{t:.3f}", f"{p:.3f}")
        for name, t, p in zip(
            ("a", "b", "alpha", "beta"),
            true_model.coefficients,
            predicted.coefficients,
        )
    ]
    transferred_configurator = Configurator(system, held_out)
    transferred_configurator._model = predicted.model
    transferred_configurator._sweep = configurator.sweep
    transfer_rec = transferred_configurator.recommend(OBJECTIVES)
    assert transfer_rec.feasible, transfer_rec.notes
    measured = configurator.runner.evaluate({"epsilon": transfer_rec.value})

    text = format_table(["coefficient", "swept", "transferred"], rows)
    text += (
        f"\nswept eps = {true_rec.value:.4g}; "
        f"transferred eps = {transfer_rec.value:.4g} "
        f"(0 evaluations on the held-out fleet)"
        f"\nmeasured at transferred eps: privacy {measured.privacy_mean:.3f}, "
        f"utility {measured.utility_mean:.3f}"
    )
    report(capsys, "transfer_model", text)

    # --- invariants -----------------------------------------------------
    assert true_rec.feasible
    ratio = transfer_rec.value / true_rec.value
    assert 0.4 <= ratio <= 2.5, "transferred eps drifted from the swept one"
    assert measured.privacy_mean <= PAPER_MAX_PRIVACY + 0.05
    assert measured.utility_mean >= PAPER_MIN_UTILITY - 0.05

    # --- timed unit: property extraction + coefficient prediction -------
    result = benchmark(transfer.predict_model, held_out)
    assert result.coefficients == predicted.coefficients
