"""Shared fixtures of the benchmark harness.

Every benchmark reproduces one paper artefact (see DESIGN.md §4).  The
expensive pieces — the synthetic Cabspotting stand-in and the Figure 1
epsilon sweep — are computed once per session and shared.  Each bench
prints its reproduced table/series through ``report`` so the numbers
land both on the terminal (uncaptured) and in ``benchmarks/results/``.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro import (
    CommuterConfig,
    Dataset,
    ExperimentRunner,
    SweepResult,
    SystemModel,
    TaxiFleetConfig,
    fit_system_model,
    generate_commuters,
    generate_taxi_fleet,
    geo_ind_system,
)

RESULTS_DIR = Path(__file__).parent / "results"

#: Paper values of equation (2), for side-by-side reporting.
PAPER_COEFFS = {"a": 0.84, "b": 0.17, "alpha": 1.21, "beta": 0.09}
#: The paper's worked-example objectives (§2).
PAPER_MAX_PRIVACY = 0.10
PAPER_MIN_UTILITY = 0.80


def report(capsys, name: str, text: str) -> None:
    """Print a reproduction artefact to the real terminal and to disk."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    with capsys.disabled():
        print(f"\n----- {name} -----")
        print(text)


@pytest.fixture(scope="session")
def taxi_dataset() -> Dataset:
    """The synthetic stand-in for the paper's Cabspotting dataset."""
    return generate_taxi_fleet(TaxiFleetConfig(n_cabs=12, shift_hours=8.0, seed=11))


@pytest.fixture(scope="session")
def commuter_dataset() -> Dataset:
    """The GeoLife-like dataset for the 'other datasets' experiment."""
    return generate_commuters(CommuterConfig(n_users=8, n_days=3, seed=11))


@pytest.fixture(scope="session")
def geoi_runner(taxi_dataset) -> ExperimentRunner:
    """Shared runner (and evaluation cache) for the GEO-I system."""
    return ExperimentRunner(
        geo_ind_system(), taxi_dataset, n_replications=2, base_seed=0
    )


@pytest.fixture(scope="session")
def geoi_sweep(geoi_runner) -> SweepResult:
    """The epsilon sweep behind Figure 1, computed once per session."""
    sweep = geoi_runner.sweep(n_points=16)
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    sweep.write_csv(RESULTS_DIR / "figure1_sweep.csv")
    return sweep


@pytest.fixture(scope="session")
def geoi_model(geoi_sweep) -> SystemModel:
    """Equation (2) fitted from the shared sweep."""
    return fit_system_model(geoi_sweep)
