#!/usr/bin/env python3
"""The framework's model inversion vs the ALP greedy baseline.

ALP (Primault et al., SRDS 2016) is the prior work the paper positions
against: a greedy search that repeatedly protects the dataset and
re-measures the metrics until the objectives hold.  The framework
instead pays an offline sweep once, then answers *any* objective by
closed-form inversion with zero online evaluations.

This example runs both on the same dataset and objectives and prints
the cost/accuracy comparison (experiment E6 of DESIGN.md).

Run:  python examples/alp_vs_model.py
"""

from repro import (
    Configurator,
    ExperimentRunner,
    Objective,
    TaxiFleetConfig,
    alp_configure,
    generate_taxi_fleet,
    geo_ind_system,
)
from repro.report import format_table

OBJECTIVES = [
    Objective("privacy", "<=", 0.10),
    Objective("utility", ">=", 0.80),
]


def main() -> None:
    dataset = generate_taxi_fleet(TaxiFleetConfig(n_cabs=10, shift_hours=8.0))
    system = geo_ind_system()
    print("objectives:", ", ".join(str(o) for o in OBJECTIVES))
    print()

    # --- The framework: offline sweep + closed-form inversion --------
    configurator = Configurator(system, dataset, n_points=16, n_replications=2)
    configurator.fit()
    offline_cost = configurator.runner.n_evaluations
    before = configurator.runner.n_evaluations
    recommendation = configurator.recommend(OBJECTIVES)
    online_cost = configurator.runner.n_evaluations - before
    print("== framework (this paper) ==")
    print(f"offline evaluations (one-time sweep): {offline_cost}")
    print(f"online evaluations (per query):       {online_cost}")
    print(f"recommended epsilon:                  {recommendation.value:.4g}")
    measured = configurator.verify(recommendation)
    print(f"measured at recommendation:           privacy {measured[0]:.3f}, "
          f"utility {measured[1]:.3f}")
    print()

    # --- ALP: greedy online search from several starting points ------
    print("== ALP-style greedy baseline ==")
    rows = []
    for start in (1e-4, 1e-2, 1.0):
        runner = ExperimentRunner(system, dataset, n_replications=1)
        result = alp_configure(system, runner, OBJECTIVES, initial=start)
        rows.append((
            f"{start:g}",
            result.n_evaluations,
            f"{result.final_value:.4g}" if result.final_value else "-",
            "yes" if result.satisfied else "no",
        ))
    print(format_table(
        ["start eps", "online evals", "final eps", "objectives met"], rows
    ))
    print()
    print("Every ALP query pays its full search cost online (each "
          "evaluation protects the whole dataset and runs the POI attack); "
          "the framework answers from the model instantly and amortises "
          "its sweep across all future queries — the paper's core claim.")


if __name__ == "__main__":
    main()
