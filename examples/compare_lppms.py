#!/usr/bin/env python3
"""Compare every registered LPPM on the same privacy/utility axes.

The paper's future work is "testing other LPPMs": this example runs the
framework's sweep for each mechanism in the registry and prints each
one's privacy/utility frontier, showing how the same two metrics rank
very different protection strategies (noise, cloaking, subsampling).

Run:  python examples/compare_lppms.py
"""

from repro import (
    ExperimentRunner,
    GaussianPerturbation,
    GridRounding,
    ParameterSpec,
    Subsampling,
    SystemDefinition,
    TaxiFleetConfig,
    UniformDiskNoise,
    generate_taxi_fleet,
    geo_ind_system,
)
from repro.metrics import AreaCoverageUtility, PoiRetrievalPrivacy
from repro.report import format_table

#: Comparator mechanisms and sensible sweep ranges for their parameters.
COMPARATORS = [
    ("gaussian", GaussianPerturbation, ParameterSpec("sigma_m", 10.0, 5000.0)),
    ("uniform_disk", UniformDiskNoise, ParameterSpec("radius_m", 10.0, 5000.0)),
    ("rounding", GridRounding, ParameterSpec("cell_size_m", 50.0, 5000.0)),
    ("subsampling", Subsampling,
     ParameterSpec("keep_fraction", 0.02, 1.0, scale="log")),
]


def main() -> None:
    dataset = generate_taxi_fleet(TaxiFleetConfig(n_cabs=8, shift_hours=6.0))
    print(f"dataset: {len(dataset)} cabs, {dataset.n_records} records\n")

    # GEO-I first (the paper's mechanism), then the comparators.
    systems = [geo_ind_system()]
    for name, factory, spec in COMPARATORS:
        systems.append(SystemDefinition(
            name=name,
            lppm_factory=factory,
            parameters=[spec],
            privacy_metric=PoiRetrievalPrivacy(),
            utility_metric=AreaCoverageUtility(cell_size_m=500.0),
        ))

    for system in systems:
        runner = ExperimentRunner(system, dataset, n_replications=1)
        sweep = runner.sweep(n_points=7)
        rows = [
            (f"{v:.4g}", f"{pr:.3f}", f"{ut:.3f}")
            for v, pr, _, ut, _ in sweep.to_rows()
        ]
        print(f"== {system.name} (parameter: {sweep.param_name}) ==")
        print(format_table([sweep.param_name, "privacy", "utility"], rows))
        print()

    print("Reading the frontiers: noise mechanisms (geo_ind, gaussian, "
          "uniform_disk) trade privacy for utility smoothly; rounding "
          "keeps POIs retrievable until cells exceed the matching radius "
          "(deterministic snapping preserves recurrence); subsampling "
          "preserves coverage longer than it preserves POIs.")


if __name__ == "__main__":
    main()
