#!/usr/bin/env python3
"""The paper's full pipeline: define, model, configure (§3).

Reproduces the narrative of the paper end to end on the synthetic
Cabspotting substitute:

1. *System definition* — GEO-I with its epsilon parameter, the POI
   retrieval privacy metric and the area-coverage utility metric.
2. *Modelling* — automated epsilon sweep (the data behind Figure 1),
   non-saturated-zone detection, and the invertible log-linear fit of
   equation (2).
3. *Configuration* — inversion at the designer objectives "at most 10 %
   of POIs retrieved" and "at least 80 % utility", then verification of
   the recommended epsilon by actually protecting the data with it.

Run:  python examples/configure_geoi.py
"""

from repro import (
    Configurator,
    Objective,
    TaxiFleetConfig,
    generate_taxi_fleet,
    geo_ind_system,
)
from repro.report import model_summary, recommendation_summary, sweep_table


def main() -> None:
    # --- Step 1: define the system -----------------------------------
    dataset = generate_taxi_fleet(TaxiFleetConfig(n_cabs=12, shift_hours=8.0))
    system = geo_ind_system()  # GEO-I + the paper's two metrics
    print(f"system: {system.name}, parameter epsilon in "
          f"[{system.parameter('epsilon').low}, {system.parameter('epsilon').high}]")
    print(f"dataset: {len(dataset)} taxi drivers, {dataset.n_records} records\n")

    # --- Step 2: run experiments and fit the model -------------------
    configurator = Configurator(dataset=dataset, system=system,
                                n_points=16, n_replications=2)
    model = configurator.fit()
    print("response curves (the data behind the paper's Figure 1):")
    print(sweep_table(configurator.sweep))
    print()
    print("fitted invertible model (the paper's equation 2):")
    print(model_summary(model))
    print()

    # --- Step 3: invert the model at the designer objectives ---------
    objectives = [
        Objective("privacy", "<=", 0.10),   # at most 10% of POIs retrieved
        Objective("utility", ">=", 0.80),   # at least 80% area coverage
    ]
    recommendation = configurator.recommend(objectives)
    print("objectives:", ", ".join(str(o) for o in objectives))
    print("recommendation:", recommendation_summary(recommendation))

    # Close the loop: protect the data at the recommended epsilon and
    # re-measure, as a deployment would.
    measured_pr, measured_ut = configurator.verify(recommendation)
    print(f"verification: measured privacy {measured_pr:.3f}, "
          f"measured utility {measured_ut:.3f}")
    ok = measured_pr <= 0.10 and measured_ut >= 0.80
    print("objectives", "MET" if ok else "MISSED", "at the recommended epsilon")


if __name__ == "__main__":
    main()
