#!/usr/bin/env python3
"""Metric modularity: the same framework under different objectives.

"This framework is modular: by using different metrics, a system
designer is able to fine-tune her LPPM according to her expected
privacy and utility guarantees" (the paper).  This example fits the
GEO-I model under three different metric pairs and shows how the
recommended epsilon shifts with what the designer actually cares
about.

Run:  python examples/metric_modularity.py
"""

import numpy as np

from repro import (
    AreaCoverageUtility,
    Configurator,
    GeoIndistinguishability,
    HeatmapPreservationUtility,
    LogDistortionPrivacy,
    Objective,
    ParameterSpec,
    PoiRetrievalPrivacy,
    RangeQueryUtility,
    SystemDefinition,
    TaxiFleetConfig,
    generate_taxi_fleet,
)
from repro.report import format_table

#: (label, privacy metric, utility metric, objectives)
SCENARIOS = [
    (
        "paper: POI attack vs block coverage",
        PoiRetrievalPrivacy(),
        AreaCoverageUtility(cell_size_m=600.0),
        [Objective("privacy", "<=", 0.10), Objective("utility", ">=", 0.80)],
    ),
    (
        "localisation error vs LBS range queries",
        LogDistortionPrivacy(),
        RangeQueryUtility(radius_m=500.0, n_queries=30),
        # ln(300 m): scale-free error metrics enter the log-linear model
        # in log space, where they are exactly linear in ln(epsilon).
        [Objective("privacy", ">=", float(np.log(300.0))),
         Objective("utility", ">=", 0.5)],
    ),
    (
        "POI attack vs aggregate heatmap",
        PoiRetrievalPrivacy(),
        HeatmapPreservationUtility(cell_size_m=600.0),
        [Objective("privacy", "<=", 0.10), Objective("utility", ">=", 0.90)],
    ),
]


def main() -> None:
    dataset = generate_taxi_fleet(TaxiFleetConfig(n_cabs=10, shift_hours=8.0))
    rows = []
    for label, privacy_metric, utility_metric, objectives in SCENARIOS:
        system = SystemDefinition(
            name="geo_ind",
            lppm_factory=GeoIndistinguishability,
            parameters=[ParameterSpec("epsilon", 1e-4, 1.0, scale="log")],
            privacy_metric=privacy_metric,
            utility_metric=utility_metric,
        )
        configurator = Configurator(system, dataset, n_points=12,
                                    n_replications=1)
        configurator.fit()
        rec = configurator.recommend(objectives)
        rows.append((
            label,
            ", ".join(str(o) for o in objectives),
            f"{rec.value:.4g}" if rec.feasible else "infeasible",
        ))
    print(format_table(["scenario", "objectives", "recommended eps"], rows))
    print()
    print("Same mechanism, same dataset, same machinery — different "
          "guarantees in, different epsilon out.  That is the framework's "
          "modularity claim in action.")


if __name__ == "__main__":
    main()
