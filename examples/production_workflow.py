#!/usr/bin/env python3
"""A production deployment workflow, end to end.

The offline and online phases of the framework naturally live in
different processes (a batch job fits the model; a service answers
configuration queries).  This example walks the full production path:

1. offline: sweep the dataset on the evaluation engine (parallel
   backend + persistent result cache), fit equation (2), persist both
   to JSON;
2. online: load the model (no sweep), answer a designer query;
3. refinement: spend a handful of real evaluations to confirm the
   recommendation against measurements (guards against model error at
   sharp transitions) — answered from the shared cache when possible;
4. deployment: protect the dataset at the final epsilon and write the
   release CSV.

Run:  python examples/production_workflow.py
"""

import tempfile
from pathlib import Path

from repro import (
    Configurator,
    EvaluationEngine,
    GeoIndistinguishability,
    Objective,
    TaxiFleetConfig,
    generate_taxi_fleet,
    geo_ind_system,
    load_model,
    refine_recommendation,
    save_model,
    save_sweep,
    write_csv,
)
from repro.report import model_summary, recommendation_summary

OBJECTIVES = [
    Objective("privacy", "<=", 0.10),
    Objective("utility", ">=", 0.80),
]


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro-workflow-"))
    dataset = generate_taxi_fleet(TaxiFleetConfig(n_cabs=10, shift_hours=8.0))
    system = geo_ind_system()
    # One engine for the whole deployment: "auto" fans the offline
    # sweep over a process pool, and the disk cache makes every result
    # durable — a re-run of this job performs zero new evaluations.
    engine = EvaluationEngine(engine="auto", cache_dir=workdir / "cache")

    # ---- 1. offline batch job ----------------------------------------
    configurator = Configurator(
        system, dataset, n_points=14, n_replications=2, engine=engine
    )
    model = configurator.fit()
    save_sweep(configurator.sweep, workdir / "sweep.json")
    save_model(model, workdir / "model.json")
    offline_cost = configurator.runner.n_evaluations
    print(f"[offline] swept {offline_cost} evaluations, artefacts in {workdir}")
    print(model_summary(model))
    print()

    # ---- 2. online query service --------------------------------------
    # Fresh instance, no sweep; sharing the engine means any check
    # evaluations it does run are pooled with the offline phase's.
    service = Configurator(system, dataset, engine=engine)
    service._model = load_model(workdir / "model.json")
    recommendation = service.recommend(OBJECTIVES)
    print("[online] " + recommendation_summary(recommendation))

    # ---- 3. measurement-backed refinement -----------------------------
    result = refine_recommendation(
        service.runner, recommendation, OBJECTIVES, max_evaluations=5
    )
    print(f"[refine] eps = {result.value:.4g} after {result.n_evaluations} "
          f"check evaluations; measured privacy {result.privacy:.3f}, "
          f"utility {result.utility:.3f} "
          f"({'objectives met' if result.satisfied else 'NOT met'})")

    # ---- 4. deployment -------------------------------------------------
    lppm = GeoIndistinguishability(result.value)
    release = lppm.protect(dataset, seed=2024)
    out = workdir / "release.csv"
    write_csv(release, out)
    print(f"[deploy] protected release written to {out} "
          f"({release.n_records} records)")
    print(f"[engine] {engine.stats}")


if __name__ == "__main__":
    main()
