#!/usr/bin/env python3
"""Quickstart: protect a mobility dataset and measure the trade-off.

Generates a small synthetic San Francisco taxi fleet (the library's
stand-in for the Cabspotting dataset used in the paper), protects it
with Geo-Indistinguishability at the paper's headline epsilon = 0.01,
and measures the two metrics of the paper's illustration:

* privacy  — fraction of each user's POIs an attacker still retrieves;
* utility  — how much of the user's block-level area coverage survives.

Run:  python examples/quickstart.py
"""

from repro import (
    AreaCoverageUtility,
    GeoIndistinguishability,
    PoiRetrievalPrivacy,
    TaxiFleetConfig,
    dataset_stats,
    generate_taxi_fleet,
)


def main() -> None:
    # 1. A dataset of taxi drivers around San Francisco.
    dataset = generate_taxi_fleet(TaxiFleetConfig(n_cabs=10, shift_hours=8.0))
    stats = dataset_stats(dataset)
    print(f"dataset: {len(dataset)} cabs, {int(stats['n_records'])} records, "
          f"{int(stats['covered_cells'])} city blocks covered")

    # 2. Protect it with GEO-I at the paper's recommended epsilon.
    epsilon = 0.01  # metres^-1; mean added noise is 2/epsilon = 200 m
    lppm = GeoIndistinguishability(epsilon)
    protected = lppm.protect(dataset, seed=0)
    print(f"protected with {lppm!r} (mean noise {lppm.mean_error_m:.0f} m)")

    # 3. Measure the paper's two metrics.
    privacy = PoiRetrievalPrivacy().evaluate(dataset, protected)
    utility = AreaCoverageUtility(cell_size_m=500.0).evaluate(dataset, protected)
    print(f"privacy metric (POIs retrieved): {privacy:.2%}  (lower is better)")
    print(f"utility metric (area coverage):  {utility:.2%}  (higher is better)")
    print()
    print("The paper's §2 worked example promises <=10% POI retrieval with "
          "~80% utility at epsilon = 0.01 — compare the numbers above.")


if __name__ == "__main__":
    main()
