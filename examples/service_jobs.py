#!/usr/bin/env python3
"""Async jobs quickstart: sweeps off the request path.

The sync endpoints answer on the caller's thread — fine when the cache
is warm, but a cold sweep makes the client hold a connection open for
the whole evaluation.  The job subsystem decouples the two: submit the
same body to ``POST /jobs``, get an id back immediately, poll (or
``wait``) for the result, cancel if you change your mind.

This example drives the whole lifecycle in-process (no sockets needed;
swap ``ServiceClient`` for ``HttpServiceClient("http://host:port")`` to
do the same against a ``repro-lppm serve --workers 4`` daemon):

1. submit a sweep job and watch its progress counters move;
2. wait for the result — identical to the sync endpoint's payload;
3. submit the same body again: the job replays the response cache;
4. cancel a job mid-sweep and observe the ``cancelled`` state.

Run:  PYTHONPATH=src python examples/service_jobs.py
"""

import time

from repro.service import ConfigService, ServiceClient

FLEET = {"workload": "taxi", "users": 6, "seed": 42}
BODY = {"dataset": FLEET, "points": 8, "replications": 2}


def main() -> None:
    with ServiceClient(ConfigService(workers=2)) as client:
        # -- 1. submit, then poll progress ----------------------------
        submitted = client.submit("sweep", BODY)
        print(f"submitted {submitted['job_id']} "
              f"(poll {submitted['poll']})")
        while True:
            snapshot = client.status(submitted["job_id"])
            progress = snapshot["progress"]
            print(f"  {snapshot['status']:>8}  "
                  f"{progress['completed']:>3}/{progress['total']} "
                  f"engine jobs")
            if snapshot["status"] in ("done", "failed", "cancelled"):
                break
            time.sleep(0.05)

        # -- 2. the result is the sync endpoint's payload -------------
        result = snapshot["result"]
        print(f"sweep of {result['param']} done: "
              f"{len(result['points'])} points, "
              f"{result['engine']['executions_this_request']} executions")

        # -- 3. a repeated job replays the response cache -------------
        repeat = client.wait(
            client.submit("sweep", BODY)["job_id"], timeout_s=60
        )
        print(f"repeat came from response cache: "
              f"{repeat['from_response_cache']}")

        # -- 4. cancellation is cooperative, between engine chunks ----
        big = client.submit("sweep", {
            "dataset": {"workload": "taxi", "users": 10, "seed": 7},
            "points": 40, "replications": 4,
        })
        time.sleep(0.05)              # let a few chunks run
        client.cancel(big["job_id"])
        final = client.wait(big["job_id"], timeout_s=60)
        progress = final["progress"]
        print(f"cancelled mid-sweep at {progress['completed']}"
              f"/{progress['total']} engine jobs "
              f"(status: {final['status']})")


if __name__ == "__main__":
    main()
