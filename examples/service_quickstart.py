#!/usr/bin/env python3
"""The configuration service, end to end, without leaving the process.

Embeds a :class:`repro.service.ConfigService` (the same object
``repro-lppm serve`` runs behind HTTP) and walks the paper's workflow
through its JSON endpoints: sweep, fitted equation-(2) model,
objective-driven recommendation — then repeats the sweep to show the
point of the daemon: the second request is answered from the warm
cache with zero new protect + measure executions.

Run:  PYTHONPATH=src python examples/service_quickstart.py
"""

from repro.service import ServiceClient

DATASET = {"workload": "taxi", "users": 5, "seed": 42}


def main() -> None:
    with ServiceClient() as client:
        health = client.healthz()
        print(f"service up (version {health['version']}, "
              f"engine policy {health['engine']['policy']})\n")

        # Offline phase: sweep + model fit, through POST /sweep and
        # POST /configure.  The fitted configurator is registered, so
        # the /configure call re-uses the sweep's evaluations.
        sweep = client.sweep(DATASET, points=8, replications=2)
        print(f"sweep: {len(sweep['points'])} points, "
              f"{sweep['engine']['executions_this_request']} evaluations "
              "executed")

        model = client.configure(DATASET, points=8, replications=2)["model"]
        c = model["coefficients"]
        print("equation (2): "
              f"a={c['a']:.3f} b={c['b']:.3f} "
              f"alpha={c['alpha']:.3f} beta={c['beta']:.3f}")

        # Online phase: invert the model at the paper's objectives.
        answer = client.recommend(
            DATASET,
            objectives=[
                {"kind": "privacy", "op": "<=", "target": 0.5},
                {"kind": "utility", "op": ">=", "target": 0.1},
            ],
            points=8, replications=2,
        )
        rec = answer["recommendation"]
        if rec["feasible"]:
            print(f"recommended {rec['param']} = {rec['value']:.4g} "
                  f"(predicted privacy {rec['predicted_privacy']:.3f}, "
                  f"utility {rec['predicted_utility']:.3f})")
        else:
            print(f"objectives infeasible: {rec['notes']}")

        # The daemon's raison d'etre: a repeated sweep is free.
        client.sweep(DATASET, points=8, replications=2)
        metrics = client.metrics()
        print(f"\nafter a repeated sweep: "
              f"{metrics['engine']['executions']} total executions, "
              f"{metrics['response_cache']['hits']} response-cache hit(s), "
              f"{metrics['service']['requests_total']} requests served")


if __name__ == "__main__":
    main()
