#!/usr/bin/env python3
"""Dataset study: properties, PCA ranking and the attack surface.

Walks through the parts of framework step 1 the other examples skip:
extracting the dataset properties d_i, ranking them with a principal
component analysis across dataset variants (the paper: properties are
"soundly chosen using a principal component analysis"), and profiling
the POI attack surface of individual users — including the stronger
re-identification adversary.

Run:  python examples/taxi_fleet_study.py
"""

from repro import (
    GeoIndistinguishability,
    TaxiFleetConfig,
    extract_features,
    extract_pois,
    generate_taxi_fleet,
    rank_properties,
    reidentify,
)
from repro.report import format_table


def main() -> None:
    # Dataset variants spanning fleet size, shift length and habits —
    # the population over which property variance is measured.
    variants = [
        generate_taxi_fleet(TaxiFleetConfig(
            n_cabs=n, shift_hours=h, heterogeneity=het, seed=seed,
        ))
        for seed, (n, h, het) in enumerate([
            (6, 4.0, 0.0), (6, 8.0, 0.6), (10, 6.0, 0.3),
            (14, 8.0, 0.6), (10, 10.0, 0.8), (8, 6.0, 0.0),
        ])
    ]
    study = variants[3]  # the richest fleet is the one we study

    print("== dataset properties (framework step 1, the d_i) ==")
    features = extract_features(study)
    print(format_table(
        ["property", "value"],
        [(k, f"{v:.4g}") for k, v in features.items()],
    ))
    print()

    print("== PCA ranking across dataset variants ==")
    pca = rank_properties(variants)
    importance = dict(zip(pca.feature_names, pca.importance()))
    rows = [(name, f"{importance[name]:.3f}") for name in pca.ranked_features()]
    print(format_table(["property (most impactful first)", "importance"], rows))
    top = pca.ranked_features()[0]
    print(f"-> '{top}' carries the most dataset-to-dataset variance and is "
          f"the first candidate d_i for a dataset-aware model\n")

    print("== POI attack surface, per cab ==")
    rows = []
    for user, trace in study.items():
        pois = extract_pois(trace)
        top_dwell = pois[0].total_dwell_s / 3600.0 if pois else 0.0
        rows.append((user, len(trace), len(pois), f"{top_dwell:.1f} h"))
    print(format_table(["cab", "records", "POIs", "top POI dwell"], rows))
    print()

    print("== re-identification attack (stronger adversary) ==")
    for epsilon in (1.0, 0.01, 0.001):
        protected = GeoIndistinguishability(epsilon).protect(study, seed=0)
        result = reidentify(study, protected)
        print(f"  epsilon={epsilon:<6} linked {result.n_correct}/{result.n_total} "
              f"cabs ({result.rate:.0%})")
    print("Low epsilon destroys POI fingerprints and defeats linking; high "
          "epsilon leaves cabs fully re-identifiable.")


if __name__ == "__main__":
    main()
