#!/usr/bin/env python3
"""Configuring a new dataset without sweeping it: model transfer.

The paper's equation (1) includes dataset properties d_i precisely so
that the model generalises across datasets.  This example trains the
coefficient-transfer regression on a population of taxi fleets, then
configures a *held-out* fleet two ways:

* the usual offline sweep on the held-out data (ground truth);
* the transferred model predicted from its properties alone
  (zero protection runs on the new data).

Run:  python examples/transfer_across_datasets.py
"""

from repro import (
    Configurator,
    ModelTransfer,
    Objective,
    PropertyExtractor,
    TaxiFleetConfig,
    generate_taxi_fleet,
    geo_ind_system,
)
from repro.report import format_table

OBJECTIVES = [
    Objective("privacy", "<=", 0.10),
    Objective("utility", ">=", 0.80),
]

#: One scalar property drives the regression here: fleet size.
N_USERS = PropertyExtractor("n_users", lambda ds: float(len(ds)))


def main() -> None:
    system = geo_ind_system()
    training = [
        generate_taxi_fleet(TaxiFleetConfig(n_cabs=n, shift_hours=8.0, seed=n))
        for n in (6, 8, 10, 14)
    ]
    held_out = generate_taxi_fleet(
        TaxiFleetConfig(n_cabs=12, shift_hours=8.0, seed=99)
    )
    print(f"training on {len(training)} fleets, "
          f"configuring a held-out fleet of {len(held_out)} cabs\n")

    # --- ground truth: sweep the held-out dataset ---------------------
    configurator = Configurator(system, held_out, n_points=14, n_replications=2)
    true_model = configurator.fit()
    true_rec = configurator.recommend(OBJECTIVES)

    # --- transfer: predict the model from properties alone ------------
    transfer = ModelTransfer(system, [N_USERS], n_points=14)
    transfer.fit(training)
    predicted = transfer.predict_model(held_out)

    rows = []
    for name, true_c, pred_c in zip(
        ("a", "b", "alpha", "beta"),
        true_model.coefficients,
        predicted.coefficients,
    ):
        rows.append((name, f"{true_c:.3f}", f"{pred_c:.3f}"))
    print(format_table(
        ["coefficient", "swept (ground truth)", "transferred"], rows
    ))

    # Configure from the transferred model and check against reality.
    transferred_configurator = Configurator(system, held_out)
    transferred_configurator._model = predicted.model
    transferred_configurator._sweep = configurator.sweep  # only for verify()
    transfer_rec = transferred_configurator.recommend(OBJECTIVES)
    print()
    print(f"swept recommendation:       eps = {true_rec.value:.4g}")
    if transfer_rec.feasible:
        print(f"transferred recommendation: eps = {transfer_rec.value:.4g} "
              f"(zero evaluations on the held-out data)")
        measured = configurator.runner.evaluate(
            {"epsilon": transfer_rec.value}
        )
        print(f"measured at transferred eps: privacy "
              f"{measured.privacy_mean:.3f}, utility {measured.utility_mean:.3f}")
    else:
        print(f"transferred recommendation infeasible: {transfer_rec.notes}")


if __name__ == "__main__":
    main()
