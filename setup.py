"""Setup shim for environments without PEP 517 wheel support.

All real metadata lives in pyproject.toml; this file only enables
``pip install -e . --no-use-pep517`` on toolchains lacking the
``wheel`` package (as in the offline reproduction environment).
"""

from setuptools import setup

setup()
