"""repro — automated configuration of Location Privacy Protection Mechanisms.

A reproduction of Cerf, Robu, Marchand, Boutet, Primault, Ben Mokhtar,
Bouchenak: *Toward an Easy Configuration of Location Privacy Protection
Mechanisms* (Middleware 2016).

The top-level namespace re-exports the public API; the subpackages are:

* :mod:`repro.geo` — geodesy substrate (distances, projections, grids);
* :mod:`repro.mobility` — traces, datasets, IO, cleaning, statistics;
* :mod:`repro.synth` — synthetic Cabspotting/GeoLife-like workloads;
* :mod:`repro.lppm` — protection mechanisms (GEO-I and comparators);
* :mod:`repro.attacks` — POI extraction and re-identification attacks;
* :mod:`repro.metrics` — pluggable privacy/utility metrics;
* :mod:`repro.properties` — dataset properties and PCA selection;
* :mod:`repro.engine` — batched, pluggable, cached evaluation engine;
* :mod:`repro.framework` — the configuration framework itself;
* :mod:`repro.report` — plain-text reporting;
* :mod:`repro.service` — the long-running configuration service
  (JSON endpoints behind a middleware pipeline; import explicitly
  via ``import repro.service`` — it is not re-exported here).

Quickstart::

    from repro import (
        Configurator, Objective, geo_ind_system, generate_taxi_fleet,
    )

    dataset = generate_taxi_fleet()
    configurator = Configurator(geo_ind_system(), dataset)
    configurator.fit()
    rec = configurator.recommend([
        Objective("privacy", "<=", 0.1),
        Objective("utility", ">=", 0.8),
    ])
    print(rec.value)   # the epsilon to deploy
"""

from .analysis import AnalysisCache, pois_of, stay_points_of
from .attacks import (
    HomeWorkGuess,
    Poi,
    PoiExtractionConfig,
    StayPoint,
    extract_pois,
    extract_stay_points,
    infer_home_work,
    reidentify,
    retrieved_fraction,
)
from .engine import (
    EvalJob,
    EvalResult,
    EvaluationEngine,
    ProcessPoolBackend,
    ResultCache,
    SerialBackend,
)
from .framework import (
    AlpConfig,
    AlpResult,
    Configurator,
    ExperimentRunner,
    GridSweepResult,
    ModelTransfer,
    MultiSystemModel,
    Objective,
    RefinementResult,
    ParameterSpec,
    Recommendation,
    SweepResult,
    SystemDefinition,
    SystemModel,
    TransferredModel,
    alp_configure,
    find_active_region,
    fit_multi_system_model,
    fit_system_model,
    geo_ind_system,
    grid_sweep,
    load_model,
    load_sweep,
    refine_recommendation,
    save_model,
    save_sweep,
)
from .geo import BoundingBox, LatLon, SpatialGrid, haversine_m
from .lppm import (
    LPPM,
    DensityMap,
    ElasticGeoIndistinguishability,
    GaussianPerturbation,
    GeoIndistinguishability,
    GridRounding,
    Pipeline,
    Promesse,
    Subsampling,
    TimePerturbation,
    UniformDiskNoise,
    available_lppms,
    lppm_class,
)
from .metrics import (
    AreaCoverageUtility,
    DistortionPrivacy,
    HeatmapPreservationUtility,
    HomeIdentificationPrivacy,
    LogDistortionPrivacy,
    Metric,
    PoiRetrievalPrivacy,
    RangeQueryUtility,
    ReidentificationPrivacy,
    SameCellFraction,
    SpatialDistortionUtility,
    TimePreservationUtility,
    TrajectoryShapeUtility,
    available_metrics,
    metric_class,
)
from .mobility import (
    Dataset,
    Trace,
    TraceRecord,
    clean_dataset,
    dataset_stats,
    split_by_time_fraction,
    split_users,
    read_cabspotting,
    read_csv,
    read_geolife,
    trace_stats,
    write_cabspotting,
    write_csv,
    write_geolife,
)
from .properties import (
    DEFAULT_EXTRACTORS,
    PropertyExtractor,
    extract_features,
    rank_properties,
    select_properties,
)
from .synth import (
    CityModel,
    CommuterConfig,
    LevyFlightConfig,
    RandomWaypointConfig,
    TaxiFleetConfig,
    generate_commuters,
    generate_levy_flight,
    generate_random_waypoint,
    generate_taxi_fleet,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # geo
    "LatLon",
    "BoundingBox",
    "SpatialGrid",
    "haversine_m",
    # mobility
    "Trace",
    "TraceRecord",
    "Dataset",
    "read_csv",
    "write_csv",
    "read_geolife",
    "write_geolife",
    "read_cabspotting",
    "write_cabspotting",
    "clean_dataset",
    "split_by_time_fraction",
    "split_users",
    "trace_stats",
    "dataset_stats",
    # synth
    "CityModel",
    "TaxiFleetConfig",
    "generate_taxi_fleet",
    "CommuterConfig",
    "generate_commuters",
    "RandomWaypointConfig",
    "generate_random_waypoint",
    "LevyFlightConfig",
    "generate_levy_flight",
    # lppm
    "LPPM",
    "GeoIndistinguishability",
    "ElasticGeoIndistinguishability",
    "DensityMap",
    "Promesse",
    "GaussianPerturbation",
    "UniformDiskNoise",
    "GridRounding",
    "Subsampling",
    "TimePerturbation",
    "Pipeline",
    "available_lppms",
    "lppm_class",
    # analysis
    "AnalysisCache",
    "pois_of",
    "stay_points_of",
    # attacks
    "StayPoint",
    "extract_stay_points",
    "Poi",
    "PoiExtractionConfig",
    "extract_pois",
    "retrieved_fraction",
    "reidentify",
    "HomeWorkGuess",
    "infer_home_work",
    # metrics
    "Metric",
    "PoiRetrievalPrivacy",
    "DistortionPrivacy",
    "LogDistortionPrivacy",
    "ReidentificationPrivacy",
    "HomeIdentificationPrivacy",
    "AreaCoverageUtility",
    "SameCellFraction",
    "SpatialDistortionUtility",
    "TrajectoryShapeUtility",
    "HeatmapPreservationUtility",
    "RangeQueryUtility",
    "TimePreservationUtility",
    "available_metrics",
    "metric_class",
    # properties
    "PropertyExtractor",
    "extract_features",
    "DEFAULT_EXTRACTORS",
    "rank_properties",
    "select_properties",
    # engine
    "EvaluationEngine",
    "EvalJob",
    "EvalResult",
    "SerialBackend",
    "ProcessPoolBackend",
    "ResultCache",
    # framework
    "ParameterSpec",
    "SystemDefinition",
    "geo_ind_system",
    "ExperimentRunner",
    "SweepResult",
    "SystemModel",
    "fit_system_model",
    "find_active_region",
    "GridSweepResult",
    "grid_sweep",
    "MultiSystemModel",
    "fit_multi_system_model",
    "ModelTransfer",
    "TransferredModel",
    "RefinementResult",
    "refine_recommendation",
    "save_sweep",
    "load_sweep",
    "save_model",
    "load_model",
    "Configurator",
    "Objective",
    "Recommendation",
    "AlpConfig",
    "AlpResult",
    "alp_configure",
]
