"""Memoised analysis layer: derived artifacts computed once per content.

The most expensive work inside a protect + measure execution is not
protection — it is the *analysis* the metrics run on both datasets:
stay-point extraction, POI clustering, heatmap aggregation.  On the
actual dataset that work is byte-identical across every config, seed
and replication of a sweep, yet the seed implementation recomputed it
for every execution and every metric.

This package memoises those derived artifacts in a bounded, content-
addressed LRU (:class:`AnalysisCache`) and exposes cached accessors
(:func:`pois_of`, :func:`stay_points_of`, :func:`visit_counts_of`)
that the metrics, attacks and property extractors call instead of the
raw pipelines.  The evaluation engine owns one cache per instance,
installs it ambiently for the batches it runs (:func:`use_cache`) and
reports its counters through ``engine.stats`` and the service's
``/metrics``; process-pool workers hold a per-process default cache
seeded with the dataset fingerprint by the pool initializer.

See ``docs/performance.md`` for where this cache sits among the
library's other caching layers.
"""

from .artifacts import pois_of, stay_points_of, visit_counts_of
from .cache import (
    DEFAULT_MAX_ENTRIES,
    AnalysisCache,
    current_cache,
    default_cache,
    use_cache,
)
from .signature import stable_repr
from .spill import SPILLABLE_KINDS, AnalysisSpill

__all__ = [
    "AnalysisCache",
    "AnalysisSpill",
    "SPILLABLE_KINDS",
    "DEFAULT_MAX_ENTRIES",
    "current_cache",
    "default_cache",
    "use_cache",
    "stable_repr",
    "pois_of",
    "stay_points_of",
    "visit_counts_of",
]
