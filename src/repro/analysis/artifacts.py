"""Cached accessors for the expensive derived artifacts.

Each function is the memoised twin of a raw computation elsewhere in
the library (``repro.attacks`` for stay points and POIs,
``repro.metrics.heatmap`` for visit counts): same inputs, same outputs
— proven bit-identical by the parity suite — but answered from the
ambient :class:`~repro.analysis.AnalysisCache` when the same trace and
configuration were analysed before.  This is what makes the
actual-side POI pipeline run once per dataset per sweep instead of
once per (config × seed × metric).

Artifacts are returned as tuples, never lists: they are shared between
callers, so they must be immutable.  The raw functions keep their
original list-returning signatures untouched.

The attack modules are imported lazily (inside the functions) — the
analysis layer sits *below* attacks and metrics in the import order,
and both of those import this module at load time.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Tuple

import numpy as np

from .cache import AnalysisCache, current_cache
from .signature import stable_repr

if TYPE_CHECKING:
    from ..attacks.poi import Poi, PoiExtractionConfig
    from ..attacks.staypoints import StayPoint
    from ..geo import SpatialGrid
    from ..mobility import Trace

__all__ = [
    "stay_points_of",
    "pois_of",
    "visit_counts_of",
]

Cell = Tuple[int, int]


def stay_points_of(
    trace: "Trace",
    roam_m: float = 200.0,
    min_dwell_s: float = 900.0,
    cache: Optional[AnalysisCache] = None,
) -> Tuple["StayPoint", ...]:
    """The trace's stay points, through the ambient analysis cache.

    Memoised equivalent of
    :func:`repro.attacks.staypoints.extract_stay_points`.
    """
    from ..attacks.staypoints import extract_stay_points

    cache = cache if cache is not None else current_cache()
    key = (
        cache.trace_key(trace),
        "stay_points",
        f"{float(roam_m)!r}|{float(min_dwell_s)!r}",
    )
    return cache.get_or_compute(
        key,
        "stay_points",
        lambda: tuple(extract_stay_points(trace, roam_m, min_dwell_s)),
    )


def pois_of(
    trace: "Trace",
    config: Optional["PoiExtractionConfig"] = None,
    cache: Optional[AnalysisCache] = None,
) -> Tuple["Poi", ...]:
    """The trace's POIs, through the ambient analysis cache.

    Memoised equivalent of :func:`repro.attacks.poi.extract_pois`,
    layered over :func:`stay_points_of` so extraction configs that
    share stay-point parameters but differ in clustering reuse the
    stay points.
    """
    from ..attacks.poi import PoiExtractionConfig, cluster_stay_points

    if config is None:
        config = PoiExtractionConfig()
    cache = cache if cache is not None else current_cache()
    stays = stay_points_of(
        trace, config.roam_m, config.min_dwell_s, cache=cache
    )
    key = (cache.trace_key(trace), "pois", stable_repr(config))
    return cache.get_or_compute(
        key,
        "pois",
        lambda: tuple(
            cluster_stay_points(stays, config.merge_m, config.min_visits)
        ),
    )


def visit_counts_of(
    trace: "Trace",
    grid: "SpatialGrid",
    cache: Optional[AnalysisCache] = None,
) -> Tuple[Tuple[Cell, int], ...]:
    """Per-cell record counts of one trace on ``grid``, cached.

    The per-trace building block of
    :func:`repro.metrics.heatmap.visit_distribution`: counting is the
    ``np.unique`` pass over the whole trace, so the actual side of a
    heatmap metric pays it once per (trace, grid) per sweep.
    """
    cache = cache if cache is not None else current_cache()
    key = (cache.trace_key(trace), "visit_counts", stable_repr(grid))

    def compute() -> Tuple[Tuple[Cell, int], ...]:
        cells, counts = np.unique(
            grid.cells_of(trace.lats, trace.lons), axis=0, return_counts=True
        )
        return tuple(
            (tuple(cell), int(n))
            for cell, n in zip(cells.tolist(), counts.tolist())
        )

    return cache.get_or_compute(key, "visit_counts", compute)
