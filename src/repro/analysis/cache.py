"""The derived-artifact cache behind the analysis layer.

One protect + measure execution recomputes, on the byte-identical
*actual* dataset, the same expensive derived artifacts — stay points,
POI clusters, POI fingerprints, heatmap cell counts — as every other
execution of the sweep.  :class:`AnalysisCache` memoises those
artifacts in a bounded, thread-safe LRU keyed on **content**: a
per-trace content key plus an artifact kind plus the stable signature
of the extraction configuration.  Identical inputs therefore share one
computation per process, whichever config, seed or replication asked.

Trace content keys come in two flavours:

* **seeded** — the evaluation engine (and each process-pool worker)
  announces a dataset's traces together with the dataset's already
  computed content fingerprint, so actual-side keys cost a dict lookup
  instead of a hash over the coordinates;
* **hashed** — any other trace (protected traces above all) is hashed
  on first sight and the hash memoised by object identity, so repeated
  artifact requests against one trace object hash it once.

The cache never invalidates by time: keys are content-addressed, so a
"stale" entry is simply an entry nothing asks for any more, and the
LRU bound reclaims it.
"""

from __future__ import annotations

import hashlib
import threading
import weakref
from collections import OrderedDict
from contextlib import contextmanager
from typing import TYPE_CHECKING, Callable, Dict, Iterator, Optional, Tuple

if TYPE_CHECKING:
    from ..mobility import Dataset, Trace

__all__ = [
    "AnalysisCache",
    "WeakIdentityMemo",
    "current_cache",
    "default_cache",
    "use_cache",
]

#: Entries the default cache keeps; generous for sweep workloads (one
#: entry per (trace, artifact kind, config)), small next to the traces
#: themselves.
DEFAULT_MAX_ENTRIES = 4096


class WeakIdentityMemo:
    """A value memoised per object *instance*, safely against id reuse.

    ``id()`` keys alone would alias a new object that recycled a dead
    object's address; every hit therefore verifies the stored weak
    reference still points at the asking object.  Entries hold weak
    references only, so the memo never pins its subjects; dead entries
    are pruned whenever the memo grows past ``prune_at``.  Not locked —
    callers guard access with their own lock.
    """

    __slots__ = ("prune_at", "_entries")

    def __init__(self, prune_at: int = 64) -> None:
        self.prune_at = int(prune_at)
        self._entries: Dict[int, Tuple[weakref.ref, object]] = {}

    def get(self, obj):
        """The memoised value for ``obj``, or ``None``."""
        entry = self._entries.get(id(obj))
        if entry is not None and entry[0]() is obj:
            return entry[1]
        return None

    def put(self, obj, value) -> None:
        """Memoise ``value`` for ``obj``, pruning dead entries first."""
        if len(self._entries) > self.prune_at:
            live = {
                key: (ref, kept)
                for key, (ref, kept) in self._entries.items()
                if ref() is not None
            }
            if len(live) > self.prune_at // 2:
                # Mostly-live memo (e.g. seeding one huge dataset):
                # double the bound so insertion stays amortised O(1)
                # instead of rescanning on every put.
                self.prune_at *= 2
            self._entries = live
        self._entries[id(obj)] = (weakref.ref(obj), value)

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        self._entries.clear()


class AnalysisCache:
    """Bounded LRU of derived per-trace/per-dataset analysis artifacts.

    Thread-safe: lookups, inserts and the trace-key memo sit under one
    lock that is never held while an artifact is computed, so two
    threads may race to compute the same artifact (both results are
    identical by construction; the first insert wins and the loser's
    value is discarded) but never corrupt the cache or block each
    other's unrelated work.

    Parameters
    ----------
    max_entries:
        LRU bound; least recently *used* artifacts are evicted first.
    spill_dir:
        Optional directory for the persistent spill tier
        (:class:`~repro.analysis.spill.AnalysisSpill`): spillable
        artifacts missed in memory are probed on disk before being
        recomputed, and fresh computations are written through — so a
        restarted or sibling process starts warm.  Content keys are
        deterministic across processes, making the tier safe to share
        between concurrent workers.
    """

    def __init__(
        self,
        max_entries: int = DEFAULT_MAX_ENTRIES,
        spill_dir=None,
    ) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be at least 1")
        self.max_entries = int(max_entries)
        self._lock = threading.Lock()
        #: key -> artifact, in LRU order (least recently used first).
        self._entries: "OrderedDict[Tuple, object]" = OrderedDict()
        # trace instance -> content key: protected traces churn, so
        # the memo must not pin them, and a prune bound well above the
        # artifact bound keeps seeded datasets' keys resident.
        self._trace_keys = WeakIdentityMemo(prune_at=4 * self.max_entries)
        # Datasets already seeded, so a per-batch :meth:`seed_dataset`
        # costs O(1) after the first call.
        self._seeded = WeakIdentityMemo()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        #: Disk-tier hits (a subset of :attr:`hits`): artifacts served
        #: from the spill instead of recomputed.
        self.spill_hits = 0
        #: kind -> [hits, misses]; the counters behind "the actual-side
        #: pipeline ran once" assertions in tests and benchmarks.
        self._by_kind: Dict[str, list] = {}
        self._spill = None
        if spill_dir is not None:
            self.attach_spill(spill_dir)

    def attach_spill(self, spill_dir) -> None:
        """Attach (or replace/detach with ``None``) the spill tier.

        Process-pool workers call this from their initializer so the
        per-process default cache joins the engine's shared spill
        directory after the fork.
        """
        from .spill import AnalysisSpill

        with self._lock:
            self._spill = (
                AnalysisSpill(spill_dir) if spill_dir is not None else None
            )

    # ------------------------------------------------------------------
    # Content keys
    # ------------------------------------------------------------------
    @staticmethod
    def _hash_trace(trace: "Trace") -> str:
        digest = hashlib.sha256()
        digest.update(trace.user.encode("utf-8"))
        digest.update(b"\x00")
        digest.update(trace.times_s.tobytes())
        digest.update(trace.lats.tobytes())
        digest.update(trace.lons.tobytes())
        return "t:" + digest.hexdigest()

    def trace_key(self, trace: "Trace") -> str:
        """Content key of one trace, memoised by object identity."""
        with self._lock:
            key = self._trace_keys.get(trace)
        if key is not None:
            return key
        # O(trace) hashing happens outside the lock; racing computations
        # of the same key are identical by content.
        key = self._hash_trace(trace)
        with self._lock:
            self._trace_keys.put(trace, key)
        return key

    def seed_dataset(self, dataset: "Dataset", fingerprint: str) -> None:
        """Announce a dataset whose content fingerprint is known.

        Every trace of the dataset gets the derived key
        ``d:<fingerprint>:<user>`` — content-addressed through the
        dataset's own fingerprint, with no per-trace hashing.  The
        engine calls this with the fingerprint it already computed for
        result caching; process-pool workers call it from their
        initializer, which is how a worker's cache is seeded by
        fingerprint rather than by shipping pickled artifacts.
        Idempotent and O(1) per repeat call for a seen dataset object.

        Seeding also raises the LRU bound to fit the announced dataset
        (a few artifacts per trace for each side of an evaluation), so
        a large fleet can never thrash its own actual-side artifacts
        out of the cache mid-sweep.
        """
        with self._lock:
            if self._seeded.get(dataset) is not None:
                return
        items = list(dataset.items())
        with self._lock:
            self._seeded.put(dataset, fingerprint)
            for user, trace in items:
                self._trace_keys.put(trace, f"d:{fingerprint}:{user}")
            self.max_entries = max(self.max_entries, 8 * len(items))

    # ------------------------------------------------------------------
    # Artifact storage
    # ------------------------------------------------------------------
    def get_or_compute(
        self, key: Tuple, kind: str, compute: Callable[[], object]
    ):
        """The artifact under ``key``, computing (outside the lock) on
        a miss.  ``kind`` is the artifact family the per-kind counters
        bill the access to; by convention it is also ``key[1]``.

        With a spill tier attached, a memory miss probes the disk
        before computing (a spill hit counts as a *hit* — nothing was
        recomputed) and a fresh computation is written through, so the
        per-kind ``misses`` counter keeps meaning "times this family
        was actually computed in this process".
        """
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self.hits += 1
                self._kind_counter(kind)[0] += 1
                return self._entries[key]
            spill = self._spill
        spillable = spill is not None and spill.handles(key, kind)
        if spillable:
            # Disk IO outside the lock, like a computation; racing
            # loaders of one key decode identical content.
            spilled = spill.load(key, kind)
            if spilled is not None:
                with self._lock:
                    self.hits += 1
                    self.spill_hits += 1
                    self._kind_counter(kind)[0] += 1
                    existing = self._entries.get(key)
                    if existing is not None:
                        self._entries.move_to_end(key)
                        return existing
                    self._entries[key] = spilled
                    while len(self._entries) > self.max_entries:
                        self._entries.popitem(last=False)
                        self.evictions += 1
                return spilled
        with self._lock:
            self.misses += 1
            self._kind_counter(kind)[1] += 1
        value = compute()
        inserted = True
        with self._lock:
            existing = self._entries.get(key)
            if existing is not None:
                # A concurrent computation won the race; keep its
                # object so downstream identity stays shared.
                self._entries.move_to_end(key)
                value, inserted = existing, False
            else:
                self._entries[key] = value
                while len(self._entries) > self.max_entries:
                    self._entries.popitem(last=False)
                    self.evictions += 1
        if inserted and spillable:
            spill.store(key, kind, value)
        return value

    def _kind_counter(self, kind: str) -> list:
        counter = self._by_kind.get(kind)
        if counter is None:
            counter = self._by_kind[kind] = [0, 0]
        return counter

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def stats(self) -> Dict[str, int]:
        """Flat JSON-ready counters (the engine re-exports these under
        ``analysis_*`` keys, which is how they reach ``/metrics``)."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "spill_hits": self.spill_hits,
                "entries": len(self._entries),
                "evictions": self.evictions,
                "max_entries": self.max_entries,
            }

    def kind_stats(self) -> Dict[str, Dict[str, int]]:
        """Per-artifact-kind hit/miss counters.

        ``misses`` is exactly the number of times that artifact family
        was *computed* — the quantity "the actual-side POI pipeline ran
        once per dataset" claims are stated in.
        """
        with self._lock:
            return {
                kind: {"hits": h, "misses": m}
                for kind, (h, m) in sorted(self._by_kind.items())
            }

    def clear(self) -> None:
        """Drop every artifact and memoised key (counters survive)."""
        with self._lock:
            self._entries.clear()
            self._trace_keys.clear()
            self._seeded.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __repr__(self) -> str:
        return (
            f"AnalysisCache(entries={len(self)}, "
            f"max_entries={self.max_entries})"
        )


# ----------------------------------------------------------------------
# Ambient cache selection
# ----------------------------------------------------------------------
# The consumers of derived artifacts (metrics, attacks, property
# extractors) are invoked deep inside protect + measure executions with
# no engine handle in sight.  They reach the right cache ambiently: the
# engine installs *its* cache for the duration of a batch via
# ``use_cache`` (thread-local, so concurrent engines stay separate),
# and everything else — process-pool workers, direct metric calls in
# tests and notebooks — falls back to one process-wide default.
_tls = threading.local()
_default = AnalysisCache()


def default_cache() -> AnalysisCache:
    """The process-wide fallback cache (what pool workers use)."""
    return _default


def current_cache() -> AnalysisCache:
    """The cache ambient on this thread: installed or the default."""
    cache = getattr(_tls, "cache", None)
    return cache if cache is not None else _default


@contextmanager
def use_cache(cache: AnalysisCache) -> Iterator[AnalysisCache]:
    """Install ``cache`` as this thread's ambient analysis cache."""
    previous: Optional[AnalysisCache] = getattr(_tls, "cache", None)
    _tls.cache = cache
    try:
        yield cache
    finally:
        _tls.cache = previous
