"""Stable, address-free renderings of configuration objects.

Derived-artifact cache keys and evaluation fingerprints both need a
textual identity for configuration objects (metric instances, POI
extraction configs, spatial grids) that is deterministic across
processes and releases.  The default ``repr`` of address-printing
objects — and the ``...`` truncation of large arrays — would make such
identities differ between processes, or worse, collide after an
address is recycled; :func:`stable_repr` renders everything from
*values* instead: primitives verbatim, arrays as content hashes,
containers and attribute-bearing objects recursively (to a bounded
depth).

This module sits at the bottom of the stack (numpy and stdlib only) so
both the analysis layer and the evaluation engine can share one
implementation.
"""

from __future__ import annotations

import hashlib
from typing import Mapping, Optional

import numpy as np

__all__ = ["stable_repr"]


def _attrs_of(obj) -> Optional[list]:
    """(name, value) pairs of an object's configuration, if reachable.

    Covers both ``__dict__`` instances and slotted classes; ``None``
    means the object exposes no attributes to render.
    """
    try:
        return sorted(vars(obj).items())
    except TypeError:
        pass
    names = []
    for klass in type(obj).__mro__:
        slots = getattr(klass, "__slots__", ()) or ()
        names.extend([slots] if isinstance(slots, str) else list(slots))
    if not names:
        return None
    out = []
    for name in names:
        if name in ("__weakref__", "__dict__"):
            continue
        try:
            out.append((name, getattr(obj, name)))
        except AttributeError:
            continue
    return sorted(out)


def stable_repr(value, depth: int = 0) -> str:
    """A value-based rendering with no memory addresses in it."""
    if depth > 4:
        return f"<deep:{type(value).__name__}>"
    if value is None or isinstance(value, (bool, int, float, str, bytes)):
        return repr(value)
    if isinstance(value, np.ndarray):
        digest = hashlib.sha256(
            np.ascontiguousarray(value).tobytes()
        ).hexdigest()[:16]
        return f"ndarray({value.dtype},{value.shape},{digest})"
    if isinstance(value, np.generic):
        return repr(value.item())
    if isinstance(value, (list, tuple, set, frozenset)):
        items = [stable_repr(v, depth + 1) for v in value]
        if isinstance(value, (set, frozenset)):
            items = sorted(items)
        return f"{type(value).__name__}[{','.join(items)}]"
    if isinstance(value, Mapping):
        items = sorted(
            f"{stable_repr(k, depth + 1)}:{stable_repr(v, depth + 1)}"
            for k, v in value.items()
        )
        return "{" + ",".join(items) + "}"
    attrs = _attrs_of(value)
    name = f"{type(value).__module__}.{type(value).__qualname__}"
    if attrs is not None:
        rendered = ",".join(
            f"{k}={stable_repr(v, depth + 1)}" for k, v in attrs
        )
        return f"{name}({rendered})"
    rendered = repr(value)
    # Last resort for attribute-less objects whose repr embeds an
    # address: fall back to the bare type (deterministic, if lossy).
    return name if " at 0x" in rendered else rendered
