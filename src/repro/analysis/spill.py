"""Persistent spill tier for derived analysis artifacts.

The :class:`~repro.analysis.cache.AnalysisCache` memoises stay points,
POIs and heatmap cell counts per process; this module gives it a disk
tier keyed *identically* — the trace content key plus artifact kind
plus the stable config signature — so a restarted daemon, a sibling
pre-fork worker or a fresh process-pool worker starts warm instead of
re-extracting every actual-side artifact.

Keys are content-addressed on both flavours of trace key (seeded
``d:<fingerprint>:<user>`` and hashed ``t:<sha256>``), which are
deterministic across processes, so any worker's spill is every
worker's spill.  Records are JSON (floats round-trip exactly through
the shortest-repr encoder, so reloaded artifacts stay bit-identical),
written atomically through :mod:`repro.framework.store`; a torn or
corrupt record reads as a miss and is quarantined, never raised.

Only the three closed artifact families are spillable — anything else
a future caller memoises stays memory-only rather than risking a lossy
round-trip of an unknown shape.
"""

from __future__ import annotations

import hashlib
from pathlib import Path
from typing import Optional, Tuple, Union

__all__ = ["AnalysisSpill", "SPILLABLE_KINDS"]

PathLike = Union[str, Path]

_RECORD_KIND = "analysis_artifact"

#: Artifact families with a lossless JSON codec.
SPILLABLE_KINDS = ("stay_points", "pois", "visit_counts")


def _encode(kind: str, value) -> list:
    if kind == "stay_points":
        return [
            [sp.lat, sp.lon, sp.t_start_s, sp.t_end_s, sp.n_records]
            for sp in value
        ]
    if kind == "pois":
        return [[p.lat, p.lon, p.n_visits, p.total_dwell_s] for p in value]
    if kind == "visit_counts":
        return [[cell[0], cell[1], n] for cell, n in value]
    raise ValueError(f"no spill codec for artifact kind {kind!r}")


def _decode(kind: str, rows: list) -> Tuple:
    # Attack modules are imported lazily: analysis sits below attacks
    # in the import order (same discipline as artifacts.py).
    if kind == "stay_points":
        from ..attacks.staypoints import StayPoint

        return tuple(
            StayPoint(
                lat=float(lat), lon=float(lon), t_start_s=float(t0),
                t_end_s=float(t1), n_records=int(n),
            )
            for lat, lon, t0, t1, n in rows
        )
    if kind == "pois":
        from ..attacks.poi import Poi

        return tuple(
            Poi(
                lat=float(lat), lon=float(lon), n_visits=int(visits),
                total_dwell_s=float(dwell),
            )
            for lat, lon, visits, dwell in rows
        )
    if kind == "visit_counts":
        return tuple(((int(i), int(j)), int(n)) for i, j, n in rows)
    raise ValueError(f"no spill codec for artifact kind {kind!r}")


class AnalysisSpill:
    """One spill directory: sharded JSON files, one per artifact key.

    Thread-safe without a lock of its own — writes are atomic renames,
    reads tolerate (and quarantine) anything torn — so the owning
    :class:`AnalysisCache` calls :meth:`load`/:meth:`store` outside its
    lock, exactly like an artifact computation.
    """

    def __init__(self, spill_dir: PathLike) -> None:
        self.spill_dir = Path(spill_dir)

    @staticmethod
    def handles(key: Tuple, kind: str) -> bool:
        """Whether (key, kind) round-trips through the spill codecs."""
        return kind in SPILLABLE_KINDS and all(
            isinstance(part, str) for part in key
        )

    def _path_of(self, key: Tuple) -> Path:
        digest = hashlib.sha256("\x00".join(key).encode("utf-8")).hexdigest()
        return self.spill_dir / digest[:2] / f"{digest}.json"

    def load(self, key: Tuple, kind: str):
        """The spilled artifact, or ``None`` on any kind of miss."""
        from ..framework.store import quarantine_file, read_json_payload

        path = self._path_of(key)
        payload = read_json_payload(path, _RECORD_KIND)
        if payload is None:
            return None
        if payload.get("artifact_kind") != kind or \
                payload.get("key") != list(key):
            # Wrong record under this digest (hand-edited file, codec
            # drift): a permanent error becomes a plain recompute.
            quarantine_file(path)
            return None
        try:
            return _decode(kind, payload["items"])
        except (KeyError, ValueError, TypeError):
            quarantine_file(path)
            return None

    def store(self, key: Tuple, kind: str, value) -> None:
        """Persist one artifact; IO errors become recorded misses on
        the ``analysis_spill`` circuit breaker (the spill is an
        accelerator, never a correctness dependency)."""
        from ..framework.store import write_json_atomic
        from ..resilience.breaker import write_guarded

        payload = {
            "format_version": 1,
            "kind": _RECORD_KIND,
            "artifact_kind": kind,
            "key": list(key),
            "items": _encode(kind, value),
        }
        write_guarded(
            "analysis_spill",
            lambda: write_json_atomic(payload, self._path_of(key)),
        )
