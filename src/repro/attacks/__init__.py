"""Adversary substrate: stay points, POIs, matching, re-identification."""

from .homework import HomeWorkGuess, infer_home_work, overlap_with_hours_s
from .matching import poi_distance_matrix, retrieved_count, retrieved_fraction
from .poi import Poi, PoiExtractionConfig, cluster_stay_points, extract_pois
from .reident import ReidentificationResult, fingerprint_distance_m, reidentify
from .staypoints import StayPoint, extract_stay_points

__all__ = [
    "StayPoint",
    "HomeWorkGuess",
    "infer_home_work",
    "overlap_with_hours_s",
    "extract_stay_points",
    "Poi",
    "PoiExtractionConfig",
    "cluster_stay_points",
    "extract_pois",
    "poi_distance_matrix",
    "retrieved_count",
    "retrieved_fraction",
    "fingerprint_distance_m",
    "ReidentificationResult",
    "reidentify",
]
