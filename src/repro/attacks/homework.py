"""Home and workplace inference — the headline threat of the paper.

"A collection of mobility traces can reveal many sensitive information
about its user such as home and work places" (the paper, §1).  This
attack makes that concrete: stay points are weighted by how much of
their dwell falls into night hours (home) or working hours (work), and
the dwell-heaviest cluster of each kind is the inferred place.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..analysis import stay_points_of
from ..geo import LatLon, haversine_m
from ..mobility import Trace
from .poi import PoiExtractionConfig, cluster_stay_points
from .staypoints import StayPoint

__all__ = ["HomeWorkGuess", "overlap_with_hours_s", "infer_home_work"]


@dataclass(frozen=True)
class HomeWorkGuess:
    """The attack's output: inferred home and work locations (if any)."""

    home: Optional[LatLon]
    work: Optional[LatLon]
    home_dwell_s: float = 0.0
    work_dwell_s: float = 0.0


def overlap_with_hours_s(
    t_start_s: float, t_end_s: float, hours: Tuple[float, float]
) -> float:
    """Seconds of ``[t_start, t_end]`` falling inside daily ``hours``.

    ``hours`` is a (start_hour, end_hour) pair on a 24 h clock; a
    wrapping window like night (22, 6) is supported.  Timestamps are
    treated as seconds whose day phase is ``t % 86400``.
    """
    if t_end_s < t_start_s:
        raise ValueError("interval end precedes start")
    day = 86400.0
    start_h, end_h = hours
    windows = []
    if start_h <= end_h:
        windows.append((start_h * 3600.0, end_h * 3600.0))
    else:  # wraps midnight
        windows.append((start_h * 3600.0, day))
        windows.append((0.0, end_h * 3600.0))

    total = 0.0
    # Iterate whole days covered by the interval; traces span few days,
    # so the loop is short.
    first_day = int(t_start_s // day)
    last_day = int(t_end_s // day)
    for d in range(first_day, last_day + 1):
        base = d * day
        for w_lo, w_hi in windows:
            lo = max(t_start_s, base + w_lo)
            hi = min(t_end_s, base + w_hi)
            if hi > lo:
                total += hi - lo
    return total


def _dwell_in_hours(stays: List[StayPoint], hours: Tuple[float, float]):
    """Stay points re-weighted by their dwell inside ``hours``."""
    weighted = []
    for stay in stays:
        dwell = overlap_with_hours_s(stay.t_start_s, stay.t_end_s, hours)
        if dwell > 0:
            weighted.append(
                StayPoint(
                    lat=stay.lat,
                    lon=stay.lon,
                    t_start_s=stay.t_start_s,
                    t_end_s=stay.t_start_s + dwell,
                    n_records=stay.n_records,
                )
            )
    return weighted


def infer_home_work(
    trace: Trace,
    config: PoiExtractionConfig = PoiExtractionConfig(),
    night_hours: Tuple[float, float] = (22.0, 6.0),
    work_hours: Tuple[float, float] = (9.0, 17.0),
    min_separation_m: float = 500.0,
) -> HomeWorkGuess:
    """Infer the user's home and work from one trace.

    Home is the cluster with the most night dwell; work the cluster
    with the most working-hours dwell at least ``min_separation_m``
    from home (home-office users have no distinct workplace signal).

    Stay-point extraction goes through the analysis cache, so a trace
    analysed by several attacks (or several sweep points) pays it once.
    """
    stays = stay_points_of(trace, config.roam_m, config.min_dwell_s)
    if not stays:
        return HomeWorkGuess(home=None, work=None)

    night_pois = cluster_stay_points(
        _dwell_in_hours(stays, night_hours), config.merge_m
    )
    home = night_pois[0].point if night_pois else None
    home_dwell = night_pois[0].total_dwell_s if night_pois else 0.0

    work = None
    work_dwell = 0.0
    day_pois = cluster_stay_points(
        _dwell_in_hours(stays, work_hours), config.merge_m
    )
    for poi in day_pois:
        if home is not None and haversine_m(poi.point, home) < min_separation_m:
            continue
        work = poi.point
        work_dwell = poi.total_dwell_s
        break
    return HomeWorkGuess(
        home=home, work=work, home_dwell_s=home_dwell, work_dwell_s=work_dwell
    )
