"""Matching extracted POIs against ground truth.

The paper's privacy metric is "the proportion of actual POIs retrieved
from the protected data for each user": an actual POI counts as
retrieved when the attack, run on the protected trace, finds a POI
close enough to it.  Both the simple radius test and a stricter
one-to-one assignment are provided.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..geo import haversine_m_arrays
from .poi import Poi

__all__ = ["poi_distance_matrix", "retrieved_count", "retrieved_fraction"]


def poi_distance_matrix(actual: Sequence[Poi], found: Sequence[Poi]) -> np.ndarray:
    """Pairwise distances (metres) between two POI lists, shape (n, m)."""
    if not actual or not found:
        return np.zeros((len(actual), len(found)))
    a_lat = np.asarray([p.lat for p in actual])
    a_lon = np.asarray([p.lon for p in actual])
    f_lat = np.asarray([p.lat for p in found])
    f_lon = np.asarray([p.lon for p in found])
    return haversine_m_arrays(
        a_lat[:, None], a_lon[:, None], f_lat[None, :], f_lon[None, :]
    )


def retrieved_count(
    actual: Sequence[Poi],
    found: Sequence[Poi],
    match_m: float = 200.0,
    one_to_one: bool = False,
) -> int:
    """How many actual POIs are retrieved by the found POIs.

    With ``one_to_one`` each found POI may account for at most one
    actual POI (greedy nearest-pair assignment); otherwise a single
    found POI may cover several actual POIs within ``match_m``.
    """
    if match_m <= 0:
        raise ValueError("matching radius must be positive")
    if not actual or not found:
        return 0
    d = poi_distance_matrix(actual, found)
    if not one_to_one:
        return int(np.sum(np.min(d, axis=1) <= match_m))
    matched = 0
    d = d.copy()
    while d.size:
        i, j = np.unravel_index(np.argmin(d), d.shape)
        if d[i, j] > match_m:
            break
        matched += 1
        d = np.delete(np.delete(d, i, axis=0), j, axis=1)
    return matched


def retrieved_fraction(
    actual: Sequence[Poi],
    found: Sequence[Poi],
    match_m: float = 200.0,
    one_to_one: bool = False,
) -> float:
    """Fraction of actual POIs retrieved; 0.0 when the user has none.

    Callers that aggregate over users should skip users without actual
    POIs (see :class:`repro.metrics.PoiRetrievalPrivacy`); the 0.0
    convention here is only a safe scalar default.
    """
    if not actual:
        return 0.0
    return retrieved_count(actual, found, match_m, one_to_one) / len(actual)
