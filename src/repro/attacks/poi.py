"""Points of Interest: clustering stay points into meaningful places.

A POI is "a meaningful location where a user made a significant stop"
(the paper, §2).  Users revisit their POIs, so the extraction step
agglomerates nearby stay points — in the spirit of DJ-Cluster and of
the POI-Attack used by the paper's group — into clusters whose
centroids are the user's POIs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..geo import LatLon, haversine_m_arrays
from ..mobility import Trace
from .staypoints import StayPoint, extract_stay_points

__all__ = ["Poi", "PoiExtractionConfig", "cluster_stay_points", "extract_pois"]


@dataclass(frozen=True)
class Poi:
    """A Point of Interest: a recurrent significant place of one user."""

    lat: float
    lon: float
    n_visits: int
    total_dwell_s: float

    @property
    def point(self) -> LatLon:
        """The POI centroid as a :class:`LatLon`."""
        return LatLon(self.lat, self.lon)


@dataclass(frozen=True)
class PoiExtractionConfig:
    """Parameters of the stay-point and POI extraction pipeline.

    ``roam_m``/``min_dwell_s`` drive stay-point detection, ``merge_m``
    the agglomeration of stays into POIs, and ``min_visits`` filters
    places visited too rarely to be meaningful.
    """

    roam_m: float = 200.0
    min_dwell_s: float = 900.0
    merge_m: float = 100.0
    min_visits: int = 1

    def __post_init__(self) -> None:
        if self.merge_m <= 0:
            raise ValueError("merge radius must be positive")
        if self.min_visits < 1:
            raise ValueError("minimum visit count must be at least 1")


def cluster_stay_points(
    stays: Sequence[StayPoint],
    merge_m: float = 100.0,
    min_visits: int = 1,
) -> List[Poi]:
    """Greedy agglomeration of stay points into POIs.

    Stay points are taken longest-dwell first; each joins the nearest
    existing cluster within ``merge_m`` of its centroid (dwell-weighted
    running mean) or founds a new one.  Deterministic given its input.
    """
    if merge_m <= 0:
        raise ValueError("merge radius must be positive")
    ordered = sorted(stays, key=lambda s: (-s.duration_s, s.t_start_s))
    # Cluster centroids live in pre-sized numpy buffers (clusters can
    # never outnumber stays), so the nearest-cluster probe below is a
    # slice of a live float64 array instead of an O(k) list-to-array
    # rebuild per stay point.  Same IEEE doubles, same arithmetic —
    # output is bit-identical to the list-based formulation.
    cap = len(ordered)
    lats = np.empty(cap, dtype=float)
    lons = np.empty(cap, dtype=float)
    visits = np.empty(cap, dtype=int)
    dwells = np.empty(cap, dtype=float)
    k_clusters = 0
    for stay in ordered:
        if k_clusters:
            d = haversine_m_arrays(
                lats[:k_clusters], lons[:k_clusters], stay.lat, stay.lon
            )
            k = int(np.argmin(d))
            if float(d[k]) <= merge_m:
                w_old = dwells[k]
                w_new = stay.duration_s
                total = w_old + w_new
                if total > 0:
                    lats[k] = (lats[k] * w_old + stay.lat * w_new) / total
                    lons[k] = (lons[k] * w_old + stay.lon * w_new) / total
                visits[k] += 1
                dwells[k] += stay.duration_s
                continue
        lats[k_clusters] = stay.lat
        lons[k_clusters] = stay.lon
        visits[k_clusters] = 1
        dwells[k_clusters] = stay.duration_s
        k_clusters += 1
    pois = [
        Poi(
            lat=float(la), lon=float(lo),
            n_visits=int(v), total_dwell_s=float(dw),
        )
        for la, lo, v, dw in zip(
            lats[:k_clusters], lons[:k_clusters],
            visits[:k_clusters], dwells[:k_clusters],
        )
        if v >= min_visits
    ]
    # Most significant first: by dwell, then visits.
    return sorted(pois, key=lambda p: (-p.total_dwell_s, -p.n_visits))


def extract_pois(
    trace: Trace, config: PoiExtractionConfig = PoiExtractionConfig()
) -> List[Poi]:
    """Full pipeline: stay points then clustering, for one trace."""
    stays = extract_stay_points(trace, config.roam_m, config.min_dwell_s)
    return cluster_stay_points(stays, config.merge_m, config.min_visits)
