"""POI-based re-identification attack.

Beyond the paper's POI-retrieval metric, a natural stronger adversary
links *anonymised* protected traces back to known users by comparing
POI fingerprints (the approach of AP-Attack-style de-anonymisers from
the same research group).  This module implements that attack so the
library can expose re-identification rate as an alternative privacy
metric — exercising the framework's claim of metric modularity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from ..analysis import pois_of
from ..mobility import Dataset
from .matching import poi_distance_matrix
from .poi import Poi, PoiExtractionConfig

__all__ = ["fingerprint_distance_m", "ReidentificationResult", "reidentify"]

#: Distance assigned when one side has no POIs at all (effectively inf).
_NO_POI_PENALTY_M = 1.0e7


def fingerprint_distance_m(a: Sequence[Poi], b: Sequence[Poi]) -> float:
    """Symmetric mean nearest-neighbour distance between POI sets.

    Small when the two sets describe the same places.  Dwell-weighted on
    each side so a user's dominant places (home, work) count most.
    """
    if not a or not b:
        return _NO_POI_PENALTY_M
    d = poi_distance_matrix(a, b)
    w_a = np.asarray([max(p.total_dwell_s, 1.0) for p in a])
    w_b = np.asarray([max(p.total_dwell_s, 1.0) for p in b])
    forward = float(np.average(np.min(d, axis=1), weights=w_a))
    backward = float(np.average(np.min(d, axis=0), weights=w_b))
    return (forward + backward) / 2.0


@dataclass(frozen=True)
class ReidentificationResult:
    """Outcome of the linking attack."""

    assignment: Dict[str, str]
    n_correct: int
    n_total: int

    @property
    def rate(self) -> float:
        """Fraction of protected traces correctly linked."""
        return self.n_correct / self.n_total if self.n_total else 0.0


def reidentify(
    actual: Dataset,
    protected: Dataset,
    config: PoiExtractionConfig = PoiExtractionConfig(),
) -> ReidentificationResult:
    """Link every protected trace to its most likely actual user.

    The adversary knows each actual user's POI fingerprint (background
    knowledge) and sees the protected traces stripped of identity; each
    protected trace is assigned to the actual user whose fingerprint is
    nearest.  Ties break towards the lexicographically first user so
    the attack is deterministic.

    POI extraction on both sides goes through the analysis cache: the
    actual-side fingerprints — identical for every sweep point — are
    computed once per dataset per process, leaving only the protected
    extraction and the linking itself as per-execution work.
    """
    actual_prints: Dict[str, Sequence[Poi]] = {
        user: pois_of(trace, config) for user, trace in actual.items()
    }
    users = sorted(actual_prints)
    if not users:
        raise ValueError("actual dataset has no users")
    assignment: Dict[str, str] = {}
    correct = 0
    for user, trace in protected.items():
        found = pois_of(trace, config)
        distances = [fingerprint_distance_m(actual_prints[u], found) for u in users]
        guess = users[int(np.argmin(distances))]
        assignment[user] = guess
        if guess == user:
            correct += 1
    return ReidentificationResult(
        assignment=assignment, n_correct=correct, n_total=len(assignment)
    )
