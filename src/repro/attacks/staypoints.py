"""Stay-point extraction from mobility traces.

A *stay point* is a maximal sub-sequence of a trace that remains within
a small roaming radius of its first record for at least a minimum dwell
time — the standard definition of Li et al. (GIS 2008) used by the
POI-mining literature the paper builds on.  Stay points are the raw
material the POI attack clusters into Points of Interest.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..geo import LatLon, LocalProjection
from ..mobility import Trace

__all__ = ["StayPoint", "extract_stay_points"]


@dataclass(frozen=True)
class StayPoint:
    """One significant stop: where, when and for how long."""

    lat: float
    lon: float
    t_start_s: float
    t_end_s: float
    n_records: int

    @property
    def duration_s(self) -> float:
        """Dwell time of the stop."""
        return self.t_end_s - self.t_start_s

    @property
    def point(self) -> LatLon:
        """The stop centroid as a :class:`LatLon`."""
        return LatLon(self.lat, self.lon)


def extract_stay_points(
    trace: Trace,
    roam_m: float = 200.0,
    min_dwell_s: float = 900.0,
) -> List[StayPoint]:
    """Extract the stay points of ``trace``.

    Scans the trace with the classic anchor algorithm: from each anchor
    record, extend a window while records stay within ``roam_m`` of the
    anchor; if the window spans at least ``min_dwell_s``, its centroid
    becomes a stay point and scanning resumes after the window.

    The window extension is incremental: the scan looks for the first
    record outside the roaming radius in geometrically growing blocks
    and stops at the first hit, so each anchor costs work proportional
    to its *window*, not to the remaining trace — O(n) amortised over
    a trace whose stays are disjoint, where the one-shot suffix scan
    (``d2`` over ``x[i+1:]`` per anchor) degrades to O(n²).  The block
    boundaries only change how the first outside record is *found*;
    the window, its centroid and its timestamps are bit-identical to
    the full-suffix formulation.

    Defaults (200 m, 15 min) follow the POI-mining literature the
    paper's privacy metric relies on.
    """
    if roam_m <= 0 or min_dwell_s <= 0:
        raise ValueError("roaming radius and minimum dwell must be positive")
    n = len(trace)
    if n < 2:
        return []

    projection = LocalProjection.for_data(trace.lats, trace.lons)
    x, y = projection.to_xy(trace.lats, trace.lons)
    times = trace.times_s
    roam2 = roam_m**2

    stays: List[StayPoint] = []
    i = 0
    while i < n - 1:
        # Extend the window while records remain near the anchor,
        # scanning ahead in growing blocks and stopping at the first
        # record outside the radius.
        xi, yi = x[i], y[i]
        j = n
        lo = i + 1
        block = 64
        while lo < n:
            hi = min(n, lo + block)
            d2 = (x[lo:hi] - xi) ** 2 + (y[lo:hi] - yi) ** 2
            outside = np.nonzero(d2 > roam2)[0]
            if outside.size:
                j = lo + int(outside[0])
                break
            lo = hi
            block *= 2
        # Window is records i .. j-1 inclusive.
        if times[j - 1] - times[i] >= min_dwell_s:
            sl = slice(i, j)
            cx, cy = float(np.mean(x[sl])), float(np.mean(y[sl]))
            centre = projection.point_to_latlon(cx, cy)
            stays.append(
                StayPoint(
                    lat=centre.lat,
                    lon=centre.lon,
                    t_start_s=float(times[i]),
                    t_end_s=float(times[j - 1]),
                    n_records=j - i,
                )
            )
            i = j
        else:
            i += 1
    return stays
