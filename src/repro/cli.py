"""Command-line interface: ``repro-lppm <command>``.

The commands cover the library's workflow end to end:

* ``generate`` — synthesise a dataset (taxi fleet or commuters) to CSV;
* ``protect``  — apply an LPPM to a CSV dataset;
* ``sweep``    — run the framework's parameter sweep and print/save the
  response curves (the data behind the paper's Figure 1);
* ``configure``— fit the model and invert it at privacy/utility
  objectives (the paper's three automated steps in one command);
* ``attack``   — run the POI attack (and, given a protected file, the
  retrieval and re-identification measurements) against a dataset;
* ``alp``      — configure via the ALP greedy baseline instead;
* ``stats``    — dataset and per-user statistics;
* ``list``     — available mechanisms and metrics;
* ``serve``    — run the long-lived configuration service (JSON over
  HTTP, one shared engine and warm cache across all requests; see
  docs/service.md);
* ``job``      — drive a running daemon's async jobs: ``submit`` a
  sweep/configure/recommend body, ``status``/``wait``/``cancel`` it;
* ``stream``   — replay a CSV trace file against a running daemon's
  live ``/stream`` endpoints, one session per user, and print the
  final sliding-window metrics (see docs/streaming.md);
* ``datasets`` — the scenario registry: ``list`` named scenarios,
  ``show`` one (optionally resolving it), ``register`` a new one —
  locally, or on a running daemon with ``--url`` (see
  docs/datasets.md).
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from . import __version__
from .attacks import extract_pois, reidentify, retrieved_fraction
from .engine import ENGINE_CHOICES, EvaluationEngine
from .framework import (
    Configurator,
    ExperimentRunner,
    Objective,
    alp_configure,
    geo_ind_system,
)
from .lppm import available_lppms, lppm_class, primary_param
from .metrics import available_metrics
from .mobility import (
    dataset_stats,
    iter_csv_records,
    read_csv,
    trace_stats,
    write_csv,
)
from .report import (
    format_table,
    model_summary,
    recommendation_summary,
    sweep_table,
)
from .scenarios import SCENARIO_KINDS, ScenarioSpec, default_registry
from .synth import (
    CommuterConfig,
    TaxiFleetConfig,
    generate_commuters,
    generate_taxi_fleet,
)

__all__ = ["main", "build_parser"]


def _positive_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not an integer")
    if value < 1:
        raise argparse.ArgumentTypeError("must be at least 1")
    return value


def _port(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not an integer")
    if not 0 <= value <= 65535:
        raise argparse.ArgumentTypeError("port must be in 0-65535")
    return value


def _add_engine_options(cmd: argparse.ArgumentParser) -> None:
    """Evaluation-engine knobs shared by every sweeping command."""
    cmd.add_argument(
        "--engine", choices=list(ENGINE_CHOICES), default="auto",
        help="execution backend: serial, process pool, or auto "
             "(pool for batches with more than one uncached job; default)",
    )
    cmd.add_argument(
        "--jobs", type=_positive_int, default=None, metavar="N",
        help="worker processes for the process backend (default: CPU count)",
    )
    cmd.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="persistent result cache directory; re-running the same "
             "sweep against it performs zero new evaluations",
    )


def _engine_from(args: argparse.Namespace) -> EvaluationEngine:
    return EvaluationEngine(
        engine=args.engine, jobs=args.jobs, cache_dir=args.cache_dir
    )


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-lppm",
        description="Automated configuration of location privacy mechanisms",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="synthesise a mobility dataset")
    gen.add_argument("output", help="CSV file to write")
    gen.add_argument(
        "--workload", choices=["taxi", "commuters"], default="taxi",
        help="generator to use (default: taxi)",
    )
    gen.add_argument("--users", type=int, default=20, help="number of users")
    gen.add_argument("--seed", type=int, default=0, help="generator seed")

    prot = sub.add_parser("protect", help="apply an LPPM to a CSV dataset")
    prot.add_argument("input", help="CSV dataset to protect")
    prot.add_argument("output", help="CSV file to write")
    prot.add_argument(
        "--lppm", choices=available_lppms(), default="geo_ind",
        help="mechanism name (default: geo_ind)",
    )
    prot.add_argument(
        "--param", type=float, default=0.01,
        help="the mechanism's parameter value (default: 0.01)",
    )
    prot.add_argument("--seed", type=int, default=0, help="protection seed")

    sweep = sub.add_parser("sweep", help="sweep epsilon and print the curves")
    sweep.add_argument("input", help="CSV dataset to analyse")
    sweep.add_argument("--points", type=int, default=10, help="sweep resolution")
    sweep.add_argument("--replications", type=int, default=2, help="seeds per point")
    sweep.add_argument("--csv", help="also write the sweep to this CSV file")
    _add_engine_options(sweep)

    conf = sub.add_parser("configure", help="fit the model and invert objectives")
    conf.add_argument("input", help="CSV dataset to analyse")
    conf.add_argument(
        "--max-privacy", type=float, default=0.1,
        help="privacy objective: retrieved POI fraction at most this "
             "(default: 0.1, the paper's example)",
    )
    conf.add_argument(
        "--min-utility", type=float, default=0.8,
        help="utility objective: area coverage at least this "
             "(default: 0.8, the paper's example)",
    )
    conf.add_argument("--points", type=int, default=10, help="sweep resolution")
    conf.add_argument("--replications", type=int, default=2, help="seeds per point")
    _add_engine_options(conf)

    attack = sub.add_parser("attack", help="run the POI attack on a dataset")
    attack.add_argument("input", help="CSV dataset (the ground truth)")
    attack.add_argument(
        "--protected",
        help="protected CSV; adds POI retrieval and re-identification measures",
    )

    alp = sub.add_parser("alp", help="configure via the ALP greedy baseline")
    alp.add_argument("input", help="CSV dataset to configure for")
    alp.add_argument("--max-privacy", type=float, default=0.1,
                     help="privacy objective (default: 0.1)")
    alp.add_argument("--min-utility", type=float, default=0.8,
                     help="utility objective (default: 0.8)")
    alp.add_argument("--start", type=float, default=0.01,
                     help="initial epsilon (default: 0.01)")
    _add_engine_options(alp)

    stats = sub.add_parser("stats", help="dataset and per-user statistics")
    stats.add_argument("input", help="CSV dataset to describe")

    sub.add_parser("list", help="available mechanisms and metrics")

    srv = sub.add_parser(
        "serve",
        help="run the long-lived configuration service (JSON over HTTP)",
    )
    srv.add_argument("--host", default="127.0.0.1",
                     help="bind address (default: loopback; the service "
                          "trusts its clients — path dataset specs read "
                          "server-side files — so front non-loopback "
                          "binds with an authenticating proxy)")
    srv.add_argument("--port", type=_port, default=8080,
                     help="TCP port; 0 picks a free one (default: 8080)")
    srv.add_argument("--workers", type=_positive_int, default=2, metavar="N",
                     help="async job worker threads (default: 2); sweeps "
                          "submitted to POST /jobs run on these, off the "
                          "request path")
    srv.add_argument("--processes", type=_positive_int, default=1,
                     metavar="N",
                     help="pre-fork worker processes (default: 1); N > 1 "
                          "binds the port once, forks N full service "
                          "workers sharing the result cache, response "
                          "spill tier and job store under --cache-dir "
                          "(a temporary directory when unset), and "
                          "restarts any worker that crashes")
    srv.add_argument("--job-ttl", type=float, default=600.0, metavar="S",
                     help="seconds a finished job stays pollable "
                          "(default: 600)")
    srv.add_argument("--grace", type=float, default=10.0, metavar="S",
                     help="shutdown grace period for in-flight jobs on "
                          "SIGTERM/SIGINT (default: 10)")
    srv.add_argument("--api-keys", metavar="FILE", default=None,
                     help="API-key file (one key:tenant per line; blank "
                          "lines and # comments ignored); configuring "
                          "keys denies keyless requests unless "
                          "--allow-anonymous is also given")
    srv.add_argument("--allow-anonymous", action="store_true", default=None,
                     help="serve keyless requests as tenant 'anonymous' "
                          "even when --api-keys is configured")
    srv.add_argument("--rate-limit", type=float, default=None, metavar="RPS",
                     help="per-tenant request rate limit in requests/s "
                          "(default: unlimited); excess requests get a "
                          "typed 429 with Retry-After")
    srv.add_argument("--burst", type=_positive_int, default=None, metavar="N",
                     help="token-bucket burst size (default: max(1, "
                          "--rate-limit))")
    srv.add_argument("--tenant-jobs", type=_positive_int, default=None,
                     metavar="N",
                     help="max live (queued+running) async jobs per tenant "
                          "(default: unlimited)")
    srv.add_argument("--max-in-flight", type=_positive_int, default=None,
                     metavar="N",
                     help="max concurrent requests per worker before the "
                          "load shedder answers a typed 503 with "
                          "Retry-After (default: unlimited)")
    srv.add_argument("--fault-spec", default=None, metavar="SPEC",
                     help="chaos testing: arm fault points in this "
                          "process and every child, e.g. "
                          "'pool.crash:1,disk.write:100:partial' "
                          "(point:count[:value], comma-separated; "
                          "count '*' = always)")
    _add_engine_options(srv)

    job = sub.add_parser(
        "job",
        help="submit/inspect async jobs on a running daemon",
    )
    job_sub = job.add_subparsers(dest="job_command", required=True)

    def _add_url(cmd: argparse.ArgumentParser) -> None:
        cmd.add_argument("--url", default="http://127.0.0.1:8080",
                         help="daemon base URL "
                              "(default: http://127.0.0.1:8080)")
        cmd.add_argument("--api-key", default=None,
                         help="X-API-Key for daemons started with "
                              "--api-keys (default: none)")

    job_submit = job_sub.add_parser(
        "submit", help="enqueue a sweep/configure/recommend job")
    job_submit.add_argument(
        "endpoint", choices=["sweep", "configure", "recommend"],
        help="which evaluation endpoint the job runs",
    )
    body = job_submit.add_mutually_exclusive_group(required=True)
    body.add_argument("--body", metavar="JSON",
                      help="request body as inline JSON (what the sync "
                           "endpoint would take)")
    body.add_argument("--body-file", metavar="PATH",
                      help="request body from a JSON file ('-' for stdin)")
    job_submit.add_argument("--wait", action="store_true",
                            help="poll until the job finishes and print "
                                 "its final snapshot")
    job_submit.add_argument("--timeout", type=float, default=600.0,
                            metavar="S",
                            help="--wait deadline in seconds (default: 600)")
    _add_url(job_submit)

    job_status = job_sub.add_parser("status", help="one job's status")
    job_status.add_argument("job_id", help="the id POST /jobs returned")
    _add_url(job_status)

    job_wait = job_sub.add_parser(
        "wait", help="poll with backoff until a job finishes")
    job_wait.add_argument("job_id", help="the id POST /jobs returned")
    job_wait.add_argument("--timeout", type=float, default=600.0, metavar="S",
                          help="deadline in seconds (default: 600)")
    _add_url(job_wait)

    job_cancel = job_sub.add_parser(
        "cancel", help="cancel a queued or running job")
    job_cancel.add_argument("job_id", help="the id POST /jobs returned")
    _add_url(job_cancel)

    job_list = job_sub.add_parser("list", help="live jobs + pool counters")
    _add_url(job_list)

    stream = sub.add_parser(
        "stream",
        help="replay a CSV trace file against a daemon's live "
             "/stream endpoints",
    )
    stream.add_argument("input",
                        help="CSV trace file (user,time_s,lat,lon) to "
                             "replay in on-disk record order")
    stream.add_argument("--session", default=None, metavar="NAME",
                        help="session name prefix (default: the input "
                             "file's stem); each user streams as "
                             "<prefix>.<user>")
    stream.add_argument("--lppm", choices=available_lppms(),
                        default="geo_ind",
                        help="mechanism protecting the stream "
                             "(default: geo_ind)")
    stream.add_argument("--param", type=float, default=0.01,
                        help="the mechanism's parameter value "
                             "(default: 0.01)")
    stream.add_argument("--seed", type=int, default=0,
                        help="protection seed (default: 0)")
    stream.add_argument("--window", type=float, default=None, metavar="S",
                        help="sliding metrics window in seconds "
                             "(default: the server's, 3600)")
    stream.add_argument("--batch", type=_positive_int, default=64,
                        metavar="N",
                        help="records per POST chunk (default: 64)")
    stream.add_argument("--keep-open", action="store_true",
                        help="leave the sessions live on the daemon "
                             "instead of closing them after the replay")
    stream.add_argument("--json", action="store_true",
                        help="emit machine-readable JSON")
    _add_url(stream)

    datasets = sub.add_parser(
        "datasets",
        help="the scenario registry: named, parameterised datasets",
    )
    ds_sub = datasets.add_subparsers(dest="datasets_command", required=True)

    def _add_ds_common(cmd: argparse.ArgumentParser) -> None:
        cmd.add_argument("--url", default=None, metavar="URL",
                         help="operate on a running daemon's registry "
                              "instead of the local built-ins")
        cmd.add_argument("--json", action="store_true",
                         help="emit machine-readable JSON")

    ds_list = ds_sub.add_parser(
        "list", help="registered scenarios (local, or a daemon's)")
    _add_ds_common(ds_list)

    ds_show = ds_sub.add_parser(
        "show", help="one scenario's spec, fingerprint and shape")
    ds_show.add_argument("name", help="scenario name")
    ds_show.add_argument("--resolve", action="store_true",
                         help="also resolve the dataset and report its "
                              "users/records (local only; may generate "
                              "or read data)")
    _add_ds_common(ds_show)

    ds_register = ds_sub.add_parser(
        "register",
        help="register a scenario on a daemon (--url), or validate and "
             "resolve it locally as a dry run",
    )
    ds_register.add_argument("name", help="scenario name to register")
    ds_register.add_argument(
        "--kind", required=True, choices=list(SCENARIO_KINDS),
        help="generator family or on-disk format",
    )
    ds_register.add_argument(
        "--params", metavar="JSON", default=None,
        help="kind parameters as JSON, e.g. "
             "'{\"users\": 5, \"seed\": 42}' or '{\"path\": \"dir/\"}'",
    )
    ds_register.add_argument("--description", default="",
                             help="free-text description for listings")
    ds_register.add_argument("--replace", action="store_true",
                             help="redefine the name if it exists with a "
                                  "different spec")
    _add_ds_common(ds_register)
    return parser


def _cmd_generate(args: argparse.Namespace) -> int:
    if args.workload == "taxi":
        dataset = generate_taxi_fleet(TaxiFleetConfig(n_cabs=args.users, seed=args.seed))
    else:
        dataset = generate_commuters(CommuterConfig(n_users=args.users, seed=args.seed))
    write_csv(dataset, args.output)
    print(f"wrote {dataset.n_records} records for {len(dataset)} users to {args.output}")
    return 0


def _cmd_protect(args: argparse.Namespace) -> int:
    dataset = read_csv(args.input)
    param_name = primary_param(args.lppm)
    lppm = lppm_class(args.lppm)(**{param_name: args.param})
    protected = lppm.protect(dataset, seed=args.seed)
    write_csv(protected, args.output)
    print(f"protected {len(dataset)} users with {lppm!r} -> {args.output}")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    dataset = read_csv(args.input)
    engine = _engine_from(args)
    configurator = Configurator(
        geo_ind_system(), dataset,
        n_points=args.points, n_replications=args.replications,
        engine=engine,
    )
    model = configurator.fit()
    print(sweep_table(configurator.sweep))
    print()
    print(model_summary(model))
    print(f"\nengine: {engine.stats}")
    if args.csv:
        configurator.sweep.write_csv(args.csv)
        print(f"sweep written to {args.csv}")
    return 0


def _cmd_configure(args: argparse.Namespace) -> int:
    dataset = read_csv(args.input)
    configurator = Configurator(
        geo_ind_system(), dataset,
        n_points=args.points, n_replications=args.replications,
        engine=_engine_from(args),
    )
    model = configurator.fit()
    print(model_summary(model))
    objectives = [
        Objective("privacy", "<=", args.max_privacy),
        Objective("utility", ">=", args.min_utility),
    ]
    recommendation = configurator.recommend(objectives)
    print()
    print(recommendation_summary(recommendation))
    return 0 if recommendation.feasible else 1


def _cmd_attack(args: argparse.Namespace) -> int:
    dataset = read_csv(args.input)
    pois_by_user = {u: extract_pois(t) for u, t in dataset.items()}
    rows = [
        (u, len(t), len(pois_by_user[u]))
        for u, t in dataset.items()
    ]
    print(format_table(["user", "records", "POIs found"], rows))
    if not args.protected:
        return 0
    protected = read_csv(args.protected)
    common = [u for u in dataset.users if u in protected]
    if not common:
        print("no users in common with the protected dataset")
        return 1
    retrieval_rows = []
    for user in common:
        found = extract_pois(protected[user])
        actual = pois_by_user[user]
        if not actual:
            continue
        retrieval_rows.append(
            (user, f"{retrieved_fraction(actual, found):.2f}")
        )
    print()
    print(format_table(["user", "POIs retrieved"], retrieval_rows))
    result = reidentify(dataset.subset(common), protected.subset(common))
    print(f"\nre-identification: {result.n_correct}/{result.n_total} "
          f"users linked ({result.rate:.0%})")
    return 0


def _cmd_alp(args: argparse.Namespace) -> int:
    dataset = read_csv(args.input)
    system = geo_ind_system()
    runner = ExperimentRunner(
        system, dataset, n_replications=1, engine=_engine_from(args)
    )
    objectives = [
        Objective("privacy", "<=", args.max_privacy),
        Objective("utility", ">=", args.min_utility),
    ]
    result = alp_configure(system, runner, objectives, initial=args.start)
    rows = [
        (i, f"{s.value:.4g}", f"{s.privacy:.3f}", f"{s.utility:.3f}")
        for i, s in enumerate(result.trajectory)
    ]
    print(format_table(["step", "epsilon", "privacy", "utility"], rows))
    if result.satisfied:
        print(f"\nconverged: epsilon = {result.final_value:.4g} "
              f"after {result.n_evaluations} evaluations")
        return 0
    print(f"\ndid not converge within {result.n_evaluations} evaluations")
    return 1


def _cmd_stats(args: argparse.Namespace) -> int:
    dataset = read_csv(args.input)
    aggregate = dataset_stats(dataset)
    print(format_table(
        ["statistic", "value"],
        [(k, f"{v:.4g}") for k, v in aggregate.items()],
    ))
    print()
    rows = []
    for trace in dataset.traces:
        s = trace_stats(trace)
        rows.append((
            s.user, s.n_records, f"{s.duration_s / 3600.0:.1f} h",
            f"{s.length_m / 1000.0:.1f} km",
            f"{s.radius_of_gyration_m:.0f} m",
        ))
    print(format_table(
        ["user", "records", "duration", "length", "radius of gyration"], rows
    ))
    return 0


def _cmd_list(args: argparse.Namespace) -> int:
    print("mechanisms:")
    for name in available_lppms():
        try:
            param = primary_param(name)
        except ValueError:
            # A user-registered mechanism with an exotic constructor
            # must not abort the listing.
            param = "?"
        print(f"  {name}  (parameter: {param})")
    print("metrics:")
    for name in available_metrics():
        print(f"  {name}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    # Imported here: only the daemon needs the service package.
    from .service import ApiKeyStore, serve

    api_keys = None
    if args.api_keys is not None:
        try:
            api_keys = ApiKeyStore.from_file(args.api_keys)
        except FileNotFoundError:
            print(f"error: no such API-key file: {args.api_keys}",
                  file=sys.stderr)
            return 2
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if len(api_keys) == 0:
            print(f"error: API-key file {args.api_keys} defines no keys",
                  file=sys.stderr)
            return 2
    if args.burst is not None and args.rate_limit is None:
        print("error: --burst requires --rate-limit", file=sys.stderr)
        return 2
    if args.rate_limit is not None and args.rate_limit <= 0:
        print("error: --rate-limit must be positive", file=sys.stderr)
        return 2
    if args.fault_spec is not None:
        from .resilience.faults import parse_spec

        try:
            parse_spec(args.fault_spec)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    # Multi-process mode needs shared on-disk state (result cache,
    # response spill tier, cross-process job store).  --cache-dir
    # doubles as that root; without it a temporary directory keeps the
    # fleet coherent for this run and is removed on exit.
    cache_dir = args.cache_dir
    tmp_root = None
    if args.processes > 1 and cache_dir is None:
        import tempfile

        tmp_root = tempfile.mkdtemp(prefix="repro-lppm-serve-")
        cache_dir = tmp_root
    engine = EvaluationEngine(
        engine=args.engine, jobs=args.jobs, cache_dir=cache_dir
    )
    try:
        return serve(
            host=args.host,
            port=args.port,
            engine=engine,
            workers=args.workers,
            job_ttl_s=args.job_ttl,
            grace_s=args.grace,
            api_keys=api_keys,
            allow_anonymous=args.allow_anonymous,
            rate_limit_rps=args.rate_limit,
            rate_limit_burst=args.burst,
            max_jobs_per_tenant=args.tenant_jobs,
            processes=args.processes,
            # Whenever there is a cache directory, share it: a
            # restarted single-process daemon then starts warm too.
            shared_dir=cache_dir,
            max_in_flight=args.max_in_flight,
            fault_spec=args.fault_spec,
        )
    finally:
        if tmp_root is not None:
            import shutil

            shutil.rmtree(tmp_root, ignore_errors=True)


def _cmd_job(args: argparse.Namespace) -> int:
    """Drive a running daemon's async-job endpoints; prints JSON."""
    import json

    from .service import HttpServiceClient, ServiceClientError

    client = HttpServiceClient(args.url, api_key=args.api_key)

    def emit(payload: dict) -> None:
        print(json.dumps(payload, indent=2, sort_keys=True))

    try:
        if args.job_command == "submit":
            if args.body is not None:
                raw = args.body
            elif args.body_file == "-":
                raw = sys.stdin.read()
            else:
                with open(args.body_file, "r", encoding="utf-8") as fh:
                    raw = fh.read()
            try:
                body = json.loads(raw)
            except ValueError as exc:
                print(f"error: body is not valid JSON: {exc}",
                      file=sys.stderr)
                return 2
            if not isinstance(body, dict):
                print("error: body must be a JSON object", file=sys.stderr)
                return 2
            submitted = client.submit(args.endpoint, body)
            if not args.wait:
                emit(submitted)
                return 0
            emit(client.wait(submitted["job_id"], timeout_s=args.timeout))
            return 0
        if args.job_command == "status":
            emit(client.status(args.job_id))
            return 0
        if args.job_command == "wait":
            emit(client.wait(args.job_id, timeout_s=args.timeout))
            return 0
        if args.job_command == "cancel":
            emit(client.cancel(args.job_id))
            return 0
        emit(client.jobs())
        return 0
    except ServiceClientError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except TimeoutError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 3


def _cmd_stream(args: argparse.Namespace) -> int:
    """Replay a CSV trace file as live streams against a daemon.

    Records are read in on-disk order through the record-iterator layer
    (never materialising the file), buffered per user, and POSTed as
    chunks of at most ``--batch`` records — the transport's form of a
    chunked live stream.  Each user gets their own tenant-namespaced
    session; the final sliding-window metrics print at the end.
    """
    import json

    from .service import HttpServiceClient, ServiceClientError

    client = HttpServiceClient(args.url, api_key=args.api_key)
    base = args.session or os.path.splitext(os.path.basename(args.input))[0]
    buffers: dict = {}
    order: List[str] = []

    def session_name(user: str) -> str:
        # Session names are path segments; user ids are free-form.
        return f"{base}.{user}".replace("/", "_")

    def push(user: str) -> None:
        batch = buffers[user]
        if not batch:
            return
        client.stream_update(
            session_name(user), batch, lppm=args.lppm, param=args.param,
            seed=args.seed, user=user, window_s=args.window,
        )
        buffers[user] = []

    try:
        for user, t, lat, lon in iter_csv_records(args.input):
            if user not in buffers:
                buffers[user] = []
                order.append(user)
            buffers[user].append([t, lat, lon])
            if len(buffers[user]) >= args.batch:
                push(user)
        results = []
        for user in order:
            push(user)
            if args.keep_open:
                final = client.stream_metrics(session_name(user))
            else:
                final = client.stream_close(session_name(user))["final"]
            results.append({
                "session": session_name(user),
                "user": user,
                "updates": final["updates"],
                "released": final["released"],
                "dropped": final["dropped"],
                "window": final["window"],
            })
    except ServiceClientError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps({"sessions": results}, indent=2, sort_keys=True))
        return 0
    rows = []
    for r in results:
        window = r["window"]
        rows.append((
            r["session"], r["updates"], r["released"], r["dropped"],
            f"{window.get('distortion_m', float('nan')):.1f}",
            f"{window.get('coverage_f1', float('nan')):.2f}",
            window.get("pois", 0),
        ))
    print(format_table(
        ["session", "updates", "released", "dropped",
         "distortion (m)", "coverage F1", "POIs"],
        rows,
    ))
    state = "left open" if args.keep_open else "closed"
    print(f"\n{len(results)} sessions {state} on {args.url}")
    return 0


def _cmd_datasets(args: argparse.Namespace) -> int:
    """The scenario registry: list / show / register."""
    import json

    from .service import HttpServiceClient, ServiceClientError

    def emit(payload) -> None:
        print(json.dumps(payload, indent=2, sort_keys=True))

    def scenario_rows(scenarios: List[dict]) -> int:
        print(format_table(
            ["name", "kind", "params", "description"],
            [
                (
                    s["name"], s["kind"],
                    json.dumps(s["params"], sort_keys=True),
                    s.get("description", ""),
                )
                for s in scenarios
            ],
        ))
        return 0

    try:
        if args.datasets_command == "list":
            if args.url:
                listing = HttpServiceClient(args.url).datasets()
                scenarios = listing["scenarios"]
            else:
                scenarios = [
                    s.to_jsonable() for s in default_registry().specs()
                ]
            if args.json:
                emit({"scenarios": scenarios})
                return 0
            return scenario_rows(scenarios)

        if args.datasets_command == "show":
            if args.url and args.resolve:
                # The daemon's spec may name server-side paths (or
                # generate large data); resolving it on this machine
                # would be misleading at best.
                print("error: --resolve is local-only and cannot be "
                      "combined with --url", file=sys.stderr)
                return 2
            if args.url:
                listing = HttpServiceClient(args.url).datasets()
                matches = [
                    s for s in listing["scenarios"]
                    if s["name"] == args.name
                ]
                if not matches:
                    print(f"error: no scenario named {args.name!r}",
                          file=sys.stderr)
                    return 2
                payload = matches[0]
                spec = None
            else:
                try:
                    spec = default_registry().get(args.name)
                except KeyError as exc:
                    print(f"error: {exc.args[0]}", file=sys.stderr)
                    return 2
                payload = spec.to_jsonable()
            if args.resolve:
                dataset = default_registry().resolve_spec(spec)
                payload = dict(
                    payload,
                    users=len(dataset),
                    records=dataset.n_records,
                    fingerprint=spec.fingerprint(),
                )
            if args.json:
                emit(payload)
                return 0
            for key in ("name", "kind", "description"):
                print(f"{key}: {payload.get(key, '')}")
            print(f"params: {json.dumps(payload['params'], sort_keys=True)}")
            if args.resolve:
                print(f"users: {payload['users']}")
                print(f"records: {payload['records']}")
                print(f"fingerprint: {payload['fingerprint']}")
            return 0

        # register
        params = {}
        if args.params is not None:
            try:
                params = json.loads(args.params)
            except ValueError as exc:
                print(f"error: --params is not valid JSON: {exc}",
                      file=sys.stderr)
                return 2
            if not isinstance(params, dict):
                print("error: --params must be a JSON object",
                      file=sys.stderr)
                return 2
        if args.url:
            result = HttpServiceClient(args.url).register_dataset(
                args.name, args.kind, params,
                description=args.description, replace=args.replace,
            )
            if args.json:
                emit(result)
            else:
                print(f"registered {args.name!r} "
                      f"({result['scenarios']} scenarios on the daemon)")
            return 0
        # No daemon: validate the spec and resolve it once, so a typo'd
        # registration fails here instead of in some later request.
        spec = ScenarioSpec.make(
            args.name, args.kind, params, args.description
        )
        default_registry().register(spec, replace=args.replace)
        dataset = default_registry().resolve_spec(spec)
        if args.json:
            emit(dict(
                spec.to_jsonable(),
                users=len(dataset),
                records=dataset.n_records,
                fingerprint=spec.fingerprint(),
            ))
        else:
            print(f"validated {args.name!r}: {len(dataset)} users, "
                  f"{dataset.n_records} records "
                  "(local registration lasts this process only; use "
                  "--url to register on a daemon)")
        return 0
    except ServiceClientError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code.

    Operator mistakes (missing files, parameter values a mechanism
    rejects, unusable ports) exit with code 2 and a one-line message
    instead of a traceback; exit code 1 keeps its meaning of "ran,
    objectives not met".  The catch is deliberately at the dispatch
    level — the message still names the cause — but a truncated
    consumer (``| head``) is not an error, and ``REPRO_DEBUG=1``
    re-raises for the full traceback when an internal bug is
    suspected.
    """
    args = build_parser().parse_args(argv)
    handlers = {
        "generate": _cmd_generate,
        "protect": _cmd_protect,
        "sweep": _cmd_sweep,
        "configure": _cmd_configure,
        "attack": _cmd_attack,
        "alp": _cmd_alp,
        "stats": _cmd_stats,
        "list": _cmd_list,
        "serve": _cmd_serve,
        "job": _cmd_job,
        "stream": _cmd_stream,
        "datasets": _cmd_datasets,
    }
    try:
        return handlers[args.command](args)
    except BrokenPipeError:
        # stdout's consumer went away (e.g. `... | head`); standard
        # Unix behaviour is a quiet non-zero exit, not an error.
        return 1
    except (OSError, ValueError) as exc:
        # Covers missing/unreadable files, ports already in use or
        # unresolvable bind addresses, and parameter values the
        # mechanisms reject.
        if os.environ.get("REPRO_DEBUG"):
            raise
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
