"""Evaluation engine — batched, pluggable, cached execution.

The middleware layer between the LPPM/metric primitives below and the
configuration framework above.  Callers build :class:`EvalJob` batches
and submit them to an :class:`EvaluationEngine`, which consults a
two-tier content-addressed cache (:class:`ResultCache`) and dispatches
misses to a pluggable :class:`ExecutionBackend` — in-process
(:class:`SerialBackend`) or a process pool
(:class:`ProcessPoolBackend`), both funnelling through one shared
execution path so results are bit-identical across backends.
"""

from .backends import (
    ExecutionBackend,
    ProcessPoolBackend,
    SerialBackend,
    default_max_workers,
    execute_job,
)
from .cache import ResultCache
from .core import ENGINE_CHOICES, EvaluationCancelled, EvaluationEngine
from .jobs import (
    EvalJob,
    EvalResult,
    dataset_fingerprint,
    job_fingerprint,
    system_signature,
)

__all__ = [
    "ENGINE_CHOICES",
    "EvaluationEngine",
    "EvaluationCancelled",
    "EvalJob",
    "EvalResult",
    "ExecutionBackend",
    "SerialBackend",
    "ProcessPoolBackend",
    "ResultCache",
    "dataset_fingerprint",
    "system_signature",
    "job_fingerprint",
    "execute_job",
    "default_max_workers",
]
