"""Pluggable execution backends for batched evaluations.

Every backend funnels through :func:`execute_job` — one shared
protect-and-measure code path — so backends can only differ in *where*
work runs, never in *what* is computed.  Combined with the LPPM layer's
per-(seed, user) RNG derivation (independent of trace order and of the
process doing the work), this makes process-parallel results
bit-identical to serial ones.

Two levels of parallelism are used, chosen by batch shape:

* **job-level** — each (params, seed) job is one task; the natural fit
  for sweeps, where a batch holds dozens of independent jobs;
* **trace-level** — with fewer jobs than workers (e.g. a single
  verification evaluation), each job runs in the parent but fans its
  per-trace protection out to the pool through the ``mapper`` hook of
  :meth:`repro.lppm.LPPM.protect`.

Protection without a ``mapper`` — the serial backend, and every job
executed *inside* a pool worker — routes through the columnar
``protect_block`` path over ``Dataset.columns()``, so both backends get
the vectorised mechanisms for free; only the lone-job trace-level fan
out keeps the picklable per-trace function.  All three paths are
bit-identical by the LPPM layer's construction.
"""

from __future__ import annotations

import abc
import multiprocessing
import os
import threading
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

from ..resilience.events import record_event
from ..resilience.faults import fire as _fire_fault
from .jobs import EvalJob

if TYPE_CHECKING:
    from ..framework.spec import SystemDefinition
    from ..mobility import Dataset

__all__ = [
    "ExecutionBackend",
    "SerialBackend",
    "ProcessPoolBackend",
    "execute_job",
    "default_max_workers",
]


def default_max_workers() -> int:
    """Worker count when the caller does not specify one."""
    return os.cpu_count() or 1


def execute_job(
    system: "SystemDefinition",
    dataset: "Dataset",
    job: EvalJob,
    mapper=None,
) -> Tuple[float, float]:
    """Run one protect + measure execution; the single source of truth.

    ``mapper`` is forwarded to :meth:`LPPM.protect` so callers can
    parallelise the per-trace protection without touching the metric
    evaluation (metrics see whole datasets).  Without one, protection
    takes the columnar block path (vectorised where the mechanism
    supports it); the dataset's planar block is memoised on the
    ``Dataset``, so every job over the same dataset shares one
    concatenation.
    """
    lppm = system.make_lppm(**job.params_dict)
    if mapper is None:
        # No keyword: mechanisms that override protect() with the
        # historical (dataset, seed) signature keep working serially.
        protected = lppm.protect(dataset, seed=job.seed)
    else:
        protected = lppm.protect(dataset, seed=job.seed, mapper=mapper)
    privacy = system.privacy_metric.evaluate(dataset, protected)
    utility = system.utility_metric.evaluate(dataset, protected)
    return (float(privacy), float(utility))


class ExecutionBackend(abc.ABC):
    """Executes a batch of cache-missed jobs."""

    #: Human-readable backend name (mirrors the CLI ``--engine`` knob).
    name: str = "abstract"

    #: Re-entrant lock a caller should hold across a *series* of
    #: :meth:`run` calls for one logical batch, or ``None`` when the
    #: backend is stateless.  The engine submits chunked batches; for
    #: pooled backends, interleaving chunks from different (system,
    #: dataset) pairs would rebuild the warm pool on every alternation,
    #: so the engine leases the backend for the whole chunk series.
    batch_lock: Optional[threading.RLock] = None

    @abc.abstractmethod
    def run(
        self,
        system: "SystemDefinition",
        dataset: "Dataset",
        jobs: Sequence[EvalJob],
        key: Optional[Tuple[str, str]] = None,
    ) -> List[Tuple[float, float]]:
        """(privacy, utility) per job, in job order.

        ``key`` is an optional (system signature, dataset fingerprint)
        content key; pooled backends use it to recognise "same work,
        new objects" and keep their workers warm.
        """


class SerialBackend(ExecutionBackend):
    """In-process, one job at a time — the reference implementation."""

    name = "serial"

    def run(self, system, dataset, jobs, key=None):
        return [execute_job(system, dataset, job) for job in jobs]


# ----------------------------------------------------------------------
# Process pool
# ----------------------------------------------------------------------
# Worker-side globals, installed once per worker by the pool
# initializer so the (potentially large) dataset is not re-pickled with
# every job.
_WORKER_SYSTEM: Optional["SystemDefinition"] = None
_WORKER_DATASET: Optional["Dataset"] = None


def _init_worker(
    system: "SystemDefinition",
    dataset: "Dataset",
    dataset_fp: Optional[str] = None,
    analysis_spill_dir: Optional[str] = None,
) -> None:
    global _WORKER_SYSTEM, _WORKER_DATASET
    _WORKER_SYSTEM = system
    _WORKER_DATASET = dataset
    if dataset_fp is not None or analysis_spill_dir is not None:
        from ..analysis import default_cache

        cache = default_cache()
        if dataset_fp is not None:
            # Seed the worker's process-local analysis cache by
            # fingerprint (artifacts are computed in-worker and
            # memoised there, never pickled across the process
            # boundary): every job this worker runs shares one
            # actual-side stay-point/POI extraction.
            cache.seed_dataset(dataset, dataset_fp)
        if analysis_spill_dir is not None:
            # Join the engine's shared spill directory: this worker's
            # extractions persist for siblings and restarts, and it
            # starts warm from theirs.
            cache.attach_spill(analysis_spill_dir)


def _run_job_in_worker(job: EvalJob) -> Tuple[float, float]:
    assert _WORKER_SYSTEM is not None and _WORKER_DATASET is not None
    return execute_job(_WORKER_SYSTEM, _WORKER_DATASET, job)


class ProcessPoolBackend(ExecutionBackend):
    """``concurrent.futures`` process pool; bit-identical to serial.

    Pools persist across :meth:`run` calls: the job-level pool keeps
    its (system, dataset) initializer payload until a batch arrives for
    a different pair, so iterative callers (ALP probes, refinement
    bisection) do not pay pool startup plus dataset shipping on every
    step.  Call :meth:`close` (or rely on finalisation) to release the
    worker processes.

    The backend is a singleton resource with mutable pool state, so
    :meth:`run` and :meth:`close` serialise on :attr:`batch_lock` —
    without it, a concurrent batch for a *different* (system, dataset)
    pair would shut the pool down under a running ``map``.  The lock is
    re-entrant and public: the engine holds it across one batch's whole
    chunk series, so two concurrent sweeps over different datasets
    alternate per *batch* (one pool rebuild each) instead of per chunk
    (a rebuild every alternation).  The protect + measure work inside a
    batch still parallelises across the pool's processes.

    Parameters
    ----------
    max_workers:
        Pool size; defaults to the machine's CPU count.
    analysis_spill_dir:
        Optional shared analysis-spill directory handed to each pool
        worker's initializer, so per-process analysis caches persist
        their artifacts for (and warm-start from) sibling processes.
    """

    name = "process"

    def __init__(
        self,
        max_workers: Optional[int] = None,
        analysis_spill_dir=None,
    ) -> None:
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be at least 1")
        self.max_workers = int(max_workers or default_max_workers())
        self.analysis_spill_dir = (
            str(analysis_spill_dir)
            if analysis_spill_dir is not None else None
        )
        self.batch_lock = threading.RLock()
        # Guards the pool fields and the closed flag.  A forced close
        # (timed-out lease) runs WITHOUT batch_lock, so pool selection
        # and teardown must synchronise on this narrower lock; lock
        # order where both are held is batch_lock, then this.
        self._state_lock = threading.Lock()
        # Set by a timed-out close(): the backend is being abandoned at
        # process exit, and a leaseholder's next chunk must not rebuild
        # the pools (concurrent.futures' atexit hook would then wait
        # for them, unbounding the shutdown the timeout bounded).
        self._closed = False
        self._job_pool: Optional[ProcessPoolExecutor] = None
        # What the current job pool's workers hold, as a content key
        # when the caller supplies one (so equal-but-not-identical
        # systems/datasets reuse the warm pool) or as strong references
        # to the exact pair otherwise (pinning ids against recycling).
        self._job_pool_key: Optional[Tuple[str, str]] = None
        self._job_pool_for: Optional[tuple] = None
        self._trace_pool: Optional[ProcessPoolExecutor] = None
        # Degradation counters, surfaced through degradation events.
        self.pool_rebuilds = 0
        self.serial_fallbacks = 0

    @staticmethod
    def _mp_context():
        """Prefer fork where available: cheap startup, and classes
        defined outside installed modules stay importable in workers."""
        methods = multiprocessing.get_all_start_methods()
        if "fork" in methods:
            return multiprocessing.get_context("fork")
        return multiprocessing.get_context()

    def _check_open(self) -> None:
        """Refuse pool (re)builds after a forced close.

        Caller holds ``_state_lock``, so the check cannot interleave
        with the forced close's flag-set-and-null sequence.
        """
        if self._closed:
            raise RuntimeError(
                "ProcessPoolBackend was force-closed during shutdown"
            )

    def _job_pool_of(self, system, dataset, key) -> ProcessPoolExecutor:
        with self._state_lock:
            self._check_open()
            if self._job_pool is not None:
                if key is not None and self._job_pool_key == key:
                    # Same content: the workers' baked-in objects
                    # compute identical results, whichever instances
                    # they are.
                    return self._job_pool
                current = self._job_pool_for
                if key is None and current is not None and (
                    current[0] is system and current[1] is dataset
                ):
                    return self._job_pool
                # Idle (batch_lock is held, so nothing is in flight):
                # this shutdown returns promptly.
                self._job_pool.shutdown(wait=True)
            self._job_pool = ProcessPoolExecutor(
                max_workers=self.max_workers,
                mp_context=self._mp_context(),
                initializer=_init_worker,
                initargs=(system, dataset, key[1] if key else None,
                          self.analysis_spill_dir),
            )
            self._job_pool_key = key
            self._job_pool_for = (system, dataset)
            return self._job_pool

    def _discard_job_pool(self) -> None:
        """Release a broken job pool without waiting on its corpses."""
        with self._state_lock:
            pool = self._job_pool
            self._job_pool = None
            self._job_pool_key = None
            self._job_pool_for = None
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)

    def _discard_trace_pool(self) -> None:
        with self._state_lock:
            pool = self._trace_pool
            self._trace_pool = None
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)

    def _trace_pool_of(self, workers: int) -> ProcessPoolExecutor:
        with self._state_lock:
            self._check_open()
            if self._trace_pool is None:
                self._trace_pool = ProcessPoolExecutor(
                    max_workers=workers, mp_context=self._mp_context()
                )
            return self._trace_pool

    def close(self, timeout_s: Optional[float] = None) -> None:
        """Shut down the worker pools (idempotent).

        ``timeout_s`` bounds how long to wait for an in-flight batch's
        lease.  On timeout the pools are released *without* waiting for
        running work — the daemon's SIGTERM path uses this so process
        exit stays bounded by ``--grace`` even when a cancelled job is
        still mid-chunk (the leaseholder may then see its map fail,
        which its job worker reports as a failed job; the process is
        exiting either way).
        """
        if timeout_s is None:
            acquired = self.batch_lock.acquire()
        else:
            acquired = self.batch_lock.acquire(timeout=max(0.0, timeout_s))
        with self._state_lock:
            if not acquired:
                # Forced close: refuse rebuilds, or a leaseholder's
                # next chunk would resurrect a pool the exit path
                # cannot reap.
                self._closed = True
            job_pool, trace_pool = self._job_pool, self._trace_pool
            self._job_pool = None
            self._job_pool_key = None
            self._job_pool_for = None
            self._trace_pool = None
        try:
            for pool in (job_pool, trace_pool):
                if pool is not None:
                    if acquired:
                        pool.shutdown(wait=True)
                    else:
                        pool.shutdown(wait=False, cancel_futures=True)
        finally:
            if acquired:
                self.batch_lock.release()

    def __del__(self):  # pragma: no cover - finalisation best effort
        try:
            self.close()
        except Exception:
            pass

    def run(self, system, dataset, jobs, key=None):
        jobs = list(jobs)
        if not jobs:
            return []
        if self.max_workers <= 1:
            return SerialBackend().run(system, dataset, jobs)
        with self.batch_lock:
            if len(jobs) >= 2:
                # Job-level parallelism: the dataset ships to the
                # workers once, via the pool initializer.  A crashed
                # worker (OOM-killed, segfaulted, injected) breaks the
                # whole pool; results are content-addressed and cached
                # per chunk, so replaying this batch on a fresh pool is
                # exactly-once.  A second crash means something
                # systematic — degrade to serial rather than loop.
                pool = self._job_pool_of(system, dataset, key)
                if _fire_fault("pool.crash"):
                    pool.submit(os._exit, 1)
                try:
                    return list(pool.map(_run_job_in_worker, jobs))
                except BrokenProcessPool:
                    self.pool_rebuilds += 1
                    record_event(
                        "pool.rebuilt",
                        jobs=len(jobs),
                        action="replaying the batch on a fresh pool",
                    )
                    self._discard_job_pool()
                    pool = self._job_pool_of(system, dataset, key)
                    if _fire_fault("pool.crash"):
                        pool.submit(os._exit, 1)
                    try:
                        return list(pool.map(_run_job_in_worker, jobs))
                    except BrokenProcessPool:
                        self.serial_fallbacks += 1
                        record_event(
                            "pool.serial-fallback",
                            jobs=len(jobs),
                            action="rebuilt pool crashed too; "
                                   "running the batch serially",
                        )
                        self._discard_job_pool()
                        return SerialBackend().run(system, dataset, jobs)
            # A lone job cannot be split across workers at the job
            # level; parallelise inside it instead, across the
            # dataset's traces.
            workers = min(self.max_workers, max(1, len(dataset)))
            if workers <= 1:
                return SerialBackend().run(system, dataset, jobs)
            pool = self._trace_pool_of(workers)

            def trace_mapper(fn, traces):
                # Chunking bounds how often fn (carrying the LPPM,
                # which may embed dataset-sized state like an elastic
                # density prior) is pickled: once per chunk, not once
                # per trace.
                chunksize = max(1, len(traces) // workers)
                return pool.map(fn, traces, chunksize=chunksize)

            try:
                return [
                    execute_job(system, dataset, job, mapper=trace_mapper)
                    for job in jobs
                ]
            except BrokenProcessPool:
                self.serial_fallbacks += 1
                record_event(
                    "pool.serial-fallback",
                    jobs=len(jobs),
                    action="trace pool crashed; "
                           "running the batch serially",
                )
                self._discard_trace_pool()
                return SerialBackend().run(system, dataset, jobs)
