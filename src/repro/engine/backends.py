"""Pluggable execution backends for batched evaluations.

Every backend funnels through :func:`execute_job` — one shared
protect-and-measure code path — so backends can only differ in *where*
work runs, never in *what* is computed.  Combined with the LPPM layer's
per-(seed, user) RNG derivation (independent of trace order and of the
process doing the work), this makes process-parallel results
bit-identical to serial ones.

Two levels of parallelism are used, chosen by batch shape:

* **job-level** — each (params, seed) job is one task; the natural fit
  for sweeps, where a batch holds dozens of independent jobs;
* **trace-level** — with fewer jobs than workers (e.g. a single
  verification evaluation), each job runs in the parent but fans its
  per-trace protection out to the pool through the ``mapper`` hook of
  :meth:`repro.lppm.LPPM.protect`.
"""

from __future__ import annotations

import abc
import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

from .jobs import EvalJob

if TYPE_CHECKING:
    from ..framework.spec import SystemDefinition
    from ..mobility import Dataset

__all__ = [
    "ExecutionBackend",
    "SerialBackend",
    "ProcessPoolBackend",
    "execute_job",
    "default_max_workers",
]


def default_max_workers() -> int:
    """Worker count when the caller does not specify one."""
    return os.cpu_count() or 1


def execute_job(
    system: "SystemDefinition",
    dataset: "Dataset",
    job: EvalJob,
    mapper=None,
) -> Tuple[float, float]:
    """Run one protect + measure execution; the single source of truth.

    ``mapper`` is forwarded to :meth:`LPPM.protect` so callers can
    parallelise the per-trace protection without touching the metric
    evaluation (metrics see whole datasets).
    """
    lppm = system.make_lppm(**job.params_dict)
    if mapper is None:
        # No keyword: mechanisms that override protect() with the
        # historical (dataset, seed) signature keep working serially.
        protected = lppm.protect(dataset, seed=job.seed)
    else:
        protected = lppm.protect(dataset, seed=job.seed, mapper=mapper)
    privacy = system.privacy_metric.evaluate(dataset, protected)
    utility = system.utility_metric.evaluate(dataset, protected)
    return (float(privacy), float(utility))


class ExecutionBackend(abc.ABC):
    """Executes a batch of cache-missed jobs."""

    #: Human-readable backend name (mirrors the CLI ``--engine`` knob).
    name: str = "abstract"

    @abc.abstractmethod
    def run(
        self,
        system: "SystemDefinition",
        dataset: "Dataset",
        jobs: Sequence[EvalJob],
        key: Optional[Tuple[str, str]] = None,
    ) -> List[Tuple[float, float]]:
        """(privacy, utility) per job, in job order.

        ``key`` is an optional (system signature, dataset fingerprint)
        content key; pooled backends use it to recognise "same work,
        new objects" and keep their workers warm.
        """


class SerialBackend(ExecutionBackend):
    """In-process, one job at a time — the reference implementation."""

    name = "serial"

    def run(self, system, dataset, jobs, key=None):
        return [execute_job(system, dataset, job) for job in jobs]


# ----------------------------------------------------------------------
# Process pool
# ----------------------------------------------------------------------
# Worker-side globals, installed once per worker by the pool
# initializer so the (potentially large) dataset is not re-pickled with
# every job.
_WORKER_SYSTEM: Optional["SystemDefinition"] = None
_WORKER_DATASET: Optional["Dataset"] = None


def _init_worker(system: "SystemDefinition", dataset: "Dataset") -> None:
    global _WORKER_SYSTEM, _WORKER_DATASET
    _WORKER_SYSTEM = system
    _WORKER_DATASET = dataset


def _run_job_in_worker(job: EvalJob) -> Tuple[float, float]:
    assert _WORKER_SYSTEM is not None and _WORKER_DATASET is not None
    return execute_job(_WORKER_SYSTEM, _WORKER_DATASET, job)


class ProcessPoolBackend(ExecutionBackend):
    """``concurrent.futures`` process pool; bit-identical to serial.

    Pools persist across :meth:`run` calls: the job-level pool keeps
    its (system, dataset) initializer payload until a batch arrives for
    a different pair, so iterative callers (ALP probes, refinement
    bisection) do not pay pool startup plus dataset shipping on every
    step.  Call :meth:`close` (or rely on finalisation) to release the
    worker processes.

    Parameters
    ----------
    max_workers:
        Pool size; defaults to the machine's CPU count.
    """

    name = "process"

    def __init__(self, max_workers: Optional[int] = None) -> None:
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be at least 1")
        self.max_workers = int(max_workers or default_max_workers())
        self._job_pool: Optional[ProcessPoolExecutor] = None
        # What the current job pool's workers hold, as a content key
        # when the caller supplies one (so equal-but-not-identical
        # systems/datasets reuse the warm pool) or as strong references
        # to the exact pair otherwise (pinning ids against recycling).
        self._job_pool_key: Optional[Tuple[str, str]] = None
        self._job_pool_for: Optional[tuple] = None
        self._trace_pool: Optional[ProcessPoolExecutor] = None

    @staticmethod
    def _mp_context():
        """Prefer fork where available: cheap startup, and classes
        defined outside installed modules stay importable in workers."""
        methods = multiprocessing.get_all_start_methods()
        if "fork" in methods:
            return multiprocessing.get_context("fork")
        return multiprocessing.get_context()

    def _job_pool_of(self, system, dataset, key) -> ProcessPoolExecutor:
        if self._job_pool is not None:
            if key is not None and self._job_pool_key == key:
                # Same content: the workers' baked-in objects compute
                # identical results, whichever instances they are.
                return self._job_pool
            current = self._job_pool_for
            if key is None and current is not None and (
                current[0] is system and current[1] is dataset
            ):
                return self._job_pool
            self._job_pool.shutdown(wait=True)
        self._job_pool = ProcessPoolExecutor(
            max_workers=self.max_workers,
            mp_context=self._mp_context(),
            initializer=_init_worker,
            initargs=(system, dataset),
        )
        self._job_pool_key = key
        self._job_pool_for = (system, dataset)
        return self._job_pool

    def _trace_pool_of(self, workers: int) -> ProcessPoolExecutor:
        if self._trace_pool is None:
            self._trace_pool = ProcessPoolExecutor(
                max_workers=workers, mp_context=self._mp_context()
            )
        return self._trace_pool

    def close(self) -> None:
        """Shut down the worker pools (idempotent)."""
        if self._job_pool is not None:
            self._job_pool.shutdown(wait=True)
            self._job_pool = None
            self._job_pool_key = None
            self._job_pool_for = None
        if self._trace_pool is not None:
            self._trace_pool.shutdown(wait=True)
            self._trace_pool = None

    def __del__(self):  # pragma: no cover - finalisation best effort
        try:
            self.close()
        except Exception:
            pass

    def run(self, system, dataset, jobs, key=None):
        jobs = list(jobs)
        if not jobs:
            return []
        if self.max_workers <= 1:
            return SerialBackend().run(system, dataset, jobs)
        if len(jobs) >= 2:
            # Job-level parallelism: the dataset ships to the workers
            # once, via the pool initializer.
            pool = self._job_pool_of(system, dataset, key)
            return list(pool.map(_run_job_in_worker, jobs))
        # A lone job cannot be split across workers at the job level;
        # parallelise inside it instead, across the dataset's traces.
        workers = min(self.max_workers, max(1, len(dataset)))
        if workers <= 1:
            return SerialBackend().run(system, dataset, jobs)
        pool = self._trace_pool_of(workers)

        def trace_mapper(fn, traces):
            # Chunking bounds how often fn (carrying the LPPM, which
            # may embed dataset-sized state like an elastic density
            # prior) is pickled: once per chunk, not once per trace.
            chunksize = max(1, len(traces) // workers)
            return pool.map(fn, traces, chunksize=chunksize)

        return [
            execute_job(system, dataset, job, mapper=trace_mapper)
            for job in jobs
        ]
