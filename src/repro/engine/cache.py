"""Two-tier, content-addressed result cache.

Tier 1 is a process-local dict; tier 2 an optional on-disk store of one
JSON file per fingerprint (sharded by the fingerprint's first two hex
digits to keep directories small).  The disk tier is what makes the
offline sweep a durable artefact: a second process — or a release
shipped months later — re-running the same sweep on the same data
performs zero protect + measure executions.

Values are ``(privacy, utility)`` pairs keyed by the job fingerprint of
:func:`repro.engine.jobs.job_fingerprint`; the files are written
through :mod:`repro.framework.store` so they carry the library's usual
format versioning and survive releases.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Optional, Tuple, Union

__all__ = ["ResultCache"]

PathLike = Union[str, Path]


class ResultCache:
    """Memory-over-disk cache of evaluation results.

    Parameters
    ----------
    cache_dir:
        Directory of the persistent tier; ``None`` keeps the cache
        purely in-memory (the seed behaviour, minus the per-runner
        fragmentation).
    """

    def __init__(self, cache_dir: Optional[PathLike] = None) -> None:
        self._memory: Dict[str, Tuple[float, float]] = {}
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        #: Cache hit counters, by tier.
        self.memory_hits = 0
        self.disk_hits = 0
        self.misses = 0

    def _path_of(self, fingerprint: str) -> Path:
        assert self.cache_dir is not None
        return self.cache_dir / fingerprint[:2] / f"{fingerprint}.json"

    def get(self, fingerprint: str) -> Optional[Tuple[float, float]]:
        """(privacy, utility) for a fingerprint, or ``None`` on a miss.

        A disk hit is promoted into the memory tier.  Unreadable or
        stale-format files count as misses — the bad file is
        quarantined (``<name>.corrupt``) and the entry is simply
        recomputed and rewritten.
        """
        value = self.get_memory(fingerprint)
        if value is not None:
            return value
        value = self.read_disk(fingerprint)
        if value is not None:
            self.promote(fingerprint, value)
            return value
        self.note_miss()
        return None

    def get_memory(self, fingerprint: str) -> Optional[Tuple[float, float]]:
        """Memory-tier-only lookup; counts a hit, never a miss.

        The engine probes this tier under its bookkeeping lock and
        defers :meth:`read_disk` until after releasing it, so a
        warm-disk batch's file reads never stall concurrent callers.
        """
        value = self._memory.get(fingerprint)
        if value is not None:
            self.memory_hits += 1
        return value

    def peek_memory(self, fingerprint: str) -> Optional[Tuple[float, float]]:
        """Memory-tier lookup that leaves every counter untouched.

        For re-probes of fingerprints already counted once (the engine
        re-checks its miss set after waiting for a backend lease, in
        case a concurrent batch settled them) — a second count would
        make the hit/miss totals stop reconciling with requested work.
        """
        return self._memory.get(fingerprint)

    def read_disk(self, fingerprint: str) -> Optional[Tuple[float, float]]:
        """Disk-tier read with no counter or memory mutation.

        Pure IO — safe to call without any lock; pair with
        :meth:`promote` (hit) or :meth:`note_miss` (miss) to keep the
        counters truthful.
        """
        if self.cache_dir is None:
            return None
        # Imported here, not at module level: the engine sits below
        # the framework layer, whose store module provides the
        # versioned record format.
        from ..framework.store import read_eval_record

        record = read_eval_record(self._path_of(fingerprint))
        if record is not None:
            return (record["privacy"], record["utility"])
        return None

    def promote(self, fingerprint: str, value: Tuple[float, float]) -> None:
        """Install a disk-read value into the memory tier (a disk hit)."""
        self._memory[fingerprint] = value
        self.disk_hits += 1

    def note_miss(self) -> None:
        """Record one miss (the caller will compute and re-``put``)."""
        self.misses += 1

    def put(
        self,
        fingerprint: str,
        privacy: float,
        utility: float,
        provenance: Optional[dict] = None,
    ) -> None:
        """Store a freshly computed result in both tiers.

        ``provenance`` (system name, params, seed, dataset fingerprint)
        is persisted alongside the values so a cache directory can be
        audited without the code that produced it.
        """
        self.put_memory(fingerprint, privacy, utility)
        self.write_disk(fingerprint, privacy, utility, provenance)

    def put_memory(
        self, fingerprint: str, privacy: float, utility: float
    ) -> None:
        """Insert into the memory tier only — a dict write, no IO.

        The engine calls this under its bookkeeping lock and defers
        :meth:`write_disk` until after releasing it, so concurrent
        workers never queue behind another chunk's disk flush.
        """
        self._memory[fingerprint] = (float(privacy), float(utility))

    def write_disk(
        self,
        fingerprint: str,
        privacy: float,
        utility: float,
        provenance: Optional[dict] = None,
    ) -> None:
        """Persist one result to the disk tier (no-op without one).

        Safe to call without any lock: concurrent writers of the same
        fingerprint write the same content, and a torn file is read
        back as a miss and simply rewritten.  The write is best-effort
        through the ``engine_results`` circuit breaker: on a full or
        dying disk the result simply stays memory-only (a recorded
        miss on the next cold lookup) instead of failing the sweep.
        """
        if self.cache_dir is not None:
            from ..framework.store import save_eval_record
            from ..resilience.breaker import write_guarded

            record = dict(provenance or {})
            record.update(
                fingerprint=fingerprint,
                privacy=float(privacy),
                utility=float(utility),
            )
            write_guarded(
                "engine_results",
                lambda: save_eval_record(
                    record, self._path_of(fingerprint)
                ),
            )

    @property
    def stats(self) -> Dict[str, int]:
        """Hit/miss counters and entry count, JSON-ready.

        This is the cache's contribution to the service's ``/metrics``
        endpoint; ``hits`` totals both tiers.
        """
        return {
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "hits": self.memory_hits + self.disk_hits,
            "misses": self.misses,
            "entries": len(self._memory),
        }

    def __len__(self) -> int:
        return len(self._memory)

    def clear_memory(self) -> None:
        """Drop the in-memory tier (the disk tier is untouched)."""
        self._memory.clear()
