"""The evaluation engine: batched execution behind a two-tier cache.

This is the middleware layer of the library: every component that needs
a (privacy, utility) measurement — the experiment runner, the ALP
baseline, the configurator, model transfer, the benchmarks — submits
:class:`EvalJob` batches here instead of running protections itself.
Centralising the service buys three things at once:

* **throughput** — a batch fans out over a process pool, chosen by the
  ``engine`` knob (``"auto"`` picks the pool whenever there is real
  parallelism to exploit);
* **durability** — results are content-addressed and, with a
  ``cache_dir``, persisted as versioned JSON, so sweeps survive across
  processes and releases;
* **honest accounting** — :attr:`n_executions` counts real, non-cached
  protect + measure executions, which is the quantity the paper's cost
  comparisons are stated in.
"""

from __future__ import annotations

import weakref
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from .backends import (
    ExecutionBackend,
    ProcessPoolBackend,
    SerialBackend,
    default_max_workers,
)
from .cache import ResultCache
from .jobs import (
    EvalJob,
    EvalResult,
    dataset_fingerprint,
    job_fingerprint,
    system_signature,
)

if TYPE_CHECKING:
    from ..framework.spec import SystemDefinition
    from ..mobility import Dataset

__all__ = ["EvaluationEngine", "ENGINE_CHOICES"]

ENGINE_CHOICES = ("auto", "serial", "process")


class EvaluationEngine:
    """Executes evaluation batches through a backend and a result cache.

    Parameters
    ----------
    engine:
        ``"serial"`` (default) runs in-process; ``"process"`` always
        uses the pool (and fans a lone job's per-trace protection out
        to it); ``"auto"`` picks the pool per batch when more than one
        job misses the cache and more than one worker is available —
        single-job batches stay serial under ``"auto"``, since pool
        overhead usually beats the win on one evaluation.
    jobs:
        Worker count for the process backend (default: CPU count).
    cache_dir:
        Optional directory for the persistent cache tier.
    """

    def __init__(
        self,
        engine: str = "serial",
        jobs: Optional[int] = None,
        cache_dir=None,
    ) -> None:
        if engine not in ENGINE_CHOICES:
            raise ValueError(f"engine must be one of {ENGINE_CHOICES}")
        if jobs is not None and jobs < 1:
            raise ValueError("jobs must be at least 1")
        self.policy = engine
        self.max_workers = int(jobs or default_max_workers())
        self.cache = ResultCache(cache_dir)
        self._serial = SerialBackend()
        self._process: Optional[ProcessPoolBackend] = None
        #: Real (non-cached) protect + measure executions performed.
        self.n_executions = 0
        # Dataset fingerprints are O(dataset) to compute; memoise per
        # engine.  Entries hold weak references so a long-lived engine
        # does not pin every dataset it ever saw, and each hit verifies
        # the referent is still the same object (a recycled id with a
        # dead reference recomputes instead of aliasing).
        self._dataset_fp: Dict[int, Tuple[weakref.ref, str]] = {}

    # ------------------------------------------------------------------
    # Backend selection
    # ------------------------------------------------------------------
    def _process_backend(self) -> ProcessPoolBackend:
        if self._process is None:
            self._process = ProcessPoolBackend(self.max_workers)
        return self._process

    def _backend_for(self, n_misses: int) -> ExecutionBackend:
        if self.policy == "serial":
            return self._serial
        if self.policy == "process":
            return self._process_backend()
        # auto: parallelism pays only when there is work to spread.
        if self.max_workers > 1 and n_misses > 1:
            return self._process_backend()
        return self._serial

    # ------------------------------------------------------------------
    # Fingerprinting
    # ------------------------------------------------------------------
    def fingerprint_of(self, dataset: "Dataset") -> str:
        """Memoised content fingerprint of a dataset."""
        key = id(dataset)
        entry = self._dataset_fp.get(key)
        if entry is not None and entry[0]() is dataset:
            return entry[1]
        fp = dataset_fingerprint(dataset)
        if len(self._dataset_fp) > 64:
            # Drop entries whose datasets are gone before adding more.
            self._dataset_fp = {
                k: (ref, v)
                for k, (ref, v) in self._dataset_fp.items()
                if ref() is not None
            }
        self._dataset_fp[key] = (weakref.ref(dataset), fp)
        return fp

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(
        self,
        system: "SystemDefinition",
        dataset: "Dataset",
        jobs: Sequence[EvalJob],
    ) -> List[EvalResult]:
        """Evaluate a batch, returning results in job order.

        Cache hits (either tier) come back with ``cached=True`` and do
        not count as executions; duplicate jobs within the batch are
        executed once, with only the first occurrence marked as a real
        execution.
        """
        jobs = list(jobs)
        if not jobs:
            return []
        ds_fp = self.fingerprint_of(dataset)
        sig = system_signature(system)
        fingerprints = [job_fingerprint(ds_fp, sig, job) for job in jobs]

        results: List[Optional[EvalResult]] = [None] * len(jobs)
        pending: Dict[str, List[int]] = {}
        for i, (job, fp) in enumerate(zip(jobs, fingerprints)):
            if fp in pending:
                # Duplicate of a job already bound for execution: fold
                # it in without a second cache lookup, so the hit/miss
                # counters reconcile with distinct work requested.
                pending[fp].append(i)
                continue
            hit = self.cache.get(fp)
            if hit is not None:
                results[i] = EvalResult(
                    job=job, privacy=hit[0], utility=hit[1],
                    cached=True, fingerprint=fp,
                )
            else:
                pending.setdefault(fp, []).append(i)

        if pending:
            to_run = [jobs[indices[0]] for indices in pending.values()]
            backend = self._backend_for(len(to_run))
            values = backend.run(system, dataset, to_run, key=(sig, ds_fp))
            self.n_executions += len(to_run)
            for (fp, indices), (privacy, utility) in zip(
                pending.items(), values
            ):
                job = jobs[indices[0]]
                self.cache.put(
                    fp, privacy, utility,
                    provenance={
                        "system_name": system.name,
                        "params": job.params_dict,
                        "seed": job.seed,
                        "dataset_fingerprint": ds_fp,
                    },
                )
                for rank, i in enumerate(indices):
                    results[i] = EvalResult(
                        job=jobs[i], privacy=privacy, utility=utility,
                        cached=rank > 0, fingerprint=fp,
                    )
        return results  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release backend resources (worker pools); idempotent."""
        if self._process is not None:
            self._process.close()

    def __enter__(self) -> "EvaluationEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def stats(self) -> Dict[str, int]:
        """Execution and cache counters, for reports and benchmarks.

        The cache-side keys come from :attr:`ResultCache.stats`;
        ``executions`` counts real protect + measure runs, the quantity
        the paper's cost comparisons — and the service's ``/metrics``
        endpoint — are stated in.
        """
        return {"executions": self.n_executions, **self.cache.stats}

    def __repr__(self) -> str:
        cache_dir = self.cache.cache_dir
        return (
            f"EvaluationEngine(engine={self.policy!r}, "
            f"jobs={self.max_workers}, cache_dir={str(cache_dir)!r})"
            if cache_dir is not None
            else f"EvaluationEngine(engine={self.policy!r}, "
                 f"jobs={self.max_workers})"
        )
