"""The evaluation engine: batched execution behind a two-tier cache.

This is the middleware layer of the library: every component that needs
a (privacy, utility) measurement — the experiment runner, the ALP
baseline, the configurator, model transfer, the benchmarks — submits
:class:`EvalJob` batches here instead of running protections itself.
Centralising the service buys three things at once:

* **throughput** — a batch fans out over a process pool, chosen by the
  ``engine`` knob (``"auto"`` picks the pool whenever there is real
  parallelism to exploit);
* **durability** — results are content-addressed and, with a
  ``cache_dir``, persisted as versioned JSON, so sweeps survive across
  processes and releases;
* **honest accounting** — :attr:`n_executions` counts real, non-cached
  protect + measure executions, which is the quantity the paper's cost
  comparisons are stated in.

The engine is safe to share between threads: cache lookups, execution
counters and fingerprint memoisation sit under one internal lock, while
the protect + measure work itself runs outside it.  The configuration
service's job workers rely on this — several jobs drive one engine
concurrently, each observing its own cost through thread-local
:meth:`EvaluationEngine.measure` counters.

Long batches execute in *chunks* so that callers can observe progress
and cancel between chunks: install per-thread hooks with
:meth:`EvaluationEngine.hooks` and the engine reports completed jobs
after every chunk and raises :class:`EvaluationCancelled` as soon as
the cancellation predicate turns true.  Results computed before a
cancellation are already cached — a resubmitted batch resumes instead
of restarting.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..analysis import AnalysisCache, use_cache
from .backends import (
    ExecutionBackend,
    ProcessPoolBackend,
    SerialBackend,
    default_max_workers,
)
from .cache import ResultCache
from .jobs import (
    EvalJob,
    EvalResult,
    dataset_fingerprint,
    job_fingerprint,
    system_signature,
)

if TYPE_CHECKING:
    from ..framework.spec import SystemDefinition
    from ..mobility import Dataset

__all__ = ["EvaluationEngine", "EvaluationCancelled", "ENGINE_CHOICES"]

ENGINE_CHOICES = ("auto", "serial", "process")


class EvaluationCancelled(RuntimeError):
    """Raised between execution chunks when the installed cancellation
    predicate turns true.  Everything computed before the cancellation
    is already in the result cache."""


def _chunk_bounds(n: int, size: int):
    """(low, high) slice bounds splitting ``n`` items into chunks.

    A trailing 1-item chunk is avoided when chunks are larger than one
    item: pooled backends treat a lone job specially (trace-level
    parallelism through a *second* pool), which would spin that pool
    up mid-batch for the tail of e.g. 9 jobs on 8 workers.  The tail
    is merged into the previous chunk instead (9 on 8 -> one chunk of
    9; 5 on 2 -> (2, 3)) — a slightly oversized final chunk costs one
    extra task per worker at most, a second pool costs a process spawn.
    """
    bounds = list(range(0, n, size)) + [n]
    if size > 1 and len(bounds) >= 3 and bounds[-1] - bounds[-2] == 1:
        del bounds[-2]
    return zip(bounds[:-1], bounds[1:])


class _Hooks:
    """Per-thread observation hooks, installed by :meth:`~EvaluationEngine.hooks`.

    ``batch_start(n)`` announces that ``n`` jobs entered :meth:`run`;
    ``jobs_done(n)`` reports ``n`` of them completed (cache hits count
    immediately); ``should_cancel()`` is polled between chunks.
    """

    __slots__ = ("batch_start", "jobs_done", "should_cancel")

    def __init__(
        self,
        batch_start: Optional[Callable[[int], None]] = None,
        jobs_done: Optional[Callable[[int], None]] = None,
        should_cancel: Optional[Callable[[], bool]] = None,
    ) -> None:
        self.batch_start = batch_start
        self.jobs_done = jobs_done
        self.should_cancel = should_cancel


class _ExecutionCounter:
    """Mutable per-thread execution count, yielded by :meth:`measure`."""

    __slots__ = ("count",)

    def __init__(self) -> None:
        self.count = 0


class EvaluationEngine:
    """Executes evaluation batches through a backend and a result cache.

    Parameters
    ----------
    engine:
        ``"serial"`` (default) runs in-process; ``"process"`` always
        uses the pool (and fans a lone job's per-trace protection out
        to it); ``"auto"`` picks the pool per batch when more than one
        job misses the cache and more than one worker is available —
        single-job batches stay serial under ``"auto"``, since pool
        overhead usually beats the win on one evaluation.
    jobs:
        Worker count for the process backend (default: CPU count).
    cache_dir:
        Optional directory for the persistent cache tier.
    """

    def __init__(
        self,
        engine: str = "serial",
        jobs: Optional[int] = None,
        cache_dir=None,
    ) -> None:
        if engine not in ENGINE_CHOICES:
            raise ValueError(f"engine must be one of {ENGINE_CHOICES}")
        if jobs is not None and jobs < 1:
            raise ValueError("jobs must be at least 1")
        self.policy = engine
        self.max_workers = int(jobs or default_max_workers())
        self.cache = ResultCache(cache_dir)
        # A persistent cache_dir promotes the analysis cache too: its
        # spill tier lives under cache_dir/analysis (a name no 2-hex
        # result shard can collide with), so restarted daemons, forked
        # service workers and pool workers all share one warm set of
        # stay-point/POI extractions.
        self._analysis_spill_dir = (
            self.cache.cache_dir / "analysis"
            if self.cache.cache_dir is not None else None
        )
        #: Derived-artifact cache (stay points, POIs, heatmap counts)
        #: shared by every batch this engine runs in-process; pooled
        #: workers hold their own per-process cache, seeded with the
        #: dataset fingerprint by the pool initializer.  Its LRU bound
        #: grows to fit whatever dataset a batch announces, so large
        #: fleets cannot thrash their own actual-side artifacts.
        self.analysis = AnalysisCache(spill_dir=self._analysis_spill_dir)
        self._serial = SerialBackend()
        self._process: Optional[ProcessPoolBackend] = None
        #: Real (non-cached) protect + measure executions performed.
        self.n_executions = 0
        # Guards the cache, the execution counter and backend
        # construction.  Never held while a backend runs protect +
        # measure work, so concurrent callers only serialise on
        # bookkeeping.
        self._lock = threading.RLock()
        # Per-thread state: observation hooks and measure() counters.
        self._tls = threading.local()

    # ------------------------------------------------------------------
    # Per-thread hooks and accounting
    # ------------------------------------------------------------------
    @contextmanager
    def hooks(
        self,
        batch_start: Optional[Callable[[int], None]] = None,
        jobs_done: Optional[Callable[[int], None]] = None,
        should_cancel: Optional[Callable[[], bool]] = None,
    ):
        """Install progress/cancellation hooks for the calling thread.

        Inside the ``with`` block, every :meth:`run` on this thread
        announces its batch size, reports completions chunk by chunk,
        and polls ``should_cancel`` between chunks (raising
        :class:`EvaluationCancelled` when it returns true).  The
        service's job manager wraps each job execution in exactly one
        of these blocks.
        """
        previous = getattr(self._tls, "hooks", None)
        self._tls.hooks = _Hooks(batch_start, jobs_done, should_cancel)
        try:
            yield
        finally:
            self._tls.hooks = previous

    @contextmanager
    def measure(self):
        """Count this thread's real executions within the block.

        Yields a counter whose ``count`` is the number of non-cached
        protect + measure executions the calling thread triggered —
        the concurrency-safe version of diffing :attr:`n_executions`,
        which other threads may move at any time.  Nested blocks each
        see their own total.
        """
        counter = _ExecutionCounter()
        stack = getattr(self._tls, "counters", None)
        if stack is None:
            stack = self._tls.counters = []
        stack.append(counter)
        try:
            yield counter
        finally:
            stack.remove(counter)

    def _note_executions(self, n: int) -> None:
        """Record ``n`` fresh executions (lock held by the caller)."""
        self.n_executions += n
        for counter in getattr(self._tls, "counters", ()):
            counter.count += n

    def _check_cancelled(self, hooks: Optional[_Hooks]) -> None:
        if hooks is not None and hooks.should_cancel is not None \
                and hooks.should_cancel():
            raise EvaluationCancelled(
                "evaluation batch cancelled between chunks"
            )

    # ------------------------------------------------------------------
    # Backend selection
    # ------------------------------------------------------------------
    def _process_backend(self) -> ProcessPoolBackend:
        if self._process is None:
            self._process = ProcessPoolBackend(
                self.max_workers,
                analysis_spill_dir=self._analysis_spill_dir,
            )
        return self._process

    def _backend_for(self, n_misses: int) -> ExecutionBackend:
        if self.policy == "serial":
            return self._serial
        if self.policy == "process":
            return self._process_backend()
        # auto: parallelism pays only when there is work to spread.
        if self.max_workers > 1 and n_misses > 1:
            return self._process_backend()
        return self._serial

    def _chunk_size(self, backend: ExecutionBackend) -> int:
        """Jobs per execution chunk: the progress/cancel granularity.

        Serial execution reports after every job; a pooled backend
        keeps every worker busy within a chunk, so progress lands at
        worker-count strides and cancellation reacts within one stride.
        """
        if backend is self._serial:
            return 1
        return max(1, self.max_workers)

    # ------------------------------------------------------------------
    # Fingerprinting
    # ------------------------------------------------------------------
    def fingerprint_of(self, dataset: "Dataset") -> str:
        """Memoised content fingerprint of a dataset.

        The memo lives module-wide in :mod:`repro.engine.jobs` (keyed
        weakly by instance), so scenario resolution, the response
        cache, the analysis cache and every engine share one hash per
        loaded dataset.
        """
        return dataset_fingerprint(dataset)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(
        self,
        system: "SystemDefinition",
        dataset: "Dataset",
        jobs: Sequence[EvalJob],
    ) -> List[EvalResult]:
        """Evaluate a batch, returning results in job order.

        Cache hits (either tier) come back with ``cached=True`` and do
        not count as executions; duplicate jobs within the batch are
        executed once, with only the first occurrence marked as a real
        execution.  With :meth:`hooks` installed on the calling thread,
        progress is reported as chunks complete and the batch raises
        :class:`EvaluationCancelled` between chunks once the predicate
        turns true (already-computed chunks stay cached).
        """
        jobs = list(jobs)
        if not jobs:
            return []
        hooks: Optional[_Hooks] = getattr(self._tls, "hooks", None)
        ds_fp = self.fingerprint_of(dataset)
        # Announce the dataset to the analysis cache: its traces get
        # fingerprint-derived content keys, so actual-side artifacts
        # (stay points, POIs, heatmap counts) are shared across every
        # job of every batch over this dataset without re-hashing.
        self.analysis.seed_dataset(dataset, ds_fp)
        sig = system_signature(system)
        fingerprints = [job_fingerprint(ds_fp, sig, job) for job in jobs]

        if hooks is not None and hooks.batch_start is not None:
            hooks.batch_start(len(jobs))

        results: List[Optional[EvalResult]] = [None] * len(jobs)
        unknown: Dict[str, List[int]] = {}
        seen_hits: Dict[str, Tuple[float, float]] = {}
        n_hits = 0
        with self._lock:
            # Memory tier only under the lock: pure dict lookups.
            # Duplicates fold into their first occurrence — hit or
            # miss — so the cache counters reconcile with distinct
            # work requested, not with batch length.
            for i, (job, fp) in enumerate(zip(jobs, fingerprints)):
                if fp in unknown:
                    unknown[fp].append(i)
                    continue
                hit = seen_hits.get(fp)
                if hit is None:
                    hit = self.cache.get_memory(fp)
                if hit is not None:
                    seen_hits[fp] = hit
                    results[i] = EvalResult(
                        job=job, privacy=hit[0], utility=hit[1],
                        cached=True, fingerprint=fp,
                    )
                    n_hits += 1
                else:
                    unknown.setdefault(fp, []).append(i)
        pending: Dict[str, List[int]] = {}
        if unknown:
            # Disk-tier probes are file reads — done OUTSIDE the lock
            # (a warm-disk cold-memory batch would otherwise stall
            # every concurrent caller for one JSON load per job), then
            # settled under a short lock hold.
            disk = {fp: self.cache.read_disk(fp) for fp in unknown}
            with self._lock:
                for fp, indices in unknown.items():
                    value = disk[fp]
                    if value is not None:
                        self.cache.promote(fp, value)
                        for i in indices:
                            results[i] = EvalResult(
                                job=jobs[i], privacy=value[0],
                                utility=value[1], cached=True,
                                fingerprint=fp,
                            )
                        n_hits += len(indices)
                    else:
                        self.cache.note_miss()
                        pending[fp] = indices
        if hooks is not None and hooks.jobs_done is not None and n_hits:
            hooks.jobs_done(n_hits)

        if pending:
            with self._lock:
                backend = self._backend_for(len(pending))
            chunk_size = self._chunk_size(backend)
            items = list(pending.items())
            # Lease a stateful backend for the whole chunk series: two
            # concurrent batches over different datasets then alternate
            # per batch (one warm-pool rebuild each) instead of per
            # chunk (a rebuild at every alternation).  Acquisition
            # polls the cancellation hook so a queued batch can still
            # be cancelled while it waits for the backend.
            lease = backend.batch_lock
            if lease is not None:
                if hooks is None or hooks.should_cancel is None:
                    # No cancellation to observe: a plain blocking
                    # acquire starts work the instant the lease frees,
                    # instead of up to one poll interval later.
                    lease.acquire()
                else:
                    while not lease.acquire(timeout=0.1):
                        self._check_cancelled(hooks)
            try:
                for low, high in _chunk_bounds(len(items), chunk_size):
                    chunk = items[low:high]
                    self._check_cancelled(hooks)
                    # Re-probe before executing: a concurrent batch may
                    # have computed these jobs while this one waited
                    # for the lease (or ran its earlier chunks) — a
                    # repeat must stay free, not run twice.
                    settled = 0
                    fresh = []
                    with self._lock:
                        for fp, indices in chunk:
                            hit = self.cache.peek_memory(fp)
                            if hit is None:
                                fresh.append((fp, indices))
                                continue
                            for i in indices:
                                results[i] = EvalResult(
                                    job=jobs[i], privacy=hit[0],
                                    utility=hit[1], cached=True,
                                    fingerprint=fp,
                                )
                            settled += len(indices)
                    if hooks is not None and hooks.jobs_done is not None \
                            and settled:
                        hooks.jobs_done(settled)
                    if not fresh:
                        continue
                    chunk = fresh
                    to_run = [jobs[indices[0]] for _, indices in chunk]
                    # The engine's analysis cache is ambient while the
                    # backend runs: serial (and lone-job trace-level)
                    # execution evaluates metrics on this thread and
                    # hits it directly; pooled workers ignore it and
                    # use their own per-process cache instead.
                    with use_cache(self.analysis):
                        values = backend.run(
                            system, dataset, to_run, key=(sig, ds_fp)
                        )
                    with self._lock:
                        # Only dict writes and counters under the lock;
                        # the disk tier is flushed after releasing it so
                        # other workers' bookkeeping never queues behind
                        # IO.
                        self._note_executions(len(to_run))
                        for (fp, _), (privacy, utility) in zip(
                            chunk, values
                        ):
                            self.cache.put_memory(fp, privacy, utility)
                    for (fp, indices), (privacy, utility) in zip(
                        chunk, values
                    ):
                        job = jobs[indices[0]]
                        self.cache.write_disk(
                            fp, privacy, utility,
                            provenance={
                                "system_name": system.name,
                                "params": job.params_dict,
                                "seed": job.seed,
                                "dataset_fingerprint": ds_fp,
                            },
                        )
                        for rank, i in enumerate(indices):
                            results[i] = EvalResult(
                                job=jobs[i], privacy=privacy,
                                utility=utility, cached=rank > 0,
                                fingerprint=fp,
                            )
                    if hooks is not None and hooks.jobs_done is not None:
                        hooks.jobs_done(
                            sum(len(indices) for _, indices in chunk)
                        )
            finally:
                if lease is not None:
                    lease.release()
        return results  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self, timeout_s: Optional[float] = None) -> None:
        """Release backend resources (worker pools); idempotent.

        ``timeout_s`` bounds the wait for an in-flight batch before
        pools are released without draining — the daemon's graceful
        shutdown passes its grace period here so exit stays bounded.
        """
        with self._lock:
            process = self._process
        if process is not None:
            process.close(timeout_s=timeout_s)

    def __enter__(self) -> "EvaluationEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def stats(self) -> Dict[str, int]:
        """Execution and cache counters, for reports and benchmarks.

        The cache-side keys come from :attr:`ResultCache.stats`;
        ``executions`` counts real protect + measure runs, the quantity
        the paper's cost comparisons — and the service's ``/metrics``
        endpoint — are stated in.  The ``analysis_*`` keys re-export
        the derived-artifact cache's counters
        (:attr:`AnalysisCache.stats`) under the same roof.  With the
        process backend those counters cover only work done in this
        process (cache hits, lone-job trace-level batches); pooled
        workers cache in their own processes, whose counters are not
        aggregated here.
        """
        with self._lock:
            stats = {"executions": self.n_executions, **self.cache.stats}
        for key, value in self.analysis.stats.items():
            stats[f"analysis_{key}"] = value
        return stats

    def __repr__(self) -> str:
        cache_dir = self.cache.cache_dir
        return (
            f"EvaluationEngine(engine={self.policy!r}, "
            f"jobs={self.max_workers}, cache_dir={str(cache_dir)!r})"
            if cache_dir is not None
            else f"EvaluationEngine(engine={self.policy!r}, "
                 f"jobs={self.max_workers})"
        )
