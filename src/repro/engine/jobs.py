"""Evaluation jobs and content fingerprints.

An :class:`EvalJob` names one (parameter assignment, seed) execution of
the protect-and-measure pipeline; the engine identifies its result by a
*content fingerprint* — a SHA-256 over everything the result depends
on: the dataset's records, the system (its name and both metric
configurations), the sorted parameters and the protection seed.  Two
processes, machines or releases computing the same fingerprint are
asking for the same number, which is what lets the disk cache survive
across all of them.
"""

from __future__ import annotations

import functools
import hashlib
import json
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Mapping, Optional, Tuple

import numpy as np

from ..mobility import Dataset

if TYPE_CHECKING:  # imported lazily to keep engine below framework
    from ..framework.spec import SystemDefinition

__all__ = [
    "EvalJob",
    "EvalResult",
    "dataset_fingerprint",
    "system_signature",
    "job_fingerprint",
]


@dataclass(frozen=True)
class EvalJob:
    """One requested (protect + measure) execution.

    ``params`` is stored as a sorted tuple of (name, value) pairs so
    jobs are hashable and two dict orderings compare equal.
    """

    params: Tuple[Tuple[str, float], ...]
    seed: int

    @classmethod
    def make(cls, params: Mapping[str, float], seed: int) -> "EvalJob":
        """Build a job from any parameter mapping."""
        return cls(
            params=tuple(sorted((str(k), float(v)) for k, v in params.items())),
            seed=int(seed),
        )

    @property
    def params_dict(self) -> Dict[str, float]:
        """The parameter assignment as a plain dict."""
        return dict(self.params)


@dataclass(frozen=True)
class EvalResult:
    """The engine's answer for one job."""

    job: EvalJob
    privacy: float
    utility: float
    #: True when the value came from a cache tier, i.e. no protection
    #: or metric code actually ran for this request.
    cached: bool
    #: Content fingerprint the result is stored under.
    fingerprint: str


def dataset_fingerprint(dataset: Dataset) -> str:
    """SHA-256 over every record of every trace, in user order.

    The hash covers user ids, timestamps and coordinates, so any edit
    to the data (cleaning, subsetting, regeneration with a new seed)
    invalidates previously cached results.
    """
    digest = hashlib.sha256()
    for trace in dataset.traces:
        digest.update(trace.user.encode("utf-8"))
        digest.update(b"\x00")
        digest.update(trace.times_s.tobytes())
        digest.update(trace.lats.tobytes())
        digest.update(trace.lons.tobytes())
    return digest.hexdigest()


def _attrs_of(obj) -> Optional[list]:
    """(name, value) pairs of an object's configuration, if reachable.

    Covers both ``__dict__`` instances and slotted classes; ``None``
    means the object exposes no attributes to render.
    """
    try:
        return sorted(vars(obj).items())
    except TypeError:
        pass
    names = []
    for klass in type(obj).__mro__:
        slots = getattr(klass, "__slots__", ()) or ()
        names.extend([slots] if isinstance(slots, str) else list(slots))
    if not names:
        return None
    out = []
    for name in names:
        if name in ("__weakref__", "__dict__"):
            continue
        try:
            out.append((name, getattr(obj, name)))
        except AttributeError:
            continue
    return sorted(out)


def _stable_repr(value, depth: int = 0) -> str:
    """A value-based rendering with no memory addresses in it.

    The default ``repr`` of address-printing objects (and the ``...``
    truncation of large arrays) would make signatures differ across
    processes — or worse, collide after an address is recycled — so
    everything is rendered from *values*: primitives verbatim, arrays
    as content hashes, containers and attribute-bearing objects
    recursively (to a bounded depth).
    """
    if depth > 4:
        return f"<deep:{type(value).__name__}>"
    if value is None or isinstance(value, (bool, int, float, str, bytes)):
        return repr(value)
    if isinstance(value, np.ndarray):
        digest = hashlib.sha256(
            np.ascontiguousarray(value).tobytes()
        ).hexdigest()[:16]
        return f"ndarray({value.dtype},{value.shape},{digest})"
    if isinstance(value, np.generic):
        return repr(value.item())
    if isinstance(value, (list, tuple, set, frozenset)):
        items = [_stable_repr(v, depth + 1) for v in value]
        if isinstance(value, (set, frozenset)):
            items = sorted(items)
        return f"{type(value).__name__}[{','.join(items)}]"
    if isinstance(value, Mapping):
        items = sorted(
            f"{_stable_repr(k, depth + 1)}:{_stable_repr(v, depth + 1)}"
            for k, v in value.items()
        )
        return "{" + ",".join(items) + "}"
    attrs = _attrs_of(value)
    name = f"{type(value).__module__}.{type(value).__qualname__}"
    if attrs is not None:
        rendered = ",".join(
            f"{k}={_stable_repr(v, depth + 1)}" for k, v in attrs
        )
        return f"{name}({rendered})"
    rendered = repr(value)
    # Last resort for attribute-less objects whose repr embeds an
    # address: fall back to the bare type (deterministic, if lossy).
    return name if " at 0x" in rendered else rendered


def _metric_signature(metric) -> str:
    """A stable textual identity for a metric instance.

    The attribute walk captures the configuration (e.g. a POI match
    radius or a grid cell size) that the metric's registry name alone
    does not.
    """
    return _stable_repr(metric)


def _factory_signature(factory) -> str:
    """Identity of the LPPM factory behind a system.

    Two systems may share a name and metrics yet build different
    mechanisms; the factory identity keeps their cache entries apart.
    A qualified name is enough for module-level classes and functions,
    but local functions and lambdas all share a ``<locals>`` qualname,
    so those also hash their code object and captured closure values;
    partials and callable instances render their configuration.  The
    result is deterministic across processes (no memory addresses), so
    the disk tier stays shareable.
    """
    if isinstance(factory, functools.partial):
        inner = _factory_signature(factory.func)
        args = ",".join(_stable_repr(a) for a in factory.args)
        kwargs = ",".join(
            f"{k}={_stable_repr(v)}"
            for k, v in sorted((factory.keywords or {}).items())
        )
        return f"partial({inner};{args};{kwargs})"
    module = getattr(factory, "__module__", "?")
    qualname = getattr(factory, "__qualname__", None)
    code = getattr(factory, "__code__", None)
    if qualname is None:
        # A callable instance: its type plus its configuration.
        return _stable_repr(factory)
    base = f"{module}.{qualname}"
    if code is not None and ("<lambda>" in qualname or "<locals>" in qualname):
        digest = hashlib.sha256(code.co_code)
        digest.update(repr(code.co_consts).encode("utf-8"))
        for cell in getattr(factory, "__closure__", None) or ():
            try:
                digest.update(_stable_repr(cell.cell_contents).encode("utf-8"))
            except ValueError:
                digest.update(b"<empty cell>")
        base += f"#{digest.hexdigest()[:16]}"
    return base


def system_signature(system: "SystemDefinition") -> str:
    """Identity of a system for caching: name, mechanism and metrics."""
    return "|".join(
        [
            system.name,
            _factory_signature(system.lppm_factory),
            _metric_signature(system.privacy_metric),
            _metric_signature(system.utility_metric),
        ]
    )


def _library_version() -> str:
    # Imported lazily: the package root imports this module.
    from .. import __version__

    return __version__


def job_fingerprint(dataset_fp: str, system_sig: str, job: EvalJob) -> str:
    """Content fingerprint of one job's result.

    The library version is part of the key: results depend on the
    LPPM/metric *implementations*, not just their configuration, so a
    release that fixes numerics must not be answered with the previous
    release's cached values.  Upgrading therefore cold-starts a shared
    ``cache_dir`` — the safe direction.
    """
    payload = json.dumps(
        {
            "library": _library_version(),
            "dataset": dataset_fp,
            "system": system_sig,
            "params": [[name, repr(value)] for name, value in job.params],
            "seed": job.seed,
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()
