"""Evaluation jobs and content fingerprints.

An :class:`EvalJob` names one (parameter assignment, seed) execution of
the protect-and-measure pipeline; the engine identifies its result by a
*content fingerprint* — a SHA-256 over everything the result depends
on: the dataset's records, the system (its name and both metric
configurations), the sorted parameters and the protection seed.  Two
processes, machines or releases computing the same fingerprint are
asking for the same number, which is what lets the disk cache survive
across all of them.
"""

from __future__ import annotations

import functools
import hashlib
import json
import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Mapping, Tuple

from ..analysis.cache import WeakIdentityMemo
from ..analysis.signature import stable_repr as _stable_repr
from ..mobility import Dataset

if TYPE_CHECKING:  # imported lazily to keep engine below framework
    from ..framework.spec import SystemDefinition

__all__ = [
    "EvalJob",
    "EvalResult",
    "dataset_fingerprint",
    "system_signature",
    "job_fingerprint",
]


@dataclass(frozen=True)
class EvalJob:
    """One requested (protect + measure) execution.

    ``params`` is stored as a sorted tuple of (name, value) pairs so
    jobs are hashable and two dict orderings compare equal.
    """

    params: Tuple[Tuple[str, float], ...]
    seed: int

    @classmethod
    def make(cls, params: Mapping[str, float], seed: int) -> "EvalJob":
        """Build a job from any parameter mapping."""
        return cls(
            params=tuple(sorted((str(k), float(v)) for k, v in params.items())),
            seed=int(seed),
        )

    @property
    def params_dict(self) -> Dict[str, float]:
        """The parameter assignment as a plain dict."""
        return dict(self.params)


@dataclass(frozen=True)
class EvalResult:
    """The engine's answer for one job."""

    job: EvalJob
    privacy: float
    utility: float
    #: True when the value came from a cache tier, i.e. no protection
    #: or metric code actually ran for this request.
    cached: bool
    #: Content fingerprint the result is stored under.
    fingerprint: str


# Dataset fingerprints are O(dataset) to compute and are requested by
# several layers for the same instance — the engine's result keying,
# the analysis cache's seeding, service registries.  One module-wide
# memo means each dataset object is hashed once per process, whichever
# layer asks first.  Datasets are immutable, so a memoised hash can
# never go stale; the weak-identity memo guards against id recycling.
_FP_MEMO = WeakIdentityMemo()
_FP_LOCK = threading.Lock()


def _compute_dataset_fingerprint(dataset: Dataset) -> str:
    digest = hashlib.sha256()
    for trace in dataset.traces:
        digest.update(trace.user.encode("utf-8"))
        digest.update(b"\x00")
        digest.update(trace.times_s.tobytes())
        digest.update(trace.lats.tobytes())
        digest.update(trace.lons.tobytes())
    return digest.hexdigest()


def dataset_fingerprint(dataset: Dataset) -> str:
    """SHA-256 over every record of every trace, in user order.

    The hash covers user ids, timestamps and coordinates, so any edit
    to the data (cleaning, subsetting, regeneration with a new seed)
    invalidates previously cached results.  Memoised per dataset
    *instance* (weakly, by object identity), so every layer that keys
    on the fingerprint shares one hash per loaded dataset.
    """
    with _FP_LOCK:
        fp = _FP_MEMO.get(dataset)
    if fp is not None:
        return fp
    # O(dataset) hashing happens outside the lock; a racing second
    # computation of the same fingerprint is identical by content.
    fp = _compute_dataset_fingerprint(dataset)
    with _FP_LOCK:
        _FP_MEMO.put(dataset, fp)
    return fp


# The stable value-based rendering moved to repro.analysis.signature
# (the analysis cache keys on it too); imported above as _stable_repr.


def _metric_signature(metric) -> str:
    """A stable textual identity for a metric instance.

    The attribute walk captures the configuration (e.g. a POI match
    radius or a grid cell size) that the metric's registry name alone
    does not.
    """
    return _stable_repr(metric)


def _factory_signature(factory) -> str:
    """Identity of the LPPM factory behind a system.

    Two systems may share a name and metrics yet build different
    mechanisms; the factory identity keeps their cache entries apart.
    A qualified name is enough for module-level classes and functions,
    but local functions and lambdas all share a ``<locals>`` qualname,
    so those also hash their code object and captured closure values;
    partials and callable instances render their configuration.  The
    result is deterministic across processes (no memory addresses), so
    the disk tier stays shareable.
    """
    if isinstance(factory, functools.partial):
        inner = _factory_signature(factory.func)
        args = ",".join(_stable_repr(a) for a in factory.args)
        kwargs = ",".join(
            f"{k}={_stable_repr(v)}"
            for k, v in sorted((factory.keywords or {}).items())
        )
        return f"partial({inner};{args};{kwargs})"
    module = getattr(factory, "__module__", "?")
    qualname = getattr(factory, "__qualname__", None)
    code = getattr(factory, "__code__", None)
    if qualname is None:
        # A callable instance: its type plus its configuration.
        return _stable_repr(factory)
    base = f"{module}.{qualname}"
    if code is not None and ("<lambda>" in qualname or "<locals>" in qualname):
        digest = hashlib.sha256(code.co_code)
        digest.update(repr(code.co_consts).encode("utf-8"))
        for cell in getattr(factory, "__closure__", None) or ():
            try:
                digest.update(_stable_repr(cell.cell_contents).encode("utf-8"))
            except ValueError:
                digest.update(b"<empty cell>")
        base += f"#{digest.hexdigest()[:16]}"
    return base


def system_signature(system: "SystemDefinition") -> str:
    """Identity of a system for caching: name, mechanism and metrics."""
    return "|".join(
        [
            system.name,
            _factory_signature(system.lppm_factory),
            _metric_signature(system.privacy_metric),
            _metric_signature(system.utility_metric),
        ]
    )


def _library_version() -> str:
    # Imported lazily: the package root imports this module.
    from .. import __version__

    return __version__


def job_fingerprint(dataset_fp: str, system_sig: str, job: EvalJob) -> str:
    """Content fingerprint of one job's result.

    The library version is part of the key: results depend on the
    LPPM/metric *implementations*, not just their configuration, so a
    release that fixes numerics must not be answered with the previous
    release's cached values.  Upgrading therefore cold-starts a shared
    ``cache_dir`` — the safe direction.
    """
    payload = json.dumps(
        {
            "library": _library_version(),
            "dataset": dataset_fp,
            "system": system_sig,
            "params": [[name, repr(value)] for name, value in job.params],
            "seed": job.seed,
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()
