"""The configuration framework — the paper's contribution.

Step 1 lives in :mod:`.spec` (plus ``repro.properties`` for the PCA
property selection), step 2 in :mod:`.runner`/:mod:`.saturation`/
:mod:`.models`, step 3 in :mod:`.configurator`.  :mod:`.alp` implements
the greedy baseline the paper compares against.
"""

from .alp import AlpConfig, AlpResult, AlpStep, alp_configure
from .configurator import Configurator, Objective, Recommendation
from .models import LogLinearMetricModel, SystemModel, fit_system_model
from .multi import (
    GridSweepResult,
    MultiLinearMetricModel,
    MultiSystemModel,
    fit_multi_system_model,
    grid_sweep,
)
from .refine import RefinementResult, refine_recommendation
from .runner import ExperimentRunner, SweepPoint, SweepResult
from .saturation import ActiveRegion, find_active_region, smooth
from .spec import ParameterSpec, SystemDefinition, geo_ind_system
from .store import (
    load_eval_record,
    load_model,
    load_sweep,
    read_eval_record,
    read_json_payload,
    save_eval_record,
    save_model,
    save_sweep,
    write_json_atomic,
)
from .transfer import ModelTransfer, TransferredModel

__all__ = [
    "ParameterSpec",
    "SystemDefinition",
    "geo_ind_system",
    "ExperimentRunner",
    "SweepPoint",
    "SweepResult",
    "ActiveRegion",
    "find_active_region",
    "smooth",
    "LogLinearMetricModel",
    "SystemModel",
    "fit_system_model",
    "GridSweepResult",
    "MultiLinearMetricModel",
    "MultiSystemModel",
    "grid_sweep",
    "fit_multi_system_model",
    "ModelTransfer",
    "TransferredModel",
    "RefinementResult",
    "refine_recommendation",
    "save_sweep",
    "load_sweep",
    "save_model",
    "load_model",
    "save_eval_record",
    "load_eval_record",
    "read_eval_record",
    "read_json_payload",
    "write_json_atomic",
    "Configurator",
    "Objective",
    "Recommendation",
    "AlpConfig",
    "AlpStep",
    "AlpResult",
    "alp_configure",
]
