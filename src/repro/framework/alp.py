"""ALP-style greedy configuration — the paper's baseline.

ALP (Primault, Boutet, Ben Mokhtar, Brunie — *Adaptive Location Privacy
with ALP*, SRDS 2016) is the one prior system the paper credits with
automating LPPM configuration: it "uses a greedy solution to possibly
make the configuration parameters converge to values which aim to
maximize or minimize given privacy or utility metrics".  This module
implements that strategy so the benchmarks can compare its online cost
(metric evaluations until convergence) against the framework's one-shot
model inversion.

The search is a multiplicative hill-climb: probe the parameter's effect
direction once, then move the parameter by a step factor towards the
violated objective, shrinking the step whenever the move direction
flips, until all objectives hold or the step underflows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from .configurator import Objective
from .runner import ExperimentRunner
from .spec import SystemDefinition

__all__ = ["AlpConfig", "AlpStep", "AlpResult", "alp_configure"]


@dataclass(frozen=True)
class AlpConfig:
    """Knobs of the greedy search."""

    step_factor: float = 4.0
    min_step_factor: float = 1.05
    max_iterations: int = 30
    shrink: float = 0.5

    def __post_init__(self) -> None:
        if self.step_factor <= 1.0:
            raise ValueError("step factor must exceed 1")
        if not 0.0 < self.shrink < 1.0:
            raise ValueError("shrink must be in (0, 1)")
        if self.max_iterations < 1:
            raise ValueError("need at least one iteration")


@dataclass(frozen=True)
class AlpStep:
    """One probe of the greedy search."""

    value: float
    privacy: float
    utility: float


@dataclass
class AlpResult:
    """Outcome of a greedy configuration run."""

    param_name: str
    trajectory: List[AlpStep] = field(default_factory=list)
    final_value: Optional[float] = None
    satisfied: bool = False
    n_evaluations: int = 0

    @property
    def n_iterations(self) -> int:
        """Number of probes performed."""
        return len(self.trajectory)


def _violations(
    objectives: Sequence[Objective], privacy: float, utility: float
) -> List[Objective]:
    """Objectives not met at the given metric values."""
    out = []
    for objective in objectives:
        value = privacy if objective.kind == "privacy" else utility
        if not objective.satisfied_by(value):
            out.append(objective)
    return out


def _desired_direction(objective: Objective, slope_sign: float) -> float:
    """+1 to increase the parameter, -1 to decrease it, for one objective.

    ``slope_sign`` is the sign of d(metric)/d(param) measured by the
    probe: to lower a growing metric, lower the parameter, and so on.
    """
    wants_lower_metric = objective.op == "<="
    if slope_sign == 0:
        return 0.0
    move_down = wants_lower_metric == (slope_sign > 0)
    return -1.0 if move_down else 1.0


def alp_configure(
    system: SystemDefinition,
    runner: ExperimentRunner,
    objectives: Sequence[Objective],
    param_name: Optional[str] = None,
    initial: Optional[float] = None,
    config: AlpConfig = AlpConfig(),
) -> AlpResult:
    """Run the greedy search until the objectives hold (or give up).

    ``runner`` is shared with other machinery so evaluation counts are
    comparable; every probe is one full (protect + measure) evaluation,
    which is exactly the online cost the paper's framework avoids.
    Probes go through the runner's :class:`EvaluationEngine`, so a
    shared engine (and its content-addressed cache) keeps the
    comparison honest: a probe answered from cache is not counted as a
    new evaluation, here or anywhere else.
    """
    if not objectives:
        raise ValueError("need at least one objective")
    if param_name is None:
        if len(system.parameters) != 1:
            raise ValueError("param_name is required for multi-parameter systems")
        param_name = system.parameters[0].name
    spec = system.parameter(param_name)
    value = float(initial) if initial is not None else system.defaults()[param_name]
    if not spec.contains(value):
        raise ValueError(f"initial value {value!r} outside the parameter range")

    result = AlpResult(param_name=param_name)
    evals_before = runner.n_evaluations

    def probe(v: float) -> Tuple[float, float]:
        point = runner.evaluate({param_name: v}, n_replications=1)
        step = AlpStep(value=v, privacy=point.privacy_mean, utility=point.utility_mean)
        result.trajectory.append(step)
        return point.privacy_mean, point.utility_mean

    # Direction probe: measure at the start value and one step up.
    pr0, ut0 = probe(value)
    if not _violations(objectives, pr0, ut0):
        result.final_value = value
        result.satisfied = True
        result.n_evaluations = runner.n_evaluations - evals_before
        return result
    probe_value = min(value * config.step_factor, spec.high)
    if probe_value == value:
        probe_value = max(value / config.step_factor, spec.low)
    pr1, ut1 = probe(probe_value)
    pr_slope = (pr1 - pr0) * (1.0 if probe_value > value else -1.0)
    ut_slope = (ut1 - ut0) * (1.0 if probe_value > value else -1.0)

    factor = config.step_factor
    last_direction = 0.0
    current, pr, ut = probe_value, pr1, ut1
    for _ in range(config.max_iterations):
        violated = _violations(objectives, pr, ut)
        if not violated:
            result.final_value = current
            result.satisfied = True
            break
        # Privacy violations dominate, as in ALP's privacy-first mode.
        violated.sort(key=lambda o: 0 if o.kind == "privacy" else 1)
        slope = pr_slope if violated[0].kind == "privacy" else ut_slope
        direction = _desired_direction(violated[0], slope)
        if direction == 0.0:
            # The initial probe straddled a flat stretch of this metric;
            # fall back to the other metric's direction (the mechanisms
            # this search targets move both metrics the same way).
            other = ut_slope if violated[0].kind == "privacy" else pr_slope
            direction = _desired_direction(violated[0], other)
        if direction == 0.0:
            break
        if last_direction and direction != last_direction:
            factor = max(config.min_step_factor, 1.0 + (factor - 1.0) * config.shrink)
        last_direction = direction
        proposal = current * factor if direction > 0 else current / factor
        proposal = min(max(proposal, spec.low), spec.high)
        if proposal == current:
            break  # Pinned at a range edge; objectives unreachable.
        previous_value, previous_pr, previous_ut = current, pr, ut
        current = proposal
        pr, ut = probe(current)
        # Refresh the slope estimates with the freshest local evidence:
        # the initial probe pair may sit on a plateau of one metric.
        sgn = 1.0 if current > previous_value else -1.0
        if pr != previous_pr:
            pr_slope = (pr - previous_pr) * sgn
        if ut != previous_ut:
            ut_slope = (ut - previous_ut) * sgn
    else:
        violated = _violations(objectives, pr, ut)
        if not violated:
            result.final_value = current
            result.satisfied = True
    result.n_evaluations = runner.n_evaluations - evals_before
    return result
