"""Objective-driven configuration — step 3 of the framework.

The configurator inverts the fitted :class:`SystemModel` at the
designer's objectives.  In the paper's worked example the objectives
are "at most 10 % of POIs retrieved" and "at least 80 % area-coverage
utility", and inverting the model yields ε ≈ 0.01.

Each objective defines a half-line of parameter values satisfying it
(the models are monotone); the feasible set is the intersection of
those half-lines with the model domain.  The recommended value inside
the feasible interval follows a selection policy — the paper's choice
corresponds to ``"max_utility"``: make privacy binding and spend the
rest of the budget on utility.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from ..engine import EvaluationEngine
from ..mobility import Dataset
from .models import LogLinearMetricModel, SystemModel, fit_system_model
from .runner import ExperimentRunner, SweepResult
from .spec import SystemDefinition

__all__ = ["Objective", "Recommendation", "Configurator"]

_OPS = ("<=", ">=")
_KINDS = ("privacy", "utility")
_POLICIES = ("max_utility", "max_privacy", "midpoint")


@dataclass(frozen=True)
class Objective:
    """A designer constraint on one metric, e.g. privacy <= 0.1."""

    kind: str
    op: str
    target: float

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"kind must be one of {_KINDS}")
        if self.op not in _OPS:
            raise ValueError(f"op must be one of {_OPS}")

    def satisfied_by(self, value: float, tol: float = 0.0) -> bool:
        """Whether a measured metric value meets the objective."""
        if self.op == "<=":
            return value <= self.target + tol
        return value >= self.target - tol

    def __str__(self) -> str:
        return f"{self.kind} {self.op} {self.target:g}"


@dataclass(frozen=True)
class Recommendation:
    """The configurator's answer for one set of objectives."""

    param_name: str
    value: Optional[float]
    feasible: bool
    interval: Tuple[float, float]
    predicted_privacy: Optional[float]
    predicted_utility: Optional[float]
    notes: str = ""


def _objective_interval(
    objective: Objective, model: LogLinearMetricModel, domain: Tuple[float, float]
) -> Tuple[float, float]:
    """Parameter interval (within ``domain``) satisfying one objective.

    Uses the model's monotonicity: for positive slope the metric grows
    with the parameter, so ``metric <= t`` bounds the parameter above.
    An empty intersection collapses to an inverted interval the caller
    detects with ``lo > hi``.
    """
    lo, hi = domain
    if model.slope == 0:
        # Flat response: objective is either always or never satisfied.
        flat_value = model.intercept
        if objective.satisfied_by(flat_value):
            return (lo, hi)
        return (1.0, 0.0)
    boundary = model.invert(objective.target)
    grows = model.slope > 0
    wants_low_metric = objective.op == "<="
    if grows == wants_low_metric:
        # Satisfied at parameter values below the boundary.
        return (lo, min(hi, boundary))
    return (max(lo, boundary), hi)


class Configurator:
    """Fits the model once (offline) and answers configuration queries.

    Parameters
    ----------
    system:
        The system definition (LPPM factory, parameter ranges, metrics).
    dataset:
        The dataset the LPPM will protect.
    n_points, n_replications, base_seed:
        Sweep resolution used by :meth:`fit`.
    engine:
        Optional shared :class:`EvaluationEngine`; lets the offline
        sweep run on a parallel backend and persist to a disk cache,
        and lets several configurators pool their evaluations.
    """

    def __init__(
        self,
        system: SystemDefinition,
        dataset: Dataset,
        n_points: int = 15,
        n_replications: int = 3,
        base_seed: int = 0,
        engine: Optional[EvaluationEngine] = None,
    ) -> None:
        self.system = system
        self.dataset = dataset
        self.n_points = n_points
        self.runner = ExperimentRunner(
            system, dataset, n_replications=n_replications,
            base_seed=base_seed, engine=engine,
        )
        self._sweep: Optional[SweepResult] = None
        self._model: Optional[SystemModel] = None

    # ------------------------------------------------------------------
    # Offline phase
    # ------------------------------------------------------------------
    def fit(
        self,
        param_name: Optional[str] = None,
        use_active_region: bool = True,
        rel_tol: float = 0.05,
    ) -> SystemModel:
        """Run the sweep and fit the invertible model (step 2)."""
        self._sweep = self.runner.sweep(param_name, n_points=self.n_points)
        self._model = fit_system_model(
            self._sweep, use_active_region=use_active_region, rel_tol=rel_tol
        )
        return self._model

    @property
    def sweep(self) -> SweepResult:
        """The sweep behind the fitted model."""
        if self._sweep is None:
            raise RuntimeError("call fit() before using the configurator")
        return self._sweep

    @property
    def model(self) -> SystemModel:
        """The fitted invertible model."""
        if self._model is None:
            raise RuntimeError("call fit() before using the configurator")
        return self._model

    # ------------------------------------------------------------------
    # Online phase
    # ------------------------------------------------------------------
    def recommend(
        self,
        objectives: Sequence[Objective],
        policy: str = "max_utility",
        safety: float = 0.25,
        tolerance: float = 0.05,
    ) -> Recommendation:
        """Invert the model at the objectives (step 3).

        The feasible interval intersects every objective's half-line
        with the model domain.  ``policy`` picks the value inside it:

        * ``"max_utility"`` — the feasible edge with the best utility
          (the paper's choice for GEO-I: make privacy binding and spend
          the rest of the budget on utility);
        * ``"max_privacy"`` — the opposite edge;
        * ``"midpoint"`` — geometric midpoint.

        Policies are expressed on the *utility* model's slope sign, so
        they keep their meaning for mechanisms whose utility decreases
        with the parameter.

        ``safety`` backs an edge recommendation off its boundary by that
        fraction of the interval's log-width: a value sitting exactly on
        the model's objective boundary fails verification half the time
        on sharp response curves, so deployments should keep margin.
        ``tolerance`` accepts *near*-feasible intervals — when the model
        says the bounds cross by no more than this relative gap, the
        crossing point is recommended (flagged in the notes) instead of
        rejecting outright; the model error at sharp transitions easily
        exceeds such hairline gaps.
        """
        if policy not in _POLICIES:
            raise ValueError(f"policy must be one of {_POLICIES}")
        if not objectives:
            raise ValueError("need at least one objective")
        if not 0.0 <= safety < 0.5:
            raise ValueError("safety must be in [0, 0.5)")
        if tolerance < 0.0:
            raise ValueError("tolerance must be non-negative")
        model = self.model
        lo, hi = model.domain()
        for objective in objectives:
            metric_model = (
                model.privacy if objective.kind == "privacy" else model.utility
            )
            o_lo, o_hi = _objective_interval(objective, metric_model, (lo, hi))
            lo, hi = max(lo, o_lo), min(hi, o_hi)
        notes = f"policy={policy}"
        if lo > hi:
            if hi > 0 and lo <= hi * (1.0 + tolerance):
                # Hairline miss: the bounds cross by less than the
                # model's own credibility; recommend the crossing point.
                value = float(np.sqrt(lo * hi))
                pr, ut = model.predict(value)
                return Recommendation(
                    param_name=model.param_name,
                    value=value,
                    feasible=True,
                    interval=(value, value),
                    predicted_privacy=pr,
                    predicted_utility=ut,
                    notes=notes + "; tight (bounds crossed within tolerance)",
                )
            return Recommendation(
                param_name=model.param_name,
                value=None,
                feasible=False,
                interval=(lo, hi),
                predicted_privacy=None,
                predicted_utility=None,
                notes="objectives are jointly infeasible on this dataset",
            )
        utility_grows = model.utility.slope >= 0
        if lo > 0:
            # Positive ranges (all log-swept parameters) back off in
            # log space, matching the geometry of the sweep.
            log_lo, log_hi = np.log(lo), np.log(hi)
            margin = safety * (log_hi - log_lo)
            edges = (
                float(np.exp(log_lo + margin)),
                float(np.exp((log_lo + log_hi) / 2.0)),
                float(np.exp(log_hi - margin)),
            )
        else:
            margin = safety * (hi - lo)
            edges = (lo + margin, (lo + hi) / 2.0, hi - margin)
        if policy == "midpoint":
            value = edges[1]
        elif (policy == "max_utility") == utility_grows:
            value = edges[2]
        else:
            value = edges[0]
        pr, ut = model.predict(value)
        return Recommendation(
            param_name=model.param_name,
            value=value,
            feasible=True,
            interval=(float(lo), float(hi)),
            predicted_privacy=pr,
            predicted_utility=ut,
            notes=notes,
        )

    def verify(
        self, recommendation: Recommendation, n_replications: int = 3
    ) -> Tuple[float, float]:
        """Re-measure the metrics at the recommended value.

        Closes the loop: the paper's claim is that the model-predicted
        configuration meets the objectives when actually applied.
        """
        if not recommendation.feasible or recommendation.value is None:
            raise ValueError("cannot verify an infeasible recommendation")
        point = self.runner.evaluate(
            {recommendation.param_name: recommendation.value},
            n_replications=n_replications,
        )
        return (point.privacy_mean, point.utility_mean)
