"""Invertible metric models — step 2 of the framework (model side).

The paper approximates the experimental curves, inside their
non-saturated zone, with the linear-in-``ln(eps)`` equations (2):

    ln(eps) = (Pr - a)/b = (Ut - alpha)/beta

:class:`LogLinearMetricModel` fits one metric as ``y = a + b*ln(x)``
(ordinary least squares) and inverts in closed form;
:class:`SystemModel` pairs the privacy and utility models into the
invertible ``f`` of the paper's equation (1) for the single-parameter
case the illustration covers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from .runner import SweepResult
from .saturation import ActiveRegion, find_active_region

__all__ = ["LogLinearMetricModel", "SystemModel", "fit_system_model"]


@dataclass(frozen=True)
class LogLinearMetricModel:
    """The fitted line ``y = intercept + slope * ln(x)``.

    ``x_low``/``x_high`` record the fit domain (the active zone); the
    model predicts outside it but :meth:`predict` clamps to the fitted
    metric range so extrapolation never promises impossible values.
    """

    intercept: float
    slope: float
    x_low: float
    x_high: float
    y_low: float
    y_high: float
    r2: float

    def predict(self, x) -> np.ndarray:
        """Metric value(s) at parameter value(s) ``x``, clamped."""
        x = np.asarray(x, dtype=float)
        if np.any(x <= 0):
            raise ValueError("log-linear models are defined for positive x")
        raw = self.intercept + self.slope * np.log(x)
        return np.clip(raw, min(self.y_low, self.y_high),
                       max(self.y_low, self.y_high))

    def invert(self, y: float) -> float:
        """Parameter value at which the model predicts ``y``.

        Exact inverse of the line; raises on a flat model because a
        non-responding metric cannot be used to choose a parameter.
        """
        if self.slope == 0:
            raise ValueError("cannot invert a flat model (slope is zero)")
        return float(np.exp((y - self.intercept) / self.slope))

    def invert_clamped(self, y: float) -> float:
        """Like :meth:`invert` but clamped into the fit domain."""
        return float(np.clip(self.invert(y), self.x_low, self.x_high))

    @classmethod
    def fit(cls, xs, ys) -> "LogLinearMetricModel":
        """Least-squares fit of ``ys`` on ``ln(xs)``."""
        xs = np.asarray(xs, dtype=float)
        ys = np.asarray(ys, dtype=float)
        if xs.shape != ys.shape or xs.ndim != 1:
            raise ValueError("xs and ys must be equal-length vectors")
        if xs.size < 2:
            raise ValueError("need at least two points to fit a line")
        if np.any(xs <= 0):
            raise ValueError("log-linear models need positive x values")
        lx = np.log(xs)
        slope, intercept = np.polyfit(lx, ys, 1)
        pred = intercept + slope * lx
        ss_res = float(np.sum((ys - pred) ** 2))
        ss_tot = float(np.sum((ys - np.mean(ys)) ** 2))
        r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
        return cls(
            intercept=float(intercept),
            slope=float(slope),
            x_low=float(np.min(xs)),
            x_high=float(np.max(xs)),
            y_low=float(np.min(ys)),
            y_high=float(np.max(ys)),
            r2=r2,
        )


@dataclass(frozen=True)
class SystemModel:
    """The invertible ``(Pr, Ut) = f(param)`` of the paper's equation (1).

    In the paper's notation the privacy model carries ``(a, b)`` and the
    utility model ``(alpha, beta)``.
    """

    system_name: str
    param_name: str
    privacy: LogLinearMetricModel
    utility: LogLinearMetricModel
    privacy_region: ActiveRegion
    utility_region: ActiveRegion
    #: Full swept parameter range; model predictions outside each fit's
    #: active zone clamp to the measured plateaus, so the model remains
    #: meaningful (and invertible objectives remain answerable) on all
    #: of it.
    param_low: float = 0.0
    param_high: float = 0.0

    def predict(self, value: float) -> Tuple[float, float]:
        """``f``: (privacy, utility) predicted at a parameter value."""
        return (
            float(self.privacy.predict(value)),
            float(self.utility.predict(value)),
        )

    def invert_privacy(self, target: float) -> float:
        """Parameter value achieving privacy metric ``target``."""
        return self.privacy.invert(target)

    def invert_utility(self, target: float) -> float:
        """Parameter value achieving utility metric ``target``."""
        return self.utility.invert(target)

    @property
    def coefficients(self) -> Tuple[float, float, float, float]:
        """``(a, b, alpha, beta)`` in the paper's equation-(2) notation."""
        return (
            self.privacy.intercept,
            self.privacy.slope,
            self.utility.intercept,
            self.utility.slope,
        )

    def domain(self) -> Tuple[float, float]:
        """Parameter range the model answers for.

        The full sweep range when known (predictions clamp to the
        plateaus outside the active zones); otherwise the intersection
        of the two fit domains.
        """
        if self.param_low > 0 and self.param_high > self.param_low:
            return (self.param_low, self.param_high)
        low = max(self.privacy.x_low, self.utility.x_low)
        high = min(self.privacy.x_high, self.utility.x_high)
        return (low, high)


def fit_system_model(
    sweep: SweepResult,
    use_active_region: bool = True,
    rel_tol: float = 0.05,
    window: int = 3,
) -> SystemModel:
    """Fit the paper's equation (2) from a sweep.

    With ``use_active_region`` (the paper's approach) each metric is
    fitted only inside its own non-saturated zone; switching it off
    fits the full sweep — the A2 ablation benchmark quantifies how much
    that costs.
    """
    xs = sweep.param_values()
    pr = sweep.privacy()
    ut = sweep.utility()
    if use_active_region:
        pr_region = find_active_region(pr, rel_tol, window)
        ut_region = find_active_region(ut, rel_tol, window)
    else:
        pr_region = ActiveRegion(0, len(xs) - 1, float(np.min(pr)), float(np.max(pr)))
        ut_region = ActiveRegion(0, len(xs) - 1, float(np.min(ut)), float(np.max(ut)))
    pr_idx = pr_region.indices()
    ut_idx = ut_region.indices()
    return SystemModel(
        system_name=sweep.system_name,
        param_name=sweep.param_name,
        privacy=LogLinearMetricModel.fit(xs[pr_idx], pr[pr_idx]),
        utility=LogLinearMetricModel.fit(xs[ut_idx], ut[ut_idx]),
        privacy_region=pr_region,
        utility_region=ut_region,
        param_low=float(np.min(xs)),
        param_high=float(np.max(xs)),
    )
