"""Multi-parameter metric models — equation (1) in its general form.

The paper's equation (1) is ``(Pr, Ut) = f(p_1..p_n, d_1..d_m)``; the
illustration only instantiates the single-parameter case (GEO-I's ε).
This module provides the general mechanism side: grid sweeps over
several parameters and the multi-linear model

    y = a + sum_i b_i * t_i(p_i)

where ``t_i`` is ``ln`` for log-scaled parameters and identity for
linear ones (matching each :class:`ParameterSpec`).  The model stays
invertible *per axis*: fixing all parameters but one yields the same
closed-form inversion the configurator uses in the 1-D case.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import List, Mapping, Optional, Sequence, Tuple

import numpy as np

from .runner import ExperimentRunner, SweepPoint
from .spec import ParameterSpec, SystemDefinition

__all__ = [
    "GridSweepResult",
    "MultiLinearMetricModel",
    "MultiSystemModel",
    "grid_sweep",
    "fit_multi_system_model",
]


@dataclass
class GridSweepResult:
    """Measurements over a cartesian grid of parameter settings."""

    system_name: str
    param_names: List[str]
    points: List[SweepPoint]

    def __len__(self) -> int:
        return len(self.points)

    def param_matrix(self) -> np.ndarray:
        """(n_points, n_params) matrix of swept values, in name order."""
        return np.asarray(
            [[p.params[name] for name in self.param_names] for p in self.points]
        )

    def privacy(self) -> np.ndarray:
        """Mean privacy metric per grid point."""
        return np.asarray([p.privacy_mean for p in self.points])

    def utility(self) -> np.ndarray:
        """Mean utility metric per grid point."""
        return np.asarray([p.utility_mean for p in self.points])


def grid_sweep(
    runner: ExperimentRunner,
    n_points: int = 5,
    param_names: Optional[Sequence[str]] = None,
) -> GridSweepResult:
    """Evaluate the full cartesian grid of the system's parameters.

    ``n_points`` values per axis (spec-spaced); the grid grows
    exponentially in the number of parameters, which is exactly the
    cost argument for the paper's model-based approach.
    """
    system = runner.system
    names = list(param_names or system.parameter_names)
    axes = [system.parameter(name).values(n_points) for name in names]
    fixed = {
        name: value
        for name, value in system.defaults().items()
        if name not in names
    }
    settings = []
    for combo in itertools.product(*axes):
        params = dict(fixed)
        params.update(zip(names, map(float, combo)))
        settings.append(params)
    # One engine batch for the whole grid: the exponential cost the
    # paper argues about is also the best case for a parallel backend.
    return GridSweepResult(system.name, names, runner.evaluate_many(settings))


def _transform(spec: ParameterSpec, values: np.ndarray) -> np.ndarray:
    """The model-space coordinate of a parameter axis."""
    if spec.scale == "log":
        return np.log(values)
    return values


@dataclass(frozen=True)
class MultiLinearMetricModel:
    """The fitted plane ``y = intercept + sum_i slopes[i] * t_i(p_i)``."""

    param_names: Tuple[str, ...]
    scales: Tuple[str, ...]
    intercept: float
    slopes: Tuple[float, ...]
    y_low: float
    y_high: float
    r2: float

    def _coords(self, params: Mapping[str, float]) -> np.ndarray:
        values = []
        for name, scale in zip(self.param_names, self.scales):
            if name not in params:
                raise KeyError(f"missing parameter {name!r}")
            v = float(params[name])
            values.append(np.log(v) if scale == "log" else v)
        return np.asarray(values)

    def predict(self, params: Mapping[str, float]) -> float:
        """Metric value at a full parameter assignment, clamped."""
        raw = self.intercept + float(np.dot(self.slopes, self._coords(params)))
        return float(np.clip(raw, min(self.y_low, self.y_high),
                             max(self.y_low, self.y_high)))

    def invert_for(
        self, name: str, target: float, fixed: Mapping[str, float]
    ) -> float:
        """The value of parameter ``name`` reaching ``target``, others fixed."""
        if name not in self.param_names:
            raise KeyError(f"unknown parameter {name!r}")
        i = self.param_names.index(name)
        if self.slopes[i] == 0:
            raise ValueError(f"metric does not respond to {name!r}")
        rest = target - self.intercept
        for j, other in enumerate(self.param_names):
            if j == i:
                continue
            if other not in fixed:
                raise KeyError(f"missing fixed value for {other!r}")
            v = float(fixed[other])
            coord = np.log(v) if self.scales[j] == "log" else v
            rest -= self.slopes[j] * coord
        coord_i = rest / self.slopes[i]
        return float(np.exp(coord_i)) if self.scales[i] == "log" else float(coord_i)

    @classmethod
    def fit(
        cls,
        specs: Sequence[ParameterSpec],
        matrix: np.ndarray,
        ys: np.ndarray,
    ) -> "MultiLinearMetricModel":
        """Least squares of ``ys`` on the transformed parameter matrix."""
        matrix = np.asarray(matrix, dtype=float)
        ys = np.asarray(ys, dtype=float)
        if matrix.ndim != 2 or matrix.shape[0] != ys.size:
            raise ValueError("matrix rows must match ys length")
        if matrix.shape[1] != len(specs):
            raise ValueError("matrix columns must match parameter specs")
        if ys.size < len(specs) + 1:
            raise ValueError("need more points than coefficients")
        columns = [
            _transform(spec, matrix[:, j]) for j, spec in enumerate(specs)
        ]
        design = np.column_stack([np.ones(ys.size)] + columns)
        coef, _, _, _ = np.linalg.lstsq(design, ys, rcond=None)
        pred = design @ coef
        ss_res = float(np.sum((ys - pred) ** 2))
        ss_tot = float(np.sum((ys - np.mean(ys)) ** 2))
        r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
        return cls(
            param_names=tuple(s.name for s in specs),
            scales=tuple(s.scale for s in specs),
            intercept=float(coef[0]),
            slopes=tuple(float(c) for c in coef[1:]),
            y_low=float(np.min(ys)),
            y_high=float(np.max(ys)),
            r2=r2,
        )


@dataclass(frozen=True)
class MultiSystemModel:
    """Privacy and utility planes over the full parameter space."""

    system_name: str
    privacy: MultiLinearMetricModel
    utility: MultiLinearMetricModel

    def predict(self, params: Mapping[str, float]) -> Tuple[float, float]:
        """``f``: (privacy, utility) at a full parameter assignment."""
        return (self.privacy.predict(params), self.utility.predict(params))


def fit_multi_system_model(
    system: SystemDefinition, sweep: GridSweepResult
) -> MultiSystemModel:
    """Fit both metric planes from a grid sweep."""
    specs = [system.parameter(name) for name in sweep.param_names]
    matrix = sweep.param_matrix()
    return MultiSystemModel(
        system_name=sweep.system_name,
        privacy=MultiLinearMetricModel.fit(specs, matrix, sweep.privacy()),
        utility=MultiLinearMetricModel.fit(specs, matrix, sweep.utility()),
    )
