"""Measurement-guided refinement of a model recommendation.

The fitted model is an approximation; near a sharp metric transition
its inversion can land a recommendation slightly on the wrong side of
an objective.  ``refine_recommendation`` closes the loop with a few
*real* evaluations: verify the recommended value, and if an objective
is violated, bisect (in log space) between the recommendation and the
far end of its feasible interval until every objective holds.

This costs a handful of online evaluations — far fewer than a full ALP
search, because the model already provides the bracket.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

import numpy as np

from .configurator import Objective, Recommendation
from .runner import ExperimentRunner

__all__ = ["RefinementResult", "refine_recommendation"]


@dataclass
class RefinementResult:
    """Outcome of the refinement loop."""

    value: float
    privacy: float
    utility: float
    satisfied: bool
    n_evaluations: int
    trail: List[Tuple[float, float, float]] = field(default_factory=list)


def _check(
    objectives: Sequence[Objective], privacy: float, utility: float
) -> bool:
    return all(
        o.satisfied_by(privacy if o.kind == "privacy" else utility)
        for o in objectives
    )


def refine_recommendation(
    runner: ExperimentRunner,
    recommendation: Recommendation,
    objectives: Sequence[Objective],
    max_evaluations: int = 6,
    n_replications: int = 1,
) -> RefinementResult:
    """Verify and, if needed, bisect the recommendation to feasibility.

    Edge policies place the recommendation near one end of the feasible
    interval, so when measurement contradicts the model there, the
    interval's *other* end is the natural safe side: the search
    log-bisects towards it and stops at the first value that measures
    feasible.  Returns the last measured point either way.
    """
    if not recommendation.feasible or recommendation.value is None:
        raise ValueError("cannot refine an infeasible recommendation")
    if max_evaluations < 1:
        raise ValueError("need at least one evaluation")
    param = recommendation.param_name
    lo, hi = recommendation.interval
    evals_before = runner.n_evaluations
    trail: List[Tuple[float, float, float]] = []

    def measure(value: float) -> Tuple[float, float]:
        point = runner.evaluate({param: value}, n_replications=n_replications)
        trail.append((value, point.privacy_mean, point.utility_mean))
        return point.privacy_mean, point.utility_mean

    current = recommendation.value
    privacy, utility = measure(current)
    satisfied = _check(objectives, privacy, utility)
    if satisfied or lo >= hi:
        return RefinementResult(
            value=current, privacy=privacy, utility=utility,
            satisfied=satisfied,
            n_evaluations=runner.n_evaluations - evals_before,
            trail=trail,
        )

    # The far end of the interval is the candidate safe side.
    if abs(np.log(current / lo)) > abs(np.log(current / hi)):
        safe_side = lo
    else:
        safe_side = hi
    bad = current
    best = (current, privacy, utility, False)
    for _ in range(max_evaluations - 1):
        candidate = float(np.exp((np.log(bad) + np.log(safe_side)) / 2.0))
        privacy, utility = measure(candidate)
        if _check(objectives, privacy, utility):
            best = (candidate, privacy, utility, True)
            break
        bad = candidate
    value, privacy, utility, satisfied = best
    return RefinementResult(
        value=value, privacy=privacy, utility=utility,
        satisfied=satisfied,
        n_evaluations=runner.n_evaluations - evals_before,
        trail=trail,
    )
