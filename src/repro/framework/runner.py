"""Automated experiment execution — step 2 of the framework (data side).

The runner sweeps an LPPM parameter across its range, protects the
dataset at every value (several replications with distinct seeds) and
measures the privacy and utility metrics.  Execution goes through an
:class:`repro.engine.EvaluationEngine`: whole sweeps are submitted as
batches (so a process backend can fan them out), results are cached by
content fingerprint (so the configurator, ALP, model transfer and the
ablation benchmarks share work — across processes too, with a disk
cache) and :attr:`ExperimentRunner.n_evaluations` counts only the
real, non-cached executions this runner triggered.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..engine import EvalJob, EvalResult, EvaluationEngine
from ..mobility import Dataset
from .spec import SystemDefinition

__all__ = ["SweepPoint", "SweepResult", "ExperimentRunner"]


@dataclass(frozen=True)
class SweepPoint:
    """Measured metrics at one parameter setting."""

    params: Mapping[str, float]
    privacy_mean: float
    privacy_std: float
    utility_mean: float
    utility_std: float
    n_replications: int


@dataclass
class SweepResult:
    """A full parameter sweep: one :class:`SweepPoint` per value."""

    system_name: str
    param_name: str
    points: List[SweepPoint] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.points)

    def param_values(self) -> np.ndarray:
        """The swept values, in sweep order."""
        return np.asarray([p.params[self.param_name] for p in self.points])

    def privacy(self) -> np.ndarray:
        """Mean privacy metric per swept value."""
        return np.asarray([p.privacy_mean for p in self.points])

    def utility(self) -> np.ndarray:
        """Mean utility metric per swept value."""
        return np.asarray([p.utility_mean for p in self.points])

    def to_rows(self) -> List[Tuple[float, float, float, float, float]]:
        """(value, Pr mean, Pr std, Ut mean, Ut std) tuples for reporting."""
        return [
            (
                p.params[self.param_name],
                p.privacy_mean,
                p.privacy_std,
                p.utility_mean,
                p.utility_std,
            )
            for p in self.points
        ]

    def write_csv(self, path) -> None:
        """Dump the sweep as CSV (the library's figure-data format)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w", newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow(
                [self.param_name, "privacy_mean", "privacy_std",
                 "utility_mean", "utility_std"]
            )
            for row in self.to_rows():
                writer.writerow([repr(v) for v in row])


class ExperimentRunner:
    """Runs metric evaluations for a system on a fixed dataset.

    Parameters
    ----------
    system:
        The :class:`SystemDefinition` under analysis.
    dataset:
        The actual (unprotected) dataset.
    n_replications:
        Seeds per parameter value; the paper's curves are averages over
        randomised protection runs.
    base_seed:
        Root of the replication seed sequence.
    engine:
        The :class:`EvaluationEngine` executing this runner's batches.
        Pass a shared instance so several runners (configurator, ALP,
        transfer) pool their cache; ``None`` builds a private serial
        engine — the seed behaviour.
    """

    def __init__(
        self,
        system: SystemDefinition,
        dataset: Dataset,
        n_replications: int = 3,
        base_seed: int = 0,
        engine: Optional[EvaluationEngine] = None,
    ) -> None:
        if n_replications < 1:
            raise ValueError("need at least one replication")
        self.system = system
        self.dataset = dataset
        self.n_replications = n_replications
        self.base_seed = base_seed
        self.engine = engine if engine is not None else EvaluationEngine()
        #: Number of (protect + measure) executions actually performed
        #: on behalf of this runner (cache hits are not counted).
        self.n_evaluations = 0

    # ------------------------------------------------------------------
    # Single evaluations
    # ------------------------------------------------------------------
    def _run_jobs(self, jobs: Sequence[EvalJob]) -> List[EvalResult]:
        """Submit a batch to the engine, keeping the honest eval count."""
        results = self.engine.run(self.system, self.dataset, jobs)
        self.n_evaluations += sum(1 for r in results if not r.cached)
        return results

    def _replication_jobs(
        self, params: Mapping[str, float], reps: int
    ) -> List[EvalJob]:
        return [
            EvalJob.make(params, self.base_seed + r) for r in range(reps)
        ]

    def _resolve_reps(self, n_replications: Optional[int]) -> int:
        if n_replications is None:
            return self.n_replications
        if n_replications < 1:
            raise ValueError("need at least one replication")
        return int(n_replications)

    @staticmethod
    def _point(
        params: Mapping[str, float], results: Sequence[EvalResult]
    ) -> SweepPoint:
        prs = [r.privacy for r in results]
        uts = [r.utility for r in results]
        return SweepPoint(
            params=dict(params),
            privacy_mean=float(np.mean(prs)),
            privacy_std=float(np.std(prs)),
            utility_mean=float(np.mean(uts)),
            utility_std=float(np.std(uts)),
            n_replications=len(results),
        )

    def evaluate_once(
        self, params: Mapping[str, float], seed: int
    ) -> Tuple[float, float]:
        """(privacy, utility) at ``params`` under one protection seed."""
        [result] = self._run_jobs([EvalJob.make(params, seed)])
        return (result.privacy, result.utility)

    def evaluate(
        self, params: Mapping[str, float], n_replications: Optional[int] = None
    ) -> SweepPoint:
        """Replicated evaluation at one parameter setting."""
        reps = self._resolve_reps(n_replications)
        results = self._run_jobs(self._replication_jobs(params, reps))
        return self._point(params, results)

    def evaluate_many(
        self,
        params_list: Sequence[Mapping[str, float]],
        n_replications: Optional[int] = None,
    ) -> List[SweepPoint]:
        """Evaluate many parameter settings as **one** engine batch.

        This is the high-throughput entry point: all (setting, seed)
        jobs are submitted together, so a parallel backend sees the
        whole sweep at once instead of point-sized dribbles.
        """
        reps = self._resolve_reps(n_replications)
        jobs: List[EvalJob] = []
        for params in params_list:
            jobs.extend(self._replication_jobs(params, reps))
        results = self._run_jobs(jobs)
        return [
            self._point(params, results[i * reps:(i + 1) * reps])
            for i, params in enumerate(params_list)
        ]

    # ------------------------------------------------------------------
    # Sweeps
    # ------------------------------------------------------------------
    def sweep(
        self,
        param_name: Optional[str] = None,
        n_points: int = 15,
        values: Optional[Sequence[float]] = None,
        fixed: Optional[Mapping[str, float]] = None,
    ) -> SweepResult:
        """Sweep one parameter, holding any others at ``fixed`` values.

        ``values`` overrides the spec-derived spacing when given.  For a
        single-parameter system (the paper's GEO-I case) all arguments
        are optional.
        """
        if param_name is None:
            if len(self.system.parameters) != 1:
                raise ValueError("param_name is required for multi-parameter systems")
            param_name = self.system.parameters[0].name
        spec = self.system.parameter(param_name)
        sweep_values = (
            np.asarray(list(values), dtype=float)
            if values is not None
            else spec.values(n_points)
        )
        others = {
            name: value
            for name, value in (fixed or self.system.defaults()).items()
            if name != param_name and name in self.system.parameter_names
        }
        settings = []
        for value in sweep_values:
            params = dict(others)
            params[param_name] = float(value)
            settings.append(params)
        result = SweepResult(self.system.name, param_name)
        result.points.extend(self.evaluate_many(settings))
        return result
