"""Detection of the non-saturated zone of a response curve.

Figure 1 of the paper marks with vertical lines the "zones where
metrics are not saturated": outside them the metric sits on a plateau
and carries no information about the parameter, so the model of
equation (2) is fitted only inside.  This module finds that zone
automatically from a sweep.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ActiveRegion", "find_active_region", "smooth"]


@dataclass(frozen=True)
class ActiveRegion:
    """The index range of a sweep where the metric actually responds."""

    start: int           # first active index (inclusive)
    stop: int            # last active index (inclusive)
    low_plateau: float
    high_plateau: float

    @property
    def n_points(self) -> int:
        """Number of sweep points inside the region."""
        return self.stop - self.start + 1

    def indices(self) -> np.ndarray:
        """Integer indices of the active sweep points."""
        return np.arange(self.start, self.stop + 1)

    def clip(self, other: "ActiveRegion") -> "ActiveRegion":
        """Intersection with another region (over the same sweep)."""
        start = max(self.start, other.start)
        stop = min(self.stop, other.stop)
        if start > stop:
            raise ValueError("active regions do not overlap")
        return ActiveRegion(
            start=start,
            stop=stop,
            low_plateau=self.low_plateau,
            high_plateau=self.high_plateau,
        )


def smooth(ys, window: int = 3) -> np.ndarray:
    """Centred moving average with edge clamping.

    Sweep curves are averages of stochastic metric evaluations;
    smoothing keeps single noisy points from fragmenting the detected
    region.  ``window`` must be odd.
    """
    ys = np.asarray(ys, dtype=float)
    if window < 1 or window % 2 == 0:
        raise ValueError("window must be a positive odd number")
    if window == 1 or ys.size <= 2:
        return ys.copy()
    pad = window // 2
    padded = np.concatenate([np.full(pad, ys[0]), ys, np.full(pad, ys[-1])])
    kernel = np.ones(window) / window
    return np.convolve(padded, kernel, mode="valid")


def find_active_region(
    ys,
    rel_tol: float = 0.05,
    window: int = 3,
) -> ActiveRegion:
    """Find where the (smoothed) curve is away from both plateaus.

    The plateaus are the smoothed curve's extremes; a point is *active*
    when its value is more than ``rel_tol`` of the total span away from
    each plateau.  The region returned is the contiguous run from the
    first to the last active point (response curves of monotone
    mechanisms have a single transition, so this is the transition
    band).  A flat curve yields the full range — there is nothing to
    exclude, and nothing to fit either (the model layer checks slopes).
    """
    ys = np.asarray(ys, dtype=float)
    if ys.size < 3:
        raise ValueError("need at least three sweep points")
    if not 0.0 < rel_tol < 0.5:
        raise ValueError("rel_tol must be in (0, 0.5)")
    sm = smooth(ys, window)
    lo = float(np.min(sm))
    hi = float(np.max(sm))
    span = hi - lo
    if span <= 0:
        return ActiveRegion(0, ys.size - 1, lo, hi)
    margin = rel_tol * span
    active = (sm > lo + margin) & (sm < hi - margin)
    if not np.any(active):
        # Curve is a step: keep the two points straddling the jump.
        jump = int(np.argmax(np.abs(np.diff(sm))))
        return ActiveRegion(jump, min(jump + 1, ys.size - 1), lo, hi)
    idx = np.nonzero(active)[0]
    return ActiveRegion(int(idx[0]), int(idx[-1]), lo, hi)
