"""System definition — step 1 of the framework.

A :class:`SystemDefinition` bundles everything step 1 of the paper
asks the designer for: (1) the privacy and utility metrics, (2) the
LPPM's configuration parameters and their ranges, (3) the dataset
properties considered.  The illustration's instantiation (GEO-I, POI
retrieval, area coverage, single ε axis, no dataset properties) is
available as :func:`geo_ind_system`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Mapping, Sequence

import numpy as np

from ..lppm import GeoIndistinguishability, LPPM
from ..metrics import AreaCoverageUtility, Metric, PoiRetrievalPrivacy
from ..properties import PropertyExtractor

__all__ = ["ParameterSpec", "SystemDefinition", "geo_ind_system"]


@dataclass(frozen=True)
class ParameterSpec:
    """One LPPM configuration parameter and its sweep range.

    ``scale`` is ``"log"`` for parameters spanning orders of magnitude
    (like GEO-I's ε, swept over [1e-4, 1] in the paper's Figure 1) and
    ``"linear"`` otherwise.
    """

    name: str
    low: float
    high: float
    scale: str = "log"

    def __post_init__(self) -> None:
        if self.low >= self.high:
            raise ValueError("low bound must be below high bound")
        if self.scale not in ("log", "linear"):
            raise ValueError(f"unknown scale {self.scale!r}")
        if self.scale == "log" and self.low <= 0:
            raise ValueError("log-scaled parameters need a positive low bound")

    def values(self, n: int) -> np.ndarray:
        """``n`` sweep values across the range, spaced per ``scale``."""
        if n < 2:
            raise ValueError("a sweep needs at least two values")
        if self.scale == "log":
            return np.geomspace(self.low, self.high, n)
        return np.linspace(self.low, self.high, n)

    def contains(self, value: float) -> bool:
        """Whether ``value`` lies in the configured range."""
        return self.low <= value <= self.high


@dataclass(frozen=True)
class SystemDefinition:
    """Everything the framework needs to analyse one LPPM.

    ``lppm_factory`` builds the mechanism from keyword parameters named
    after ``parameters`` (e.g. ``epsilon=...``).
    """

    name: str
    lppm_factory: Callable[..., LPPM]
    parameters: Sequence[ParameterSpec]
    privacy_metric: Metric
    utility_metric: Metric
    dataset_properties: Sequence[PropertyExtractor] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.parameters:
            raise ValueError("a system needs at least one parameter")
        names = [p.name for p in self.parameters]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate parameter names: {names!r}")
        if self.privacy_metric.kind != "privacy":
            raise ValueError("privacy_metric must have kind 'privacy'")
        if self.utility_metric.kind != "utility":
            raise ValueError("utility_metric must have kind 'utility'")

    @property
    def parameter_names(self) -> List[str]:
        """Names of the swept parameters, in declaration order."""
        return [p.name for p in self.parameters]

    def parameter(self, name: str) -> ParameterSpec:
        """Look up a parameter spec by name."""
        for spec in self.parameters:
            if spec.name == name:
                return spec
        raise KeyError(f"unknown parameter {name!r}; have {self.parameter_names}")

    def make_lppm(self, **params: float) -> LPPM:
        """Instantiate the LPPM at the given parameter values."""
        unknown = set(params) - set(self.parameter_names)
        if unknown:
            raise KeyError(f"unknown parameters {sorted(unknown)!r}")
        for name, value in params.items():
            if not self.parameter(name).contains(value):
                spec = self.parameter(name)
                raise ValueError(
                    f"{name}={value!r} outside range [{spec.low}, {spec.high}]"
                )
        return self.lppm_factory(**params)

    def defaults(self) -> Mapping[str, float]:
        """Geometric/arithmetic midpoints of every parameter range."""
        out = {}
        for spec in self.parameters:
            if spec.scale == "log":
                out[spec.name] = float(np.sqrt(spec.low * spec.high))
            else:
                out[spec.name] = (spec.low + spec.high) / 2.0
        return out


def geo_ind_system(
    eps_low: float = 1e-4,
    eps_high: float = 1.0,
    poi_match_m: float = 200.0,
    block_m: float = 600.0,
) -> SystemDefinition:
    """The paper's illustration: GEO-I with POI retrieval vs area coverage.

    ε is swept over the paper's Figure 1 range by default.  The utility
    cell size is calibrated at 600 m so that the paper's worked example
    reproduces on the synthetic taxi workload: ε = 0.01 gives utility
    ≈ 0.8 with privacy ≈ 0, making the §2 objectives (Pr ≤ 0.1 and
    Ut ≥ 0.8) jointly and *robustly* feasible across fleet seeds and
    sizes.  See DESIGN.md for the calibration note.
    """
    return SystemDefinition(
        name="geo_ind",
        lppm_factory=GeoIndistinguishability,
        parameters=[ParameterSpec("epsilon", eps_low, eps_high, scale="log")],
        privacy_metric=PoiRetrievalPrivacy(match_m=poi_match_m),
        utility_metric=AreaCoverageUtility(cell_size_m=block_m),
    )
