"""Persistence of sweeps and fitted models.

The offline phase (sweep + fit) is the framework's only real cost;
a deployment runs it once and then answers configuration queries
forever.  This module serialises both artefacts to JSON so the online
phase can run in a separate process, machine or release — no pickle,
no code execution on load.
"""

from __future__ import annotations

import errno
import itertools
import json
import os
import threading
from pathlib import Path
from typing import Optional, Union

from ..resilience.faults import fire as _fire_fault
from .models import LogLinearMetricModel, SystemModel
from .runner import SweepPoint, SweepResult
from .saturation import ActiveRegion

__all__ = [
    "save_sweep",
    "load_sweep",
    "save_model",
    "load_model",
    "save_eval_record",
    "load_eval_record",
    "read_eval_record",
    "write_json_atomic",
    "read_json_payload",
    "quarantine_file",
]

PathLike = Union[str, Path]

_FORMAT_VERSION = 1

#: Distinguishes concurrent temp files within one process: the pid
#: alone is not enough once several job-worker threads (or forked
#: service workers sharing a warm counter) flush the same key.
_TMP_COUNTER = itertools.count()


def write_json_atomic(payload: dict, path: PathLike) -> None:
    """Write ``payload`` as JSON via a unique temp file + rename.

    Safe for concurrent multi-process writers of the same ``path``: the
    temp name folds in pid, thread id and a process-local counter, and
    ``os.replace`` semantics guarantee readers see either the old or
    the new complete file, never a torn one.  Last writer wins, which
    is correct for content-addressed records (all writers of one key
    carry identical content).
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    injected = _fire_fault("disk.write")
    if injected is not None:
        if injected == "partial":
            # Simulate a torn write: leave truncated JSON at the final
            # path (bypassing the tmp+rename discipline) so readers
            # must quarantine-and-heal, then still report the ENOSPC.
            text = json.dumps(payload, indent=2, sort_keys=True)
            path.write_text(text[: max(1, len(text) // 2)])
        raise OSError(
            errno.ENOSPC,
            "injected disk.write fault (no space left on device)",
            str(path),
        )
    tmp = path.with_name(
        f"{path.name}.{os.getpid()}.{threading.get_ident()}."
        f"{next(_TMP_COUNTER)}.tmp"
    )
    tmp.write_text(json.dumps(payload, indent=2, sort_keys=True))
    tmp.replace(path)


def quarantine_file(path: PathLike) -> Optional[Path]:
    """Move a corrupt record aside (``<name>.corrupt``) so it stops
    being re-read and re-failed on every lookup; the original key then
    reads as a miss and is simply recomputed and rewritten.

    Returns the quarantine path, or ``None`` when the file was already
    gone (e.g. a concurrent reader quarantined it first).
    """
    path = Path(path)
    target = path.with_name(path.name + ".corrupt")
    try:
        path.replace(target)
    except FileNotFoundError:
        return None
    except OSError:
        # Rename refused (exotic filesystem): deleting still converts
        # the permanent error into a plain miss.
        try:
            path.unlink()
        except OSError:
            return None
        return None
    return target


def read_json_payload(
    path: PathLike, expected_kind: str
) -> Optional[dict]:
    """Tolerant read of a versioned record: ``None`` is always a miss.

    A missing file is a plain miss; an unreadable, truncated or
    wrong-kind file is quarantined (renamed to ``<name>.corrupt``) and
    reported as a miss too — cache readers never crash on a torn
    concurrent write or a corrupted disk.  Use :func:`load_eval_record`
    / the ``load_*`` functions when a bad file should raise instead.
    """
    path = Path(path)
    try:
        return _load_payload(path, expected_kind)
    except FileNotFoundError:
        return None
    except (ValueError, OSError, KeyError):
        quarantine_file(path)
        return None


def save_sweep(sweep: SweepResult, path: PathLike) -> None:
    """Write a sweep to JSON."""
    payload = {
        "format_version": _FORMAT_VERSION,
        "kind": "sweep",
        "system_name": sweep.system_name,
        "param_name": sweep.param_name,
        "points": [
            {
                "params": dict(p.params),
                "privacy_mean": p.privacy_mean,
                "privacy_std": p.privacy_std,
                "utility_mean": p.utility_mean,
                "utility_std": p.utility_std,
                "n_replications": p.n_replications,
            }
            for p in sweep.points
        ],
    }
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2))


def load_sweep(path: PathLike) -> SweepResult:
    """Read a sweep written by :func:`save_sweep`."""
    payload = _load_payload(path, "sweep")
    sweep = SweepResult(payload["system_name"], payload["param_name"])
    for entry in payload["points"]:
        sweep.points.append(
            SweepPoint(
                params={k: float(v) for k, v in entry["params"].items()},
                privacy_mean=float(entry["privacy_mean"]),
                privacy_std=float(entry["privacy_std"]),
                utility_mean=float(entry["utility_mean"]),
                utility_std=float(entry["utility_std"]),
                n_replications=int(entry["n_replications"]),
            )
        )
    return sweep


def _metric_model_to_dict(model: LogLinearMetricModel) -> dict:
    return {
        "intercept": model.intercept,
        "slope": model.slope,
        "x_low": model.x_low,
        "x_high": model.x_high,
        "y_low": model.y_low,
        "y_high": model.y_high,
        "r2": model.r2,
    }


def _metric_model_from_dict(data: dict) -> LogLinearMetricModel:
    return LogLinearMetricModel(**{k: float(v) for k, v in data.items()})


def _region_to_dict(region: ActiveRegion) -> dict:
    return {
        "start": region.start,
        "stop": region.stop,
        "low_plateau": region.low_plateau,
        "high_plateau": region.high_plateau,
    }


def _region_from_dict(data: dict) -> ActiveRegion:
    return ActiveRegion(
        start=int(data["start"]),
        stop=int(data["stop"]),
        low_plateau=float(data["low_plateau"]),
        high_plateau=float(data["high_plateau"]),
    )


def save_model(model: SystemModel, path: PathLike) -> None:
    """Write a fitted system model to JSON."""
    payload = {
        "format_version": _FORMAT_VERSION,
        "kind": "system_model",
        "system_name": model.system_name,
        "param_name": model.param_name,
        "privacy": _metric_model_to_dict(model.privacy),
        "utility": _metric_model_to_dict(model.utility),
        "privacy_region": _region_to_dict(model.privacy_region),
        "utility_region": _region_to_dict(model.utility_region),
        "param_low": model.param_low,
        "param_high": model.param_high,
    }
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2))


def load_model(path: PathLike) -> SystemModel:
    """Read a model written by :func:`save_model`."""
    payload = _load_payload(path, "system_model")
    return SystemModel(
        system_name=payload["system_name"],
        param_name=payload["param_name"],
        privacy=_metric_model_from_dict(payload["privacy"]),
        utility=_metric_model_from_dict(payload["utility"]),
        privacy_region=_region_from_dict(payload["privacy_region"]),
        utility_region=_region_from_dict(payload["utility_region"]),
        param_low=float(payload["param_low"]),
        param_high=float(payload["param_high"]),
    )


def save_eval_record(record: dict, path: PathLike) -> None:
    """Write one cached evaluation result to JSON.

    ``record`` must contain at least ``fingerprint``, ``privacy`` and
    ``utility``; the engine adds provenance (system name, params, seed,
    dataset fingerprint) so a cache directory is self-describing.  The
    write is atomic (tmp file + rename) because several worker
    processes may persist results concurrently.
    """
    for field_name in ("fingerprint", "privacy", "utility"):
        if field_name not in record:
            raise ValueError(f"eval record is missing {field_name!r}")
    payload = {
        "format_version": _FORMAT_VERSION,
        "kind": "eval_record",
        **record,
    }
    write_json_atomic(payload, path)


def load_eval_record(path: PathLike) -> dict:
    """Read an evaluation record written by :func:`save_eval_record`.

    Raises :class:`ValueError` for structurally invalid records (missing
    or non-numeric values), so cache readers can treat any bad file as
    a miss instead of crashing mid-sweep.
    """
    payload = _load_payload(path, "eval_record")
    for field_name in ("fingerprint", "privacy", "utility"):
        if field_name not in payload:
            raise ValueError(f"{path}: eval record is missing {field_name!r}")
    try:
        payload["privacy"] = float(payload["privacy"])
        payload["utility"] = float(payload["utility"])
    except (TypeError, ValueError) as exc:
        raise ValueError(f"{path}: non-numeric metric values: {exc}") from exc
    return payload


def read_eval_record(path: PathLike) -> Optional[dict]:
    """Quarantining variant of :func:`load_eval_record`.

    A missing file returns ``None``; an invalid one (truncated JSON
    from a torn concurrent write, wrong kind or version, non-numeric
    metrics) is quarantined as ``<name>.corrupt`` and returns ``None``
    — the cache-reader contract: any bad record is a miss, never an
    exception mid-sweep.
    """
    path = Path(path)
    try:
        return load_eval_record(path)
    except FileNotFoundError:
        return None
    except (ValueError, OSError, KeyError):
        quarantine_file(path)
        return None


def _load_payload(path: PathLike, expected_kind: str) -> dict:
    path = Path(path)
    if _fire_fault("disk.read"):
        raise OSError(
            errno.EIO, "injected disk.read fault", str(path)
        )
    try:
        payload = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ValueError(f"{path}: not valid JSON: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("kind") != expected_kind:
        raise ValueError(
            f"{path}: expected a {expected_kind!r} file, "
            f"got kind={payload.get('kind')!r}"
        )
    version = payload.get("format_version")
    if version != _FORMAT_VERSION:
        raise ValueError(
            f"{path}: unsupported format version {version!r} "
            f"(this library reads version {_FORMAT_VERSION})"
        )
    return payload
