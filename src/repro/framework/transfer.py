"""Cross-dataset model transfer — the dataset-property side of eq. (1).

The paper's equation (1) makes ``f`` a function of dataset properties
``d_1..d_m`` as well as of the LPPM parameters, so that a model learned
on a *population of datasets* can configure the mechanism for a new
dataset without sweeping it.  This module implements that ambition:

1. sweep + fit equation (2) on each training dataset (the usual
   offline phase, once per dataset);
2. regress each coefficient (a, b, alpha, beta) linearly on the chosen
   dataset properties;
3. for a new dataset, extract its properties, predict the
   coefficients, and assemble a ready-to-invert :class:`SystemModel` —
   zero protection runs on the new data.

With few training datasets the property vector should be small; use
``repro.properties.select_properties`` (PCA, as the paper prescribes)
to pick the most variance-carrying ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..engine import EvaluationEngine
from ..mobility import Dataset
from ..properties import PropertyExtractor
from .configurator import Configurator
from .models import LogLinearMetricModel, SystemModel
from .saturation import ActiveRegion
from .spec import SystemDefinition

__all__ = ["TransferredModel", "ModelTransfer"]

_COEFF_NAMES = ("a", "b", "alpha", "beta")


@dataclass(frozen=True)
class TransferredModel:
    """A :class:`SystemModel` predicted from dataset properties alone."""

    model: SystemModel
    properties: Tuple[float, ...]
    coefficients: Tuple[float, float, float, float]


class ModelTransfer:
    """Learns how equation-(2) coefficients vary with dataset properties.

    Parameters
    ----------
    system:
        The system definition shared by all datasets.
    extractors:
        The dataset properties ``d_i`` to regress on (keep this list
        short relative to the number of training datasets).
    n_points, n_replications:
        Sweep resolution of the per-dataset offline phase.
    engine:
        One :class:`EvaluationEngine` shared by every per-dataset
        sweep, so the whole training phase uses one backend and one
        cache; ``None`` builds a private serial engine.
    """

    def __init__(
        self,
        system: SystemDefinition,
        extractors: Sequence[PropertyExtractor],
        n_points: int = 12,
        n_replications: int = 1,
        engine: Optional[EvaluationEngine] = None,
    ) -> None:
        if len(system.parameters) != 1:
            raise ValueError("model transfer supports single-parameter systems")
        if not extractors:
            raise ValueError("need at least one property extractor")
        self.system = system
        self.extractors = list(extractors)
        self.n_points = n_points
        self.n_replications = n_replications
        self.engine = engine if engine is not None else EvaluationEngine()
        self._weights: Optional[np.ndarray] = None   # (n_props+1, 4)
        self._training_models: List[SystemModel] = []
        self.residual_rms: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def _properties_of(self, dataset: Dataset) -> np.ndarray:
        return np.asarray([e(dataset) for e in self.extractors])

    def fit(self, datasets: Sequence[Dataset]) -> None:
        """Sweep every training dataset and regress the coefficients."""
        needed = len(self.extractors) + 1
        if len(datasets) < needed:
            raise ValueError(
                f"need at least {needed} datasets for "
                f"{len(self.extractors)} properties"
            )
        rows = []
        targets = []
        self._training_models = []
        for dataset in datasets:
            configurator = Configurator(
                self.system, dataset,
                n_points=self.n_points, n_replications=self.n_replications,
                engine=self.engine,
            )
            model = configurator.fit()
            self._training_models.append(model)
            rows.append(np.concatenate([[1.0], self._properties_of(dataset)]))
            targets.append(model.coefficients)
        design = np.asarray(rows)
        target_matrix = np.asarray(targets)          # (n_datasets, 4)
        self._weights, _, _, _ = np.linalg.lstsq(design, target_matrix, rcond=None)
        predictions = design @ self._weights
        self.residual_rms = np.sqrt(
            np.mean((predictions - target_matrix) ** 2, axis=0)
        )

    @property
    def training_models(self) -> List[SystemModel]:
        """The per-dataset models the regression was trained on."""
        if not self._training_models:
            raise RuntimeError("call fit() before using the transfer model")
        return list(self._training_models)

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------
    def predict_model(self, dataset: Dataset) -> TransferredModel:
        """Equation (2) for a new dataset, with zero protection runs."""
        if self._weights is None:
            raise RuntimeError("call fit() before predicting")
        props = self._properties_of(dataset)
        coeffs = np.concatenate([[1.0], props]) @ self._weights
        a, b, alpha, beta = (float(c) for c in coeffs)
        spec = self.system.parameters[0]

        def _metric_model(intercept: float, slope: float) -> LogLinearMetricModel:
            at_low = intercept + slope * np.log(spec.low)
            at_high = intercept + slope * np.log(spec.high)
            return LogLinearMetricModel(
                intercept=intercept,
                slope=slope,
                x_low=spec.low,
                x_high=spec.high,
                y_low=float(min(at_low, at_high)),
                y_high=float(max(at_low, at_high)),
                r2=float("nan"),   # no data was fitted for this dataset
            )

        placeholder = ActiveRegion(0, 0, 0.0, 0.0)
        model = SystemModel(
            system_name=self.system.name,
            param_name=spec.name,
            privacy=_metric_model(a, b),
            utility=_metric_model(alpha, beta),
            privacy_region=placeholder,
            utility_region=placeholder,
            param_low=spec.low,
            param_high=spec.high,
        )
        return TransferredModel(
            model=model,
            properties=tuple(float(p) for p in props),
            coefficients=(a, b, alpha, beta),
        )
