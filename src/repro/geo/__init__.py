"""Geodesy substrate: WGS-84 math, projections, grids and bounding boxes."""

from .bbox import BoundingBox
from .grid import SpatialGrid, cell_f1, cell_jaccard
from .point import (
    EARTH_RADIUS_M,
    LatLon,
    destination_point,
    destination_points_arrays,
    haversine_m,
    haversine_m_arrays,
    initial_bearing_deg,
    pairwise_haversine_m,
)
from .projection import LocalProjection, WebMercator

__all__ = [
    "EARTH_RADIUS_M",
    "LatLon",
    "haversine_m",
    "haversine_m_arrays",
    "pairwise_haversine_m",
    "initial_bearing_deg",
    "destination_point",
    "destination_points_arrays",
    "LocalProjection",
    "WebMercator",
    "SpatialGrid",
    "cell_f1",
    "cell_jaccard",
    "BoundingBox",
]
