"""Axis-aligned bounding boxes over lat/lon coordinates."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .point import LatLon, haversine_m

__all__ = ["BoundingBox"]


@dataclass(frozen=True)
class BoundingBox:
    """A lat/lon axis-aligned rectangle.

    The box is closed on all sides.  Longitude wrap-around (boxes
    crossing the antimeridian) is intentionally unsupported: every
    dataset this library targets is city-scale.
    """

    min_lat: float
    min_lon: float
    max_lat: float
    max_lon: float

    def __post_init__(self) -> None:
        if self.min_lat > self.max_lat:
            raise ValueError("min_lat exceeds max_lat")
        if self.min_lon > self.max_lon:
            raise ValueError("min_lon exceeds max_lon")

    @classmethod
    def of(cls, lats, lons) -> "BoundingBox":
        """Tight bounding box of the given coordinate arrays."""
        lats = np.asarray(lats, dtype=float)
        lons = np.asarray(lons, dtype=float)
        if lats.size == 0:
            raise ValueError("cannot bound empty data")
        return cls(
            float(lats.min()), float(lons.min()),
            float(lats.max()), float(lons.max()),
        )

    @property
    def center(self) -> LatLon:
        """Geometric centre of the box."""
        return LatLon(
            (self.min_lat + self.max_lat) / 2.0,
            (self.min_lon + self.max_lon) / 2.0,
        )

    @property
    def width_m(self) -> float:
        """East-west extent in metres, measured at mid latitude."""
        mid = (self.min_lat + self.max_lat) / 2.0
        return haversine_m(LatLon(mid, self.min_lon), LatLon(mid, self.max_lon))

    @property
    def height_m(self) -> float:
        """North-south extent in metres."""
        return haversine_m(
            LatLon(self.min_lat, self.min_lon), LatLon(self.max_lat, self.min_lon)
        )

    @property
    def area_m2(self) -> float:
        """Approximate area in square metres (width x height)."""
        return self.width_m * self.height_m

    def contains(self, p: LatLon) -> bool:
        """Whether point ``p`` lies inside (or on the edge of) the box."""
        return (
            self.min_lat <= p.lat <= self.max_lat
            and self.min_lon <= p.lon <= self.max_lon
        )

    def contains_arrays(self, lats, lons) -> np.ndarray:
        """Vectorised membership test; returns a boolean array."""
        lats = np.asarray(lats, dtype=float)
        lons = np.asarray(lons, dtype=float)
        return (
            (lats >= self.min_lat)
            & (lats <= self.max_lat)
            & (lons >= self.min_lon)
            & (lons <= self.max_lon)
        )

    def expanded(self, margin_deg: float) -> "BoundingBox":
        """A copy grown by ``margin_deg`` degrees on every side."""
        if margin_deg < 0:
            raise ValueError("margin must be non-negative")
        return BoundingBox(
            max(-90.0, self.min_lat - margin_deg),
            max(-180.0, self.min_lon - margin_deg),
            min(90.0, self.max_lat + margin_deg),
            min(180.0, self.max_lon + margin_deg),
        )

    def union(self, other: "BoundingBox") -> "BoundingBox":
        """Smallest box covering both operands."""
        return BoundingBox(
            min(self.min_lat, other.min_lat),
            min(self.min_lon, other.min_lon),
            max(self.max_lat, other.max_lat),
            max(self.max_lon, other.max_lon),
        )
