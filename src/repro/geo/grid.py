"""Uniform spatial grids ("city blocks") over a local projection.

The paper's utility metric compares the *area coverage* of a user before
and after protection at the granularity of a city block.  A
:class:`SpatialGrid` discretises the plane around a reference point into
square cells of a configurable size (200 m by default, the order of a
San Francisco block) and exposes set operations on covered cells.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, Tuple

import numpy as np

from .point import LatLon
from .projection import LocalProjection

__all__ = ["SpatialGrid", "cell_f1", "cell_jaccard"]

Cell = Tuple[int, int]


@dataclass(frozen=True)
class SpatialGrid:
    """Square grid of side ``cell_size_m`` anchored at a reference point."""

    projection: LocalProjection
    cell_size_m: float = 200.0

    def __post_init__(self) -> None:
        if self.cell_size_m <= 0:
            raise ValueError("cell size must be positive")

    @classmethod
    def around(cls, ref: LatLon, cell_size_m: float = 200.0) -> "SpatialGrid":
        """Grid anchored at ``ref`` with the given cell size."""
        return cls(LocalProjection(ref), cell_size_m)

    def cells_of(self, lats, lons) -> np.ndarray:
        """Cell indices of each coordinate; shape ``(n, 2)`` ints."""
        x, y = self.projection.to_xy(lats, lons)
        ix = np.floor(x / self.cell_size_m).astype(np.int64)
        iy = np.floor(y / self.cell_size_m).astype(np.int64)
        return np.stack([ix, iy], axis=1)

    def cell_of(self, p: LatLon) -> Cell:
        """Cell index of a single point."""
        cells = self.cells_of(np.asarray([p.lat]), np.asarray([p.lon]))
        return (int(cells[0, 0]), int(cells[0, 1]))

    def covered_cells(self, lats, lons) -> FrozenSet[Cell]:
        """The set of distinct cells touched by the coordinates."""
        cells = self.cells_of(lats, lons)
        return frozenset(map(tuple, cells.tolist()))

    def cell_center(self, cell: Cell) -> LatLon:
        """Lat/lon of the centre of ``cell``."""
        x = (cell[0] + 0.5) * self.cell_size_m
        y = (cell[1] + 0.5) * self.cell_size_m
        return self.projection.point_to_latlon(x, y)

    def snap(self, lats, lons):
        """Snap coordinates to their cell centres; returns (lat, lon) arrays.

        This is the geometric core of the grid-rounding (spatial
        cloaking) LPPM.
        """
        x, y = self.projection.to_xy(lats, lons)
        cx = (np.floor(x / self.cell_size_m) + 0.5) * self.cell_size_m
        cy = (np.floor(y / self.cell_size_m) + 0.5) * self.cell_size_m
        return self.projection.to_latlon(cx, cy)


def cell_jaccard(a: Iterable[Cell], b: Iterable[Cell]) -> float:
    """Jaccard similarity of two cell sets; 1.0 when both are empty."""
    sa, sb = set(a), set(b)
    if not sa and not sb:
        return 1.0
    union = len(sa | sb)
    return len(sa & sb) / union


def cell_f1(a: Iterable[Cell], b: Iterable[Cell]) -> float:
    """F1 overlap of two cell sets; 1.0 when both are empty.

    Treating ``a`` as ground truth and ``b`` as prediction, this is the
    harmonic mean of precision and recall of the covered-cell sets —
    the default area-coverage utility in this library.
    """
    sa, sb = set(a), set(b)
    if not sa and not sb:
        return 1.0
    if not sa or not sb:
        return 0.0
    inter = len(sa & sb)
    if inter == 0:
        return 0.0
    precision = inter / len(sb)
    recall = inter / len(sa)
    return 2.0 * precision * recall / (precision + recall)
