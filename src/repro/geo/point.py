"""Geodesic primitives on the WGS-84 sphere.

All distances are in metres, all angles in degrees unless stated
otherwise.  Functions come in two flavours: scalar helpers working on
:class:`LatLon` values and vectorised helpers working on numpy arrays of
latitudes/longitudes.  The vectorised forms are what the metrics and
LPPMs use on whole traces; the scalar forms keep call sites readable in
tests and examples.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

#: Mean Earth radius in metres (IUGG value), used by all haversine math.
EARTH_RADIUS_M = 6_371_008.8

__all__ = [
    "EARTH_RADIUS_M",
    "LatLon",
    "haversine_m",
    "haversine_m_arrays",
    "pairwise_haversine_m",
    "initial_bearing_deg",
    "destination_point",
    "destination_points_arrays",
]


@dataclass(frozen=True)
class LatLon:
    """A WGS-84 coordinate pair, latitude and longitude in degrees."""

    lat: float
    lon: float

    def __post_init__(self) -> None:
        if not -90.0 <= self.lat <= 90.0:
            raise ValueError(f"latitude {self.lat!r} outside [-90, 90]")
        if not -180.0 <= self.lon <= 180.0:
            raise ValueError(f"longitude {self.lon!r} outside [-180, 180]")

    def distance_m(self, other: "LatLon") -> float:
        """Great-circle distance to ``other`` in metres."""
        return haversine_m(self, other)

    def as_tuple(self) -> tuple:
        """Return ``(lat, lon)`` as a plain tuple."""
        return (self.lat, self.lon)


def haversine_m(a: LatLon, b: LatLon) -> float:
    """Great-circle distance between two points in metres."""
    return float(
        haversine_m_arrays(
            np.asarray([a.lat]), np.asarray([a.lon]),
            np.asarray([b.lat]), np.asarray([b.lon]),
        )[0]
    )


def haversine_m_arrays(lat1, lon1, lat2, lon2) -> np.ndarray:
    """Element-wise great-circle distance between coordinate arrays.

    Inputs broadcast against each other like normal numpy operands, so a
    single reference point against a whole trace is a valid call.
    """
    lat1 = np.radians(np.asarray(lat1, dtype=float))
    lon1 = np.radians(np.asarray(lon1, dtype=float))
    lat2 = np.radians(np.asarray(lat2, dtype=float))
    lon2 = np.radians(np.asarray(lon2, dtype=float))
    dlat = lat2 - lat1
    dlon = lon2 - lon1
    h = (
        np.sin(dlat / 2.0) ** 2
        + np.cos(lat1) * np.cos(lat2) * np.sin(dlon / 2.0) ** 2
    )
    # Clip guards against tiny negative values from floating-point noise.
    h = np.clip(h, 0.0, 1.0)
    return 2.0 * EARTH_RADIUS_M * np.arcsin(np.sqrt(h))


def pairwise_haversine_m(lats, lons) -> np.ndarray:
    """Full ``(n, n)`` distance matrix for the given coordinate arrays."""
    lats = np.asarray(lats, dtype=float)
    lons = np.asarray(lons, dtype=float)
    return haversine_m_arrays(
        lats[:, None], lons[:, None], lats[None, :], lons[None, :]
    )


def initial_bearing_deg(a: LatLon, b: LatLon) -> float:
    """Initial bearing from ``a`` to ``b`` in degrees, clockwise from north.

    The result is normalised to ``[0, 360)``.
    """
    lat1 = math.radians(a.lat)
    lat2 = math.radians(b.lat)
    dlon = math.radians(b.lon - a.lon)
    x = math.sin(dlon) * math.cos(lat2)
    y = math.cos(lat1) * math.sin(lat2) - math.sin(lat1) * math.cos(
        lat2
    ) * math.cos(dlon)
    bearing = math.degrees(math.atan2(x, y))
    return bearing % 360.0


def destination_point(origin: LatLon, bearing_deg: float, distance_m: float) -> LatLon:
    """Point reached from ``origin`` along ``bearing_deg`` for ``distance_m``."""
    lat, lon = destination_points_arrays(
        np.asarray([origin.lat]),
        np.asarray([origin.lon]),
        np.asarray([bearing_deg]),
        np.asarray([distance_m]),
    )
    return LatLon(float(lat[0]), float(lon[0]))


def destination_points_arrays(lats, lons, bearings_deg, distances_m):
    """Vectorised great-circle destination points.

    Returns a ``(lat, lon)`` pair of arrays in degrees; longitudes are
    normalised to ``[-180, 180)``.
    """
    lat1 = np.radians(np.asarray(lats, dtype=float))
    lon1 = np.radians(np.asarray(lons, dtype=float))
    theta = np.radians(np.asarray(bearings_deg, dtype=float))
    delta = np.asarray(distances_m, dtype=float) / EARTH_RADIUS_M

    sin_lat2 = np.sin(lat1) * np.cos(delta) + np.cos(lat1) * np.sin(
        delta
    ) * np.cos(theta)
    sin_lat2 = np.clip(sin_lat2, -1.0, 1.0)
    lat2 = np.arcsin(sin_lat2)
    y = np.sin(theta) * np.sin(delta) * np.cos(lat1)
    x = np.cos(delta) - np.sin(lat1) * sin_lat2
    lon2 = lon1 + np.arctan2(y, x)

    lat_deg = np.degrees(lat2)
    lon_deg = (np.degrees(lon2) + 180.0) % 360.0 - 180.0
    return lat_deg, lon_deg
