"""Map projections used to do metric-space geometry on lat/lon data.

The library's LPPMs and metrics reason in metres.  Rather than carrying
geodesic math everywhere, traces are projected to a local tangent plane
(an equirectangular projection centred on a reference point), perturbed
or measured there, and mapped back.  For city-scale data the projection
error is far below GPS noise (< 0.1 % across ~50 km).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from .point import EARTH_RADIUS_M, LatLon

__all__ = ["LocalProjection", "WebMercator"]


@dataclass(frozen=True)
class LocalProjection:
    """Equirectangular projection around a fixed reference point.

    ``to_xy`` maps (lat, lon) degrees to (x, y) metres east/north of the
    reference; ``to_latlon`` is its exact inverse.  The cosine of the
    reference latitude is frozen at construction so the projection is a
    bijection (apart from pole degeneracies, which city data never hits).
    """

    ref: LatLon

    @property
    def _cos_ref(self) -> float:
        return math.cos(math.radians(self.ref.lat))

    @classmethod
    def for_data(cls, lats, lons) -> "LocalProjection":
        """Projection centred on the centroid of the given coordinates."""
        lats = np.asarray(lats, dtype=float)
        lons = np.asarray(lons, dtype=float)
        if lats.size == 0:
            raise ValueError("cannot centre a projection on empty data")
        return cls(LatLon(float(np.mean(lats)), float(np.mean(lons))))

    def to_xy(self, lats, lons):
        """Project coordinate arrays to ``(x, y)`` metres."""
        lats = np.asarray(lats, dtype=float)
        lons = np.asarray(lons, dtype=float)
        k = math.pi / 180.0 * EARTH_RADIUS_M
        x = (lons - self.ref.lon) * k * self._cos_ref
        y = (lats - self.ref.lat) * k
        return x, y

    def to_latlon(self, x, y):
        """Inverse of :meth:`to_xy`; returns ``(lat, lon)`` degree arrays."""
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        k = math.pi / 180.0 * EARTH_RADIUS_M
        lon = self.ref.lon + x / (k * self._cos_ref)
        lat = self.ref.lat + y / k
        return lat, lon

    def point_to_xy(self, p: LatLon) -> tuple:
        """Scalar convenience wrapper around :meth:`to_xy`."""
        x, y = self.to_xy(np.asarray([p.lat]), np.asarray([p.lon]))
        return (float(x[0]), float(y[0]))

    def point_to_latlon(self, x: float, y: float) -> LatLon:
        """Scalar convenience wrapper around :meth:`to_latlon`."""
        lat, lon = self.to_latlon(np.asarray([x]), np.asarray([y]))
        return LatLon(float(lat[0]), float(lon[0]))


class WebMercator:
    """Spherical Web-Mercator (EPSG:3857) forward/inverse transform.

    Provided for interoperability with tile-based tooling; the library
    itself uses :class:`LocalProjection` for metric math because Mercator
    distorts distances away from the equator.
    """

    MAX_LAT = 85.051128779806604  # atan(sinh(pi)) in degrees

    @staticmethod
    def to_xy(lats, lons):
        """Project coordinate arrays to Web-Mercator metres."""
        lats = np.clip(
            np.asarray(lats, dtype=float), -WebMercator.MAX_LAT, WebMercator.MAX_LAT
        )
        lons = np.asarray(lons, dtype=float)
        x = np.radians(lons) * EARTH_RADIUS_M
        y = np.log(np.tan(np.pi / 4.0 + np.radians(lats) / 2.0)) * EARTH_RADIUS_M
        return x, y

    @staticmethod
    def to_latlon(x, y):
        """Inverse of :meth:`to_xy`."""
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        lon = np.degrees(x / EARTH_RADIUS_M)
        lat = np.degrees(2.0 * np.arctan(np.exp(y / EARTH_RADIUS_M)) - np.pi / 2.0)
        return lat, lon
