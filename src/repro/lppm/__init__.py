"""Location Privacy Protection Mechanisms.

``GeoIndistinguishability`` is the mechanism configured in the paper's
illustration; the rest are the comparators its future work calls for.
All mechanisms share the :class:`LPPM` interface and live in a registry
keyed by short names (``geo_ind``, ``gaussian``, ...).
"""

from .base import (
    LPPM,
    OnlineProtector,
    available_lppms,
    lppm_class,
    primary_param,
    register_lppm,
)
from .elastic import DensityMap, ElasticGeoIndistinguishability
from .geo_ind import GeoIndistinguishability, planar_laplace_radii
from .noise import GaussianPerturbation, UniformDiskNoise
from .pipeline import Pipeline
from .promesse import Promesse, resample_polyline
from .rounding import GridRounding
from .sampling import Subsampling, TimePerturbation

__all__ = [
    "LPPM",
    "OnlineProtector",
    "register_lppm",
    "lppm_class",
    "available_lppms",
    "primary_param",
    "GeoIndistinguishability",
    "planar_laplace_radii",
    "ElasticGeoIndistinguishability",
    "DensityMap",
    "Promesse",
    "resample_polyline",
    "GaussianPerturbation",
    "UniformDiskNoise",
    "GridRounding",
    "Subsampling",
    "TimePerturbation",
    "Pipeline",
]
