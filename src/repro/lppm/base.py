"""LPPM base class and registry.

A Location Privacy Protection Mechanism transforms a trace into a
protected trace.  Mechanisms are *stateless and deterministic given an
explicit random generator*, which is what makes the framework's
experiment sweeps replicable: the runner derives one child generator per
(trace, replication) pair from a root seed.

The registry maps mechanism names to classes so that the CLI, the
benchmarks and the "other LPPMs" experiment can enumerate every
available mechanism without import gymnastics.
"""

from __future__ import annotations

import abc
import functools
import inspect
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Sequence,
    Tuple,
    Type,
)

import numpy as np

from ..mobility import Dataset, Trace, TraceBlock

__all__ = [
    "LPPM",
    "OnlineProtector",
    "register_lppm",
    "lppm_class",
    "available_lppms",
    "primary_param",
]

#: A map-like callable: ``mapper(fn, traces)`` applies ``fn`` to every
#: trace, preserving order.  ``fn`` is picklable (a partial over a
#: module-level function), so process pools qualify.
TraceMapper = Callable[[Callable[[Trace], Trace], Sequence[Trace]], Iterable[Trace]]


def _protect_single_trace(lppm: "LPPM", seed: int, trace: Trace) -> Trace:
    """Protect one trace with its own (seed, user)-derived generator.

    Module-level (not a closure) so execution backends can ship it to
    worker processes; the RNG derivation lives here, next to the work,
    which keeps parallel protection bit-identical to serial regardless
    of the order or the process in which traces are handled.
    """
    rng = LPPM._trace_rng(seed, trace.user)
    return lppm.protect_trace(trace, rng)


@functools.lru_cache(maxsize=4096)
def _user_entropy(seed: int, user: str) -> Tuple[int, ...]:
    """Spawn-ready SeedSequence entropy for one ``(seed, user)`` pair.

    Sweeps re-derive the per-trace generator for every user at every
    point, so the entropy assembly (a Python loop over the user id) is
    memoised.  Only the *entropy* is cached — never a ``SeedSequence``
    or ``Generator``: spawning children off a shared ``SeedSequence``
    (as :class:`Pipeline` does through ``rng.spawn``) advances its
    child counter, so reused instances would break bit-identity across
    call orders.  A fresh ``SeedSequence`` per call keeps every
    derivation independent of history.
    """
    return (seed & 0xFFFFFFFF, *(ord(c) for c in user))


@functools.lru_cache(maxsize=4096)
def _pcg_state(seed: int, user: str) -> dict:
    """Initial PCG64 state for one ``(seed, user)`` pair, memoised.

    Seeding a ``PCG64`` through a ``SeedSequence`` costs ~20 µs of
    entropy mixing; restoring a cached state dict costs ~1 µs and
    yields the bit-identical stream.  The block paths restore this
    state into one reused generator per trace, which is where the
    per-trace floor of the columnar protect path comes from.  The
    cached dict is read-only to the bit generator (its setter copies
    the values out), so sharing it across restores is safe.
    """
    ss = np.random.SeedSequence(list(_user_entropy(seed, user)))
    return np.random.PCG64(ss).state


def _block_rng() -> Callable[[int, str], np.random.Generator]:
    """One reusable generator, re-seeded per trace by state restore.

    Returns ``at(seed, user)`` handing back the same ``Generator``
    object positioned at the start of that pair's stream — draws are
    bit-identical to a fresh :meth:`LPPM._trace_rng` generator, minus
    the construction cost.  The generator is shared and mutable:
    consume each trace's draws before restoring the next.  Not suitable
    when ``rng.spawn`` is needed (the reused bit generator's seed
    sequence is a dummy), which is why :meth:`LPPM._trace_rng` still
    builds the real thing for the fallback and mapper paths.
    """
    bit_gen = np.random.PCG64(0)
    rng = np.random.Generator(bit_gen)

    def at(seed: int, user: str) -> np.random.Generator:
        bit_gen.state = _pcg_state(seed, user)
        return rng

    return at


def _concat_trace_draws(
    block: "TraceBlock", seed: int, draw: Callable
) -> Tuple[np.ndarray, ...]:
    """Per-trace RNG draws over a block, concatenated column-wise.

    ``draw(rng, trace)`` returns a tuple of 1-D arrays for one trace;
    each position is concatenated across traces in block order.  Every
    trace draws from its own ``(seed, user)`` generator in the same
    order as the per-trace path, so the concatenated streams are
    bit-identical to protecting trace by trace — only the downstream
    deterministic math is batched.
    """
    columns: List[List[np.ndarray]] = []
    rng_at = _block_rng()
    for trace in block.traces:
        rng = rng_at(seed, trace.user)
        drawn = draw(rng, trace)
        if not columns:
            columns = [[] for _ in drawn]
        for col, arr in zip(columns, drawn):
            col.append(arr)
    return tuple(
        np.concatenate(col) if col else np.empty(0) for col in columns
    )


_REGISTRY: Dict[str, Type["LPPM"]] = {}


def register_lppm(name: str) -> Callable[[Type["LPPM"]], Type["LPPM"]]:
    """Class decorator adding an LPPM to the global registry."""

    def _register(cls: Type["LPPM"]) -> Type["LPPM"]:
        if name in _REGISTRY and _REGISTRY[name] is not cls:
            raise ValueError(f"LPPM name {name!r} already registered")
        _REGISTRY[name] = cls
        cls.name = name
        return cls

    return _register


def lppm_class(name: str) -> Type["LPPM"]:
    """Look up a registered LPPM class by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown LPPM {name!r}; available: {sorted(_REGISTRY)}"
        ) from None


def available_lppms() -> List[str]:
    """Sorted names of all registered mechanisms."""
    return sorted(_REGISTRY)


def primary_param(name: str) -> str:
    """Name of a registered mechanism's primary scalar parameter.

    Every registered LPPM takes its headline knob (ε, σ, a radius, …)
    as the first constructor argument; the CLI's ``--param`` and the
    service's ``/protect`` both bind to it by this name.  Raises
    :class:`ValueError` for constructors with no *named* scalar slot
    (``*args``/``**kwargs``-only), so callers can answer "?" instead of
    passing a bogus keyword.
    """
    init = inspect.signature(lppm_class(name).__init__)
    named = [
        p
        for p in init.parameters.values()
        if p.name != "self"
        and p.kind in (p.POSITIONAL_ONLY, p.POSITIONAL_OR_KEYWORD,
                       p.KEYWORD_ONLY)
    ]
    if not named:
        raise ValueError(f"LPPM {name!r} takes no named parameters")
    first = named[0]
    if first.kind is first.POSITIONAL_ONLY:
        # Callers bind the knob by keyword; a positional-only slot
        # cannot be, and silently skipping it would name the wrong one.
        raise ValueError(
            f"LPPM {name!r}: first parameter {first.name!r} is "
            "positional-only and cannot be bound by name"
        )
    return first.name


class LPPM(abc.ABC):
    """Base class of every protection mechanism.

    Subclasses implement :meth:`protect_trace`; the dataset-level method
    and seed plumbing are shared.  ``params()`` exposes the mechanism's
    configuration for the framework's sweep machinery and for reporting.
    """

    #: Registry name, set by :func:`register_lppm`.
    name: str = "abstract"

    @abc.abstractmethod
    def protect_trace(self, trace: Trace, rng: np.random.Generator) -> Trace:
        """Return the protected counterpart of ``trace``."""

    @abc.abstractmethod
    def params(self) -> Mapping[str, float]:
        """The mechanism's configuration parameters, by name."""

    def protect(
        self, dataset: Dataset, seed: int = 0, mapper: "TraceMapper" = None
    ) -> Dataset:
        """Protect every trace of ``dataset`` deterministically.

        Each trace gets an independent generator derived from ``seed``
        and the user id, so protecting a subset of users yields exactly
        the same protected traces as protecting the full dataset.

        ``mapper`` lets execution backends parallelise the per-trace
        work: it receives a picklable per-trace function and the trace
        list, and must apply the function to every trace in order (the
        contract of ``map``).  Because each trace's generator depends
        only on (seed, user id), any order of execution — or process
        placement — produces bit-identical output.

        Without a mapper, protection runs through the columnar block
        path (:meth:`protect_block` over :meth:`Dataset.columns`):
        vectorised mechanisms cover the whole dataset in one kernel
        call, everything else takes the per-trace fallback — both
        bit-identical to mapping trace by trace.
        """
        if mapper is None:
            protected = self.protect_block(dataset.columns(), seed)
        else:
            fn = functools.partial(_protect_single_trace, self, seed)
            protected = list(mapper(fn, dataset.traces))
        return Dataset.from_traces(protected)

    def protect_block(self, block: TraceBlock, seed: int) -> List[Trace]:
        """Protect every trace of a columnar block, in block order.

        The base implementation is the per-trace reference path — one
        ``(seed, user)`` generator and one :meth:`protect_trace` call
        per trace — so any subclass is block-ready by construction.
        Vectorised mechanisms override this to batch their
        deterministic math over the whole block while drawing each
        trace's randomness from its own generator in the reference
        order, which keeps block output bit-identical to the per-trace
        path.
        """
        return [
            _protect_single_trace(self, seed, trace) for trace in block.traces
        ]

    @staticmethod
    def _trace_rng(seed: int, user: str) -> np.random.Generator:
        """Deterministic per-user generator derived from a root seed."""
        ss = np.random.SeedSequence(list(_user_entropy(seed, user)))
        return np.random.default_rng(ss)

    #: The stateful stream class :meth:`protect_online` instantiates;
    #: mechanisms with a true O(1)-per-update path point this at their
    #: own :class:`OnlineProtector` subclass.
    _online_cls: Type["OnlineProtector"]

    def protect_online(
        self, seed: int = 0, user: str = "stream"
    ) -> "OnlineProtector":
        """A stateful online protection stream for one user.

        The returned :class:`OnlineProtector` accepts incremental
        location updates (:meth:`OnlineProtector.push`), emitting a
        live protected record per update, and replays the accumulated
        batch through the mechanism's batch path on demand
        (:meth:`OnlineProtector.result`) — the replay is bit-identical
        to :meth:`protect` over the same records.
        """
        return self._online_cls(self, seed, user)

    def __repr__(self) -> str:
        args = ", ".join(f"{k}={v!r}" for k, v in self.params().items())
        return f"{type(self).__name__}({args})"


class OnlineProtector:
    """A stateful protection stream for one user — the online seam.

    Two guarantees, two paths:

    * :meth:`push` emits a **live** protected record per update.  The
      base implementation wraps the existing per-trace machinery —
      it re-protects the accumulated prefix with a fresh
      ``(seed, user)`` generator and emits the tail, which is correct
      for every mechanism but costs O(prefix) per update.  Mechanisms
      with separable per-record randomness (geo-I, Gaussian, rounding,
      subsampling, uniform disk) override :meth:`_emit_live` with a
      true O(1)-per-update path: a session-fixed projection anchor and
      a carried per-``(seed, user)`` RNG stream, so live output is
      drawn from the same distribution as the batch path.
    * :meth:`result` replays everything pushed so far through
      :meth:`LPPM.protect` with the session's seed.  A replayed batch
      is therefore **bit-identical** to protecting the same trace
      offline — the invariant the online/batch parity suite pins for
      every registered mechanism.

    Updates must arrive with non-decreasing timestamps per the usual
    trace contract; out-of-order pushes are accepted (the replay
    stable-sorts, as :class:`Trace` always has) but live emissions
    then reflect arrival order, not time order.
    """

    def __init__(self, lppm: "LPPM", seed: int = 0, user: str = "stream"):
        if not user:
            raise ValueError("online protection user id must be non-empty")
        self.lppm = lppm
        self.seed = int(seed)
        self.user = str(user)
        self._times: List[float] = []
        self._lats: List[float] = []
        self._lons: List[float] = []
        #: Carried RNG stream for the live draws of O(1) overrides.
        self._rng = LPPM._trace_rng(self.seed, self.user)

    @property
    def n_pushed(self) -> int:
        """How many updates this stream has accepted."""
        return len(self._times)

    def push(self, time_s: float, lat: float, lon: float):
        """Accept one location update; return the live protected record.

        Returns a ``(time_s, lat, lon)`` tuple, or ``None`` when the
        mechanism suppresses the record (subsampling) or has nothing to
        emit yet.  Raises :class:`ValueError` for coordinates outside
        valid ranges, mirroring :class:`Trace` validation.
        """
        time_s, lat, lon = float(time_s), float(lat), float(lon)
        if not (abs(lat) <= 90.0 and abs(lon) <= 180.0):
            raise ValueError(
                f"coordinates outside valid lat/lon ranges: {lat}, {lon}"
            )
        if not (np.isfinite(time_s) and np.isfinite(lat) and np.isfinite(lon)):
            raise ValueError("location updates must be finite numbers")
        self._times.append(time_s)
        self._lats.append(lat)
        self._lons.append(lon)
        return self._emit_live(time_s, lat, lon)

    def _emit_live(self, time_s: float, lat: float, lon: float):
        """Live emission for one update; base = prefix replay tail."""
        protected = self.result()
        if protected.is_empty:
            return None
        return (
            float(protected.times_s[-1]),
            float(protected.lats[-1]),
            float(protected.lons[-1]),
        )

    def pushed_trace(self) -> Trace:
        """The accumulated raw updates as a :class:`Trace`."""
        return Trace(self.user, self._times, self._lats, self._lons)

    def result(self) -> Trace:
        """Protect everything pushed so far through the batch path.

        Bit-identical to ``lppm.protect(Dataset.from_traces([t]),
        seed)`` of the pushed trace ``t`` — the per-trace generator
        depends only on ``(seed, user)``, so an online session replayed
        in one go cannot be told apart from an offline run.
        """
        dataset = Dataset.from_traces([self.pushed_trace()])
        return self.lppm.protect(dataset, seed=self.seed)[self.user]


# The default for every mechanism; set after the class exists because
# LPPM's body cannot reference a name defined below it.
LPPM._online_cls = OnlineProtector
