"""Elastic Geo-Indistinguishability: density-aware noise calibration.

A pragmatic reimplementation of the idea of Chatzikokolakis, Palamidessi
and Stronati, *Constructing elastic distinguishability metrics for
location privacy* (PETS 2015) — reference [3] of the paper: the privacy
requirement should flex with the semantics of the location.  In a dense
downtown a small amount of noise hides a user among many plausible
places; an isolated location needs far more noise for the same
indistinguishability.

This mechanism keeps GEO-I's planar Laplace machinery but scales the
effective epsilon per point by the local visit density of the dataset:

    eps_i = epsilon * (density_i / median_density) ** exponent

clipped to ``[epsilon / max_scale, epsilon * max_scale]``.  Dense areas
get a larger effective epsilon (less noise), sparse areas a smaller one
(more noise) — spending the noise budget where it actually matters.
The density map is built from the dataset being protected (or can be
supplied as background knowledge).
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Tuple

import numpy as np

from ..geo import LatLon, LocalProjection, SpatialGrid
from ..mobility import Dataset, Trace, TraceBlock
from .base import LPPM, _concat_trace_draws, register_lppm
from .geo_ind import (
    _polar_draws,
    planar_laplace_radii,
    planar_laplace_radii_from_uniform,
)

__all__ = ["DensityMap", "ElasticGeoIndistinguishability"]


class DensityMap:
    """Visit counts per grid cell, the prior an elastic metric needs."""

    def __init__(self, grid: SpatialGrid, counts: Dict[Tuple[int, int], int]) -> None:
        if not counts:
            raise ValueError("density map needs at least one visited cell")
        self.grid = grid
        self.counts = dict(counts)
        self.median_count = float(np.median(list(counts.values())))

    @classmethod
    def from_dataset(
        cls, dataset: Dataset, cell_size_m: float = 400.0,
        ref: Optional[LatLon] = None,
    ) -> "DensityMap":
        """Count every record of every trace into grid cells."""
        grid = SpatialGrid.around(ref or dataset.centroid(), cell_size_m)
        counts: Dict[Tuple[int, int], int] = {}
        for trace in dataset.traces:
            if trace.is_empty:
                continue
            cells, cell_counts = np.unique(
                grid.cells_of(trace.lats, trace.lons), axis=0, return_counts=True
            )
            for cell, n in zip(map(tuple, cells.tolist()), cell_counts.tolist()):
                counts[cell] = counts.get(cell, 0) + int(n)
        return cls(grid, counts)

    def density_at(self, lats, lons) -> np.ndarray:
        """Visit counts of the cells containing each coordinate (0 if unseen).

        The dict is consulted once per *distinct* cell; records fan back
        out through the inverse index, so a whole dataset's counts cost
        one Python loop over its visited cells, not over its records.
        """
        cells = self.grid.cells_of(lats, lons)
        if cells.shape[0] == 0:
            return np.empty(0, dtype=float)
        uniq, inverse = np.unique(cells, axis=0, return_inverse=True)
        counts = np.asarray(
            [self.counts.get(tuple(c), 0) for c in uniq.tolist()], dtype=float
        )
        return counts[inverse]


@register_lppm("elastic_geo_ind")
class ElasticGeoIndistinguishability(LPPM):
    """Planar Laplace with per-point epsilon scaled by local density."""

    def __init__(
        self,
        epsilon: float,
        exponent: float = 0.5,
        max_scale: float = 4.0,
        cell_size_m: float = 400.0,
        density: Optional[DensityMap] = None,
    ) -> None:
        if epsilon <= 0:
            raise ValueError("epsilon must be positive")
        if not 0.0 <= exponent <= 1.0:
            raise ValueError("exponent must be in [0, 1]")
        if max_scale < 1.0:
            raise ValueError("max_scale must be at least 1")
        self.epsilon = float(epsilon)
        self.exponent = float(exponent)
        self.max_scale = float(max_scale)
        self.cell_size_m = float(cell_size_m)
        self.density = density

    def params(self) -> Mapping[str, float]:
        return {"epsilon": self.epsilon, "exponent": self.exponent}

    def protect(
        self, dataset: Dataset, seed: int = 0, mapper=None
    ) -> Dataset:
        """Protect a dataset, building the density prior from it if absent.

        When no :class:`DensityMap` was supplied, the whole dataset
        (not each trace alone) defines the density — the elastic metric
        models where *people in general* are, not where this user is.
        The prior is built *before* the traces fan out to ``mapper``,
        so parallel workers all see the same background knowledge.
        """
        if self.density is None:
            prior = DensityMap.from_dataset(dataset, self.cell_size_m)
            elastic = ElasticGeoIndistinguishability(
                self.epsilon, self.exponent, self.max_scale,
                self.cell_size_m, prior,
            )
            return LPPM.protect(elastic, dataset, seed, mapper=mapper)
        return LPPM.protect(self, dataset, seed, mapper=mapper)

    def epsilons_for(self, trace: Trace, density: DensityMap) -> np.ndarray:
        """Per-point effective epsilons for ``trace`` under ``density``."""
        return self._scaled_epsilons(trace.lats, trace.lons, density)

    def _scaled_epsilons(self, lats, lons, density: DensityMap) -> np.ndarray:
        """Density-scaled epsilons for any coordinate arrays (block or trace)."""
        counts = density.density_at(lats, lons)
        ref = max(density.median_count, 1.0)
        scale = np.power(np.maximum(counts, 1.0) / ref, self.exponent)
        scale = np.clip(scale, 1.0 / self.max_scale, self.max_scale)
        return self.epsilon * scale

    def protect_trace(self, trace: Trace, rng: np.random.Generator) -> Trace:
        if trace.is_empty:
            return trace
        density = self.density or DensityMap.from_dataset(
            Dataset.from_traces([trace]), self.cell_size_m
        )
        eps = self.epsilons_for(trace, density)
        projection = LocalProjection.for_data(trace.lats, trace.lons)
        x, y = projection.to_xy(trace.lats, trace.lons)
        # One unit-epsilon radius per point, rescaled: r(eps) = r(1)/eps.
        unit_r = planar_laplace_radii(1.0, len(trace), rng)
        r = unit_r / eps
        theta = rng.uniform(0.0, 2.0 * np.pi, size=len(trace))
        lats, lons = projection.to_latlon(
            x + r * np.cos(theta), y + r * np.sin(theta)
        )
        return trace.with_coords(lats, lons)

    def protect_block(self, block: TraceBlock, seed: int) -> list:
        """Vectorised elastic planar Laplace over a whole dataset.

        Requires a prepared density prior — :meth:`protect` builds one
        from the dataset before fanning out, so this path always sees
        it there.  Without a prior (direct calls), the per-trace
        fallback keeps the per-trace-density semantics of
        :meth:`protect_trace`.
        """
        if self.density is None:
            return super().protect_block(block, seed)
        if block.n_records == 0:
            return list(block.traces)
        eps = self._scaled_epsilons(block.lats, block.lons, self.density)
        p, raw_theta = _concat_trace_draws(block, seed, _polar_draws)
        theta = raw_theta * (2.0 * np.pi)
        # One unit-epsilon radius per point, rescaled: r(eps) = r(1)/eps.
        r = planar_laplace_radii_from_uniform(1.0, p) / eps
        x, y = block.to_xy()
        lats, lons = block.to_latlon(
            x + r * np.cos(theta), y + r * np.sin(theta)
        )
        return block.with_coords(lats, lons)
