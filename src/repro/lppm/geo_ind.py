"""Geo-Indistinguishability: the planar Laplace mechanism.

Implements the LPPM of Andrés, Bordenabe, Chatzikokolakis and
Palamidessi, *Geo-Indistinguishability: Differential Privacy for
Location-Based Systems* (CCS 2013) — the mechanism the paper's
illustration configures.  Independent noise drawn from the polar
(planar) Laplace distribution with parameter ``epsilon`` (in metres⁻¹)
is added to every location: the density of the noise vector is
proportional to ``exp(-epsilon * |z|)``, which guarantees
ε·d-privacy — the log-likelihood ratio of any output between two real
locations at distance d is bounded by ε·d.

Sampling uses the authors' exact polar method:

* angle ``theta ~ Uniform[0, 2*pi)``;
* radius ``r = -(1/epsilon) * (W_{-1}((p - 1)/e) + 1)`` with
  ``p ~ Uniform[0, 1)`` and ``W_{-1}`` the lower real branch of the
  Lambert W function.

The radius then follows the Gamma(2, 1/ε) distribution, with mean
``2/epsilon`` — the number to keep in mind when relating ε to metres of
error (ε = 0.01 m⁻¹ ≈ 200 m mean displacement).
"""

from __future__ import annotations

from typing import Mapping

import numpy as np
from scipy.special import lambertw

from ..geo import LatLon, LocalProjection
from ..mobility import Trace, TraceBlock
from .base import LPPM, OnlineProtector, _concat_trace_draws, register_lppm

__all__ = [
    "GeoIndistinguishability",
    "planar_laplace_radii",
    "planar_laplace_radii_from_uniform",
]


def planar_laplace_radii_from_uniform(
    epsilon: float, p: np.ndarray
) -> np.ndarray:
    """Polar Laplace radii from already-drawn ``Uniform[0, 1)`` samples.

    The deterministic half of :func:`planar_laplace_radii`, split out
    so the columnar protect path can draw ``p`` per trace (preserving
    the per-user RNG streams) and then evaluate one concatenated
    Lambert-W call over a whole dataset.
    """
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    w = lambertw((p - 1.0) / np.e, k=-1)
    return -(1.0 / epsilon) * (np.real(w) + 1.0)


def planar_laplace_radii(
    epsilon: float, n: int, rng: np.random.Generator
) -> np.ndarray:
    """Sample ``n`` radii of the polar Laplace distribution.

    Uses the inverse-CDF expression with the Lambert-W lower branch;
    the result is exact (no rejection), and distributed Gamma(2, 1/ε).
    """
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    if n < 0:
        raise ValueError("sample count must be non-negative")
    p = rng.uniform(0.0, 1.0, size=n)
    return planar_laplace_radii_from_uniform(epsilon, p)


def _polar_draws(rng: np.random.Generator, trace) -> tuple:
    """One trace's ``(p, raw theta)`` draws, fused into one RNG call.

    ``uniform(0, 1, n)`` then ``uniform(0, 2π, n)`` consume ``2n``
    consecutive doubles ``d`` of the stream and return ``d`` and
    ``2π·d`` respectively — so one ``2n`` draw reproduces both streams
    at half the call overhead.  The second half is returned *unscaled*:
    multiplying the concatenated block by ``2π`` once is elementwise
    identical to scaling each trace's slice, so callers apply
    ``theta = raw * (2.0 * np.pi)`` block-wide.
    """
    n = len(trace)
    v = rng.uniform(0.0, 1.0, size=2 * n)
    return v[:n], v[n:]


class _GeoIndOnline(OnlineProtector):
    """O(1)-per-update planar Laplace over a session-fixed anchor.

    The projection is anchored at the first pushed location (an online
    session cannot know the eventual trace centroid), and radii/angles
    come from the session's carried ``(seed, user)`` stream — the same
    Gamma(2, 1/ε) displacement distribution as the batch path, one
    polar draw per update.
    """

    def __init__(self, lppm: "GeoIndistinguishability", seed=0, user="stream"):
        super().__init__(lppm, seed, user)
        self._projection = None

    def _emit_live(self, time_s, lat, lon):
        if self._projection is None:
            self._projection = LocalProjection(LatLon(lat, lon))
        x, y = self._projection.to_xy(lat, lon)
        r = planar_laplace_radii(self.lppm.epsilon, 1, self._rng)[0]
        theta = self._rng.uniform(0.0, 2.0 * np.pi)
        out = self._projection.point_to_latlon(
            float(x) + r * np.cos(theta), float(y) + r * np.sin(theta)
        )
        return (time_s, out.lat, out.lon)


@register_lppm("geo_ind")
class GeoIndistinguishability(LPPM):
    """Planar Laplace noise with privacy parameter ``epsilon`` (m⁻¹).

    The lower the ε, the stronger the noise and the stronger the
    privacy guarantee — the convention used throughout the paper.
    """

    def __init__(self, epsilon: float) -> None:
        if epsilon <= 0:
            raise ValueError("epsilon must be positive")
        self.epsilon = float(epsilon)

    _online_cls = _GeoIndOnline

    @property
    def mean_error_m(self) -> float:
        """Expected displacement ``2/epsilon`` of the added noise."""
        return 2.0 / self.epsilon

    def params(self) -> Mapping[str, float]:
        return {"epsilon": self.epsilon}

    def protect_trace(self, trace: Trace, rng: np.random.Generator) -> Trace:
        if trace.is_empty:
            return trace
        projection = LocalProjection.for_data(trace.lats, trace.lons)
        x, y = projection.to_xy(trace.lats, trace.lons)
        r = planar_laplace_radii(self.epsilon, len(trace), rng)
        theta = rng.uniform(0.0, 2.0 * np.pi, size=len(trace))
        lats, lons = projection.to_latlon(
            x + r * np.cos(theta), y + r * np.sin(theta)
        )
        return trace.with_coords(lats, lons)

    def protect_block(self, block: TraceBlock, seed: int) -> list:
        """Vectorised planar Laplace over a whole dataset at once.

        Per-trace RNG draws are preserved bit-identically (each trace's
        generator emits ``p`` then ``theta``, exactly as
        :meth:`protect_trace` consumes them); the deterministic math —
        projection, a single concatenated Lambert-W evaluation, trig —
        runs once over the concatenated block.
        """
        if block.n_records == 0:
            return list(block.traces)
        p, raw_theta = _concat_trace_draws(block, seed, _polar_draws)
        theta = raw_theta * (2.0 * np.pi)
        r = planar_laplace_radii_from_uniform(self.epsilon, p)
        x, y = block.to_xy()
        lats, lons = block.to_latlon(
            x + r * np.cos(theta), y + r * np.sin(theta)
        )
        return block.with_coords(lats, lons)
