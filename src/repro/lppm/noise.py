"""Simple perturbation LPPMs: Gaussian and uniform-disk noise.

These are the obvious baselines to Geo-Indistinguishability: same
"independent noise per record" shape, different (non differentially
private) noise distributions.  They exist so the framework's "other
LPPMs" experiment (paper future work) has mechanisms with the same
parameter semantics (a length scale in metres) but different response
curves.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from ..geo import LatLon, LocalProjection
from ..mobility import Trace, TraceBlock
from .base import LPPM, OnlineProtector, _concat_trace_draws, register_lppm
from .geo_ind import _polar_draws

__all__ = ["GaussianPerturbation", "UniformDiskNoise"]


class _AnchoredOnline(OnlineProtector):
    """Shared O(1) online base: projection anchored at the first push."""

    def __init__(self, lppm, seed=0, user="stream"):
        super().__init__(lppm, seed, user)
        self._projection = None

    def _emit_live(self, time_s, lat, lon):
        if self._projection is None:
            self._projection = LocalProjection(LatLon(lat, lon))
        x, y = self._projection.to_xy(lat, lon)
        out = self._projection.point_to_latlon(
            *self._displace(float(x), float(y))
        )
        return (time_s, out.lat, out.lon)

    def _displace(self, x: float, y: float) -> tuple:
        raise NotImplementedError


class _GaussianOnline(_AnchoredOnline):
    def _displace(self, x, y):
        dx, dy = self._rng.normal(0.0, self.lppm.sigma_m, size=2)
        return x + dx, y + dy


class _UniformDiskOnline(_AnchoredOnline):
    def _displace(self, x, y):
        r = self.lppm.radius_m * np.sqrt(self._rng.uniform(0.0, 1.0))
        theta = self._rng.uniform(0.0, 2.0 * np.pi)
        return x + r * np.cos(theta), y + r * np.sin(theta)


@register_lppm("gaussian")
class GaussianPerturbation(LPPM):
    """Isotropic Gaussian noise with standard deviation ``sigma_m``."""

    _online_cls = _GaussianOnline

    def __init__(self, sigma_m: float) -> None:
        if sigma_m <= 0:
            raise ValueError("sigma must be positive")
        self.sigma_m = float(sigma_m)

    def params(self) -> Mapping[str, float]:
        return {"sigma_m": self.sigma_m}

    def protect_trace(self, trace: Trace, rng: np.random.Generator) -> Trace:
        if trace.is_empty:
            return trace
        projection = LocalProjection.for_data(trace.lats, trace.lons)
        x, y = projection.to_xy(trace.lats, trace.lons)
        dx, dy = rng.normal(0.0, self.sigma_m, size=(2, len(trace)))
        lats, lons = projection.to_latlon(x + dx, y + dy)
        return trace.with_coords(lats, lons)

    def protect_block(self, block: TraceBlock, seed: int) -> list:
        """Vectorised Gaussian noise: per-trace draws, one block shift."""
        if block.n_records == 0:
            return list(block.traces)
        dx, dy = _concat_trace_draws(
            block,
            seed,
            lambda rng, t: tuple(
                rng.normal(0.0, self.sigma_m, size=(2, len(t)))
            ),
        )
        x, y = block.to_xy()
        lats, lons = block.to_latlon(x + dx, y + dy)
        return block.with_coords(lats, lons)


@register_lppm("uniform_disk")
class UniformDiskNoise(LPPM):
    """Noise uniform over a disk of radius ``radius_m``.

    Unlike Gaussian/Laplace noise the displacement is bounded, which
    gives a hard utility guarantee but a weaker privacy story (the real
    location is always within ``radius_m`` of the released one).
    """

    _online_cls = _UniformDiskOnline

    def __init__(self, radius_m: float) -> None:
        if radius_m <= 0:
            raise ValueError("radius must be positive")
        self.radius_m = float(radius_m)

    def params(self) -> Mapping[str, float]:
        return {"radius_m": self.radius_m}

    def protect_trace(self, trace: Trace, rng: np.random.Generator) -> Trace:
        if trace.is_empty:
            return trace
        projection = LocalProjection.for_data(trace.lats, trace.lons)
        x, y = projection.to_xy(trace.lats, trace.lons)
        # Uniform over the disk: radius ~ R*sqrt(U), angle uniform.
        r = self.radius_m * np.sqrt(rng.uniform(0.0, 1.0, size=len(trace)))
        theta = rng.uniform(0.0, 2.0 * np.pi, size=len(trace))
        lats, lons = projection.to_latlon(
            x + r * np.cos(theta), y + r * np.sin(theta)
        )
        return trace.with_coords(lats, lons)

    def protect_block(self, block: TraceBlock, seed: int) -> list:
        """Vectorised disk noise: per-trace draws, one block transform."""
        if block.n_records == 0:
            return list(block.traces)
        u, raw_theta = _concat_trace_draws(block, seed, _polar_draws)
        theta = raw_theta * (2.0 * np.pi)
        r = self.radius_m * np.sqrt(u)
        x, y = block.to_xy()
        lats, lons = block.to_latlon(
            x + r * np.cos(theta), y + r * np.sin(theta)
        )
        return block.with_coords(lats, lons)
