"""Simple perturbation LPPMs: Gaussian and uniform-disk noise.

These are the obvious baselines to Geo-Indistinguishability: same
"independent noise per record" shape, different (non differentially
private) noise distributions.  They exist so the framework's "other
LPPMs" experiment (paper future work) has mechanisms with the same
parameter semantics (a length scale in metres) but different response
curves.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from ..geo import LocalProjection
from ..mobility import Trace, TraceBlock
from .base import LPPM, _concat_trace_draws, register_lppm
from .geo_ind import _polar_draws

__all__ = ["GaussianPerturbation", "UniformDiskNoise"]


@register_lppm("gaussian")
class GaussianPerturbation(LPPM):
    """Isotropic Gaussian noise with standard deviation ``sigma_m``."""

    def __init__(self, sigma_m: float) -> None:
        if sigma_m <= 0:
            raise ValueError("sigma must be positive")
        self.sigma_m = float(sigma_m)

    def params(self) -> Mapping[str, float]:
        return {"sigma_m": self.sigma_m}

    def protect_trace(self, trace: Trace, rng: np.random.Generator) -> Trace:
        if trace.is_empty:
            return trace
        projection = LocalProjection.for_data(trace.lats, trace.lons)
        x, y = projection.to_xy(trace.lats, trace.lons)
        dx, dy = rng.normal(0.0, self.sigma_m, size=(2, len(trace)))
        lats, lons = projection.to_latlon(x + dx, y + dy)
        return trace.with_coords(lats, lons)

    def protect_block(self, block: TraceBlock, seed: int) -> list:
        """Vectorised Gaussian noise: per-trace draws, one block shift."""
        if block.n_records == 0:
            return list(block.traces)
        dx, dy = _concat_trace_draws(
            block,
            seed,
            lambda rng, t: tuple(
                rng.normal(0.0, self.sigma_m, size=(2, len(t)))
            ),
        )
        x, y = block.to_xy()
        lats, lons = block.to_latlon(x + dx, y + dy)
        return block.with_coords(lats, lons)


@register_lppm("uniform_disk")
class UniformDiskNoise(LPPM):
    """Noise uniform over a disk of radius ``radius_m``.

    Unlike Gaussian/Laplace noise the displacement is bounded, which
    gives a hard utility guarantee but a weaker privacy story (the real
    location is always within ``radius_m`` of the released one).
    """

    def __init__(self, radius_m: float) -> None:
        if radius_m <= 0:
            raise ValueError("radius must be positive")
        self.radius_m = float(radius_m)

    def params(self) -> Mapping[str, float]:
        return {"radius_m": self.radius_m}

    def protect_trace(self, trace: Trace, rng: np.random.Generator) -> Trace:
        if trace.is_empty:
            return trace
        projection = LocalProjection.for_data(trace.lats, trace.lons)
        x, y = projection.to_xy(trace.lats, trace.lons)
        # Uniform over the disk: radius ~ R*sqrt(U), angle uniform.
        r = self.radius_m * np.sqrt(rng.uniform(0.0, 1.0, size=len(trace)))
        theta = rng.uniform(0.0, 2.0 * np.pi, size=len(trace))
        lats, lons = projection.to_latlon(
            x + r * np.cos(theta), y + r * np.sin(theta)
        )
        return trace.with_coords(lats, lons)

    def protect_block(self, block: TraceBlock, seed: int) -> list:
        """Vectorised disk noise: per-trace draws, one block transform."""
        if block.n_records == 0:
            return list(block.traces)
        u, raw_theta = _concat_trace_draws(block, seed, _polar_draws)
        theta = raw_theta * (2.0 * np.pi)
        r = self.radius_m * np.sqrt(u)
        x, y = block.to_xy()
        lats, lons = block.to_latlon(
            x + r * np.cos(theta), y + r * np.sin(theta)
        )
        return block.with_coords(lats, lons)
