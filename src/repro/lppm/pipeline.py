"""Composition of LPPMs.

Real deployments stack mechanisms (subsample, then add noise); the
:class:`Pipeline` LPPM applies its stages in order, re-deriving an
independent generator per stage so stage order does not entangle the
random streams.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from ..mobility import Trace
from .base import LPPM

__all__ = ["Pipeline"]


class Pipeline(LPPM):
    """Apply a sequence of LPPMs left to right.

    Keeps the base class's per-trace ``protect_block`` fallback: each
    stage consumes a generator spawned from the per-trace one
    (``rng.spawn`` advances the parent's child counter), so the draw
    streams are inherently per trace and cannot be re-batched without
    changing them.
    """

    name = "pipeline"

    def __init__(self, stages: Sequence[LPPM]) -> None:
        if not stages:
            raise ValueError("a pipeline needs at least one stage")
        self.stages = list(stages)

    def params(self) -> Mapping[str, float]:
        merged = {}
        for i, stage in enumerate(self.stages):
            for key, value in stage.params().items():
                merged[f"stage{i}.{stage.name}.{key}"] = value
        return merged

    def protect_trace(self, trace: Trace, rng: np.random.Generator) -> Trace:
        children = rng.spawn(len(self.stages))
        for stage, child in zip(self.stages, children):
            trace = stage.protect_trace(trace, child)
        return trace
