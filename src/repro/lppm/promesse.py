"""Promesse: speed smoothing by uniform spatial resampling.

Reimplementation of the mechanism of Primault, Ben Mokhtar, Lauradoux
and Brunie, *Time distortion anonymization for the publication of
mobility data with high utility* (TrustCom 2015) — "Promesse" — the
LPPM the paper's group proposes as the utility-preserving alternative
to noise: instead of moving points, it erases *temporal* density.

The protected trace contains points interpolated every ``alpha_m``
metres along the original path, with timestamps redistributed uniformly
between the first and last record.  Stops disappear entirely (a user
dwelling an hour at home contributes no more points there than one
driving past), defeating dwell-based POI extraction, while the spatial
footprint is preserved to within ``alpha_m``.

Caveat (inherent to the mechanism, visible in our tests): the apparent
speed of the output is ``path_length / time_span``.  For workloads that
dwell most of the day (commuters), that speed can fall below the POI
attack's detection floor (``roam_m / min_dwell_s``), in which case the
attack sees slow continuous motion and reports stop clusters *all
along the route* — actual POIs are then matched by accident.  Fleet
workloads that move most of the time (taxis) sit far above the floor
and get the published near-zero retrieval.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from ..geo import LocalProjection
from ..mobility import Trace
from .base import LPPM, register_lppm

__all__ = ["Promesse", "resample_polyline", "filter_min_spacing"]


def filter_min_spacing(x: np.ndarray, y: np.ndarray, min_m: float) -> np.ndarray:
    """Indices of a greedy subsequence with >= ``min_m`` metre spacing.

    Promesse's first phase: GPS jitter during a dwell traces a random
    walk whose accumulated length would otherwise re-create temporal
    density at the stop.  Keeping only points at least ``min_m`` from
    the last kept point collapses every dwell to a single vertex.
    """
    if min_m <= 0:
        raise ValueError("minimum spacing must be positive")
    if x.shape != y.shape or x.ndim != 1:
        raise ValueError("x and y must be equal-length vectors")
    if x.size == 0:
        return np.empty(0, dtype=int)
    kept = [0]
    last = 0
    for i in range(1, x.size):
        if np.hypot(x[i] - x[last], y[i] - y[last]) >= min_m:
            kept.append(i)
            last = i
    return np.asarray(kept, dtype=int)


def resample_polyline(x: np.ndarray, y: np.ndarray, step_m: float) -> np.ndarray:
    """Points every ``step_m`` metres along the polyline ``(x, y)``.

    Returns an ``(n, 2)`` array including the start point; the end
    point is included only if it falls on a step boundary, matching
    Promesse's behaviour of trimming the path tail (which also blurs
    the exact end of the trip).
    """
    if step_m <= 0:
        raise ValueError("resampling step must be positive")
    if x.shape != y.shape or x.ndim != 1:
        raise ValueError("x and y must be equal-length vectors")
    if x.size == 0:
        return np.empty((0, 2))
    seg = np.hypot(np.diff(x), np.diff(y))
    cum = np.concatenate([[0.0], np.cumsum(seg)])
    total = float(cum[-1])
    targets = np.arange(0.0, total + 1e-9, step_m)
    if targets.size == 0:
        targets = np.asarray([0.0])
    # Interpolate x and y separately over cumulative arc length.  Zero
    # length segments (repeated points while dwelling) are harmless to
    # np.interp: they collapse onto one arc-length value.
    rx = np.interp(targets, cum, x)
    ry = np.interp(targets, cum, y)
    return np.stack([rx, ry], axis=1)


@register_lppm("promesse")
class Promesse(LPPM):
    """Uniform spatial resampling with ``alpha_m`` metre steps.

    Deterministic: the mechanism uses no randomness, its protection
    comes from destroying the time dimension (dwell evidence), not
    from noise.

    Promesse keeps the base class's per-trace ``protect_block``
    fallback: the greedy min-spacing filter is a sequential scan whose
    keep decisions depend on earlier keeps, so there is no columnar
    formulation that would stay bit-identical.
    """

    def __init__(self, alpha_m: float) -> None:
        if alpha_m <= 0:
            raise ValueError("alpha must be positive")
        self.alpha_m = float(alpha_m)

    def params(self) -> Mapping[str, float]:
        return {"alpha_m": self.alpha_m}

    def protect_trace(self, trace: Trace, rng: np.random.Generator) -> Trace:
        if len(trace) < 2:
            return trace
        projection = LocalProjection.for_data(trace.lats, trace.lons)
        x, y = projection.to_xy(trace.lats, trace.lons)
        x, y = np.asarray(x), np.asarray(y)
        # Phase 1: drop sub-spacing points so dwell jitter contributes
        # no path length; phase 2: uniform spatial resampling.
        keep = filter_min_spacing(x, y, self.alpha_m / 2.0)
        points = resample_polyline(x[keep], y[keep], self.alpha_m)
        if points.shape[0] == 0:
            return Trace(trace.user, [], [], [])
        lats, lons = projection.to_latlon(points[:, 0], points[:, 1])
        # Timestamps uniform over the original span: constant apparent
        # speed, the "speed smoothing" that hides every stop.
        times = np.linspace(
            float(trace.times_s[0]), float(trace.times_s[-1]), points.shape[0]
        )
        return Trace(trace.user, times, lats, lons)
