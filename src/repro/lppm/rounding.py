"""Spatial cloaking by grid rounding.

The classic deterministic LPPM: snap every location to the centre of
its grid cell, releasing locations at a fixed spatial granularity.
Deterministic mechanisms interact very differently with the POI attack
than noise mechanisms do (recurrent stops snap to the *same* cell every
visit), which makes this an instructive comparator in the "other LPPMs"
experiment.
"""

from __future__ import annotations

from typing import Mapping, Optional

import numpy as np

from ..geo import LatLon, LocalProjection, SpatialGrid
from ..mobility import Trace, TraceBlock
from .base import LPPM, OnlineProtector, register_lppm

__all__ = ["GridRounding"]


class _RoundingOnline(OnlineProtector):
    """O(1)-per-update snapping.

    With a fixed reference the mechanism's prebuilt grid applies
    directly — live output is exactly the batch output.  Without one,
    the grid anchors at the first pushed location (an online session
    cannot know the eventual trace centroid).
    """

    def __init__(self, lppm: "GridRounding", seed=0, user="stream"):
        super().__init__(lppm, seed, user)
        self._grid = lppm._grid

    def _emit_live(self, time_s, lat, lon):
        if self._grid is None:
            self._grid = SpatialGrid(
                LocalProjection(LatLon(lat, lon)), self.lppm.cell_size_m
            )
        lats, lons = self._grid.snap(lat, lon)
        return (time_s, float(lats), float(lons))


@register_lppm("rounding")
class GridRounding(LPPM):
    """Snap locations to the centres of ``cell_size_m`` grid cells.

    A fixed reference anchors the grid; if none is given, each trace is
    snapped on a grid anchored at its own centroid (adequate when traces
    are processed independently, as in the paper's per-user metrics).
    """

    _online_cls = _RoundingOnline

    def __init__(self, cell_size_m: float, ref: Optional[LatLon] = None) -> None:
        if cell_size_m <= 0:
            raise ValueError("cell size must be positive")
        self.cell_size_m = float(cell_size_m)
        self.ref = ref
        # A fixed reference fully determines the grid, so build it once
        # instead of per trace (or per record batch).
        self._grid = (
            SpatialGrid(LocalProjection(ref), self.cell_size_m)
            if ref is not None
            else None
        )

    def params(self) -> Mapping[str, float]:
        return {"cell_size_m": self.cell_size_m}

    def protect_trace(self, trace: Trace, rng: np.random.Generator) -> Trace:
        if trace.is_empty:
            return trace
        grid = self._grid or SpatialGrid(
            LocalProjection(trace.centroid()), self.cell_size_m
        )
        lats, lons = grid.snap(trace.lats, trace.lons)
        return trace.with_coords(lats, lons)

    def protect_block(self, block: TraceBlock, seed: int) -> list:
        """Vectorised snapping: one floor/scale pass over the block.

        With a fixed reference the prebuilt grid snaps the concatenated
        coordinates directly.  With per-trace centroids, the block's
        per-record projection anchors reproduce each trace's centroid
        grid exactly (same ``np.mean`` anchors, same equirectangular
        constants), so one batched floor is bit-identical to snapping
        trace by trace.
        """
        if block.n_records == 0:
            return list(block.traces)
        if self._grid is not None:
            lats, lons = self._grid.snap(block.lats, block.lons)
            return block.with_coords(lats, lons)
        x, y = block.to_xy()
        cx = (np.floor(x / self.cell_size_m) + 0.5) * self.cell_size_m
        cy = (np.floor(y / self.cell_size_m) + 0.5) * self.cell_size_m
        lats, lons = block.to_latlon(cx, cy)
        return block.with_coords(lats, lons)
