"""Spatial cloaking by grid rounding.

The classic deterministic LPPM: snap every location to the centre of
its grid cell, releasing locations at a fixed spatial granularity.
Deterministic mechanisms interact very differently with the POI attack
than noise mechanisms do (recurrent stops snap to the *same* cell every
visit), which makes this an instructive comparator in the "other LPPMs"
experiment.
"""

from __future__ import annotations

from typing import Mapping, Optional

import numpy as np

from ..geo import LatLon, LocalProjection, SpatialGrid
from ..mobility import Trace
from .base import LPPM, register_lppm

__all__ = ["GridRounding"]


@register_lppm("rounding")
class GridRounding(LPPM):
    """Snap locations to the centres of ``cell_size_m`` grid cells.

    A fixed reference anchors the grid; if none is given, each trace is
    snapped on a grid anchored at its own centroid (adequate when traces
    are processed independently, as in the paper's per-user metrics).
    """

    def __init__(self, cell_size_m: float, ref: Optional[LatLon] = None) -> None:
        if cell_size_m <= 0:
            raise ValueError("cell size must be positive")
        self.cell_size_m = float(cell_size_m)
        self.ref = ref

    def params(self) -> Mapping[str, float]:
        return {"cell_size_m": self.cell_size_m}

    def protect_trace(self, trace: Trace, rng: np.random.Generator) -> Trace:
        if trace.is_empty:
            return trace
        ref = self.ref or trace.centroid()
        grid = SpatialGrid(LocalProjection(ref), self.cell_size_m)
        lats, lons = grid.snap(trace.lats, trace.lons)
        return trace.with_coords(lats, lons)
