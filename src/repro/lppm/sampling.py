"""Record-dropping and time-perturbing LPPMs.

Protection does not have to move points: releasing *fewer* records, or
records with blurred timestamps, also degrades an attacker's view.
These mechanisms give the framework parameter axes with very different
metric responses (subsampling barely moves spatial utility but starves
the POI attack of dwell evidence).
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from ..mobility import Trace, TraceBlock
from .base import (
    LPPM,
    OnlineProtector,
    _block_rng,
    _concat_trace_draws,
    register_lppm,
)

__all__ = ["Subsampling", "TimePerturbation"]


class _SubsamplingOnline(OnlineProtector):
    """O(1)-per-update subsampling from the carried ``(seed, user)``
    stream: one uniform per update decides keep-or-drop; the first
    update is always released (protected streams are never empty),
    consuming its draw like the batch path's overridden ``keep[0]``.
    """

    def _emit_live(self, time_s, lat, lon):
        keep = self._rng.uniform() < self.lppm.keep_fraction
        if self.n_pushed == 1 or keep:
            return (time_s, lat, lon)
        return None


@register_lppm("subsampling")
class Subsampling(LPPM):
    """Keep each record independently with probability ``keep_fraction``.

    The first record is always kept so protected traces are never empty.
    """

    _online_cls = _SubsamplingOnline

    def __init__(self, keep_fraction: float) -> None:
        if not 0.0 < keep_fraction <= 1.0:
            raise ValueError("keep fraction must be in (0, 1]")
        self.keep_fraction = float(keep_fraction)

    def params(self) -> Mapping[str, float]:
        return {"keep_fraction": self.keep_fraction}

    def protect_trace(self, trace: Trace, rng: np.random.Generator) -> Trace:
        if len(trace) <= 1:
            return trace
        keep = rng.uniform(size=len(trace)) < self.keep_fraction
        keep[0] = True
        return Trace(
            trace.user,
            trace.times_s[keep],
            trace.lats[keep],
            trace.lons[keep],
        )

    def protect_block(self, block: TraceBlock, seed: int) -> list:
        """Vectorised subsampling: one concatenated mask, one filter.

        Per-trace draws follow :meth:`protect_trace` exactly — traces of
        at most one record draw nothing (and come back as the same
        objects), everything else draws one uniform per record from its
        own generator.  The kept records are then sliced back out of the
        filtered block by cumulative keep counts.
        """
        if block.n_records == 0:
            return list(block.traces)
        masks = []
        rng_at = _block_rng()
        for trace in block.traces:
            n = len(trace)
            if n <= 1:
                masks.append(np.ones(n, dtype=bool))
                continue
            keep = rng_at(seed, trace.user).uniform(size=n) < self.keep_fraction
            keep[0] = True
            masks.append(keep)
        keep = np.concatenate(masks)
        times = block.times_s[keep]
        lats = block.lats[keep]
        lons = block.lons[keep]
        # Kept-record count before each trace boundary → output offsets.
        kept_offsets = np.concatenate(([0], np.cumsum(keep)))[block.offsets]
        protected = []
        for i, trace in enumerate(block.traces):
            if len(trace) <= 1:
                protected.append(trace)
                continue
            lo, hi = kept_offsets[i], kept_offsets[i + 1]
            protected.append(
                Trace._from_trusted(
                    trace.user, times[lo:hi], lats[lo:hi], lons[lo:hi]
                )
            )
        return protected


@register_lppm("time_perturbation")
class TimePerturbation(LPPM):
    """Add Gaussian noise of scale ``sigma_s`` seconds to timestamps.

    Locations are untouched; the trace is re-sorted by perturbed time
    (the :class:`~repro.mobility.Trace` constructor does this), which
    scrambles fine-grained ordering while preserving the spatial
    footprint exactly.
    """

    def __init__(self, sigma_s: float) -> None:
        if sigma_s < 0:
            raise ValueError("sigma must be non-negative")
        self.sigma_s = float(sigma_s)

    def params(self) -> Mapping[str, float]:
        return {"sigma_s": self.sigma_s}

    def protect_trace(self, trace: Trace, rng: np.random.Generator) -> Trace:
        if trace.is_empty or self.sigma_s == 0.0:
            return trace
        jitter = rng.normal(0.0, self.sigma_s, size=len(trace))
        return trace.with_times(trace.times_s + jitter)

    def protect_block(self, block: TraceBlock, seed: int) -> list:
        """Vectorised jitter: one draw sweep, one segmented re-sort.

        A single ``np.lexsort`` keyed on (perturbed time, trace id)
        sorts every trace's records within its own segment — the same
        stable order the :class:`~repro.mobility.Trace` constructor
        produces per trace (a stable sort of an already-sorted segment
        is the identity, so the constructor's skip-if-sorted shortcut
        changes nothing).
        """
        if self.sigma_s == 0.0 or block.n_records == 0:
            return list(block.traces)
        (jitter,) = _concat_trace_draws(
            block,
            seed,
            lambda rng, t: (rng.normal(0.0, self.sigma_s, size=len(t)),),
        )
        times = block.times_s + jitter
        seg = block.per_record(np.arange(block.n_traces))
        order = np.lexsort((times, seg))
        times = times[order]
        lats = block.lats[order]
        lons = block.lons[order]
        offsets = block.offsets
        protected = []
        for i, trace in enumerate(block.traces):
            if trace.is_empty:
                protected.append(trace)
                continue
            lo, hi = offsets[i], offsets[i + 1]
            protected.append(
                Trace._from_trusted(
                    trace.user, times[lo:hi], lats[lo:hi], lons[lo:hi]
                )
            )
        return protected
