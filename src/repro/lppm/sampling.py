"""Record-dropping and time-perturbing LPPMs.

Protection does not have to move points: releasing *fewer* records, or
records with blurred timestamps, also degrades an attacker's view.
These mechanisms give the framework parameter axes with very different
metric responses (subsampling barely moves spatial utility but starves
the POI attack of dwell evidence).
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from ..mobility import Trace
from .base import LPPM, register_lppm

__all__ = ["Subsampling", "TimePerturbation"]


@register_lppm("subsampling")
class Subsampling(LPPM):
    """Keep each record independently with probability ``keep_fraction``.

    The first record is always kept so protected traces are never empty.
    """

    def __init__(self, keep_fraction: float) -> None:
        if not 0.0 < keep_fraction <= 1.0:
            raise ValueError("keep fraction must be in (0, 1]")
        self.keep_fraction = float(keep_fraction)

    def params(self) -> Mapping[str, float]:
        return {"keep_fraction": self.keep_fraction}

    def protect_trace(self, trace: Trace, rng: np.random.Generator) -> Trace:
        if len(trace) <= 1:
            return trace
        keep = rng.uniform(size=len(trace)) < self.keep_fraction
        keep[0] = True
        return Trace(
            trace.user,
            trace.times_s[keep],
            trace.lats[keep],
            trace.lons[keep],
        )


@register_lppm("time_perturbation")
class TimePerturbation(LPPM):
    """Add Gaussian noise of scale ``sigma_s`` seconds to timestamps.

    Locations are untouched; the trace is re-sorted by perturbed time
    (the :class:`~repro.mobility.Trace` constructor does this), which
    scrambles fine-grained ordering while preserving the spatial
    footprint exactly.
    """

    def __init__(self, sigma_s: float) -> None:
        if sigma_s < 0:
            raise ValueError("sigma must be non-negative")
        self.sigma_s = float(sigma_s)

    def params(self) -> Mapping[str, float]:
        return {"sigma_s": self.sigma_s}

    def protect_trace(self, trace: Trace, rng: np.random.Generator) -> Trace:
        if trace.is_empty or self.sigma_s == 0.0:
            return trace
        jitter = rng.normal(0.0, self.sigma_s, size=len(trace))
        return trace.with_times(trace.times_s + jitter)
