"""Privacy and utility metrics, the pluggable objectives of the framework."""

from .base import (
    Metric,
    available_metrics,
    metric_class,
    paired_coords,
    register_metric,
)
from .homework import HomeIdentificationPrivacy
from .heatmap import (
    HeatmapPreservationUtility,
    jensen_shannon_divergence,
    visit_distribution,
)
from .privacy import (
    DistortionPrivacy,
    LogDistortionPrivacy,
    PoiRetrievalPrivacy,
    ReidentificationPrivacy,
)
from .queries import RangeQueryUtility
from .temporal import TimePreservationUtility
from .trajectory import TrajectoryShapeUtility, discrete_frechet_m, dtw_distance_m
from .utility import AreaCoverageUtility, SameCellFraction, SpatialDistortionUtility

__all__ = [
    "Metric",
    "register_metric",
    "metric_class",
    "available_metrics",
    "paired_coords",
    "PoiRetrievalPrivacy",
    "DistortionPrivacy",
    "LogDistortionPrivacy",
    "ReidentificationPrivacy",
    "HomeIdentificationPrivacy",
    "AreaCoverageUtility",
    "SameCellFraction",
    "SpatialDistortionUtility",
    "TrajectoryShapeUtility",
    "dtw_distance_m",
    "discrete_frechet_m",
    "HeatmapPreservationUtility",
    "visit_distribution",
    "jensen_shannon_divergence",
    "RangeQueryUtility",
    "TimePreservationUtility",
]
