"""Metric interface and registry.

A metric compares an actual dataset with its protected counterpart and
returns one scalar.  The framework is metric-agnostic ("modular: by
using different metrics" — the paper); it only needs to know the
metric's *kind* (privacy or utility) and evaluate it at swept parameter
values.

Conventions, matching the paper's illustration:

* privacy metrics measure *exposure* — lower values mean more privacy
  (e.g. fraction of POIs retrieved);
* utility metrics measure *fidelity* in ``[0, 1]`` — higher values mean
  more useful data.
"""

from __future__ import annotations

import abc
from typing import Callable, Dict, List, Tuple, Type

import numpy as np

from ..mobility import Dataset, Trace

__all__ = [
    "Metric",
    "register_metric",
    "metric_class",
    "available_metrics",
    "paired_coords",
]

_REGISTRY: Dict[str, Type["Metric"]] = {}


def register_metric(name: str) -> Callable[[Type["Metric"]], Type["Metric"]]:
    """Class decorator adding a metric to the global registry."""

    def _register(cls: Type["Metric"]) -> Type["Metric"]:
        if name in _REGISTRY and _REGISTRY[name] is not cls:
            raise ValueError(f"metric name {name!r} already registered")
        _REGISTRY[name] = cls
        cls.name = name
        return cls

    return _register


def metric_class(name: str) -> Type["Metric"]:
    """Look up a registered metric class by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown metric {name!r}; available: {sorted(_REGISTRY)}"
        ) from None


def available_metrics() -> List[str]:
    """Sorted names of all registered metrics."""
    return sorted(_REGISTRY)


class Metric(abc.ABC):
    """Base class of privacy and utility metrics."""

    #: Registry name, set by :func:`register_metric`.
    name: str = "abstract"
    #: Either ``"privacy"`` or ``"utility"``.
    kind: str = "abstract"

    @abc.abstractmethod
    def evaluate(self, actual: Dataset, protected: Dataset) -> float:
        """Score ``protected`` against ``actual``."""

    def evaluate_per_user(
        self, actual: Dataset, protected: Dataset
    ) -> Dict[str, float]:
        """Optional per-user breakdown; default raises.

        Metrics that aggregate per-user values override this to expose
        the distribution behind the mean.
        """
        raise NotImplementedError(f"{self.name} has no per-user breakdown")

    def _common_users(self, actual: Dataset, protected: Dataset) -> List[str]:
        users = [u for u in actual.users if u in protected]
        if not users:
            raise ValueError("datasets share no users")
        return users

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


def paired_coords(actual: Trace, protected: Trace) -> Tuple[np.ndarray, ...]:
    """Align a protected trace against its actual trace, record-wise.

    Returns ``(a_lat, a_lon, p_lat, p_lon)`` arrays of equal length.
    When lengths match (noise LPPMs preserve timestamps) the pairing is
    positional; otherwise (e.g. subsampling) each protected record is
    paired with the actual record nearest in time.
    """
    if len(actual) == 0 or len(protected) == 0:
        raise ValueError("cannot pair empty traces")
    if len(actual) == len(protected):
        return actual.lats, actual.lons, protected.lats, protected.lons
    idx = np.searchsorted(actual.times_s, protected.times_s)
    idx = np.clip(idx, 0, len(actual) - 1)
    left = np.clip(idx - 1, 0, len(actual) - 1)
    choose_left = np.abs(actual.times_s[left] - protected.times_s) < np.abs(
        actual.times_s[idx] - protected.times_s
    )
    idx = np.where(choose_left, left, idx)
    return actual.lats[idx], actual.lons[idx], protected.lats, protected.lons
