"""Heatmap-preservation utility: divergence of visit distributions.

Aggregate analytics (where is demand? which blocks are busy?) consume
mobility data as a density heatmap, not as individual traces.  This
metric builds the visit distribution over city blocks before and after
protection and scores their Jensen-Shannon divergence — the utility
measure used by the ALP line of work for exactly this consumer.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Tuple

from ..analysis import visit_counts_of
from ..geo import LatLon, SpatialGrid
from ..mobility import Dataset
from .base import Metric, register_metric

__all__ = [
    "visit_distribution",
    "jensen_shannon_divergence",
    "HeatmapPreservationUtility",
]

Cell = Tuple[int, int]


def visit_distribution(dataset: Dataset, grid: SpatialGrid) -> Dict[Cell, float]:
    """Probability of a record falling in each grid cell.

    The per-trace cell counting (the ``np.unique`` pass over every
    record) goes through the analysis cache, so the actual side of a
    heatmap metric counts each trace once per sweep; the cheap merge
    across traces runs per call.
    """
    counts: Dict[Cell, int] = {}
    total = 0
    for trace in dataset.traces:
        if trace.is_empty:
            continue
        for cell, n in visit_counts_of(trace, grid):
            counts[cell] = counts.get(cell, 0) + n
            total += n
    if total == 0:
        raise ValueError("dataset has no records")
    return {cell: n / total for cell, n in counts.items()}


def jensen_shannon_divergence(
    p: Dict[Cell, float], q: Dict[Cell, float]
) -> float:
    """JS divergence in bits, bounded in [0, 1].

    Zero for identical distributions, one for disjoint supports.
    """
    if not p or not q:
        raise ValueError("distributions must be non-empty")
    support = set(p) | set(q)
    js = 0.0
    for cell in support:
        pi = p.get(cell, 0.0)
        qi = q.get(cell, 0.0)
        mi = (pi + qi) / 2.0
        if pi > 0:
            js += 0.5 * pi * math.log2(pi / mi)
        if qi > 0:
            js += 0.5 * qi * math.log2(qi / mi)
    return float(min(max(js, 0.0), 1.0))


@register_metric("heatmap")
class HeatmapPreservationUtility(Metric):
    """``1 - JSD`` between actual and protected visit heatmaps.

    A *dataset-level* utility: unlike the per-user metrics it judges
    the aggregate picture, so mechanisms that scramble individuals but
    keep the crowd (e.g. heavy subsampling) score well here — a useful
    contrast when choosing objectives.
    """

    kind = "utility"

    def __init__(
        self, cell_size_m: float = 600.0, ref: Optional[LatLon] = None
    ) -> None:
        if cell_size_m <= 0:
            raise ValueError("cell size must be positive")
        self.cell_size_m = float(cell_size_m)
        self.ref = ref

    def evaluate(self, actual: Dataset, protected: Dataset) -> float:
        users = self._common_users(actual, protected)
        grid = SpatialGrid.around(
            self.ref or actual.centroid(), self.cell_size_m
        )
        p = visit_distribution(actual.subset(users), grid)
        q = visit_distribution(protected.subset(users), grid)
        return 1.0 - jensen_shannon_divergence(p, q)
