"""Home-identification privacy metric.

Runs the home/work inference on the actual and the protected trace of
each user: a user is *exposed* when the protected-data guess lands
within ``match_m`` of the actual-data guess.  The metric is the exposed
fraction — the most concrete reading of the paper's "location records
reveal home/work places" threat.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..attacks import PoiExtractionConfig
from ..attacks.homework import infer_home_work
from ..geo import haversine_m
from ..mobility import Dataset
from .base import Metric, register_metric

__all__ = ["HomeIdentificationPrivacy"]


@register_metric("home_identification")
class HomeIdentificationPrivacy(Metric):
    """Fraction of users whose home survives protection (lower = better).

    Users whose home cannot be inferred even from the actual data are
    skipped — they carry no evidence either way.
    """

    kind = "privacy"

    def __init__(
        self,
        extraction: PoiExtractionConfig = PoiExtractionConfig(),
        match_m: float = 300.0,
    ) -> None:
        if match_m <= 0:
            raise ValueError("matching radius must be positive")
        self.extraction = extraction
        self.match_m = float(match_m)

    def evaluate_per_user(
        self, actual: Dataset, protected: Dataset
    ) -> Dict[str, float]:
        values: Dict[str, float] = {}
        for user in self._common_users(actual, protected):
            truth = infer_home_work(actual[user], self.extraction)
            if truth.home is None:
                continue
            guess = infer_home_work(protected[user], self.extraction)
            if guess.home is None:
                values[user] = 0.0
                continue
            exposed = haversine_m(guess.home, truth.home) <= self.match_m
            values[user] = 1.0 if exposed else 0.0
        return values

    def evaluate(self, actual: Dataset, protected: Dataset) -> float:
        per_user = self.evaluate_per_user(actual, protected)
        if not per_user:
            return 0.0
        return float(np.mean(list(per_user.values())))
