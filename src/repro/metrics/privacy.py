"""Privacy metrics.

``PoiRetrievalPrivacy`` is the metric of the paper's illustration: the
proportion of a user's actual POIs an attacker can still retrieve from
the protected trace (lower = more private).  The other metrics exercise
the framework's modularity claim with different adversary models.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..analysis import pois_of
from ..attacks import (
    PoiExtractionConfig,
    reidentify,
    retrieved_fraction,
)
from ..geo import haversine_m_arrays
from ..mobility import Dataset
from .base import Metric, paired_coords, register_metric

__all__ = ["PoiRetrievalPrivacy", "DistortionPrivacy", "ReidentificationPrivacy"]


@register_metric("poi_retrieval")
class PoiRetrievalPrivacy(Metric):
    """Mean fraction of actual POIs retrieved from protected traces.

    For each user, POIs are extracted from both the actual and the
    protected trace with the same attack parameters; an actual POI is
    retrieved when a protected POI lies within ``match_m``.  Users with
    no actual POIs carry no privacy evidence and are skipped, as in the
    POI-attack literature.
    """

    kind = "privacy"

    def __init__(
        self,
        extraction: PoiExtractionConfig = PoiExtractionConfig(),
        match_m: float = 200.0,
        one_to_one: bool = False,
    ) -> None:
        if match_m <= 0:
            raise ValueError("matching radius must be positive")
        self.extraction = extraction
        self.match_m = float(match_m)
        self.one_to_one = bool(one_to_one)

    def evaluate_per_user(
        self, actual: Dataset, protected: Dataset
    ) -> Dict[str, float]:
        values: Dict[str, float] = {}
        for user in self._common_users(actual, protected):
            # Through the analysis cache: identical to extract_pois,
            # but the actual side is computed once per dataset per
            # sweep instead of once per (config x seed x metric).
            actual_pois = pois_of(actual[user], self.extraction)
            if not actual_pois:
                continue
            found = pois_of(protected[user], self.extraction)
            values[user] = retrieved_fraction(
                actual_pois, found, self.match_m, self.one_to_one
            )
        return values

    def evaluate(self, actual: Dataset, protected: Dataset) -> float:
        per_user = self.evaluate_per_user(actual, protected)
        if not per_user:
            return 0.0
        return float(np.mean(list(per_user.values())))


@register_metric("distortion")
class DistortionPrivacy(Metric):
    """Mean displacement (metres) between actual and protected records.

    The adversary's expected localisation error if they take protected
    records at face value; higher = more private.  Records are paired
    positionally, or by nearest timestamp when the LPPM drops records.
    """

    kind = "privacy"

    def evaluate_per_user(
        self, actual: Dataset, protected: Dataset
    ) -> Dict[str, float]:
        values: Dict[str, float] = {}
        for user in self._common_users(actual, protected):
            if actual[user].is_empty or protected[user].is_empty:
                continue
            a_lat, a_lon, p_lat, p_lon = paired_coords(actual[user], protected[user])
            values[user] = float(
                np.mean(haversine_m_arrays(a_lat, a_lon, p_lat, p_lon))
            )
        return values

    def evaluate(self, actual: Dataset, protected: Dataset) -> float:
        per_user = self.evaluate_per_user(actual, protected)
        if not per_user:
            return 0.0
        return float(np.mean(list(per_user.values())))


@register_metric("log_distortion")
class LogDistortionPrivacy(DistortionPrivacy):
    """Natural log of the mean displacement (metres).

    The framework fits metrics linearly in ``ln(parameter)``; the raw
    displacement of noise mechanisms is *exponential* in that
    coordinate (GEO-I's mean error is ``2/eps``), which a line fits
    badly.  Its logarithm is exactly linear — use this variant whenever
    the privacy objective is a localisation-error floor (objective
    ``>= ln(metres)``).
    """

    def evaluate_per_user(self, actual, protected):
        return {
            user: float(np.log(max(value, 1e-9)))
            for user, value in super().evaluate_per_user(
                actual, protected
            ).items()
        }


@register_metric("reidentification")
class ReidentificationPrivacy(Metric):
    """Fraction of protected traces an adversary links back to their user.

    Runs the POI-fingerprint linking attack of ``repro.attacks.reident``;
    lower = more private.  This is the strongest adversary in the
    library and the slowest metric — quadratic in the number of users.
    """

    kind = "privacy"

    def __init__(
        self, extraction: PoiExtractionConfig = PoiExtractionConfig()
    ) -> None:
        self.extraction = extraction

    def evaluate(self, actual: Dataset, protected: Dataset) -> float:
        users = self._common_users(actual, protected)
        return reidentify(
            actual.subset(users), protected.subset(users), self.extraction
        ).rate
