"""Range-query utility: does the protected data answer LBS queries?

The canonical utility test of the Geo-I literature: an LBS answers
"how many points fall within r metres of X?"  We sample query centres
from the actual data, answer each query against both datasets, and
score the relative count error.  Deterministic given its seed.
"""

from __future__ import annotations

import numpy as np

from ..geo import haversine_m_arrays
from ..mobility import Dataset
from .base import Metric, register_metric

__all__ = ["RangeQueryUtility"]


@register_metric("range_query")
class RangeQueryUtility(Metric):
    """Mean relative accuracy of random disk count queries.

    For each of ``n_queries`` disks (centres drawn from actual records,
    radius ``radius_m``), the error is ``|n_prot - n_act| / n_act`` and
    the utility is the mean of ``max(0, 1 - error)``.
    """

    kind = "utility"

    def __init__(
        self,
        radius_m: float = 500.0,
        n_queries: int = 50,
        seed: int = 0,
    ) -> None:
        if radius_m <= 0:
            raise ValueError("query radius must be positive")
        if n_queries < 1:
            raise ValueError("need at least one query")
        self.radius_m = float(radius_m)
        self.n_queries = int(n_queries)
        self.seed = int(seed)

    @staticmethod
    def _all_coords(dataset: Dataset, users) -> tuple:
        lats = np.concatenate([dataset[u].lats for u in users])
        lons = np.concatenate([dataset[u].lons for u in users])
        return lats, lons

    def evaluate(self, actual: Dataset, protected: Dataset) -> float:
        users = [
            u for u in self._common_users(actual, protected)
            if not actual[u].is_empty
        ]
        a_lat, a_lon = self._all_coords(actual, users)
        p_users = [u for u in users if not protected[u].is_empty]
        if not p_users:
            return 0.0
        p_lat, p_lon = self._all_coords(protected, p_users)

        rng = np.random.default_rng(self.seed)
        centres = rng.choice(a_lat.size, size=self.n_queries, replace=True)
        scores = []
        for idx in centres:
            c_lat, c_lon = float(a_lat[idx]), float(a_lon[idx])
            n_act = int(np.sum(
                haversine_m_arrays(a_lat, a_lon, c_lat, c_lon) <= self.radius_m
            ))
            n_prot = int(np.sum(
                haversine_m_arrays(p_lat, p_lon, c_lat, c_lon) <= self.radius_m
            ))
            # Centres come from actual records, so n_act >= 1 always.
            error = abs(n_prot - n_act) / n_act
            scores.append(max(0.0, 1.0 - error))
        return float(np.mean(scores))
