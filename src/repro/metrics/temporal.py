"""Temporal utility: are the timestamps still truthful?

Spatial metrics ignore time entirely, yet mechanisms like
``TimePerturbation`` and Promesse protect *by* distorting it.  This
metric pairs records (positionally, or by order for equal-length
traces) and discounts the mean absolute timestamp shift.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..mobility import Dataset
from .base import Metric, register_metric

__all__ = ["TimePreservationUtility"]


@register_metric("time_preservation")
class TimePreservationUtility(Metric):
    """``exp(-mean |dt| / scale_s)`` over order-paired records.

    Traces of different lengths (record-dropping mechanisms) are
    compared over evenly spread order quantiles, so the score reflects
    the time warp of the release as a whole.
    """

    kind = "utility"

    def __init__(self, scale_s: float = 600.0) -> None:
        if scale_s <= 0:
            raise ValueError("scale must be positive")
        self.scale_s = float(scale_s)

    def evaluate_per_user(
        self, actual: Dataset, protected: Dataset
    ) -> Dict[str, float]:
        values: Dict[str, float] = {}
        for user in self._common_users(actual, protected):
            a, p = actual[user], protected[user]
            if a.is_empty or p.is_empty:
                continue
            k = min(len(a), len(p))
            ia = np.linspace(0, len(a) - 1, k).astype(int)
            ip = np.linspace(0, len(p) - 1, k).astype(int)
            dt = float(np.mean(np.abs(a.times_s[ia] - p.times_s[ip])))
            values[user] = float(np.exp(-dt / self.scale_s))
        return values

    def evaluate(self, actual: Dataset, protected: Dataset) -> float:
        per_user = self.evaluate_per_user(actual, protected)
        if not per_user:
            return 0.0
        return float(np.mean(list(per_user.values())))
