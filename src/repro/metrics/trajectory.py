"""Trajectory-shape utility: DTW and discrete Fréchet distances.

Area coverage treats a trace as a set of visited blocks; these metrics
instead compare the *shape* of the released trajectory with the
original — the fidelity that matters to navigation-style consumers of
the data.  Both classic curve distances are provided:

* **dynamic time warping** — mean per-step alignment error under the
  optimal monotone alignment (robust to resampling);
* **discrete Fréchet** — the classic "dog leash" worst-case distance.

``TrajectoryShapeUtility`` maps the normalised DTW error through
``exp(-error/scale)`` into ``(0, 1]``.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..geo import LocalProjection
from ..mobility import Dataset, Trace
from .base import Metric, register_metric

__all__ = [
    "dtw_distance_m",
    "discrete_frechet_m",
    "TrajectoryShapeUtility",
]


def _as_points(x) -> np.ndarray:
    pts = np.asarray(x, dtype=float)
    if pts.ndim != 2 or pts.shape[1] != 2:
        raise ValueError("trajectories must be (n, 2) arrays")
    if pts.shape[0] == 0:
        raise ValueError("trajectories must be non-empty")
    return pts


def dtw_distance_m(a, b) -> float:
    """Mean alignment error (metres) under dynamic time warping.

    The optimal monotone alignment cost divided by the alignment path
    length, computed by the standard O(n·m) dynamic program.
    """
    a = _as_points(a)
    b = _as_points(b)
    n, m = a.shape[0], b.shape[0]
    # Pairwise distances, then DP over cumulative cost and path length.
    d = np.hypot(
        a[:, None, 0] - b[None, :, 0], a[:, None, 1] - b[None, :, 1]
    )
    cost = np.full((n + 1, m + 1), np.inf)
    steps = np.zeros((n + 1, m + 1), dtype=np.int64)
    cost[0, 0] = 0.0
    for i in range(1, n + 1):
        for j in range(1, m + 1):
            candidates = (
                cost[i - 1, j - 1], cost[i - 1, j], cost[i, j - 1]
            )
            k = int(np.argmin(candidates))
            cost[i, j] = d[i - 1, j - 1] + candidates[k]
            prev = ((i - 1, j - 1), (i - 1, j), (i, j - 1))[k]
            steps[i, j] = steps[prev] + 1
    return float(cost[n, m] / max(int(steps[n, m]), 1))


def discrete_frechet_m(a, b) -> float:
    """Discrete Fréchet distance (metres): the classic dog-leash bound."""
    a = _as_points(a)
    b = _as_points(b)
    n, m = a.shape[0], b.shape[0]
    d = np.hypot(
        a[:, None, 0] - b[None, :, 0], a[:, None, 1] - b[None, :, 1]
    )
    ca = np.full((n, m), -1.0)
    ca[0, 0] = d[0, 0]
    for i in range(1, n):
        ca[i, 0] = max(ca[i - 1, 0], d[i, 0])
    for j in range(1, m):
        ca[0, j] = max(ca[0, j - 1], d[0, j])
    for i in range(1, n):
        for j in range(1, m):
            ca[i, j] = max(
                min(ca[i - 1, j], ca[i - 1, j - 1], ca[i, j - 1]), d[i, j]
            )
    return float(ca[n - 1, m - 1])


def _thin(trace: Trace, max_points: int) -> np.ndarray:
    """Indices of at most ``max_points`` evenly spread records."""
    n = len(trace)
    if n <= max_points:
        return np.arange(n)
    return np.linspace(0, n - 1, max_points).astype(int)


@register_metric("trajectory_shape")
class TrajectoryShapeUtility(Metric):
    """Per-user DTW shape fidelity, ``exp(-dtw/scale)`` averaged.

    Traces are thinned to ``max_points`` evenly spaced records before
    the quadratic DTW, which preserves shape at city scale while
    bounding cost.
    """

    kind = "utility"

    def __init__(self, scale_m: float = 200.0, max_points: int = 200) -> None:
        if scale_m <= 0:
            raise ValueError("scale must be positive")
        if max_points < 2:
            raise ValueError("need at least two comparison points")
        self.scale_m = float(scale_m)
        self.max_points = int(max_points)

    def evaluate_per_user(
        self, actual: Dataset, protected: Dataset
    ) -> Dict[str, float]:
        values: Dict[str, float] = {}
        for user in self._common_users(actual, protected):
            a, p = actual[user], protected[user]
            if a.is_empty or p.is_empty:
                continue
            projection = LocalProjection.for_data(a.lats, a.lons)
            ia, ip = _thin(a, self.max_points), _thin(p, self.max_points)
            ax, ay = projection.to_xy(a.lats[ia], a.lons[ia])
            px, py = projection.to_xy(p.lats[ip], p.lons[ip])
            err = dtw_distance_m(
                np.stack([ax, ay], axis=1), np.stack([px, py], axis=1)
            )
            values[user] = float(np.exp(-err / self.scale_m))
        return values

    def evaluate(self, actual: Dataset, protected: Dataset) -> float:
        per_user = self.evaluate_per_user(actual, protected)
        if not per_user:
            return 0.0
        return float(np.mean(list(per_user.values())))
