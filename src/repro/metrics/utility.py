"""Utility metrics.

``AreaCoverageUtility`` is the metric of the paper's illustration: how
well the protected data preserves each user's *area coverage* at
city-block granularity.  All utility metrics live in ``[0, 1]`` with 1
meaning "protected data as useful as the original".
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..geo import LatLon, SpatialGrid, cell_f1, haversine_m_arrays
from ..mobility import Dataset
from .base import Metric, paired_coords, register_metric

__all__ = ["AreaCoverageUtility", "SameCellFraction", "SpatialDistortionUtility"]


def _dataset_grid(
    actual: Dataset, cell_size_m: float, ref: Optional[LatLon]
) -> SpatialGrid:
    """One shared grid for the whole evaluation, anchored on the data."""
    return SpatialGrid.around(ref or actual.centroid(), cell_size_m)


@register_metric("area_coverage")
class AreaCoverageUtility(Metric):
    """F1 overlap of covered city blocks, actual vs protected, per user.

    "The difference between the area coverage of users in the actual
    mobility traces and their protected counterpart is expected to
    remain about the size of a city block" (the paper, §2): at a cell
    size of one block this metric is exactly the retained coverage
    similarity.  1 = identical footprint, 0 = disjoint.
    """

    kind = "utility"

    def __init__(
        self, cell_size_m: float = 200.0, ref: Optional[LatLon] = None
    ) -> None:
        if cell_size_m <= 0:
            raise ValueError("cell size must be positive")
        self.cell_size_m = float(cell_size_m)
        self.ref = ref

    def evaluate_per_user(
        self, actual: Dataset, protected: Dataset
    ) -> Dict[str, float]:
        grid = _dataset_grid(actual, self.cell_size_m, self.ref)
        values: Dict[str, float] = {}
        for user in self._common_users(actual, protected):
            if actual[user].is_empty:
                continue
            a_cells = grid.covered_cells(actual[user].lats, actual[user].lons)
            p_cells = (
                grid.covered_cells(protected[user].lats, protected[user].lons)
                if not protected[user].is_empty
                else frozenset()
            )
            values[user] = cell_f1(a_cells, p_cells)
        return values

    def evaluate(self, actual: Dataset, protected: Dataset) -> float:
        per_user = self.evaluate_per_user(actual, protected)
        if not per_user:
            return 0.0
        return float(np.mean(list(per_user.values())))


@register_metric("same_cell")
class SameCellFraction(Metric):
    """Fraction of records whose protected location stays in its block.

    The paper's reading of 80 % utility — "80 % of her requests will
    concern the city block where she is" — phrased per record.
    """

    kind = "utility"

    def __init__(
        self, cell_size_m: float = 200.0, ref: Optional[LatLon] = None
    ) -> None:
        if cell_size_m <= 0:
            raise ValueError("cell size must be positive")
        self.cell_size_m = float(cell_size_m)
        self.ref = ref

    def evaluate_per_user(
        self, actual: Dataset, protected: Dataset
    ) -> Dict[str, float]:
        grid = _dataset_grid(actual, self.cell_size_m, self.ref)
        values: Dict[str, float] = {}
        for user in self._common_users(actual, protected):
            if actual[user].is_empty or protected[user].is_empty:
                continue
            a_lat, a_lon, p_lat, p_lon = paired_coords(actual[user], protected[user])
            a_cells = grid.cells_of(a_lat, a_lon)
            p_cells = grid.cells_of(p_lat, p_lon)
            same = np.all(a_cells == p_cells, axis=1)
            values[user] = float(np.mean(same))
        return values

    def evaluate(self, actual: Dataset, protected: Dataset) -> float:
        per_user = self.evaluate_per_user(actual, protected)
        if not per_user:
            return 0.0
        return float(np.mean(list(per_user.values())))


@register_metric("spatial_distortion")
class SpatialDistortionUtility(Metric):
    """Exponentially discounted mean displacement, ``exp(-err/scale)``.

    Maps the unbounded mean record displacement into ``(0, 1]`` so it
    can serve as a utility objective: 1 when protected records sit
    exactly on the originals, ~0.37 when the mean error equals
    ``scale_m``.
    """

    kind = "utility"

    def __init__(self, scale_m: float = 200.0) -> None:
        if scale_m <= 0:
            raise ValueError("scale must be positive")
        self.scale_m = float(scale_m)

    def evaluate_per_user(
        self, actual: Dataset, protected: Dataset
    ) -> Dict[str, float]:
        values: Dict[str, float] = {}
        for user in self._common_users(actual, protected):
            if actual[user].is_empty or protected[user].is_empty:
                continue
            a_lat, a_lon, p_lat, p_lon = paired_coords(actual[user], protected[user])
            err = float(np.mean(haversine_m_arrays(a_lat, a_lon, p_lat, p_lon)))
            values[user] = float(np.exp(-err / self.scale_m))
        return values

    def evaluate(self, actual: Dataset, protected: Dataset) -> float:
        per_user = self.evaluate_per_user(actual, protected)
        if not per_user:
            return 0.0
        return float(np.mean(list(per_user.values())))
