"""Mobility-trace substrate: data model, IO, cleaning and statistics."""

from .block import TraceBlock
from .dataset import Dataset
from .filters import (
    clean_dataset,
    clip_to_bbox,
    dedupe_timestamps,
    remove_speed_spikes,
    resample_min_interval,
    split_by_gap,
)
from .io import (
    iter_cabspotting_records,
    iter_csv_records,
    iter_geolife_records,
    read_cabspotting,
    read_csv,
    read_geolife,
    write_cabspotting,
    write_csv,
    write_geolife,
)
from .splits import split_by_time_fraction, split_users
from .stats import TraceStats, dataset_stats, radius_of_gyration_m, trace_stats
from .trace import Trace, TraceRecord

__all__ = [
    "Trace",
    "TraceRecord",
    "TraceBlock",
    "Dataset",
    "iter_csv_records",
    "read_csv",
    "write_csv",
    "iter_geolife_records",
    "read_geolife",
    "write_geolife",
    "iter_cabspotting_records",
    "read_cabspotting",
    "write_cabspotting",
    "dedupe_timestamps",
    "resample_min_interval",
    "split_by_gap",
    "clip_to_bbox",
    "remove_speed_spikes",
    "clean_dataset",
    "split_by_time_fraction",
    "split_users",
    "TraceStats",
    "trace_stats",
    "dataset_stats",
    "radius_of_gyration_m",
]
