"""Columnar (structure-of-arrays) view of many traces at once.

The protect side of an evaluation touches every record of every trace,
and for the paper's configurator workload — many users, each protected
at many sweep points — the cost is dominated by *per-trace* Python
overhead, not per-record math.  A :class:`TraceBlock` concatenates a
dataset's ``times/lats/lons`` into three flat arrays with per-trace
offsets, so a mechanism can run its deterministic math (projection,
trig, Lambert W) once over the whole block and split the result back
into traces at the end.

Bit-identity with the per-trace path is the design constraint, not an
afterthought: the per-trace projection references are computed with the
*same* ``np.mean`` call :meth:`LocalProjection.for_data` uses (pairwise
summation — ``np.add.reduceat`` would reassociate and drift in the last
bit), the degree→metre scale is the same constant expression, and every
block operation is elementwise, so each record sees exactly the float
operations it would see alone.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

import numpy as np

from ..geo import EARTH_RADIUS_M
from .trace import Trace

__all__ = ["TraceBlock"]

#: Degrees→metres scale of the local equirectangular projection — the
#: same expression :class:`LocalProjection` evaluates, so block math is
#: bit-identical to the per-trace projection.
_K = math.pi / 180.0 * EARTH_RADIUS_M


class TraceBlock:
    """Concatenated ``times/lats/lons`` of a sequence of traces.

    Everything is lazy: a mechanism that only needs the per-trace
    fallback (``block.traces``) never pays for the concatenation, and
    the concatenated arrays, offsets and projection references are each
    built once and reused by every mechanism protecting the same block
    (datasets memoise their block via :meth:`Dataset.columns`).
    """

    __slots__ = (
        "traces",
        "users",
        "_lengths",
        "_offsets",
        "_times",
        "_lats",
        "_lons",
        "_refs",
        "_record_refs",
    )

    def __init__(self, traces: Sequence[Trace]) -> None:
        self.traces: Tuple[Trace, ...] = tuple(traces)
        self.users: Tuple[str, ...] = tuple(t.user for t in self.traces)
        self._lengths = None
        self._offsets = None
        self._times = None
        self._lats = None
        self._lons = None
        self._refs = None
        self._record_refs = None

    # ------------------------------------------------------------------
    # Shape
    # ------------------------------------------------------------------
    @property
    def n_traces(self) -> int:
        return len(self.traces)

    @property
    def lengths(self) -> np.ndarray:
        """Record count per trace, as an int64 array."""
        if self._lengths is None:
            self._lengths = np.fromiter(
                (len(t) for t in self.traces),
                dtype=np.int64,
                count=len(self.traces),
            )
        return self._lengths

    @property
    def offsets(self) -> np.ndarray:
        """Per-trace slice bounds into the flat arrays; length n+1."""
        if self._offsets is None:
            offsets = np.zeros(len(self.traces) + 1, dtype=np.int64)
            np.cumsum(self.lengths, out=offsets[1:])
            self._offsets = offsets
        return self._offsets

    @property
    def n_records(self) -> int:
        """Total records across every trace of the block."""
        return int(self.offsets[-1])

    # ------------------------------------------------------------------
    # Flat columns
    # ------------------------------------------------------------------
    def _concat(self, field: str) -> np.ndarray:
        if not self.traces:
            return np.empty(0, dtype=float)
        out = np.concatenate([getattr(t, field) for t in self.traces])
        out.setflags(write=False)
        return out

    @property
    def times_s(self) -> np.ndarray:
        if self._times is None:
            self._times = self._concat("times_s")
        return self._times

    @property
    def lats(self) -> np.ndarray:
        if self._lats is None:
            self._lats = self._concat("lats")
        return self._lats

    @property
    def lons(self) -> np.ndarray:
        if self._lons is None:
            self._lons = self._concat("lons")
        return self._lons

    def per_record(self, values) -> np.ndarray:
        """Expand one value per trace into one value per record."""
        return np.repeat(np.asarray(values), self.lengths)

    # ------------------------------------------------------------------
    # Block-wide local projection (per-trace tangent planes)
    # ------------------------------------------------------------------
    def projection_refs(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per-trace ``(ref_lat, ref_lon, cos_ref)`` projection anchors.

        Matches ``LocalProjection.for_data(...)`` bit for bit: the same
        ``np.mean`` per trace, the same scalar ``math.cos``.  Empty
        traces get a ``(0, 0, 1)`` placeholder that, having zero
        records, never reaches any per-record array.
        """
        if self._refs is None:
            n = len(self.traces)
            ref_lats = np.zeros(n)
            ref_lons = np.zeros(n)
            cos_refs = np.ones(n)
            for i, trace in enumerate(self.traces):
                if trace.is_empty:
                    continue
                lat = float(np.mean(trace.lats))
                ref_lats[i] = lat
                ref_lons[i] = float(np.mean(trace.lons))
                cos_refs[i] = math.cos(math.radians(lat))
            self._refs = (ref_lats, ref_lons, cos_refs)
        return self._refs

    def _refs_by_record(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        if self._record_refs is None:
            ref_lats, ref_lons, cos_refs = self.projection_refs()
            lengths = self.lengths
            self._record_refs = (
                np.repeat(ref_lats, lengths),
                np.repeat(ref_lons, lengths),
                np.repeat(cos_refs, lengths),
            )
        return self._record_refs

    def to_xy(self) -> Tuple[np.ndarray, np.ndarray]:
        """Project every record onto its own trace's tangent plane.

        One vectorised pass over the whole block, elementwise identical
        to ``LocalProjection.for_data(t.lats, t.lons).to_xy(...)`` per
        trace.
        """
        ref_lats, ref_lons, cos_refs = self._refs_by_record()
        x = (self.lons - ref_lons) * _K * cos_refs
        y = (self.lats - ref_lats) * _K
        return x, y

    def to_latlon(self, x, y) -> Tuple[np.ndarray, np.ndarray]:
        """Inverse of :meth:`to_xy`, per-trace anchors included."""
        ref_lats, ref_lons, cos_refs = self._refs_by_record()
        lon = ref_lons + x / (_K * cos_refs)
        lat = ref_lats + y / _K
        return lat, lon

    # ------------------------------------------------------------------
    # Reassembly
    # ------------------------------------------------------------------
    def with_coords(self, lats, lons) -> List[Trace]:
        """Split block coordinate arrays back into protected traces.

        The block-level analogue of :meth:`Trace.with_coords`: each
        trace keeps its user id and (already frozen, shared) timestamps
        and receives its slice of the new coordinates.  The range check
        the :class:`Trace` constructor would run per trace happens once
        here, in bulk; empty traces come back as the original objects,
        exactly like the per-trace mechanisms return them.
        """
        lats = np.asarray(lats, dtype=float)
        lons = np.asarray(lons, dtype=float)
        if lats.size and (
            np.any(np.abs(lats) > 90) or np.any(np.abs(lons) > 180)
        ):
            raise ValueError("coordinates outside valid lat/lon ranges")
        offsets = self.offsets
        out: List[Trace] = []
        for i, trace in enumerate(self.traces):
            if trace.is_empty:
                out.append(trace)
                continue
            lo, hi = offsets[i], offsets[i + 1]
            out.append(
                Trace._from_trusted(
                    trace.user, trace.times_s, lats[lo:hi], lons[lo:hi]
                )
            )
        return out

    def __repr__(self) -> str:
        return f"TraceBlock(traces={len(self.traces)}, records={self.n_records})"
