"""Datasets: collections of one trace per user.

The paper protects "a whole dataset containing mobility traces of taxi
drivers"; a :class:`Dataset` is the in-memory form of such a collection.
It behaves like an immutable mapping from user id to :class:`Trace` and
offers the bulk operations the framework needs (apply an LPPM to every
trace, subset users, compute global bounds).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Mapping, Optional, Sequence

import numpy as np

from ..geo import BoundingBox, LatLon
from .block import TraceBlock
from .trace import Trace

__all__ = ["Dataset"]


class Dataset(Mapping[str, Trace]):
    """An immutable mapping ``user id -> trace``."""

    # __weakref__ lets long-lived services (the evaluation engine's
    # fingerprint memo) reference datasets without pinning them.
    __slots__ = ("_traces", "_columns", "__weakref__")

    def __init__(self, traces: Mapping[str, Trace]) -> None:
        for user, trace in traces.items():
            if user != trace.user:
                raise ValueError(
                    f"key {user!r} does not match trace user {trace.user!r}"
                )
        self._traces: Dict[str, Trace] = dict(sorted(traces.items()))
        self._columns: Optional[TraceBlock] = None

    def __getstate__(self):
        # The columnar block is a derived cache over the (frozen) trace
        # arrays — rebuilding it is cheaper than shipping a second copy
        # of every record to pool workers.
        return self._traces

    def __setstate__(self, state) -> None:
        self._traces = state
        self._columns = None

    @classmethod
    def from_traces(cls, traces: Sequence[Trace]) -> "Dataset":
        """Build a dataset from traces with unique user ids."""
        by_user: Dict[str, Trace] = {}
        for trace in traces:
            if trace.user in by_user:
                raise ValueError(f"duplicate user id {trace.user!r}")
            by_user[trace.user] = trace
        return cls(by_user)

    # ------------------------------------------------------------------
    # Mapping protocol
    # ------------------------------------------------------------------
    def __getitem__(self, user: str) -> Trace:
        return self._traces[user]

    def __iter__(self) -> Iterator[str]:
        return iter(self._traces)

    def __len__(self) -> int:
        return len(self._traces)

    def __repr__(self) -> str:
        return f"Dataset(users={len(self)}, records={self.n_records})"

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    @property
    def users(self) -> List[str]:
        """Sorted list of user ids."""
        return list(self._traces)

    @property
    def traces(self) -> List[Trace]:
        """Traces in user-id order."""
        return list(self._traces.values())

    @property
    def n_records(self) -> int:
        """Total number of records across all traces."""
        return sum(len(t) for t in self._traces.values())

    def bbox(self) -> BoundingBox:
        """Bounding box covering every non-empty trace."""
        boxes = [t.bbox() for t in self._traces.values() if not t.is_empty]
        if not boxes:
            raise ValueError("dataset has no records")
        box = boxes[0]
        for other in boxes[1:]:
            box = box.union(other)
        return box

    def columns(self) -> TraceBlock:
        """Columnar (structure-of-arrays) view of every trace.

        Built lazily and memoised on the dataset, so a sweep that
        protects the same dataset at many points pays the concatenation
        (and the per-trace projection anchors cached on the block) only
        once.  Safe to share: the block holds the traces' own frozen
        arrays plus derived read-only columns.
        """
        if self._columns is None:
            self._columns = TraceBlock(self.traces)
        return self._columns

    def centroid(self) -> LatLon:
        """Mean coordinate over every record of every trace."""
        lats = np.concatenate([t.lats for t in self.traces if not t.is_empty])
        lons = np.concatenate([t.lons for t in self.traces if not t.is_empty])
        if lats.size == 0:
            raise ValueError("dataset has no records")
        return LatLon(float(np.mean(lats)), float(np.mean(lons)))

    # ------------------------------------------------------------------
    # Functional updates
    # ------------------------------------------------------------------
    def map_traces(self, fn: Callable[[Trace], Trace]) -> "Dataset":
        """Dataset with ``fn`` applied to every trace (user ids must be kept)."""
        return Dataset.from_traces([fn(t) for t in self.traces])

    def subset(self, users: Sequence[str]) -> "Dataset":
        """Dataset restricted to the given users (order-insensitive)."""
        missing = [u for u in users if u not in self._traces]
        if missing:
            raise KeyError(f"unknown users: {missing!r}")
        return Dataset({u: self._traces[u] for u in users})

    def filter_users(self, predicate: Callable[[Trace], bool]) -> "Dataset":
        """Dataset keeping only traces for which ``predicate`` holds."""
        return Dataset({u: t for u, t in self._traces.items() if predicate(t)})

    def merged_with(self, other: "Dataset") -> "Dataset":
        """Union of two datasets with disjoint user sets."""
        overlap = set(self._traces) & set(other._traces)
        if overlap:
            raise ValueError(f"user ids present in both datasets: {sorted(overlap)!r}")
        combined = dict(self._traces)
        combined.update(other._traces)
        return Dataset(combined)
