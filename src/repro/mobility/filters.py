"""Trace cleaning and reshaping operations.

Real mobility datasets arrive noisy: duplicated timestamps, GPS spikes
implying impossible speeds, multi-day gaps.  These filters are the
pre-processing stage applied before extraction of POIs or metric
evaluation, mirroring the cleaning the original Cabspotting/GeoLife
studies perform.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..geo import BoundingBox, haversine_m_arrays
from .dataset import Dataset
from .trace import Trace

__all__ = [
    "dedupe_timestamps",
    "resample_min_interval",
    "split_by_gap",
    "clip_to_bbox",
    "remove_speed_spikes",
    "clean_dataset",
]


def dedupe_timestamps(trace: Trace) -> Trace:
    """Keep the first record of every duplicated timestamp."""
    if len(trace) < 2:
        return trace
    keep = np.concatenate([[True], np.diff(trace.times_s) > 0])
    return Trace(
        trace.user, trace.times_s[keep], trace.lats[keep], trace.lons[keep]
    )


def resample_min_interval(trace: Trace, min_interval_s: float) -> Trace:
    """Thin a trace so consecutive records are >= ``min_interval_s`` apart.

    Keeps the first record, then greedily keeps every record at least the
    interval after the last kept one — the standard way of normalising
    datasets with heterogeneous sampling cadence.
    """
    if min_interval_s <= 0:
        raise ValueError("minimum interval must be positive")
    if len(trace) < 2:
        return trace
    keep_idx: List[int] = [0]
    last = trace.times_s[0]
    for i in range(1, len(trace)):
        if trace.times_s[i] - last >= min_interval_s:
            keep_idx.append(i)
            last = trace.times_s[i]
    idx = np.asarray(keep_idx, dtype=int)
    return Trace(trace.user, trace.times_s[idx], trace.lats[idx], trace.lons[idx])


def split_by_gap(trace: Trace, max_gap_s: float) -> List[Trace]:
    """Split a trace wherever consecutive records are > ``max_gap_s`` apart.

    Empty list for an empty trace; segments keep the original user id.
    """
    if max_gap_s <= 0:
        raise ValueError("maximum gap must be positive")
    if trace.is_empty:
        return []
    if len(trace) == 1:
        return [trace]
    gap_after = np.where(np.diff(trace.times_s) > max_gap_s)[0]
    starts = np.concatenate([[0], gap_after + 1])
    ends = np.concatenate([gap_after + 1, [len(trace)]])
    return [
        Trace(trace.user, trace.times_s[s:e], trace.lats[s:e], trace.lons[s:e])
        for s, e in zip(starts, ends)
    ]


def clip_to_bbox(trace: Trace, box: BoundingBox) -> Trace:
    """Drop records outside ``box``."""
    mask = box.contains_arrays(trace.lats, trace.lons)
    return Trace(trace.user, trace.times_s[mask], trace.lats[mask], trace.lons[mask])


def remove_speed_spikes(trace: Trace, max_speed_mps: float = 70.0) -> Trace:
    """Drop records reachable from their predecessor only above ``max_speed_mps``.

    A single greedy forward pass: a record is kept if the speed from the
    last *kept* record is feasible.  70 m/s (~250 km/h) comfortably
    exceeds urban vehicle speeds while catching GPS teleports.
    """
    if max_speed_mps <= 0:
        raise ValueError("maximum speed must be positive")
    if len(trace) < 2:
        return trace
    keep_idx: List[int] = [0]
    for i in range(1, len(trace)):
        j = keep_idx[-1]
        dt = trace.times_s[i] - trace.times_s[j]
        dist = float(
            haversine_m_arrays(
                trace.lats[j], trace.lons[j], trace.lats[i], trace.lons[i]
            )
        )
        if dt <= 0:
            continue
        if dist / dt <= max_speed_mps:
            keep_idx.append(i)
    idx = np.asarray(keep_idx, dtype=int)
    return Trace(trace.user, trace.times_s[idx], trace.lats[idx], trace.lons[idx])


def clean_dataset(
    dataset: Dataset,
    min_interval_s: float = 1.0,
    max_speed_mps: float = 70.0,
    min_records: int = 2,
) -> Dataset:
    """Standard cleaning pipeline: dedupe, de-spike, drop tiny traces."""
    def _clean(trace: Trace) -> Trace:
        trace = dedupe_timestamps(trace)
        trace = remove_speed_spikes(trace, max_speed_mps)
        if min_interval_s > 0:
            trace = resample_min_interval(trace, min_interval_s)
        return trace

    cleaned = dataset.map_traces(_clean)
    return cleaned.filter_users(lambda t: len(t) >= min_records)
