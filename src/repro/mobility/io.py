"""Readers and writers for on-disk mobility-trace formats.

Three formats are supported:

* a simple CSV interchange format (``user,time_s,lat,lon``) used by this
  library's own tools;
* the **GeoLife** PLT layout (``<root>/<user>/Trajectory/*.plt``) of the
  Microsoft Research GeoLife dataset;
* the **Cabspotting** layout (``new_<cab>.txt`` with
  ``lat lon occupancy time`` lines, newest first) of the San Francisco
  taxi dataset the paper evaluates on.

The experiments in this reproduction run on synthetic data (see
``repro.synth`` and DESIGN.md), but these parsers let anyone with the
real datasets re-run every experiment unchanged.
"""

from __future__ import annotations

import csv
import datetime as _dt
from pathlib import Path
from typing import Dict, List, Union

import numpy as np

from .dataset import Dataset
from .trace import Trace

__all__ = [
    "read_csv",
    "write_csv",
    "read_geolife",
    "write_geolife",
    "read_cabspotting",
    "write_cabspotting",
]

PathLike = Union[str, Path]

_GEOLIFE_EPOCH = _dt.datetime(1899, 12, 30, tzinfo=_dt.timezone.utc)
_GEOLIFE_HEADER_LINES = 6


# ----------------------------------------------------------------------
# CSV interchange format
# ----------------------------------------------------------------------
def write_csv(dataset: Dataset, path: PathLike) -> None:
    """Write ``dataset`` as ``user,time_s,lat,lon`` rows (with header)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["user", "time_s", "lat", "lon"])
        for trace in dataset.traces:
            for rec in trace:
                writer.writerow(
                    [rec.user, repr(rec.time_s), repr(rec.lat), repr(rec.lon)]
                )


def read_csv(path: PathLike) -> Dataset:
    """Read a dataset written by :func:`write_csv`."""
    path = Path(path)
    rows: Dict[str, List[List[float]]] = {}
    with path.open(newline="") as fh:
        reader = csv.reader(fh)
        header = next(reader, None)
        if header != ["user", "time_s", "lat", "lon"]:
            raise ValueError(f"{path}: unexpected CSV header {header!r}")
        for lineno, row in enumerate(reader, start=2):
            if not row:
                continue
            if len(row) != 4:
                raise ValueError(f"{path}:{lineno}: expected 4 columns, got {len(row)}")
            user, t, lat, lon = row
            rows.setdefault(user, []).append([float(t), float(lat), float(lon)])
    traces = []
    for user, triples in rows.items():
        arr = np.asarray(triples, dtype=float)
        traces.append(Trace(user, arr[:, 0], arr[:, 1], arr[:, 2]))
    return Dataset.from_traces(traces)


# ----------------------------------------------------------------------
# GeoLife PLT
# ----------------------------------------------------------------------
def _geolife_days_to_unix(days: float) -> float:
    return (_GEOLIFE_EPOCH + _dt.timedelta(days=days)).timestamp()


def _unix_to_geolife_fields(time_s: float):
    moment = _dt.datetime.fromtimestamp(time_s, tz=_dt.timezone.utc)
    days = (moment - _GEOLIFE_EPOCH).total_seconds() / 86400.0
    return days, moment.strftime("%Y-%m-%d"), moment.strftime("%H:%M:%S")


def read_geolife(root: PathLike) -> Dataset:
    """Read a GeoLife-layout directory tree into a dataset.

    Every ``.plt`` file of a user is concatenated into that user's single
    trace (the :class:`Trace` constructor re-sorts by time).
    """
    root = Path(root)
    if not root.is_dir():
        raise FileNotFoundError(f"not a directory: {root}")
    traces = []
    for user_dir in sorted(p for p in root.iterdir() if p.is_dir()):
        plt_dir = user_dir / "Trajectory"
        if not plt_dir.is_dir():
            continue
        times: List[float] = []
        lats: List[float] = []
        lons: List[float] = []
        for plt_file in sorted(plt_dir.glob("*.plt")):
            with plt_file.open() as fh:
                lines = fh.read().splitlines()
            for lineno, line in enumerate(
                lines[_GEOLIFE_HEADER_LINES:], start=_GEOLIFE_HEADER_LINES + 1
            ):
                if not line.strip():
                    continue
                fields = line.split(",")
                if len(fields) < 7:
                    raise ValueError(
                        f"{plt_file}:{lineno}: expected 7 PLT fields, got {len(fields)}"
                    )
                lats.append(float(fields[0]))
                lons.append(float(fields[1]))
                times.append(_geolife_days_to_unix(float(fields[4])))
        if times:
            traces.append(Trace(user_dir.name, times, lats, lons))
    return Dataset.from_traces(traces)


def write_geolife(dataset: Dataset, root: PathLike) -> None:
    """Write ``dataset`` in GeoLife PLT layout (one file per user)."""
    root = Path(root)
    for trace in dataset.traces:
        plt_dir = root / trace.user / "Trajectory"
        plt_dir.mkdir(parents=True, exist_ok=True)
        out = plt_dir / "trajectory0.plt"
        with out.open("w") as fh:
            fh.write("Geolife trajectory\nWGS 84\nAltitude is in Feet\n")
            fh.write("Reserved 3\n0,2,255,My Track,0,0,2,8421376\n0\n")
            for rec in trace:
                days, date_str, time_str = _unix_to_geolife_fields(rec.time_s)
                fh.write(
                    f"{rec.lat:.6f},{rec.lon:.6f},0,0,{days:.10f},"
                    f"{date_str},{time_str}\n"
                )


# ----------------------------------------------------------------------
# Cabspotting
# ----------------------------------------------------------------------
def read_cabspotting(directory: PathLike) -> Dataset:
    """Read a Cabspotting-layout directory into a dataset.

    Each ``new_<cab>.txt`` file holds ``lat lon occupancy unix_time``
    lines, newest first; occupancy is ignored here (the paper's metrics
    do not use it).
    """
    directory = Path(directory)
    if not directory.is_dir():
        raise FileNotFoundError(f"not a directory: {directory}")
    traces = []
    for cab_file in sorted(directory.glob("new_*.txt")):
        user = cab_file.stem[len("new_"):]
        times: List[float] = []
        lats: List[float] = []
        lons: List[float] = []
        with cab_file.open() as fh:
            for lineno, line in enumerate(fh, start=1):
                if not line.strip():
                    continue
                fields = line.split()
                if len(fields) != 4:
                    raise ValueError(
                        f"{cab_file}:{lineno}: expected 4 fields, got {len(fields)}"
                    )
                lats.append(float(fields[0]))
                lons.append(float(fields[1]))
                times.append(float(fields[3]))
        if times:
            traces.append(Trace(user, times, lats, lons))
    return Dataset.from_traces(traces)


def write_cabspotting(dataset: Dataset, directory: PathLike) -> None:
    """Write ``dataset`` in Cabspotting layout (newest record first)."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    for trace in dataset.traces:
        out = directory / f"new_{trace.user}.txt"
        with out.open("w") as fh:
            for rec in reversed(list(trace)):
                fh.write(f"{rec.lat:.6f} {rec.lon:.6f} 0 {int(rec.time_s)}\n")
