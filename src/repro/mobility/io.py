"""Readers and writers for on-disk mobility-trace formats.

Three formats are supported:

* a simple CSV interchange format (``user,time_s,lat,lon``) used by this
  library's own tools;
* the **GeoLife** PLT layout (``<root>/<user>/Trajectory/*.plt``) of the
  Microsoft Research GeoLife dataset;
* the **Cabspotting** layout (``new_<cab>.txt`` with
  ``lat lon occupancy time`` lines, newest first) of the San Francisco
  taxi dataset the paper evaluates on.

Each format exposes two layers.  The ``iter_*_records`` functions are
**record iterators**: they stream validated ``(user, time_s, lat, lon)``
tuples one at a time in on-disk order, which is what the streaming
session layer feeds from (a live replay must see records as they were
written, not batched into traces).  The ``read_*`` functions consume
those iterators into whole :class:`~repro.mobility.Dataset` objects for
the batch pipeline.

All readers stream their input line by line — memory is bounded by the
parsed records, never by file size — and share one validation pass:

* numbers that fail to parse, NaN/infinite values and out-of-range
  coordinates (|lat| > 90, |lon| > 180) are rejected with a
  :class:`ValueError` naming the offending file and line;
* when building datasets, records are stably sorted by timestamp (the
  on-disk order need not be chronological — Cabspotting is newest-first
  by design);
* records sharing a timestamp are collapsed to the first one in sorted
  order, matching :func:`repro.mobility.filters.dedupe_timestamps`.
  The record iterators do **not** sort or dedupe — live consumers get
  the raw (validated) stream.

The experiments in this reproduction run on synthetic data (see
``repro.synth`` and DESIGN.md), but these parsers let anyone with the
real datasets re-run every experiment unchanged.
"""

from __future__ import annotations

import csv
import datetime as _dt
import math
from pathlib import Path
from typing import Iterator, List, Tuple, Union

import numpy as np

from .dataset import Dataset
from .trace import Trace

__all__ = [
    "iter_csv_records",
    "read_csv",
    "write_csv",
    "iter_geolife_records",
    "read_geolife",
    "write_geolife",
    "iter_cabspotting_records",
    "read_cabspotting",
    "write_cabspotting",
]

#: One validated location update: ``(user, time_s, lat, lon)``.
Record = Tuple[str, float, float, float]

PathLike = Union[str, Path]

_GEOLIFE_EPOCH = _dt.datetime(1899, 12, 30, tzinfo=_dt.timezone.utc)
_GEOLIFE_HEADER_LINES = 6


# ----------------------------------------------------------------------
# Shared parsing / validation helpers
# ----------------------------------------------------------------------
def _parse_number(source, lineno: int, name: str, text: str) -> float:
    """Parse one numeric field, diagnosing failures by file and line."""
    try:
        value = float(text)
    except ValueError:
        raise ValueError(
            f"{source}:{lineno}: {name} is not a number: {text!r}"
        ) from None
    if not math.isfinite(value):
        raise ValueError(
            f"{source}:{lineno}: {name} must be finite, got {text!r}"
        )
    return value


def _parse_coords(source, lineno: int, lat_text: str, lon_text: str):
    """One validated (lat, lon) pair, errors named by file:line."""
    lat = _parse_number(source, lineno, "lat", lat_text)
    lon = _parse_number(source, lineno, "lon", lon_text)
    if not -90.0 <= lat <= 90.0:
        raise ValueError(
            f"{source}:{lineno}: lat must be in [-90, 90], got {lat!r}"
        )
    if not -180.0 <= lon <= 180.0:
        raise ValueError(
            f"{source}:{lineno}: lon must be in [-180, 180], got {lon!r}"
        )
    return lat, lon


def _parse_record(
    source, lineno: int, time_text: str, lat_text: str, lon_text: str
):
    """One validated (time, lat, lon) triple, errors named by file:line."""
    time_s = _parse_number(source, lineno, "time_s", time_text)
    return (time_s, *_parse_coords(source, lineno, lat_text, lon_text))


class _TraceBuilder:
    """Accumulates one user's validated records and finalises a trace.

    Finalisation applies the shared cleaning pass: a stable sort by
    timestamp, then collapse of duplicate timestamps to the first
    record in sorted order.
    """

    __slots__ = ("user", "times", "lats", "lons")

    def __init__(self, user: str) -> None:
        self.user = user
        self.times: List[float] = []
        self.lats: List[float] = []
        self.lons: List[float] = []

    def add(self, time_s: float, lat: float, lon: float) -> None:
        self.times.append(time_s)
        self.lats.append(lat)
        self.lons.append(lon)

    def __len__(self) -> int:
        return len(self.times)

    def build(self, newest_first: bool = False) -> Trace:
        times = np.asarray(self.times, dtype=float)
        lats = np.asarray(self.lats, dtype=float)
        lons = np.asarray(self.lons, dtype=float)
        if newest_first:
            # Reverse a newest-first layout (Cabspotting) before the
            # stable sort, so records sharing a timestamp keep their
            # *chronological* write order and the duplicate collapse
            # below keeps the same record every format keeps.
            times, lats, lons = times[::-1], lats[::-1], lons[::-1]
        order = np.argsort(times, kind="stable")
        times, lats, lons = times[order], lats[order], lons[order]
        if times.size:
            keep = np.concatenate([[True], np.diff(times) > 0])
            times, lats, lons = times[keep], lats[keep], lons[keep]
        return Trace(self.user, times, lats, lons)


def _dataset_from_records(
    records: Iterator[Record], newest_first: bool = False
) -> Dataset:
    """Group a validated record stream into one trace per user.

    Trace order follows first appearance of each user in the stream,
    which for every on-disk format matches the sorted directory/file
    iteration the readers have always used.
    """
    builders: dict = {}
    for user, time_s, lat, lon in records:
        builder = builders.get(user)
        if builder is None:
            builder = builders[user] = _TraceBuilder(user)
        builder.add(time_s, lat, lon)
    return Dataset.from_traces(
        [b.build(newest_first=newest_first) for b in builders.values()]
    )


def _format_time(time_s: float) -> str:
    """Render a timestamp without losing sub-second precision.

    Integral times stay integers (the layout the real Cabspotting files
    use); fractional times round-trip exactly via ``repr``.
    """
    time_s = float(time_s)
    return str(int(time_s)) if time_s.is_integer() else repr(time_s)


# ----------------------------------------------------------------------
# CSV interchange format
# ----------------------------------------------------------------------
def write_csv(dataset: Dataset, path: PathLike) -> None:
    """Write ``dataset`` as ``user,time_s,lat,lon`` rows (with header)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["user", "time_s", "lat", "lon"])
        for trace in dataset.traces:
            user = trace.user
            # Columnar iteration: one bulk tolist() per array instead
            # of a TraceRecord allocation per point.
            for t, lat, lon in trace.iter_arrays():
                writer.writerow([user, repr(t), repr(lat), repr(lon)])


def iter_csv_records(path: PathLike) -> Iterator[Record]:
    """Yield validated ``(user, time_s, lat, lon)`` records in file order.

    This is the live-replay view of a CSV trace file: records come out
    exactly as written (no sorting, no duplicate-timestamp collapse),
    one at a time, so a consumer can feed a streaming session without
    ever materialising the file.
    """
    path = Path(path)
    with path.open(newline="") as fh:
        reader = csv.reader(fh)
        header = next(reader, None)
        if header != ["user", "time_s", "lat", "lon"]:
            raise ValueError(f"{path}: unexpected CSV header {header!r}")
        for lineno, row in enumerate(reader, start=2):
            if not row or (len(row) == 1 and not row[0].strip()):
                # Blank and whitespace-only lines are not records.
                continue
            if len(row) != 4:
                raise ValueError(f"{path}:{lineno}: expected 4 columns, got {len(row)}")
            user, t, lat, lon = row
            if not user:
                raise ValueError(f"{path}:{lineno}: user must be non-empty")
            yield (user, *_parse_record(path, lineno, t, lat, lon))


def read_csv(path: PathLike) -> Dataset:
    """Read a dataset written by :func:`write_csv` (streaming)."""
    return _dataset_from_records(iter_csv_records(path))


# ----------------------------------------------------------------------
# GeoLife PLT
# ----------------------------------------------------------------------
def _geolife_days_to_unix(days: float) -> float:
    return (_GEOLIFE_EPOCH + _dt.timedelta(days=days)).timestamp()


def _unix_to_geolife_fields(time_s: float):
    moment = _dt.datetime.fromtimestamp(time_s, tz=_dt.timezone.utc)
    days = (moment - _GEOLIFE_EPOCH).total_seconds() / 86400.0
    return days, moment.strftime("%Y-%m-%d"), moment.strftime("%H:%M:%S")


def iter_geolife_records(root: PathLike) -> Iterator[Record]:
    """Yield validated GeoLife records in directory/file order.

    Users come out in sorted-directory order and each user's ``.plt``
    files in sorted-name order, one record at a time — a multi-gigabyte
    tree never holds more than one line in memory here.
    """
    root = Path(root)
    if not root.is_dir():
        raise FileNotFoundError(f"not a directory: {root}")
    for user_dir in sorted(p for p in root.iterdir() if p.is_dir()):
        plt_dir = user_dir / "Trajectory"
        if not plt_dir.is_dir():
            continue
        user = user_dir.name
        for plt_file in sorted(plt_dir.glob("*.plt")):
            with plt_file.open() as fh:
                for lineno, line in enumerate(fh, start=1):
                    if lineno <= _GEOLIFE_HEADER_LINES or not line.strip():
                        continue
                    fields = line.split(",")
                    if len(fields) < 7:
                        raise ValueError(
                            f"{plt_file}:{lineno}: expected 7 PLT fields, "
                            f"got {len(fields)}"
                        )
                    days = _parse_number(
                        plt_file, lineno, "day number", fields[4]
                    )
                    lat, lon = _parse_coords(
                        plt_file, lineno, fields[0], fields[1]
                    )
                    yield (user, _geolife_days_to_unix(days), lat, lon)


def read_geolife(root: PathLike) -> Dataset:
    """Read a GeoLife-layout directory tree into a dataset.

    Every ``.plt`` file of a user is concatenated into that user's
    single trace.
    """
    return _dataset_from_records(iter_geolife_records(root))


def write_geolife(dataset: Dataset, root: PathLike) -> None:
    """Write ``dataset`` in GeoLife PLT layout (one file per user)."""
    root = Path(root)
    for trace in dataset.traces:
        plt_dir = root / trace.user / "Trajectory"
        plt_dir.mkdir(parents=True, exist_ok=True)
        out = plt_dir / "trajectory0.plt"
        with out.open("w") as fh:
            fh.write("Geolife trajectory\nWGS 84\nAltitude is in Feet\n")
            fh.write("Reserved 3\n0,2,255,My Track,0,0,2,8421376\n0\n")
            for t, lat, lon in trace.iter_arrays():
                days, date_str, time_str = _unix_to_geolife_fields(t)
                fh.write(
                    f"{lat:.6f},{lon:.6f},0,0,{days:.10f},"
                    f"{date_str},{time_str}\n"
                )


# ----------------------------------------------------------------------
# Cabspotting
# ----------------------------------------------------------------------
def iter_cabspotting_records(directory: PathLike) -> Iterator[Record]:
    """Yield validated Cabspotting records in on-disk (newest-first) order.

    Each ``new_<cab>.txt`` file holds ``lat lon occupancy unix_time``
    lines, newest first; occupancy is ignored here (the paper's metrics
    do not use it).  Records are yielded in file order — a live
    consumer that wants chronological replay must reverse per user,
    which :func:`read_cabspotting` does when building traces.
    """
    directory = Path(directory)
    if not directory.is_dir():
        raise FileNotFoundError(f"not a directory: {directory}")
    for cab_file in sorted(directory.glob("new_*.txt")):
        user = cab_file.stem[len("new_"):]
        with cab_file.open() as fh:
            for lineno, line in enumerate(fh, start=1):
                if not line.strip():
                    continue
                fields = line.split()
                if len(fields) != 4:
                    raise ValueError(
                        f"{cab_file}:{lineno}: expected 4 fields, got {len(fields)}"
                    )
                time_s, lat, lon = _parse_record(
                    cab_file, lineno, fields[3], fields[0], fields[1]
                )
                yield (user, time_s, lat, lon)


def read_cabspotting(directory: PathLike) -> Dataset:
    """Read a Cabspotting-layout directory into a dataset (streaming)."""
    return _dataset_from_records(
        iter_cabspotting_records(directory), newest_first=True
    )


def write_cabspotting(dataset: Dataset, directory: PathLike) -> None:
    """Write ``dataset`` in Cabspotting layout (newest record first).

    Timestamps keep full precision: integral times are written as the
    integers the real dataset uses, fractional (sub-second) times are
    written with enough digits to round-trip exactly.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    for trace in dataset.traces:
        out = directory / f"new_{trace.user}.txt"
        with out.open("w") as fh:
            for t, lat, lon in reversed(list(trace.iter_arrays())):
                fh.write(
                    f"{lat:.6f} {lon:.6f} 0 {_format_time(t)}\n"
                )
