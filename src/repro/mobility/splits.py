"""Dataset splitting for honest attack evaluation.

Re-identification experiments need the adversary's background knowledge
to come from a *different* observation period than the protected
release (training on the very traces under attack overstates the
attacker).  These helpers carve datasets along time or across users.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .dataset import Dataset
from .trace import Trace

__all__ = ["split_by_time_fraction", "split_users"]


def split_by_time_fraction(
    dataset: Dataset, fraction: float
) -> Tuple[Dataset, Dataset]:
    """Split every trace at its ``fraction`` time quantile.

    Returns ``(head, tail)`` datasets over the same users; the head
    holds each user's records before their personal cut instant, the
    tail the rest.  Users whose trace would end up empty on either side
    are dropped from both (the pair stays user-aligned).
    """
    if not 0.0 < fraction < 1.0:
        raise ValueError("fraction must be strictly between 0 and 1")
    heads = []
    tails = []
    for trace in dataset.traces:
        if len(trace) < 2:
            continue
        cut = trace.times_s[0] + fraction * trace.duration_s
        mask = trace.times_s < cut
        if not mask.any() or mask.all():
            continue
        heads.append(
            Trace(trace.user, trace.times_s[mask], trace.lats[mask],
                  trace.lons[mask])
        )
        tails.append(
            Trace(trace.user, trace.times_s[~mask], trace.lats[~mask],
                  trace.lons[~mask])
        )
    return Dataset.from_traces(heads), Dataset.from_traces(tails)


def split_users(
    dataset: Dataset, fraction: float, seed: int = 0
) -> Tuple[Dataset, Dataset]:
    """Randomly partition users into two disjoint datasets.

    ``fraction`` of the users (rounded, at least one on each side for
    datasets with two or more users) land in the first split.
    """
    if not 0.0 < fraction < 1.0:
        raise ValueError("fraction must be strictly between 0 and 1")
    users = dataset.users
    if len(users) < 2:
        raise ValueError("need at least two users to split")
    rng = np.random.default_rng(seed)
    shuffled = list(users)
    rng.shuffle(shuffled)
    k = int(round(fraction * len(users)))
    k = min(max(k, 1), len(users) - 1)
    first = sorted(shuffled[:k])
    second = sorted(shuffled[k:])
    return dataset.subset(first), dataset.subset(second)
