"""Descriptive statistics of traces and datasets.

These are both reporting helpers (examples/CLI) and the raw material
for the dataset properties ``d_i`` of the framework (``repro.properties``
builds its feature extractors on top of them).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from ..geo import SpatialGrid, haversine_m_arrays
from .dataset import Dataset
from .trace import Trace

__all__ = ["TraceStats", "trace_stats", "dataset_stats", "radius_of_gyration_m"]


@dataclass(frozen=True)
class TraceStats:
    """Summary numbers for a single trace."""

    user: str
    n_records: int
    duration_s: float
    length_m: float
    mean_speed_mps: float
    median_interval_s: float
    radius_of_gyration_m: float


def radius_of_gyration_m(trace: Trace) -> float:
    """Root-mean-square distance of the trace from its centroid.

    The classic mobility-science measure of how far a user roams.
    """
    if trace.is_empty:
        return 0.0
    c = trace.centroid()
    d = haversine_m_arrays(trace.lats, trace.lons, c.lat, c.lon)
    return float(np.sqrt(np.mean(d**2)))


def trace_stats(trace: Trace) -> TraceStats:
    """Compute :class:`TraceStats` for one trace."""
    duration = trace.duration_s
    length = trace.length_m
    intervals = np.diff(trace.times_s) if len(trace) > 1 else np.asarray([])
    return TraceStats(
        user=trace.user,
        n_records=len(trace),
        duration_s=duration,
        length_m=length,
        mean_speed_mps=(length / duration) if duration > 0 else 0.0,
        median_interval_s=float(np.median(intervals)) if intervals.size else 0.0,
        radius_of_gyration_m=radius_of_gyration_m(trace),
    )


def dataset_stats(dataset: Dataset, cell_size_m: float = 200.0) -> Dict[str, float]:
    """Aggregate statistics of a dataset as a plain dictionary.

    Includes the total covered area (in grid cells of ``cell_size_m``),
    which the paper's utility story is built on.
    """
    if len(dataset) == 0:
        raise ValueError("dataset has no users")
    per_trace = [trace_stats(t) for t in dataset.traces]
    grid = SpatialGrid.around(dataset.centroid(), cell_size_m)
    covered = set()
    for t in dataset.traces:
        if not t.is_empty:
            covered |= grid.covered_cells(t.lats, t.lons)
    return {
        "n_users": float(len(dataset)),
        "n_records": float(dataset.n_records),
        "mean_records_per_user": float(np.mean([s.n_records for s in per_trace])),
        "mean_duration_s": float(np.mean([s.duration_s for s in per_trace])),
        "mean_length_m": float(np.mean([s.length_m for s in per_trace])),
        "mean_speed_mps": float(np.mean([s.mean_speed_mps for s in per_trace])),
        "mean_radius_of_gyration_m": float(
            np.mean([s.radius_of_gyration_m for s in per_trace])
        ),
        "covered_cells": float(len(covered)),
    }
