"""Mobility traces: the fundamental data type of the library.

A :class:`Trace` is one user's timestamped sequence of locations — what
the paper calls "a set of timestamped locations reflecting the user's
moving activity".  Coordinates are stored as parallel numpy arrays so
that LPPMs and metrics can work vectorised; records are exposed as a
convenience view for readable iteration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from ..geo import BoundingBox, LatLon, haversine_m_arrays

__all__ = ["TraceRecord", "Trace"]


@dataclass(frozen=True)
class TraceRecord:
    """One timestamped location of one user."""

    user: str
    time_s: float
    lat: float
    lon: float

    @property
    def point(self) -> LatLon:
        """The location as a :class:`LatLon`."""
        return LatLon(self.lat, self.lon)


class Trace:
    """An immutable, time-sorted sequence of locations for one user.

    Parameters
    ----------
    user:
        User identifier; any non-empty string.
    times_s:
        Timestamps in seconds (unix epoch or experiment-relative).
    lats, lons:
        Coordinates in degrees, same length as ``times_s``.
    """

    # __weakref__ lets long-lived caches (the analysis layer's
    # trace-key memo) reference traces without pinning them.
    __slots__ = ("user", "times_s", "lats", "lons", "__weakref__")

    def __init__(self, user: str, times_s, lats, lons) -> None:
        if not user:
            raise ValueError("trace user id must be non-empty")
        times = np.asarray(times_s, dtype=float)
        lats_a = np.asarray(lats, dtype=float)
        lons_a = np.asarray(lons, dtype=float)
        if not (times.shape == lats_a.shape == lons_a.shape):
            raise ValueError("times, lats and lons must have equal shapes")
        if times.ndim != 1:
            raise ValueError("trace arrays must be one-dimensional")
        if times.size and np.any(np.diff(times) < 0):
            order = np.argsort(times, kind="stable")
            times, lats_a, lons_a = times[order], lats_a[order], lons_a[order]
        if lats_a.size and (np.any(np.abs(lats_a) > 90) or np.any(np.abs(lons_a) > 180)):
            raise ValueError("coordinates outside valid lat/lon ranges")
        self.user = user
        self.times_s = times
        self.lats = lats_a
        self.lons = lons_a
        # Freeze the arrays: Trace is shared freely between components.
        for arr in (self.times_s, self.lats, self.lons):
            arr.setflags(write=False)

    @classmethod
    def _from_trusted(cls, user: str, times_s, lats, lons) -> "Trace":
        """Build a trace without re-validating; the columnar fast path.

        The caller guarantees what ``__init__`` would otherwise check
        per trace: equal-length 1-D float64 arrays, times already
        non-decreasing, coordinates already range-checked (in bulk, by
        :meth:`TraceBlock.with_coords`), user non-empty.  Arrays are
        still frozen, so trusted traces are as immutable as validated
        ones.
        """
        trace = cls.__new__(cls)
        trace.user = user
        trace.times_s = times_s
        trace.lats = lats
        trace.lons = lons
        for arr in (times_s, lats, lons):
            arr.setflags(write=False)
        return trace

    # ------------------------------------------------------------------
    # Basic container behaviour
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return int(self.times_s.size)

    def __iter__(self) -> Iterator[TraceRecord]:
        for t, lat, lon in self.iter_arrays():
            yield TraceRecord(self.user, t, lat, lon)

    def iter_arrays(self) -> Iterator[tuple]:
        """Iterate ``(time_s, lat, lon)`` tuples of Python floats.

        The columnar fast path for hot loops: one ``tolist()`` bulk
        conversion per array instead of a :class:`TraceRecord`
        allocation and three scalar ``float()`` casts per record.
        Values are identical to record iteration (``tolist`` performs
        the same float64 → Python float conversion).
        """
        return zip(
            self.times_s.tolist(), self.lats.tolist(), self.lons.tolist()
        )

    def __getitem__(self, i: int) -> TraceRecord:
        if isinstance(i, slice):
            return Trace(self.user, self.times_s[i], self.lats[i], self.lons[i])
        return TraceRecord(
            self.user, float(self.times_s[i]), float(self.lats[i]), float(self.lons[i])
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Trace):
            return NotImplemented
        return (
            self.user == other.user
            and np.array_equal(self.times_s, other.times_s)
            and np.array_equal(self.lats, other.lats)
            and np.array_equal(self.lons, other.lons)
        )

    def __repr__(self) -> str:
        return f"Trace(user={self.user!r}, n={len(self)})"

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def is_empty(self) -> bool:
        """Whether the trace has no records."""
        return len(self) == 0

    @property
    def duration_s(self) -> float:
        """Elapsed time between first and last record, in seconds."""
        if len(self) < 2:
            return 0.0
        return float(self.times_s[-1] - self.times_s[0])

    @property
    def length_m(self) -> float:
        """Travelled path length: sum of consecutive great-circle hops."""
        if len(self) < 2:
            return 0.0
        hops = haversine_m_arrays(
            self.lats[:-1], self.lons[:-1], self.lats[1:], self.lons[1:]
        )
        return float(np.sum(hops))

    def bbox(self) -> BoundingBox:
        """Tight bounding box of the trace."""
        if self.is_empty:
            raise ValueError("empty trace has no bounding box")
        return BoundingBox.of(self.lats, self.lons)

    def centroid(self) -> LatLon:
        """Arithmetic mean of the coordinates."""
        if self.is_empty:
            raise ValueError("empty trace has no centroid")
        return LatLon(float(np.mean(self.lats)), float(np.mean(self.lons)))

    # ------------------------------------------------------------------
    # Functional updates
    # ------------------------------------------------------------------
    def with_coords(self, lats, lons) -> "Trace":
        """Copy of this trace with replaced coordinates (same timestamps).

        This is how LPPMs emit protected traces: times and user id are
        preserved, only the locations change.  The timestamp array is
        *shared*, not copied — it is frozen, so sharing is safe.
        """
        return Trace(self.user, self.times_s, lats, lons)

    def with_times(self, times_s) -> "Trace":
        """Copy of this trace with replaced timestamps (same coordinates).

        The coordinate arrays are shared (frozen) unless the new times
        force a re-sort, in which case the constructor reorders into
        fresh arrays.
        """
        return Trace(self.user, times_s, self.lats, self.lons)

    def renamed(self, user: str) -> "Trace":
        """Copy of this trace owned by a different user id.

        All three frozen arrays are shared with the original.
        """
        return Trace(user, self.times_s, self.lats, self.lons)

    def slice_time(self, start_s: float, end_s: float) -> "Trace":
        """Sub-trace with ``start_s <= t < end_s``."""
        mask = (self.times_s >= start_s) & (self.times_s < end_s)
        return Trace(self.user, self.times_s[mask], self.lats[mask], self.lons[mask])

    @classmethod
    def from_records(cls, records) -> "Trace":
        """Build a trace from an iterable of :class:`TraceRecord`.

        All records must share one user id.
        """
        records = list(records)
        if not records:
            raise ValueError("cannot build a trace from zero records")
        users = {r.user for r in records}
        if len(users) != 1:
            raise ValueError(f"records span several users: {sorted(users)!r}")
        return cls(
            records[0].user,
            [r.time_s for r in records],
            [r.lat for r in records],
            [r.lon for r in records],
        )
