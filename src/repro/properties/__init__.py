"""Dataset properties (the framework's d_i) and their PCA selection."""

from .features import (
    DEFAULT_EXTRACTORS,
    PropertyExtractor,
    extract_features,
    feature_matrix,
)
from .pca import PcaResult, rank_properties, run_pca, select_properties

__all__ = [
    "PropertyExtractor",
    "extract_features",
    "feature_matrix",
    "DEFAULT_EXTRACTORS",
    "PcaResult",
    "run_pca",
    "rank_properties",
    "select_properties",
]
