"""Dataset property extractors — the ``d_i`` of the framework.

Step 1 of the framework chooses "the properties of the dataset that are
likely to influence privacy and utility metrics (i.e., reflecting
impactful characteristics of users such as the uniqueness)".  Each
extractor maps a dataset to one scalar; the PCA module ranks them by
how much dataset-to-dataset variance they carry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

import numpy as np

from ..analysis import pois_of
from ..attacks import PoiExtractionConfig
from ..geo import SpatialGrid
from ..mobility import Dataset, radius_of_gyration_m

__all__ = [
    "PropertyExtractor",
    "extract_features",
    "feature_matrix",
    "DEFAULT_EXTRACTORS",
]


@dataclass(frozen=True)
class PropertyExtractor:
    """A named scalar feature of a dataset."""

    name: str
    fn: Callable[[Dataset], float]

    def __call__(self, dataset: Dataset) -> float:
        return float(self.fn(dataset))


def _mean_records(dataset: Dataset) -> float:
    return float(np.mean([len(t) for t in dataset.traces]))


def _mean_duration_s(dataset: Dataset) -> float:
    return float(np.mean([t.duration_s for t in dataset.traces]))


def _mean_radius_of_gyration_m(dataset: Dataset) -> float:
    return float(np.mean([radius_of_gyration_m(t) for t in dataset.traces]))


def _mean_sampling_interval_s(dataset: Dataset) -> float:
    intervals = [
        float(np.median(np.diff(t.times_s))) for t in dataset.traces if len(t) > 1
    ]
    return float(np.mean(intervals)) if intervals else 0.0


def _cell_entropy_bits(dataset: Dataset, cell_size_m: float = 200.0) -> float:
    """Shannon entropy of the visit distribution over city blocks."""
    grid = SpatialGrid.around(dataset.centroid(), cell_size_m)
    counts: Dict[tuple, int] = {}
    for trace in dataset.traces:
        if trace.is_empty:
            continue
        for cell in map(tuple, grid.cells_of(trace.lats, trace.lons).tolist()):
            counts[cell] = counts.get(cell, 0) + 1
    total = sum(counts.values())
    if total == 0:
        return 0.0
    p = np.asarray(list(counts.values()), dtype=float) / total
    return float(-np.sum(p * np.log2(p)))


def _top_cell_uniqueness(dataset: Dataset, cell_size_m: float = 200.0) -> float:
    """Fraction of users whose two most-visited blocks are unique to them.

    The "uniqueness" characteristic the paper names: users whose top
    places are shared with nobody else are easy to single out.
    """
    grid = SpatialGrid.around(dataset.centroid(), cell_size_m)
    top_pairs: Dict[str, frozenset] = {}
    for user, trace in dataset.items():
        if trace.is_empty:
            continue
        cells, counts = np.unique(
            grid.cells_of(trace.lats, trace.lons), axis=0, return_counts=True
        )
        order = np.argsort(-counts)[:2]
        top_pairs[user] = frozenset(map(tuple, cells[order].tolist()))
    if not top_pairs:
        return 0.0
    unique_users = 0
    for user, pair in top_pairs.items():
        if all(pair != other for u, other in top_pairs.items() if u != user):
            unique_users += 1
    return unique_users / len(top_pairs)


def _mean_poi_count(dataset: Dataset) -> float:
    config = PoiExtractionConfig()
    return float(np.mean([len(pois_of(t, config)) for t in dataset.traces]))


def _night_activity_fraction(dataset: Dataset) -> float:
    """Fraction of records emitted between 22:00 and 06:00.

    Separates always-on fleets (taxis) from diurnal users (commuters),
    which changes how much dwell evidence the POI attack gets.
    """
    night = 0
    total = 0
    for trace in dataset.traces:
        if trace.is_empty:
            continue
        day_phase = np.mod(trace.times_s, 86400.0) / 3600.0
        night += int(np.sum((day_phase >= 22.0) | (day_phase < 6.0)))
        total += len(trace)
    return night / total if total else 0.0


def _trips_per_hour(dataset: Dataset) -> float:
    """Mean rate of movement bursts (speed crossing 1 m/s upward)."""
    rates = []
    for trace in dataset.traces:
        if len(trace) < 3 or trace.duration_s <= 0:
            continue
        from ..geo import haversine_m_arrays

        hops = haversine_m_arrays(
            trace.lats[:-1], trace.lons[:-1], trace.lats[1:], trace.lons[1:]
        )
        dt = np.diff(trace.times_s)
        moving = np.zeros(len(hops), dtype=bool)
        ok = dt > 0
        moving[ok] = (hops[ok] / dt[ok]) > 1.0
        starts = int(np.sum(~moving[:-1] & moving[1:]))
        rates.append(starts / (trace.duration_s / 3600.0))
    return float(np.mean(rates)) if rates else 0.0


def _mean_inter_poi_distance_m(dataset: Dataset) -> float:
    """Mean pairwise distance between each user's POIs.

    How spread a user's anchor places are controls how much noise is
    needed before they blur together.
    """
    from ..geo import pairwise_haversine_m

    config = PoiExtractionConfig()
    spreads = []
    for trace in dataset.traces:
        pois = pois_of(trace, config)
        if len(pois) < 2:
            continue
        lats = [p.lat for p in pois]
        lons = [p.lon for p in pois]
        d = pairwise_haversine_m(lats, lons)
        upper = d[np.triu_indices(len(pois), k=1)]
        spreads.append(float(np.mean(upper)))
    return float(np.mean(spreads)) if spreads else 0.0


#: The library's standard property set, in a stable order.
DEFAULT_EXTRACTORS: List[PropertyExtractor] = [
    PropertyExtractor("n_users", lambda ds: float(len(ds))),
    PropertyExtractor("mean_records_per_user", _mean_records),
    PropertyExtractor("mean_duration_s", _mean_duration_s),
    PropertyExtractor("mean_radius_of_gyration_m", _mean_radius_of_gyration_m),
    PropertyExtractor("mean_sampling_interval_s", _mean_sampling_interval_s),
    PropertyExtractor("cell_entropy_bits", _cell_entropy_bits),
    PropertyExtractor("top_cell_uniqueness", _top_cell_uniqueness),
    PropertyExtractor("mean_poi_count", _mean_poi_count),
    PropertyExtractor("night_activity_fraction", _night_activity_fraction),
    PropertyExtractor("trips_per_hour", _trips_per_hour),
    PropertyExtractor("mean_inter_poi_distance_m", _mean_inter_poi_distance_m),
]


def extract_features(
    dataset: Dataset,
    extractors: Sequence[PropertyExtractor] = tuple(DEFAULT_EXTRACTORS),
) -> Dict[str, float]:
    """Evaluate every extractor on one dataset."""
    return {e.name: e(dataset) for e in extractors}


def feature_matrix(
    datasets: Sequence[Dataset],
    extractors: Sequence[PropertyExtractor] = tuple(DEFAULT_EXTRACTORS),
) -> np.ndarray:
    """Feature matrix, one row per dataset, one column per extractor."""
    if not datasets:
        raise ValueError("need at least one dataset")
    return np.asarray(
        [[e(ds) for e in extractors] for ds in datasets], dtype=float
    )
