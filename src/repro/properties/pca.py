"""PCA-based ranking of dataset properties.

The framework's step 1 picks the dataset properties ``d_i`` "soundly
... using a principal component analysis": properties that dominate the
leading components of dataset-to-dataset variation are the ones worth
feeding into the model.  Implemented directly on the SVD of the
standardised feature matrix (no sklearn dependency).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..mobility import Dataset
from .features import DEFAULT_EXTRACTORS, PropertyExtractor, feature_matrix

__all__ = ["PcaResult", "run_pca", "rank_properties", "select_properties"]


@dataclass(frozen=True)
class PcaResult:
    """Outcome of a principal component analysis on dataset features."""

    feature_names: List[str]
    components: np.ndarray           # (n_components, n_features) loadings
    explained_variance_ratio: np.ndarray
    mean: np.ndarray
    std: np.ndarray

    @property
    def n_components(self) -> int:
        """Number of retained components."""
        return self.components.shape[0]

    def importance(self) -> np.ndarray:
        """Per-feature importance: |loading| weighted by variance ratio."""
        return np.abs(self.components.T) @ self.explained_variance_ratio

    def ranked_features(self) -> List[str]:
        """Feature names, most important first."""
        order = np.argsort(-self.importance())
        return [self.feature_names[i] for i in order]


def run_pca(
    matrix: np.ndarray, feature_names: Sequence[str], n_components: int = 0
) -> PcaResult:
    """PCA of a (datasets x features) matrix via SVD.

    Columns are standardised first; constant columns are kept with unit
    scale (zero loading falls out naturally).  ``n_components`` of zero
    keeps every non-degenerate component.
    """
    x = np.asarray(matrix, dtype=float)
    if x.ndim != 2:
        raise ValueError("feature matrix must be two-dimensional")
    if x.shape[0] < 2:
        raise ValueError("PCA needs at least two datasets")
    if x.shape[1] != len(feature_names):
        raise ValueError("feature_names length does not match matrix columns")
    mean = x.mean(axis=0)
    std = x.std(axis=0)
    safe_std = np.where(std > 0, std, 1.0)
    z = (x - mean) / safe_std
    _, s, vt = np.linalg.svd(z, full_matrices=False)
    var = s**2
    total = var.sum()
    ratio = var / total if total > 0 else np.zeros_like(var)
    keep = n_components if n_components > 0 else len(s)
    keep = min(keep, len(s))
    return PcaResult(
        feature_names=list(feature_names),
        components=vt[:keep],
        explained_variance_ratio=ratio[:keep],
        mean=mean,
        std=safe_std,
    )


def rank_properties(
    datasets: Sequence[Dataset],
    extractors: Sequence[PropertyExtractor] = tuple(DEFAULT_EXTRACTORS),
) -> PcaResult:
    """Extract features from ``datasets`` and PCA-rank the extractors."""
    matrix = feature_matrix(datasets, extractors)
    return run_pca(matrix, [e.name for e in extractors])


def select_properties(
    datasets: Sequence[Dataset],
    n_select: int,
    extractors: Sequence[PropertyExtractor] = tuple(DEFAULT_EXTRACTORS),
) -> List[str]:
    """The ``n_select`` most variance-carrying property names."""
    if n_select <= 0:
        raise ValueError("must select at least one property")
    return rank_properties(datasets, extractors).ranked_features()[:n_select]
