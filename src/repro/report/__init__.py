"""Reporting helpers: plain-text tables and summaries."""

from .tables import (
    format_table,
    model_summary,
    recommendation_summary,
    sweep_table,
)

__all__ = [
    "format_table",
    "sweep_table",
    "model_summary",
    "recommendation_summary",
]
