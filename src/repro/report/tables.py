"""Plain-text tables for examples, benchmarks and the CLI.

The paper's figures become printed series here (no plotting
dependency): a sweep renders as the rows behind Figure 1, a model as
the coefficient line of equation (2).
"""

from __future__ import annotations

from typing import List, Sequence

from ..framework import Recommendation, SweepResult, SystemModel

__all__ = ["format_table", "sweep_table", "model_summary", "recommendation_summary"]


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render rows as a fixed-width text table with a header rule."""
    cells: List[List[str]] = [[str(h) for h in headers]]
    for row in rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        cells.append([_fmt(v) for v in row])
    widths = [max(len(r[c]) for r in cells) for c in range(len(headers))]
    lines = []
    for i, row in enumerate(cells):
        lines.append("  ".join(v.rjust(w) for v, w in zip(row, widths)))
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) < 1e-3 or abs(value) >= 1e5:
            return f"{value:.3e}"
        return f"{value:.4f}"
    return str(value)


def sweep_table(sweep: SweepResult) -> str:
    """The sweep as a printed series (the data behind Figure 1)."""
    headers = [sweep.param_name, "privacy", "+-", "utility", "+-"]
    return format_table(headers, sweep.to_rows())


def model_summary(model: SystemModel) -> str:
    """Equation (2) of the paper, with this fit's coefficients."""
    a, b, alpha, beta = model.coefficients
    lines = [
        f"ln({model.param_name}) = (Pr - a)/b = (Ut - alpha)/beta",
        f"  a     = {a: .4f}   (paper: 0.84)",
        f"  b     = {b: .4f}   (paper: 0.17)",
        f"  alpha = {alpha: .4f}   (paper: 1.21)",
        f"  beta  = {beta: .4f}   (paper: 0.09)",
        f"  privacy fit: R^2 = {model.privacy.r2:.3f} on "
        f"[{model.privacy.x_low:.3e}, {model.privacy.x_high:.3e}]",
        f"  utility fit: R^2 = {model.utility.r2:.3f} on "
        f"[{model.utility.x_low:.3e}, {model.utility.x_high:.3e}]",
    ]
    return "\n".join(lines)


def recommendation_summary(rec: Recommendation) -> str:
    """Human-readable configurator verdict."""
    if not rec.feasible or rec.value is None:
        return (
            f"{rec.param_name}: INFEASIBLE ({rec.notes}); "
            f"empty interval [{rec.interval[0]:.3e}, {rec.interval[1]:.3e}]"
        )
    return (
        f"{rec.param_name} = {rec.value:.4g} "
        f"(feasible interval [{rec.interval[0]:.3e}, {rec.interval[1]:.3e}], "
        f"predicted privacy {rec.predicted_privacy:.3f}, "
        f"predicted utility {rec.predicted_utility:.3f}; {rec.notes})"
    )
