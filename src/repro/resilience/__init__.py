"""Fault injection and fault tolerance for the middleware stack.

Three small, dependency-free pieces compose the resilience layer:

* :mod:`~repro.resilience.faults` — named fault points compiled into
  the real call sites (atomic writes, the process pool, the request
  handlers), activated per-process via ``serve --fault-spec`` or the
  ``REPRO_FAULT_SPEC`` environment variable.  Zero overhead inactive.
* :mod:`~repro.resilience.breaker` — per-tier circuit breakers plus
  :func:`write_guarded`, the single chokepoint every best-effort disk
  write routes through.  An ``OSError`` becomes a recorded miss, and
  repeated failures open the tier's breaker so a dying disk is probed,
  not hammered.
* :mod:`~repro.resilience.events` — the bounded degradation-event log
  surfaced in ``/metrics`` and on the ``repro.resilience`` logger.

Nothing in this package imports the service or engine layers at module
scope, so any layer may import it without cycles.
"""

from .breaker import (
    BreakerRegistry,
    CircuitBreaker,
    default_registry,
    write_guarded,
)
from .events import (
    events_by_kind,
    record_event,
    recent_events,
    reset_events,
)
from .faults import (
    FAULT_POINTS,
    FaultInjector,
    default_injector,
    fire,
)

__all__ = [
    "FAULT_POINTS",
    "FaultInjector",
    "default_injector",
    "fire",
    "CircuitBreaker",
    "BreakerRegistry",
    "default_registry",
    "write_guarded",
    "record_event",
    "recent_events",
    "events_by_kind",
    "reset_events",
]
