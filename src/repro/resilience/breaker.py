"""Per-tier circuit breakers and the guarded best-effort writer.

Every disk tier whose writes are an optimisation rather than an
obligation — engine result records, analysis spill, response spill,
the job store, the scenario registry, streaming flush shards — routes
its writes through :func:`write_guarded`.  The contract:

* an ``OSError`` (disk full, permission lost, I/O error) becomes a
  recorded miss: the caller carries on, the tier's breaker counts it;
* after ``failure_threshold`` *consecutive* failures the breaker
  opens and writes are skipped outright — a full disk is not hammered
  with doomed syscalls;
* after ``cooldown_s`` the breaker goes half-open and lets exactly one
  probe write through: success closes it, failure re-opens it.

State is visible end to end: ``GET /healthz`` lists non-closed tiers
under ``degraded`` and ``/metrics`` carries the full per-tier counter
snapshot, so a chaos test (or an operator) can watch a tier open,
probe, and heal.
"""

from __future__ import annotations

import logging
import threading
import time
from typing import Callable, Dict, List, Optional

from .events import record_event

logger = logging.getLogger("repro.resilience")

__all__ = [
    "CircuitBreaker", "BreakerRegistry", "default_registry",
    "write_guarded",
]

#: Consecutive failures before a tier's breaker opens.
DEFAULT_FAILURE_THRESHOLD = 3
#: Seconds an open breaker waits before the half-open probe.
DEFAULT_COOLDOWN_S = 5.0


class CircuitBreaker:
    """Closed / open / half-open breaker for one disk tier.

    ``clock`` is injectable so tests drive the cooldown without
    sleeping.  All transitions happen under the lock; the half-open
    state admits a single in-flight probe at a time.
    """

    def __init__(
        self,
        tier: str,
        failure_threshold: int = DEFAULT_FAILURE_THRESHOLD,
        cooldown_s: float = DEFAULT_COOLDOWN_S,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        self.tier = tier
        self.failure_threshold = int(failure_threshold)
        self.cooldown_s = float(cooldown_s)
        self._clock = clock
        self._lock = threading.Lock()
        self.state = "closed"
        self._consecutive_failures = 0
        self._retry_at = 0.0
        self._probe_in_flight = False
        self.successes = 0
        self.failures = 0
        self.skipped = 0
        self.opened = 0

    def allow(self) -> bool:
        """May the caller attempt a write right now?

        ``False`` counts as a skipped write.  Callers that get ``True``
        must report back via :meth:`record_success` or
        :meth:`record_failure` — in the half-open state that report is
        what resolves the probe.
        """
        with self._lock:
            if self.state == "closed":
                return True
            if self.state == "open":
                if self._clock() < self._retry_at:
                    self.skipped += 1
                    return False
                self.state = "half_open"
                self._probe_in_flight = True
                return True
            # half_open: one probe at a time.
            if self._probe_in_flight:
                self.skipped += 1
                return False
            self._probe_in_flight = True
            return True

    def record_success(self) -> None:
        with self._lock:
            self.successes += 1
            self._consecutive_failures = 0
            self._probe_in_flight = False
            if self.state != "closed":
                self.state = "closed"
                record_event("breaker.closed", tier=self.tier)

    def record_failure(self) -> None:
        with self._lock:
            self.failures += 1
            self._consecutive_failures += 1
            was_half_open = self.state == "half_open"
            self._probe_in_flight = False
            tripped = (
                was_half_open
                or self._consecutive_failures >= self.failure_threshold
            )
            if tripped:
                self._retry_at = self._clock() + self.cooldown_s
                if self.state != "open":
                    self.state = "open"
                    self.opened += 1
                    record_event(
                        "breaker.open",
                        tier=self.tier,
                        consecutive_failures=self._consecutive_failures,
                        cooldown_s=self.cooldown_s,
                    )

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "state": self.state,
                "successes": self.successes,
                "failures": self.failures,
                "skipped": self.skipped,
                "opened": self.opened,
                "consecutive_failures": self._consecutive_failures,
            }


class BreakerRegistry:
    """Lazily-created breakers keyed by tier name."""

    def __init__(
        self,
        failure_threshold: int = DEFAULT_FAILURE_THRESHOLD,
        cooldown_s: float = DEFAULT_COOLDOWN_S,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.failure_threshold = failure_threshold
        self.cooldown_s = cooldown_s
        self._clock = clock
        self._lock = threading.Lock()
        self._breakers: Dict[str, CircuitBreaker] = {}

    def breaker(self, tier: str) -> CircuitBreaker:
        with self._lock:
            found = self._breakers.get(tier)
            if found is None:
                found = CircuitBreaker(
                    tier,
                    failure_threshold=self.failure_threshold,
                    cooldown_s=self.cooldown_s,
                    clock=self._clock,
                )
                self._breakers[tier] = found
            return found

    def degraded(self) -> List[str]:
        """Tiers whose breaker is not closed, sorted for stable JSON."""
        with self._lock:
            breakers = list(self._breakers.items())
        return sorted(
            tier for tier, breaker in breakers
            if breaker.state != "closed"
        )

    def snapshot(self) -> Dict[str, dict]:
        with self._lock:
            breakers = list(self._breakers.items())
        return {tier: breaker.snapshot() for tier, breaker in breakers}

    def reset(self) -> None:
        """Drop every breaker — test hygiene for the global registry."""
        with self._lock:
            self._breakers = {}


_default_registry = BreakerRegistry()


def default_registry() -> BreakerRegistry:
    """The process-wide registry all production tiers share."""
    return _default_registry


def write_guarded(
    tier: str,
    write: Callable[[], None],
    registry: Optional[BreakerRegistry] = None,
) -> bool:
    """Run a best-effort disk write under ``tier``'s breaker.

    Returns ``True`` when the write ran and succeeded, ``False`` when
    it was skipped (breaker open) or failed with ``OSError`` (recorded
    as a breaker failure).  Non-``OSError`` exceptions propagate — a
    serialisation bug is a bug, not a disk fault.
    """
    registry = registry if registry is not None else _default_registry
    breaker = registry.breaker(tier)
    if not breaker.allow():
        return False
    try:
        write()
    except OSError as exc:
        breaker.record_failure()
        logger.debug("guarded write failed on tier %s: %s", tier, exc)
        return False
    breaker.record_success()
    return True
