"""The bounded degradation-event log.

Every time the system survives a fault by degrading — a worker pool
rebuilt, a cache tier's breaker opened, a sweep finished serially —
the survivor records an event here.  The log is the proof that
degraded mode happened and the pointer to why: ``/metrics`` exposes
the per-kind counters plus the most recent entries, and each event is
mirrored to the ``repro.resilience`` logger at WARNING so daemon
stderr doubles as a degradation-event log for CI artifacts.

Bounded by a deque: a service that degrades for hours must not grow
an unbounded list.
"""

from __future__ import annotations

import logging
import threading
import time
from collections import deque
from typing import Dict, List

__all__ = [
    "record_event", "recent_events", "events_by_kind", "reset_events",
]

logger = logging.getLogger("repro.resilience")

_LOCK = threading.Lock()
_EVENTS: deque = deque(maxlen=256)
_BY_KIND: Dict[str, int] = {}


def record_event(kind: str, **fields) -> None:
    """Record one degradation event (and log it at WARNING)."""
    entry = dict(fields)
    entry["kind"] = kind
    entry["time"] = time.time()
    with _LOCK:
        _EVENTS.append(entry)
        _BY_KIND[kind] = _BY_KIND.get(kind, 0) + 1
    logger.warning("degradation event %s %s", kind, fields)


def recent_events(limit: int = 20) -> List[dict]:
    """The most recent ``limit`` events, oldest first."""
    with _LOCK:
        return list(_EVENTS)[-max(0, int(limit)):]


def events_by_kind() -> Dict[str, int]:
    """Total events per kind since process start (or reset)."""
    with _LOCK:
        return dict(_BY_KIND)


def reset_events() -> None:
    """Forget everything — test hygiene for the process-global log."""
    with _LOCK:
        _EVENTS.clear()
        _BY_KIND.clear()
