"""Named fault points for chaos testing the real code paths.

A fault *point* is a string naming one seam where production code asks
the process-wide injector whether to misbehave::

    disk.read       _load_payload raises OSError(EIO) before reading
    disk.write      write_json_atomic raises OSError(ENOSPC); the
                    ``partial`` value first leaves a torn file behind
    pool.crash      the process backend hard-kills a pool worker so the
                    next batch surfaces BrokenProcessPool
    handler.slow    the request handler sleeps (value = seconds,
                    deadline-aware) before doing any work
    handler.error   the request handler raises RuntimeError

Faults are armed with a *spec*, a comma-separated list of clauses::

    point:count[:value]

``count`` is how many times the point fires before disarming itself
(``*`` means every time); ``value`` is an optional payload the call
site interprets (seconds for ``handler.slow``, ``partial`` for
``disk.write``).  Examples::

    pool.crash:1                        crash one worker, once
    disk.write:500                      ENOSPC on the next 500 writes
    disk.write:1:partial,disk.read:2    one torn write, two read errors
    handler.slow:*:0.2                  every handler sleeps 200 ms

The spec reaches a process through :func:`default_injector`'s
``configure`` (``serve --fault-spec`` calls it) or the
``REPRO_FAULT_SPEC`` environment variable, read once at import so
spawned children and pre-fork workers inherit the faults.

The hot path is :func:`fire`.  When nothing is armed it is one
attribute load and a ``return`` — no lock, no dict lookup — so leaving
the fault points compiled into production code costs nothing.
"""

from __future__ import annotations

import logging
import os
import threading
from typing import Dict, Optional, Union

__all__ = ["FAULT_POINTS", "FaultInjector", "default_injector", "fire"]

logger = logging.getLogger("repro.resilience")

#: Environment variable carrying a fault spec into child processes.
FAULT_SPEC_ENV = "REPRO_FAULT_SPEC"

#: Every seam production code exposes to the injector.
FAULT_POINTS = (
    "disk.read",
    "disk.write",
    "pool.crash",
    "handler.slow",
    "handler.error",
)


class _Fault:
    __slots__ = ("remaining", "value")

    def __init__(self, remaining: Optional[int], value: Optional[str]):
        self.remaining = remaining  # None = unlimited
        self.value = value


def parse_spec(spec: str) -> Dict[str, _Fault]:
    """Parse ``point:count[:value],...`` into armed faults.

    Raises :class:`ValueError` with a message naming the offending
    clause — specs arrive from the CLI, so errors must be legible.
    """
    faults: Dict[str, _Fault] = {}
    for clause in spec.split(","):
        clause = clause.strip()
        if not clause:
            continue
        parts = clause.split(":", 2)
        if len(parts) < 2:
            raise ValueError(
                f"fault clause {clause!r} is not point:count[:value]"
            )
        point = parts[0].strip()
        if point not in FAULT_POINTS:
            known = ", ".join(FAULT_POINTS)
            raise ValueError(
                f"unknown fault point {point!r} (known: {known})"
            )
        raw_count = parts[1].strip()
        if raw_count == "*":
            count: Optional[int] = None
        else:
            try:
                count = int(raw_count)
            except ValueError:
                raise ValueError(
                    f"fault clause {clause!r} has a non-integer count"
                ) from None
            if count < 1:
                raise ValueError(
                    f"fault clause {clause!r} needs a count >= 1"
                )
        value = parts[2].strip() if len(parts) == 3 else None
        faults[point] = _Fault(count, value)
    return faults


class FaultInjector:
    """Process-wide registry of armed fault points.

    ``active`` is a plain attribute read without the lock on the hot
    path; it only ever flips under the lock, and a stale read merely
    delays the first firing by one call — acceptable for a chaos tool,
    free for production.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._faults: Dict[str, _Fault] = {}
        self._fired: Dict[str, int] = {}
        self.active = False

    def configure(self, spec: str) -> None:
        """Arm the faults described by ``spec`` (replacing any armed)."""
        faults = parse_spec(spec)
        with self._lock:
            self._faults = faults
            self.active = bool(faults)
        if faults:
            logger.warning("fault injector armed: %s", spec)

    def clear(self) -> None:
        """Disarm every fault and forget the fired counters."""
        with self._lock:
            self._faults = {}
            self._fired = {}
            self.active = False

    def fire(self, point: str) -> Union[None, bool, str]:
        """One production-code probe of ``point``.

        Returns ``None`` when the point is not armed (the overwhelming
        case), the clause's ``value`` string when one was given, and
        ``True`` otherwise.  Each firing consumes one count.
        """
        if not self.active:
            return None
        with self._lock:
            fault = self._faults.get(point)
            if fault is None:
                return None
            if fault.remaining is not None:
                fault.remaining -= 1
                if fault.remaining <= 0:
                    del self._faults[point]
                    if not self._faults:
                        self.active = False
            self._fired[point] = self._fired.get(point, 0) + 1
        logger.warning("fault point fired: %s (value=%r)",
                       point, fault.value)
        return fault.value if fault.value is not None else True

    def snapshot(self) -> dict:
        """Armed points and fired counters, for ``/metrics``."""
        with self._lock:
            armed = {
                point: ("*" if fault.remaining is None
                        else fault.remaining)
                for point, fault in self._faults.items()
            }
            return {
                "active": self.active,
                "armed": armed,
                "fired": dict(self._fired),
            }


_default = FaultInjector()


def default_injector() -> FaultInjector:
    """The process-wide injector every compiled-in fault point uses."""
    return _default


def fire(point: str) -> Union[None, bool, str]:
    """Probe ``point`` on the default injector (the production seam)."""
    if not _default.active:
        return None
    return _default.fire(point)


# Arm from the environment at import time so children spawned with the
# variable set (pre-fork workers, pool workers, subprocess daemons)
# come up faulted without any plumbing.
_env_spec = os.environ.get(FAULT_SPEC_ENV, "").strip()
if _env_spec:
    try:
        _default.configure(_env_spec)
    except ValueError as exc:  # a bad env var must not kill imports
        logger.warning("ignoring invalid %s: %s", FAULT_SPEC_ENV, exc)
