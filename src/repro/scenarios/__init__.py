"""Scenario registry: one named, cached, validated dataset layer.

The paper's middleware configures LPPMs over *any* user workload; this
package is where workloads get names.  A :class:`ScenarioSpec` describes
a dataset (synthetic generator config, or an on-disk CSV / GeoLife /
Cabspotting path) without holding the data; a :class:`ScenarioRegistry`
resolves specs to :class:`~repro.mobility.Dataset` objects through a
bounded, content-fingerprinted LRU cache.  The CLI (``repro-lppm
datasets``), the configuration service (``GET/POST /datasets``,
``{"scenario": ...}`` dataset specs) and the benchmarks all ingest
through this layer.
"""

from .registry import (
    ScenarioRegistry,
    available_scenarios,
    default_registry,
    register_scenario,
    resolve_scenario,
    scenario,
)
from .spec import FILE_KINDS, SCENARIO_KINDS, SYNTH_KINDS, ScenarioSpec

__all__ = [
    "ScenarioSpec",
    "ScenarioRegistry",
    "SCENARIO_KINDS",
    "SYNTH_KINDS",
    "FILE_KINDS",
    "default_registry",
    "register_scenario",
    "available_scenarios",
    "scenario",
    "resolve_scenario",
]
