"""The scenario registry: named specs behind one ingestion layer.

Every consumer of datasets — the CLI, the configuration service, the
benchmarks — resolves named scenarios through a
:class:`ScenarioRegistry` instead of hard-wiring its own workload
construction.  The registry is seeded with built-in synthetic scenarios
(the workloads the benchmarks and docs use), accepts user registrations
(file-backed formats included), and memoises resolution in a **bounded
LRU cache keyed on content fingerprints** — re-resolving an unchanged
scenario is a dict lookup, while editing a file-backed scenario's data
on disk changes its fingerprint and misses the cache naturally.

A process-global default registry backs the CLI and the module-level
convenience functions; the service builds its own per-instance registry
so daemon registrations never leak across instances or into tests.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, List, Mapping, Optional

from ..mobility import Dataset
from .spec import ScenarioSpec

__all__ = [
    "ScenarioRegistry",
    "default_registry",
    "register_scenario",
    "available_scenarios",
    "scenario",
    "resolve_scenario",
]

#: Scenarios every registry starts with (unless asked not to): the
#: parameterisable generator families, plus the small presets the docs
#: and quickstarts use.
_BUILTINS = (
    ("taxi", "taxi", {},
     "Cabspotting-style synthetic taxi fleet (generator defaults)"),
    ("commuters", "commuters", {},
     "GeoLife-style synthetic commuter population (generator defaults)"),
    ("random_waypoint", "random_waypoint", {},
     "random-waypoint negative control (no recurrent POIs)"),
    ("levy_flight", "levy_flight", {},
     "truncated Levy-flight negative control"),
    ("taxi-small", "taxi", {"users": 5, "seed": 42},
     "the docs' five-cab example fleet"),
    ("commuters-small", "commuters", {"users": 5, "seed": 42},
     "a five-user commuter example population"),
)


class ScenarioRegistry:
    """Named scenario specs plus a bounded LRU of resolved datasets.

    Thread-safe: the service registers and resolves scenarios from
    request and job-worker threads concurrently.  The lock is never
    held while a dataset is generated or read — only around the spec
    table and the cache dict — so resolving one slow scenario does not
    block listing, registering or resolving others.

    Parameters
    ----------
    include_builtins:
        Seed the registry with the built-in synthetic scenarios.
    cache_size:
        Bound on the resolved-dataset LRU; least recently *used*
        entries are evicted first.
    """

    def __init__(
        self, include_builtins: bool = True, cache_size: int = 8
    ) -> None:
        if cache_size < 1:
            raise ValueError("cache_size must be at least 1")
        self.cache_size = int(cache_size)
        self._lock = threading.Lock()
        self._specs: Dict[str, ScenarioSpec] = {}
        #: fingerprint -> resolved dataset, in LRU order (oldest first).
        self._cache: "OrderedDict[str, Dataset]" = OrderedDict()
        self.cache_hits = 0
        self.cache_misses = 0
        if include_builtins:
            for name, kind, params, description in _BUILTINS:
                self.register(
                    ScenarioSpec.make(name, kind, params, description)
                )

    # ------------------------------------------------------------------
    # Spec table
    # ------------------------------------------------------------------
    def register(
        self, spec: ScenarioSpec, replace: bool = False
    ) -> ScenarioSpec:
        """Add a spec under its name; returns the registered spec.

        Registering an identical spec again is idempotent; registering
        a *different* spec under an existing name raises
        :class:`ValueError` unless ``replace`` is true — silent
        redefinition would change what every later request means.
        """
        if not isinstance(spec, ScenarioSpec):
            raise TypeError(f"expected a ScenarioSpec, got {type(spec).__name__}")
        with self._lock:
            existing = self._specs.get(spec.name)
            if existing is not None and existing != spec and not replace:
                raise ValueError(
                    f"scenario {spec.name!r} is already registered with a "
                    "different spec; pass replace=True to redefine it"
                )
            self._specs[spec.name] = spec
        return spec

    def get(self, name: str) -> ScenarioSpec:
        """The spec registered under ``name``; :class:`KeyError` if absent."""
        with self._lock:
            spec = self._specs.get(name)
        if spec is None:
            raise KeyError(
                f"unknown scenario {name!r}; known: {self.names()}"
            )
        return spec

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._specs

    def __len__(self) -> int:
        with self._lock:
            return len(self._specs)

    def names(self) -> List[str]:
        """Registered scenario names, sorted."""
        with self._lock:
            return sorted(self._specs)

    def specs(self) -> List[ScenarioSpec]:
        """Registered specs, in name order."""
        with self._lock:
            return [self._specs[name] for name in sorted(self._specs)]

    # ------------------------------------------------------------------
    # Resolution through the LRU
    # ------------------------------------------------------------------
    def resolve(self, name: str, **overrides) -> Dataset:
        """The dataset for ``name`` (+ param overrides), LRU-cached.

        The cache key is the spec's content fingerprint, so every
        distinct parameterisation caches separately, equivalent
        spellings share one entry, and a file-backed scenario whose
        data changed on disk re-reads instead of serving stale records.
        """
        return self.resolve_spec(self.get(name).with_params(**overrides))

    def resolve_spec(
        self, spec: ScenarioSpec, fingerprint: Optional[str] = None
    ) -> Dataset:
        """Resolve an (already validated) spec through the LRU cache.

        ``fingerprint`` (if given) must be ``spec.fingerprint()``,
        passed by callers that already computed it — for file-backed
        scenarios each computation is a stat sweep of the tree, and
        reusing the caller's value also keys the cache on exactly the
        identity the caller saw.
        """
        if fingerprint is None:
            fingerprint = spec.fingerprint()
        with self._lock:
            dataset = self._cache.get(fingerprint)
            if dataset is not None:
                self._cache.move_to_end(fingerprint)
                self.cache_hits += 1
                return dataset
            self.cache_misses += 1
        dataset = spec.resolve()
        with self._lock:
            if fingerprint not in self._cache:
                while len(self._cache) >= self.cache_size:
                    self._cache.popitem(last=False)
                self._cache[fingerprint] = dataset
            else:
                # A concurrent resolver won the race; keep its object so
                # engine fingerprint memoisation stays shared.
                dataset = self._cache[fingerprint]
                self._cache.move_to_end(fingerprint)
        return dataset

    def cache_stats(self) -> dict:
        """JSON-ready counters of the resolved-dataset LRU."""
        with self._lock:
            return {
                "entries": len(self._cache),
                "capacity": self.cache_size,
                "hits": self.cache_hits,
                "misses": self.cache_misses,
            }

    def clear_cache(self) -> None:
        """Drop every cached dataset (specs stay registered)."""
        with self._lock:
            self._cache.clear()


# ----------------------------------------------------------------------
# Process-global default registry (CLI and convenience functions)
# ----------------------------------------------------------------------
_default: Optional[ScenarioRegistry] = None
_default_lock = threading.Lock()


def default_registry() -> ScenarioRegistry:
    """The process-global registry (built lazily, builtins included)."""
    global _default
    with _default_lock:
        if _default is None:
            _default = ScenarioRegistry()
        return _default


def register_scenario(
    name: str,
    kind: str,
    params: Optional[Mapping[str, object]] = None,
    description: str = "",
    replace: bool = False,
) -> ScenarioSpec:
    """Validate and register a scenario in the default registry."""
    return default_registry().register(
        ScenarioSpec.make(name, kind, params, description), replace=replace
    )


def available_scenarios() -> List[str]:
    """Names registered in the default registry, sorted."""
    return default_registry().names()


def scenario(name: str) -> ScenarioSpec:
    """The default registry's spec for ``name``."""
    return default_registry().get(name)


def resolve_scenario(name: str, **overrides) -> Dataset:
    """Resolve ``name`` (+ overrides) through the default registry."""
    return default_registry().resolve(name, **overrides)
