"""Scenario specs: named, parameterised descriptions of datasets.

A :class:`ScenarioSpec` describes *how to obtain* a dataset — a
synthetic generator configuration or an on-disk file in one of the
supported formats — without holding the data itself.  Specs are
immutable, hashable, JSON-renderable, and **content-fingerprintable**:
:meth:`ScenarioSpec.fingerprint` hashes everything the resolved data
depends on (the normalised generator parameters, or the file's path
plus its mtime and size), so a fingerprint can key the service's
dataset registry and response cache the same way the engine's
:func:`~repro.engine.jobs.dataset_fingerprint` keys evaluation results.

Two families of *kinds*:

* synthetic — ``taxi``, ``commuters``, ``random_waypoint``,
  ``levy_flight``: ``params`` are the fields of the matching
  ``repro.synth`` config dataclass, plus the universal aliases
  ``users`` (mapped onto ``n_cabs``/``n_users``) and ``seed``;
* file-backed — ``csv``, ``geolife``, ``cabspotting``: ``params`` is
  exactly ``{"path": ...}``, read with the streaming parsers of
  :mod:`repro.mobility.io`.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import re
from dataclasses import dataclass
from typing import Callable, Dict, Mapping, Optional, Tuple

from ..mobility import Dataset, read_cabspotting, read_csv, read_geolife
from ..synth import (
    CommuterConfig,
    LevyFlightConfig,
    RandomWaypointConfig,
    TaxiFleetConfig,
    generate_commuters,
    generate_levy_flight,
    generate_random_waypoint,
    generate_taxi_fleet,
)

__all__ = ["ScenarioSpec", "SYNTH_KINDS", "FILE_KINDS", "SCENARIO_KINDS"]


@dataclass(frozen=True)
class _SynthKind:
    """One synthetic generator: its config class and entry point."""

    config_cls: type
    generate: Callable
    #: The config field the universal ``users`` alias maps onto.
    users_field: str


#: Synthetic scenario kinds, by name.
SYNTH_KINDS: Dict[str, _SynthKind] = {
    "taxi": _SynthKind(TaxiFleetConfig, generate_taxi_fleet, "n_cabs"),
    "commuters": _SynthKind(CommuterConfig, generate_commuters, "n_users"),
    "random_waypoint": _SynthKind(
        RandomWaypointConfig, generate_random_waypoint, "n_users"
    ),
    "levy_flight": _SynthKind(
        LevyFlightConfig, generate_levy_flight, "n_users"
    ),
}

#: File-backed scenario kinds: format name -> streaming reader.
FILE_KINDS: Dict[str, Callable] = {
    "csv": read_csv,
    "geolife": read_geolife,
    "cabspotting": read_cabspotting,
}

#: Every valid ``ScenarioSpec.kind``, sorted for stable error messages.
SCENARIO_KINDS: Tuple[str, ...] = tuple(
    sorted([*SYNTH_KINDS, *FILE_KINDS])
)

_NAME_RE = re.compile(r"[A-Za-z0-9][A-Za-z0-9._-]*")


def _config_params(kind: str, params: Mapping[str, object]) -> dict:
    """Normalised constructor kwargs for a synth kind's config.

    Resolves the ``users`` alias, rejects unknown fields, and leaves
    value validation to the config dataclass itself (its
    ``__post_init__`` raises on out-of-range values).
    """
    synth = SYNTH_KINDS[kind]
    field_names = {f.name for f in dataclasses.fields(synth.config_cls)}
    kwargs = dict(params)
    if "users" in kwargs:
        if synth.users_field in kwargs:
            raise ValueError(
                f"scenario params give both 'users' and "
                f"'{synth.users_field}'; pick one"
            )
        kwargs[synth.users_field] = kwargs.pop("users")
    unknown = sorted(set(kwargs) - field_names)
    if unknown:
        raise ValueError(
            f"unknown params for kind {kind!r}: {unknown} "
            f"(valid: {sorted(field_names | {'users'})})"
        )
    return kwargs


@dataclass(frozen=True)
class ScenarioSpec:
    """One named, parameterised dataset description.

    ``params`` is stored as a sorted tuple of (key, value) pairs so
    specs are hashable and two dict orderings compare equal; build
    instances with :meth:`make`, which validates against the kind.
    """

    name: str
    kind: str
    params: Tuple[Tuple[str, object], ...] = ()
    description: str = ""

    @classmethod
    def make(
        cls,
        name: str,
        kind: str,
        params: Optional[Mapping[str, object]] = None,
        description: str = "",
    ) -> "ScenarioSpec":
        """A validated spec; raises :class:`ValueError` on bad input."""
        if not isinstance(name, str) or not _NAME_RE.fullmatch(name):
            raise ValueError(
                f"scenario name must match {_NAME_RE.pattern!r}, "
                f"got {name!r}"
            )
        if kind not in SCENARIO_KINDS:
            raise ValueError(
                f"kind must be one of {list(SCENARIO_KINDS)}, got {kind!r}"
            )
        params = dict(params or {})
        if kind in FILE_KINDS:
            unknown = sorted(set(params) - {"path"})
            if unknown:
                raise ValueError(
                    f"unknown params for kind {kind!r}: {unknown} "
                    f"(valid: ['path'])"
                )
            path = params.get("path")
            if not isinstance(path, str) or not path:
                raise ValueError(
                    f"kind {kind!r} needs params {{'path': <str>}}"
                )
        else:
            # Constructing the config validates names *and* values.
            _ = SYNTH_KINDS[kind].config_cls(**_config_params(kind, params))
        return cls(
            name=name,
            kind=kind,
            params=tuple(sorted(params.items())),
            description=str(description),
        )

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    @property
    def params_dict(self) -> Dict[str, object]:
        """The parameters as a plain dict."""
        return dict(self.params)

    @property
    def is_file_backed(self) -> bool:
        """Whether resolution reads from disk (data may change)."""
        return self.kind in FILE_KINDS

    def to_jsonable(self) -> dict:
        """A JSON-ready rendering (what ``GET /datasets`` lists)."""
        return {
            "name": self.name,
            "kind": self.kind,
            "params": self.params_dict,
            "description": self.description,
        }

    # ------------------------------------------------------------------
    # Parameterisation
    # ------------------------------------------------------------------
    def with_params(self, **overrides) -> "ScenarioSpec":
        """A copy with ``overrides`` merged over this spec's params.

        This is how ``{"scenario": "taxi", "users": 5, "seed": 1}``
        resolves: the registered spec provides the base, the request
        provides overrides, and the merge re-validates.
        """
        if not overrides:
            return self
        return ScenarioSpec.make(
            self.name,
            self.kind,
            dict(self.params_dict, **overrides),
            self.description,
        )

    # ------------------------------------------------------------------
    # Resolution and identity
    # ------------------------------------------------------------------
    def _canonical_params(self) -> dict:
        """Params with aliases resolved and every default made explicit.

        Two spellings of the same data — ``{"users": 30}`` and ``{}``
        for the taxi kind, say — canonicalise identically, so they
        share one fingerprint, one cached dataset and one response-
        cache entry.
        """
        if self.is_file_backed:
            return {"path": os.path.abspath(str(self.params_dict["path"]))}
        synth = SYNTH_KINDS[self.kind]
        config = synth.config_cls(
            **_config_params(self.kind, self.params_dict)
        )
        return dataclasses.asdict(config)

    def fingerprint(self) -> str:
        """Content hash of the data this spec resolves to.

        Synthetic kinds hash the fully-defaulted generator config (the
        generators are deterministic in it); file-backed kinds hash the
        absolute path pinned to the file tree's current mtime and size,
        so an edited file yields a new fingerprint — exactly the
        staleness rule the service applies to ``path`` dataset specs.
        Raises :class:`FileNotFoundError` for a missing file.
        """
        payload: dict = {
            "kind": self.kind,
            "params": self._canonical_params(),
        }
        if self.is_file_backed:
            payload["file"] = _file_identity(payload["params"]["path"])
        canonical = json.dumps(
            payload, sort_keys=True, separators=(",", ":"), default=str
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def resolve(self) -> Dataset:
        """Build (or read) the dataset this spec describes."""
        if self.is_file_backed:
            return FILE_KINDS[self.kind](self.params_dict["path"])
        synth = SYNTH_KINDS[self.kind]
        return synth.generate(
            synth.config_cls(**_config_params(self.kind, self.params_dict))
        )


def _file_identity(path: str) -> dict:
    """mtime/size pin of a file or directory tree (GeoLife, Cabspotting).

    Directory formats hash every regular file under the root, so adding
    a cab file or appending to a PLT invalidates old fingerprints.
    """
    if os.path.isdir(path):
        entries = []
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames.sort()
            for filename in sorted(filenames):
                full = os.path.join(dirpath, filename)
                stat = os.stat(full)
                entries.append(
                    [os.path.relpath(full, path), stat.st_mtime_ns,
                     stat.st_size]
                )
        return {"tree": entries}
    stat = os.stat(path)
    return {"mtime_ns": stat.st_mtime_ns, "size": stat.st_size}
