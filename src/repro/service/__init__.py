"""Configuration-as-a-service: the daemon layer over the framework.

The paper positions LPPM auto-configuration as *middleware* between
users and location-based services; this package is that middleware made
long-running.  One process holds a shared
:class:`~repro.engine.EvaluationEngine` (warm result cache included), a
registry of datasets and fitted configurators, and serves JSON
endpoints through a composable request-middleware pipeline — request
ids, gzip compression, structured logging, metrics, API-key auth with
per-tenant namespacing, token-bucket rate limits, typed validation
errors, and a response cache that answers repeated deterministic
requests without re-entering the framework at all.

Start a daemon with ``repro-lppm serve``; talk to it with
:class:`HttpServiceClient`, or embed the whole service in-process with
:class:`ServiceClient` (what the tests and examples do).  See
``docs/service.md`` for the endpoint reference.
"""

from .app import CACHEABLE_ENDPOINTS, ConfigService, serve
from .client import HttpServiceClient, ServiceClient, ServiceClientError
from .handlers import SCHEMAS, make_handlers, make_job_handlers, tenant_of
from .jobs import JOB_ENDPOINTS, JOB_STATES, Job, JobManager
from .middleware import (
    ANONYMOUS_TENANT,
    DEADLINE_HEADER,
    UNAUTHENTICATED_ENDPOINTS,
    ApiKeyAuthMiddleware,
    ApiKeyStore,
    CompressionMiddleware,
    DeadlineMiddleware,
    ErrorBoundaryMiddleware,
    Field,
    LoadShedMiddleware,
    LoggingMiddleware,
    MetricsMiddleware,
    Middleware,
    MiddlewarePipeline,
    RateLimitMiddleware,
    Request,
    RequestIdMiddleware,
    Response,
    ResponseCacheMiddleware,
    ServiceError,
    ValidationMiddleware,
    canonical_body_key,
    check_deadline,
    header_value,
    validate_body,
)
from .state import ServiceState, resolve_dataset_spec, resolve_scenario_spec

__all__ = [
    # app
    "ConfigService",
    "CACHEABLE_ENDPOINTS",
    "serve",
    # clients
    "ServiceClient",
    "HttpServiceClient",
    "ServiceClientError",
    # pipeline
    "Middleware",
    "MiddlewarePipeline",
    "Request",
    "Response",
    "ServiceError",
    "RequestIdMiddleware",
    "LoggingMiddleware",
    "MetricsMiddleware",
    "ErrorBoundaryMiddleware",
    "ValidationMiddleware",
    "ResponseCacheMiddleware",
    "Field",
    "validate_body",
    "canonical_body_key",
    "header_value",
    # hardening: auth, tenancy, limits, compression
    "ApiKeyStore",
    "ApiKeyAuthMiddleware",
    "RateLimitMiddleware",
    "CompressionMiddleware",
    "ANONYMOUS_TENANT",
    "UNAUTHENTICATED_ENDPOINTS",
    "tenant_of",
    # resilience: deadlines and load shedding
    "DeadlineMiddleware",
    "LoadShedMiddleware",
    "DEADLINE_HEADER",
    "check_deadline",
    # state & handlers
    "ServiceState",
    "resolve_dataset_spec",
    "resolve_scenario_spec",
    "SCHEMAS",
    "make_handlers",
    "make_job_handlers",
    # async jobs
    "Job",
    "JobManager",
    "JOB_ENDPOINTS",
    "JOB_STATES",
]
