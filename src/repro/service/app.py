"""The configuration service: routing, pipeline wiring, HTTP front-end.

:class:`ConfigService` is the transport-agnostic core — a routing table
of endpoint handlers behind the default middleware pipeline, holding
one shared :class:`~repro.service.state.ServiceState`.  Tests and the
in-process client call :meth:`ConfigService.handle` directly; the HTTP
front-end (:func:`serve`, stdlib ``ThreadingHTTPServer`` — no new
dependencies) is a thin JSON adapter over the same dispatch path, so
every behaviour is testable without sockets.

Endpoints::

    POST /protect     apply an LPPM to a dataset
    POST /sweep       the framework's offline parameter sweep
    POST /configure   sweep + fitted equation-(2) model
    POST /recommend   invert the model at designer objectives
    POST /jobs        run sweep/configure/recommend asynchronously (202)
    GET  /jobs        list live jobs + worker-pool counters
    GET  /jobs/<id>   job status, progress, result when done
    DELETE /jobs/<id> cancel a job (cooperative, between engine chunks)
    GET  /datasets    list registered scenarios + dataset-cache stats
    POST /datasets    register a named scenario (201)
    POST /stream/<session>         push a chunk of live location updates
    GET  /stream/<session>/metrics sliding-window privacy/utility metrics
    DELETE /stream/<session>       close the session, flush final metrics
    GET  /healthz     liveness + shared-state summary
    GET  /metrics     request counters, engine/cache statistics
"""

from __future__ import annotations

import copy
import json
import logging
import os
import signal
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Callable, Dict, Optional

from ..engine import EvaluationEngine
from ..framework import geo_ind_system
from .handlers import SCHEMAS, make_handlers, make_job_handlers
from .jobs import JOB_ENDPOINTS, Job, JobManager
from ..resilience import (
    default_injector,
    default_registry,
    events_by_kind,
    recent_events,
)
from ..resilience.faults import FAULT_SPEC_ENV as _FAULT_SPEC_ENV
from .middleware import (
    ApiKeyAuthMiddleware,
    ApiKeyStore,
    CompressionMiddleware,
    DeadlineMiddleware,
    ErrorBoundaryMiddleware,
    LoadShedMiddleware,
    LoggingMiddleware,
    MetricsMiddleware,
    MiddlewarePipeline,
    RateLimitMiddleware,
    Request,
    RequestIdMiddleware,
    Response,
    ResponseCacheMiddleware,
    ServiceError,
    ValidationMiddleware,
)
from .state import ServiceState, normalised_dataset_spec

__all__ = ["ConfigService", "CACHEABLE_ENDPOINTS", "serve"]

logger = logging.getLogger("repro.service")

#: Endpoints whose responses are pure functions of the validated body —
#: exactly these flow through the response-cache middleware.
#: ``/protect`` is deterministic too but stays out: its responses embed
#: full record dumps (unbounded bytes under an entry-count bound) and
#: recomputing a protection is cheap, unlike a sweep.
CACHEABLE_ENDPOINTS = (
    "POST /sweep",
    "POST /configure",
    "POST /recommend",
)


#: Largest accepted request body.  Inline-records datasets fit
#: comfortably; anything bigger should arrive as a server-side CSV.
MAX_BODY_BYTES = 32 * 1024 * 1024


class ConfigService:
    """One service instance: shared state + pipeline + routing table.

    Parameters
    ----------
    engine:
        The shared :class:`EvaluationEngine`; ``None`` builds a serial
        in-memory one.  Production deployments pass a process-backed
        engine with a persistent ``cache_dir``.
    system_factory:
        Builds the analysed system (default: the paper's GEO-I).
    response_cache_size:
        Bound on the response-cache middleware's entry count.
    workers:
        Job-worker threads — the daemon's async evaluation concurrency.
    max_queued_jobs:
        Waiting-job bound; a full queue turns ``POST /jobs`` into 429.
    job_ttl_s:
        Seconds a finished job stays pollable before it expires.
    api_keys:
        The :class:`ApiKeyStore` mapping keys to tenants; ``None``
        runs the pre-auth single-tenant service.
    allow_anonymous:
        Whether keyless requests are served (as tenant ``anonymous``).
        ``None`` resolves to "no key store configured": provisioning
        keys flips the default to deny, plain services stay open.
    rate_limit_rps / rate_limit_burst:
        Per-tenant token-bucket parameters; ``rate_limit_rps=None``
        disables limiting.  ``rate_limit_clock`` is injectable so
        tests cross refill boundaries without sleeping.
    max_jobs_per_tenant:
        Bound on one tenant's live (queued + running) async jobs;
        exceeding it is a typed ``429 tenant-quota-exceeded``.
    compression_min_bytes:
        Smallest serialised response body worth gzipping.
    shared_dir:
        Directory shared by sibling worker processes (pre-fork mode).
        Enables the response-cache spill tier (``<dir>/responses``) and
        the cross-process job store (``<dir>/jobs``), so one worker's
        warm state and job snapshots are visible to the others.
        ``None`` keeps everything in process memory.
    """

    def __init__(
        self,
        engine: Optional[EvaluationEngine] = None,
        system_factory=geo_ind_system,
        response_cache_size: int = 1024,
        log: Optional[logging.Logger] = None,
        workers: int = 2,
        max_queued_jobs: int = 16,
        job_ttl_s: float = 600.0,
        api_keys: Optional[ApiKeyStore] = None,
        allow_anonymous: Optional[bool] = None,
        rate_limit_rps: Optional[float] = None,
        rate_limit_burst: Optional[int] = None,
        rate_limit_clock: Callable[[], float] = time.monotonic,
        max_jobs_per_tenant: Optional[int] = None,
        compression_min_bytes: int = 1024,
        shared_dir=None,
        max_in_flight: Optional[int] = None,
    ) -> None:
        shared = Path(shared_dir) if shared_dir is not None else None
        self.state = ServiceState(
            engine=engine,
            system_factory=system_factory,
            shared_dir=shared,
        )
        self.jobs = JobManager(
            execute=self._execute_job,
            workers=workers,
            max_queued=max_queued_jobs,
            ttl_s=job_ttl_s,
            max_jobs_per_tenant=max_jobs_per_tenant,
            shared_dir=(shared / "jobs") if shared is not None else None,
        )
        routes: Dict[str, Callable[[Request], dict]] = make_handlers(
            self.state
        )
        routes.update(make_job_handlers(self.jobs))
        routes["GET /metrics"] = self._metrics_handler
        self._routes = routes
        self._known_paths = {key.split(" ", 1)[1] for key in routes}
        #: Success statuses that differ from the default 200.
        self._status_overrides = {"POST /jobs": 202, "POST /datasets": 201}
        self.metrics = MetricsMiddleware(known_endpoints=routes)
        self.auth = ApiKeyAuthMiddleware(
            store=api_keys,
            allow_anonymous=(
                allow_anonymous if allow_anonymous is not None
                else api_keys is None
            ),
        )
        self.rate_limit = RateLimitMiddleware(
            rate=rate_limit_rps,
            burst=rate_limit_burst,
            clock=rate_limit_clock,
        )
        self.load_shed = LoadShedMiddleware(max_in_flight=max_in_flight)
        self.deadline = DeadlineMiddleware(engine=self.state.engine)
        self.compression = CompressionMiddleware(
            min_bytes=compression_min_bytes
        )
        self.response_cache = ResponseCacheMiddleware(
            CACHEABLE_ENDPOINTS,
            max_entries=response_cache_size,
            should_cache=self._replayable,
            key_body=self._cache_key_body,
            on_hit=self._refresh_hit_body,
            spill_dir=(shared / "responses") if shared is not None else None,
        )
        # A replace-registration changes what a scenario name means.
        # Fingerprint keying already isolates cache entries, but a
        # request *racing* the re-registration can key on the old
        # fingerprint while resolving the new data; dropping the
        # response cache on every replace closes that window — the
        # poisoned key could only replay after the name is restored,
        # which is itself a replace.
        register = routes["POST /datasets"]

        def register_and_invalidate(request: Request) -> dict:
            result = register(request)
            if isinstance(request.body, dict) and request.body.get("replace"):
                self.response_cache.clear()
            return result

        routes["POST /datasets"] = register_and_invalidate
        # Compression sits just inside the request id so every response
        # (errors included) is a candidate; auth and the rate limiter
        # sit inside the error boundary (denials are typed, logged and
        # counted) but before validation (a denied request costs no
        # schema work, and its 429 can never be cached — the cache only
        # stores 2xx and keys on the tenant auth attached).  The load
        # shedder follows the rate limiter (per-tenant fairness gets
        # first say, global backpressure second), and the deadline
        # layer sits just outside validation so the budget covers all
        # real work while a shed or throttled request costs no hook
        # installation.
        self.pipeline = MiddlewarePipeline([
            RequestIdMiddleware(),
            self.compression,
            LoggingMiddleware(log),
            self.metrics,
            ErrorBoundaryMiddleware(log),
            self.auth,
            self.rate_limit,
            self.load_shed,
            self.deadline,
            ValidationMiddleware(SCHEMAS),
            self.response_cache,
        ])
        self._entry = self.pipeline.wrap(self._route)

    def _replayable(self, request: Request) -> bool:
        """Whether a request's response really is a pure function of its body.

        Dataset specs naming a server-side file are not: the file can
        change between requests (the dataset registry re-reads it when
        it does), so those requests bypass the response cache.  The
        same goes for *file-backed* scenarios; synthetic scenarios are
        deterministic in their fingerprint and cache normally.
        """
        body = request.body if isinstance(request.body, dict) else {}
        dataset = body.get("dataset")
        if not isinstance(dataset, dict):
            return True
        if "path" in dataset:
            return False
        name = dataset.get("scenario")
        if name is not None:
            if not isinstance(name, str):
                return False
            tenant = request.context.get("tenant")
            registry = self.state.scenarios_for(
                str(tenant) if tenant is not None else None
            )
            try:
                spec = registry.get(name)
            except KeyError:
                # Unknown scenario: the handler will 404; nothing to
                # cache either way.
                return False
            return not spec.is_file_backed
        return True

    def _cache_key_body(self, request: Request) -> Optional[dict]:
        """The body as keyed by the response cache: dataset defaults filled.

        Validation already filled the top-level defaults; the nested
        dataset spec gets the same treatment here so that equivalent
        spellings of one workload share a cache entry.  Scenario specs
        are keyed by their merged content fingerprint — resolved in the
        *requesting tenant's* registry, so one tenant's scenario name
        never keys (or replays) another's — and re-registering a name
        under a different spec changes the key, so a replayed response
        can never describe the scenario's previous meaning.
        """
        body = request.body
        if isinstance(body, dict) and isinstance(body.get("dataset"), dict):
            dataset = body["dataset"]
            if "scenario" in dataset:
                tenant = request.context.get("tenant")
                try:
                    return dict(
                        body,
                        dataset=self.state.scenario_key_spec(
                            dataset,
                            tenant=(
                                str(tenant) if tenant is not None else None
                            ),
                        ),
                    )
                except ServiceError:
                    # Malformed/unknown scenario: key on the raw spec;
                    # the handler's error is never cached (non-2xx).
                    return body
            return dict(body, dataset=normalised_dataset_spec(dataset))
        return body

    def _refresh_hit_body(self, body: dict) -> dict:
        """Fix up a replayed response body for its new request.

        The cached body carries the *original* request's cost receipt;
        replace the whole engine block with the live counters (and the
        true cost of a replay: zero executions), so the response never
        contradicts ``GET /metrics``.
        """
        if isinstance(body.get("engine"), dict):
            body["engine"] = {
                "executions_this_request": 0,
                **self.state.engine.stats,
            }
        return body

    # ------------------------------------------------------------------
    # Job execution (runs on JobManager worker threads)
    # ------------------------------------------------------------------
    def _execute_job(self, job: Job) -> Response:
        """Run one async job's endpoint off the request path.

        The validated body flows through the *same* response-cache
        middleware and handler as a sync request — a job repeated
        verbatim is a cache hit, and a job's result later warms the
        sync endpoint.  The engine's per-thread hooks thread progress
        (completed/total batch items) and cooperative cancellation into
        the evaluation loop.
        """
        route = JOB_ENDPOINTS[job.endpoint]
        request = Request(
            method="POST",
            path=route.split(" ", 1)[1],
            # The handler and cache must never mutate the job's copy.
            body=copy.deepcopy(job.body),
            # The submitting tenant rides with the job: its dataset
            # resolution and response-cache entries stay namespaced
            # exactly as the equivalent sync request's would be.
            context={"job_id": job.id, "tenant": job.tenant},
        )

        def inner(req: Request) -> Response:
            return Response(status=200, body=self._routes[route](req))

        with self.state.engine.hooks(
            batch_start=job.note_batch,
            jobs_done=job.note_done,
            should_cancel=job.should_cancel,
        ):
            return self.response_cache.handle(request, inner)

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _route(self, request: Request) -> Response:
        handler = self._routes.get(request.endpoint)
        if handler is None:
            if request.path in self._known_paths:
                raise ServiceError(
                    405, "method-not-allowed",
                    f"{request.path} does not accept {request.method}",
                )
            raise ServiceError(
                404, "not-found",
                f"no such endpoint: {request.path}",
                details={"endpoints": sorted(self._routes)},
            )
        return Response(
            status=self._status_overrides.get(request.endpoint, 200),
            body=handler(request),
        )

    @staticmethod
    def _canonicalise(request: Request) -> Request:
        """Rewrite ``/jobs/<id>`` paths to their canonical route.

        The real id moves to ``context["job_id"]`` and the original
        path to ``context["raw_path"]`` (logging prefers it), so
        routing, validation schemas and metrics cardinality all see
        one stable ``/jobs/<id>`` endpoint instead of one per job.
        """
        prefix = "/jobs/"
        if request.path.startswith(prefix):
            job_id = request.path[len(prefix):]
            if job_id and "/" not in job_id:
                request.context["job_id"] = job_id
                request.context["raw_path"] = request.path
                request.path = "/jobs/<id>"
            return request
        # /stream/<session> and /stream/<session>/metrics, same scheme:
        # the session name moves to the context so routing, schemas and
        # metrics see one endpoint per route, not one per session.
        prefix = "/stream/"
        if request.path.startswith(prefix):
            rest = request.path[len(prefix):]
            suffix = "/metrics"
            canonical = "/stream/<session>"
            if rest.endswith(suffix):
                rest = rest[: -len(suffix)]
                canonical += suffix
            if rest and "/" not in rest:
                request.context["stream_session"] = rest
                request.context["raw_path"] = request.path
                request.path = canonical
        return request

    def dispatch(self, request: Request) -> Response:
        """Run one request through the full middleware pipeline."""
        return self._entry(self._canonicalise(request))

    def handle(
        self,
        method: str,
        path: str,
        body: Optional[dict] = None,
        headers: Optional[Dict[str, str]] = None,
    ) -> Response:
        """In-process entry point used by the client and the tests."""
        return self.dispatch(Request(method=method.upper(), path=path,
                                     body=body, headers=headers or {}))

    # ------------------------------------------------------------------
    # Metrics endpoint (owns the middleware instances, so lives here)
    # ------------------------------------------------------------------
    def _metrics_handler(self, request: Request) -> dict:
        return {
            "service": self.metrics.snapshot(),
            "engine": self.state.engine.stats,
            "response_cache": self.response_cache.snapshot(),
            "auth": self.auth.snapshot(),
            "rate_limit": self.rate_limit.snapshot(),
            "compression": self.compression.snapshot(),
            "jobs": self.jobs.stats(),
            "streaming": self.state.streaming.stats(),
            "resilience": {
                "degraded": default_registry().degraded(),
                "breakers": default_registry().snapshot(),
                "events": events_by_kind(),
                "recent_events": recent_events(10),
                "faults": default_injector().snapshot(),
                "load_shed": self.load_shed.snapshot(),
                "deadline": self.deadline.snapshot(),
            },
            "registry": {
                "datasets": self.state.n_datasets,
                "configurators": self.state.n_configurators,
                "scenarios": self.state.n_scenarios,
                "tenants": self.state.n_tenants,
                "scenario_cache": self.state.scenarios.cache_stats(),
            },
            "pipeline": self.pipeline.names,
        }

    # ------------------------------------------------------------------
    # HTTP front-end
    # ------------------------------------------------------------------
    def make_server(
        self,
        host: str = "127.0.0.1",
        port: int = 8080,
        bind_and_activate: bool = True,
    ) -> ThreadingHTTPServer:
        """A bound (not yet serving) threaded HTTP server over this app.

        ``port=0`` asks the OS for a free port (useful in tests);
        ``server.server_address`` reports the actual binding.
        ``bind_and_activate=False`` defers binding so pre-fork workers
        can set socket options (``SO_REUSEPORT``) or adopt an inherited
        socket before the server touches the address.
        """
        service = self

        class Handler(_ServiceHTTPHandler):
            app = service

        return _QuietThreadingHTTPServer(
            (host, port), Handler, bind_and_activate=bind_and_activate
        )

    def close(self, grace_s: float = 10.0) -> None:
        """Drain jobs, then release shared resources; idempotent.

        Running jobs get ``grace_s`` seconds to finish before they are
        cancelled cooperatively; queued jobs cancel immediately.  The
        engine's worker pools shut down last, within whatever remains
        of the *same* budget — total shutdown stays bounded by roughly
        one grace period, not one per layer.
        """
        started = time.monotonic()
        self.jobs.close(grace_s=grace_s)
        remaining = max(0.0, grace_s - (time.monotonic() - started))
        self.state.close(timeout_s=remaining)


class _QuietThreadingHTTPServer(ThreadingHTTPServer):
    """Threaded server that logs client disconnects instead of
    dumping socketserver's default traceback to stderr."""

    def handle_error(self, request, client_address) -> None:
        import sys

        exc = sys.exc_info()[1]
        if isinstance(exc, (ConnectionError, TimeoutError)):
            logger.debug("client %s went away: %r", client_address, exc)
        else:
            super().handle_error(request, client_address)


class _ServiceHTTPHandler(BaseHTTPRequestHandler):
    """JSON-over-HTTP adapter around :meth:`ConfigService.dispatch`."""

    #: Bound by :meth:`ConfigService.make_server`.
    app: ConfigService
    protocol_version = "HTTP/1.1"
    server_version = "repro-lppm"
    #: Socket timeout: a client that stalls mid-body (fewer bytes than
    #: its Content-Length promised) releases the handler thread instead
    #: of pinning it forever.
    timeout = 60.0

    def _route_path(self) -> str:
        # Routing ignores the query string (health probes and load
        # balancers append cache-busting parameters freely).
        return self.path.split("?", 1)[0]

    def _request_headers(self) -> Dict[str, str]:
        # http.client.HTTPMessage folds repeats; last value wins here,
        # which is fine for the single-valued headers the pipeline
        # reads (X-API-Key, Accept-Encoding).
        return {name: value for name, value in self.headers.items()}

    def do_GET(self) -> None:  # noqa: N802  (http.server naming)
        if self.headers.get("Content-Length") not in (None, "0"):
            # GETs are bodyless here; an unread body would desync
            # keep-alive (its bytes parse as the next request line).
            self.close_connection = True
        self._respond(self.app.handle(
            "GET", self._route_path(), headers=self._request_headers(),
        ))

    def do_DELETE(self) -> None:  # noqa: N802
        if self.headers.get("Content-Length") not in (None, "0"):
            # DELETEs are bodyless here, same keep-alive rule as GET.
            self.close_connection = True
        self._respond(self.app.handle(
            "DELETE", self._route_path(), headers=self._request_headers(),
        ))

    def do_POST(self) -> None:  # noqa: N802
        path = self._route_path()
        try:
            body = self._read_json_body()
        except ServiceError as exc:
            # Malformed JSON still travels the pipeline (logged,
            # counted, request-id'd): the error boundary raises it
            # before validation sees the absent body.
            self._respond(self.app.dispatch(Request(
                method="POST", path=path,
                headers=self._request_headers(),
                context={"transport_error": exc},
            )))
            return
        self._respond(self.app.handle(
            "POST", path, body, headers=self._request_headers(),
        ))

    def _read_json_body(self) -> Optional[dict]:
        if self.headers.get("Transfer-Encoding"):
            # Chunked bodies are not supported, and their unread bytes
            # would desync keep-alive parsing.
            self.close_connection = True
            raise ServiceError(
                411, "length-required",
                "chunked transfer encoding is not supported; send a "
                "Content-Length",
            )
        raw_length = self.headers.get("Content-Length")
        if raw_length is None:
            return None
        try:
            length = int(raw_length)
        except ValueError:
            # Any rejection that leaves body bytes unread must also end
            # the connection — keep-alive would parse the leftovers as
            # the next request.
            self.close_connection = True
            raise ServiceError(
                400, "invalid-request",
                f"Content-Length is not an integer: {raw_length!r}",
            )
        if length < 0:
            # rfile.read(-1) would block until EOF, pinning the
            # handler thread on a client that never closes.
            self.close_connection = True
            raise ServiceError(
                400, "invalid-request", "Content-Length must be non-negative"
            )
        if length == 0:
            return None
        if length > MAX_BODY_BYTES:
            # Rejected before a single body byte is read, so one
            # request cannot buffer gigabytes into the daemon.
            self.close_connection = True
            raise ServiceError(
                413, "payload-too-large",
                f"request body of {length} bytes exceeds the "
                f"{MAX_BODY_BYTES}-byte limit",
            )
        raw = self.rfile.read(length)
        try:
            parsed = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ServiceError(
                400, "invalid-json", f"request body is not valid JSON: {exc}"
            )
        if parsed is not None and not isinstance(parsed, dict):
            raise ServiceError(
                400, "invalid-json", "request body must be a JSON object"
            )
        return parsed

    def _respond(self, response: Response) -> None:
        # The compression middleware may already have serialised (and
        # gzipped) the body; its bytes ship verbatim, with the matching
        # Content-Encoding header already in response.headers.
        if response.encoded_body is not None:
            payload = response.encoded_body
        else:
            payload = json.dumps(response.body).encode("utf-8")
        self.send_response(response.status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(payload)))
        # Which worker answered — pre-fork smoke tests and operators
        # use it to confirm requests really spread across processes.
        self.send_header("X-Worker-Pid", str(os.getpid()))
        if self.close_connection:
            # Set by _read_json_body when the request body was never
            # consumed; tell the client instead of silently dropping.
            self.send_header("Connection", "close")
        for name, value in response.headers.items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(payload)

    def log_message(self, format: str, *args) -> None:
        # The logging middleware already emits one structured line per
        # request; route http.server's own chatter to debug.
        logger.debug("http.server: " + format, *args)


def serve(
    host: str = "127.0.0.1",
    port: int = 8080,
    engine: Optional[EvaluationEngine] = None,
    service: Optional[ConfigService] = None,
    ready: Optional[threading.Event] = None,
    workers: int = 2,
    job_ttl_s: float = 600.0,
    grace_s: float = 10.0,
    api_keys: Optional[ApiKeyStore] = None,
    allow_anonymous: Optional[bool] = None,
    rate_limit_rps: Optional[float] = None,
    rate_limit_burst: Optional[int] = None,
    max_jobs_per_tenant: Optional[int] = None,
    processes: int = 1,
    shared_dir=None,
    max_in_flight: Optional[int] = None,
    fault_spec: Optional[str] = None,
) -> int:
    """Run the configuration service until interrupted.

    The CLI's ``repro-lppm serve`` lands here.  ``ready`` (if given) is
    set once the socket is bound — test harnesses use it to know when
    requests may be sent.  The hardening knobs (``api_keys``,
    ``allow_anonymous``, ``rate_limit_rps``/``rate_limit_burst``,
    ``max_jobs_per_tenant``) pass straight to :class:`ConfigService`
    and are ignored when a pre-built ``service`` is supplied.

    ``processes > 1`` switches to pre-fork mode: the parent reserves
    the port, forks that many workers (each running its own pipeline +
    job manager over a fresh post-fork :class:`ConfigService`), and
    supervises them — crashed workers restart, SIGTERM fans out for a
    bounded-grace drain.  ``shared_dir`` (strongly recommended there)
    gives siblings a common response-cache spill tier and job store so
    the fleet behaves like one warm service.

    SIGTERM and SIGINT both shut down cleanly: the socket closes, jobs
    drain with a ``grace_s``-bounded grace period (still-running jobs
    are then cancelled cooperatively), and the process exits 0 — what
    CI runners and container orchestrators expect of a stop.
    """
    if fault_spec:
        # Arm this process and advertise the spec to every child it
        # spawns or forks (pre-fork workers, pool workers): chaos runs
        # must fault the whole tree, not just the supervisor.
        os.environ[_FAULT_SPEC_ENV] = fault_spec
        default_injector().configure(fault_spec)
    if processes > 1:
        if service is not None:
            raise ValueError(
                "processes > 1 forks fresh workers and cannot adopt a "
                "pre-built service instance"
            )
        if shared_dir is None:
            # Without a shared directory the workers would be islands:
            # no cross-worker cache hits, and /jobs/<id> polls landing
            # on the wrong worker would 404.  Provision a temporary one
            # as a safety net (the CLI normally supplies a real path).
            import tempfile

            shared_dir = tempfile.mkdtemp(prefix="repro-lppm-shared-")
            logger.warning(
                "prefork mode without --cache-dir: using temporary "
                "shared state in %s", shared_dir,
            )
        from .prefork import serve_prefork

        def make_service() -> ConfigService:
            return ConfigService(
                engine=engine, workers=workers, job_ttl_s=job_ttl_s,
                api_keys=api_keys, allow_anonymous=allow_anonymous,
                rate_limit_rps=rate_limit_rps,
                rate_limit_burst=rate_limit_burst,
                max_jobs_per_tenant=max_jobs_per_tenant,
                shared_dir=shared_dir,
                max_in_flight=max_in_flight,
            )

        return serve_prefork(
            host=host, port=port, make_service=make_service,
            processes=processes, grace_s=grace_s, ready=ready,
        )
    app = service if service is not None else ConfigService(
        engine=engine, workers=workers, job_ttl_s=job_ttl_s,
        api_keys=api_keys, allow_anonymous=allow_anonymous,
        rate_limit_rps=rate_limit_rps, rate_limit_burst=rate_limit_burst,
        max_jobs_per_tenant=max_jobs_per_tenant,
        shared_dir=shared_dir,
        max_in_flight=max_in_flight,
    )
    server = app.make_server(host, port)
    bound_host, bound_port = server.server_address[:2]
    logger.info("serving on http://%s:%d", bound_host, bound_port)
    print(f"repro-lppm service listening on http://{bound_host}:{bound_port}",
          flush=True)
    def _sigterm_handler(signo, frame):
        # Same exception as Ctrl-C, so one shutdown sequence serves
        # both signals.
        raise KeyboardInterrupt

    previous_sigterm = None
    try:
        # signal.signal only works on the main thread; embedded callers
        # (tests running serve() on a helper thread) keep their own
        # handling.
        previous_sigterm = signal.signal(signal.SIGTERM, _sigterm_handler)
    except ValueError:
        pass
    if ready is not None:
        ready.set()
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down (draining jobs)", flush=True)
    finally:
        if previous_sigterm is not None:
            signal.signal(signal.SIGTERM, previous_sigterm)
        server.server_close()
        app.close(grace_s=grace_s)
    return 0
