"""Python clients for the configuration service.

Two transports behind one interface:

* :class:`ServiceClient` — in-process: wraps a
  :class:`~repro.service.app.ConfigService` and calls its dispatch path
  directly.  No sockets, no serialisation beyond the service's own JSON
  contract; this is what the tests and the examples use.
* :class:`HttpServiceClient` — over HTTP via :mod:`urllib` (stdlib
  only), for talking to a daemon started with ``repro-lppm serve``.

Both raise :class:`ServiceClientError` on non-2xx responses, carrying
the service's typed error payload (code, message, details).

Async jobs use the same interface: ``submit`` enqueues a sweep,
configure or recommend body and returns immediately with a job id;
``status``/``cancel`` poll and cancel it; ``wait`` polls with
exponential backoff until the job reaches a terminal state, raising
:class:`ServiceClientError` for failed jobs and :class:`TimeoutError`
when the deadline passes first.
"""

from __future__ import annotations

import gzip
import json
import random
import time
import urllib.error
import urllib.request
from typing import List, Optional

from .app import ConfigService
from .middleware import Response

__all__ = ["ServiceClientError", "ServiceClient", "HttpServiceClient"]

#: Statuses that mean "the server refused before doing any work" —
#: safe to retry for any method, and they carry ``Retry-After``.
_TRANSIENT_STATUSES = (429, 503)

#: Methods safe to retry after a *transport* failure, where the
#: request may or may not have reached the server.
_IDEMPOTENT_METHODS = ("GET", "DELETE")


def _retry_after_s(headers) -> Optional[float]:
    """The numeric ``Retry-After`` of a response, if present and sane."""
    lowered = {
        str(name).lower(): value
        for name, value in dict(headers or {}).items()
    }
    try:
        value = float(lowered.get("retry-after", ""))
    except (TypeError, ValueError):
        return None
    if value < 0:
        return None
    return value


class ServiceClientError(Exception):
    """A typed error response from the service."""

    def __init__(self, status: int, error: dict) -> None:
        self.status = int(status)
        self.code = str(error.get("code", "unknown"))
        self.details = error.get("details")
        message = str(error.get("message", "request failed"))
        super().__init__(f"[{self.status} {self.code}] {message}")
        self.message = message


class _BaseClient:
    """The endpoint methods, over an abstract request transport.

    ``last_headers`` holds the response headers of the most recent
    request (empty before the first one).  Multi-worker smoke tests
    read ``X-Worker-Pid`` and ``X-Response-Cache`` from it to prove
    requests really crossed processes.
    """

    #: Response headers of the last completed request.
    last_headers: dict = {}

    def _request(self, method: str, path: str,
                 body: Optional[dict]) -> dict:
        raise NotImplementedError

    # -- evaluation endpoints ------------------------------------------
    def protect(
        self,
        dataset: dict,
        lppm: str = "geo_ind",
        param: float = 0.01,
        seed: int = 0,
        include_records: bool = True,
    ) -> dict:
        """Apply an LPPM to a dataset; returns the protected records."""
        return self._request("POST", "/protect", {
            "dataset": dataset, "lppm": lppm, "param": param,
            "seed": seed, "include_records": include_records,
        })

    def sweep(
        self, dataset: dict, points: int = 10, replications: int = 2
    ) -> dict:
        """The offline parameter sweep (the data behind Figure 1)."""
        return self._request("POST", "/sweep", {
            "dataset": dataset, "points": points,
            "replications": replications,
        })

    def configure(
        self, dataset: dict, points: int = 10, replications: int = 2
    ) -> dict:
        """Sweep + fitted equation-(2) model coefficients."""
        return self._request("POST", "/configure", {
            "dataset": dataset, "points": points,
            "replications": replications,
        })

    def recommend(
        self,
        dataset: dict,
        objectives: List[dict],
        points: int = 10,
        replications: int = 2,
        policy: str = "max_utility",
    ) -> dict:
        """Invert the fitted model at designer objectives."""
        return self._request("POST", "/recommend", {
            "dataset": dataset, "objectives": objectives,
            "points": points, "replications": replications,
            "policy": policy,
        })

    # -- scenario registry ---------------------------------------------
    def datasets(self) -> dict:
        """Registered scenarios plus the dataset LRU-cache counters."""
        return self._request("GET", "/datasets", None)

    def register_dataset(
        self,
        name: str,
        kind: str,
        params: Optional[dict] = None,
        description: str = "",
        replace: bool = False,
    ) -> dict:
        """Register a named scenario on the service (``POST /datasets``).

        ``kind`` is a generator family (``taxi``, ``commuters``,
        ``random_waypoint``, ``levy_flight``) or an on-disk format
        (``csv``, ``geolife``, ``cabspotting``, whose ``params`` name a
        server-side ``path``).  Once registered, evaluation endpoints
        accept ``{"scenario": name, ...overrides}`` dataset specs.
        """
        body = {
            "name": name, "kind": kind,
            "description": description, "replace": replace,
        }
        if params is not None:
            # Omitted, not null: the schema's dict field (rightly)
            # rejects an explicit JSON null.
            body["params"] = params
        return self._request("POST", "/datasets", body)

    # -- streaming sessions --------------------------------------------
    def stream_update(
        self,
        session: str,
        records: List[list],
        lppm: str = "geo_ind",
        param: float = 0.01,
        seed: int = 0,
        user: Optional[str] = None,
        window_s: Optional[float] = None,
    ) -> dict:
        """Push one chunk of ``[time_s, lat, lon]`` updates to a live
        session (created on first use); returns the released records.

        Configuration rides with every chunk — send the same values on
        each call, as changing them mid-stream is a typed 409.
        """
        body: dict = {
            "records": records, "lppm": lppm, "param": param, "seed": seed,
        }
        if user is not None:
            body["user"] = user
        if window_s is not None:
            body["window_s"] = window_s
        return self._request("POST", f"/stream/{session}", body)

    def stream_metrics(self, session: str) -> dict:
        """The session's sliding-window privacy/utility metrics."""
        return self._request("GET", f"/stream/{session}/metrics", None)

    def stream_close(self, session: str) -> dict:
        """Close a live session; returns its flushed final metrics."""
        return self._request("DELETE", f"/stream/{session}", None)

    # -- async jobs ----------------------------------------------------
    def submit(self, endpoint: str, body: dict) -> dict:
        """Enqueue ``body`` on an async worker; returns the 202 payload.

        ``endpoint`` is the short name (``"sweep"``, ``"configure"``
        or ``"recommend"``); ``body`` is exactly what the sync endpoint
        would take.  The returned dict carries ``job_id`` and ``poll``.
        """
        return self._request("POST", "/jobs",
                             {"endpoint": endpoint, "body": body})

    def status(self, job_id: str) -> dict:
        """Current status/progress of a job (result included when done)."""
        return self._request("GET", f"/jobs/{job_id}", None)

    def cancel(self, job_id: str) -> dict:
        """Request cooperative cancellation; returns the job snapshot."""
        return self._request("DELETE", f"/jobs/{job_id}", None)

    def jobs(self) -> dict:
        """All live jobs plus worker-pool counters."""
        return self._request("GET", "/jobs", None)

    def wait(
        self,
        job_id: str,
        timeout_s: float = 120.0,
        poll_s: float = 0.05,
        max_poll_s: float = 1.0,
    ) -> dict:
        """Poll with backoff until the job finishes; return its snapshot.

        * ``done`` — returns the snapshot (``result`` holds the same
          payload the sync endpoint would have returned);
        * ``cancelled`` — returns the snapshot (cancellation is an
          answer, not an error);
        * ``failed`` — raises :class:`ServiceClientError` built from
          the job's typed error payload, mirroring the sync endpoint;
        * deadline passed — raises :class:`TimeoutError` (the job keeps
          running server-side; ``cancel`` it if that is unwanted).

        Transient poll failures — a 429 from the rate limiter or a 503
        from an overloaded/draining worker — are not job verdicts: the
        loop honours ``Retry-After`` and keeps polling within the
        deadline rather than giving up on a job that is still running.
        """
        if timeout_s <= 0:
            raise ValueError("timeout_s must be positive")
        deadline = time.monotonic() + timeout_s
        delay = max(0.001, poll_s)
        while True:
            try:
                snapshot = self.status(job_id)
            except ServiceClientError as exc:
                if exc.status not in _TRANSIENT_STATUSES:
                    raise
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise TimeoutError(
                        f"job {job_id} still unresolved after "
                        f"{timeout_s:g}s: the last poll answered a "
                        f"transient {exc.status} ({exc.code})"
                    ) from exc
                backoff = _retry_after_s(self.last_headers)
                if backoff is None:
                    backoff = delay
                time.sleep(min(max(backoff, 0.001), remaining))
                delay = min(delay * 1.6, max_poll_s)
                continue
            if snapshot["status"] in ("done", "cancelled"):
                return snapshot
            if snapshot["status"] == "failed":
                error = snapshot.get("error", {})
                raise ServiceClientError(
                    int(error.get("status", 500)), error
                )
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TimeoutError(
                    f"job {job_id} still {snapshot['status']} after "
                    f"{timeout_s:g}s (progress "
                    f"{snapshot['progress']['completed']}"
                    f"/{snapshot['progress']['total']})"
                )
            time.sleep(min(delay, remaining))
            delay = min(delay * 1.6, max_poll_s)

    # -- introspection endpoints ---------------------------------------
    def healthz(self) -> dict:
        """Liveness and shared-state summary."""
        return self._request("GET", "/healthz", None)

    def metrics(self) -> dict:
        """Request counters plus engine/cache statistics."""
        return self._request("GET", "/metrics", None)


class ServiceClient(_BaseClient):
    """In-process client over a :class:`ConfigService` instance.

    Requests run on the caller's thread through the full middleware
    pipeline — identical semantics to HTTP, minus the sockets.
    ``api_key`` (optional) rides along as ``X-API-Key`` on every
    request, authenticating the client's tenant.
    """

    def __init__(
        self,
        service: Optional[ConfigService] = None,
        api_key: Optional[str] = None,
    ) -> None:
        self.service = service if service is not None else ConfigService()
        self.api_key = api_key
        self.last_headers = {}

    def _request(self, method: str, path: str,
                 body: Optional[dict]) -> dict:
        headers = {}
        if self.api_key is not None:
            headers["X-API-Key"] = self.api_key
        response: Response = self.service.handle(
            method, path, body, headers=headers
        )
        self.last_headers = dict(response.headers)
        if not response.ok:
            raise ServiceClientError(
                response.status, response.body.get("error", {})
            )
        return response.body

    def close(self) -> None:
        self.service.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class HttpServiceClient(_BaseClient):
    """HTTP client for a running ``repro-lppm serve`` daemon.

    Advertises ``Accept-Encoding: gzip`` and transparently inflates
    compressed responses (error bodies included), so large sweep
    payloads cross the wire at a fraction of their JSON size.
    ``api_key`` (optional) is sent as ``X-API-Key`` on every request.

    Transient failures are retried with bounded exponential backoff
    plus jitter: a 429/503 answer (the server refused before doing any
    work — ``Retry-After`` is honoured when present) retries for any
    method, while connection-level errors retry only for idempotent
    methods (GET/DELETE), since a lost reply to a POST may have
    mutated state.  ``retries=0`` restores fail-fast behaviour.
    """

    def __init__(
        self,
        base_url: str,
        timeout_s: float = 60.0,
        api_key: Optional[str] = None,
        retries: int = 2,
        backoff_s: float = 0.1,
        max_backoff_s: float = 2.0,
        headers: Optional[dict] = None,
    ) -> None:
        if retries < 0:
            raise ValueError("retries must be >= 0")
        self.base_url = base_url.rstrip("/")
        self.timeout_s = float(timeout_s)
        self.api_key = api_key
        #: Extra headers sent on every request (e.g. a default
        #: ``X-Request-Deadline-Ms`` budget).
        self.extra_headers = dict(headers or {})
        self.retries = int(retries)
        self.backoff_s = float(backoff_s)
        self.max_backoff_s = float(max_backoff_s)
        self.retried = 0
        self.last_headers = {}

    def _backoff(self, attempt: int) -> float:
        """Exponential backoff with jitter (half to full step)."""
        step = min(self.max_backoff_s, self.backoff_s * (2 ** attempt))
        return step * (0.5 + 0.5 * random.random())

    @staticmethod
    def _decode(raw_bytes: bytes, content_encoding: Optional[str]) -> dict:
        if content_encoding and content_encoding.lower() == "gzip":
            raw_bytes = gzip.decompress(raw_bytes)
        return json.loads(raw_bytes.decode("utf-8"))

    def _request(self, method: str, path: str,
                 body: Optional[dict]) -> dict:
        attempt = 0
        while True:
            try:
                return self._request_once(method, path, body)
            except ServiceClientError as exc:
                if (exc.status not in _TRANSIENT_STATUSES
                        or attempt >= self.retries):
                    raise
                delay = _retry_after_s(self.last_headers)
                if delay is None:
                    delay = self._backoff(attempt)
                delay = min(delay, self.max_backoff_s)
            except urllib.error.URLError:
                # Transport failure: the request may or may not have
                # reached the server, so only idempotent methods are
                # safe to fire again.
                if (method not in _IDEMPOTENT_METHODS
                        or attempt >= self.retries):
                    raise
                delay = self._backoff(attempt)
            attempt += 1
            self.retried += 1
            time.sleep(delay)

    def _request_once(self, method: str, path: str,
                      body: Optional[dict]) -> dict:
        data = None
        headers = {
            "Accept": "application/json",
            "Accept-Encoding": "gzip",
        }
        headers.update(self.extra_headers)
        if self.api_key is not None:
            headers["X-API-Key"] = self.api_key
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            self.base_url + path, data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout_s
            ) as raw:
                self.last_headers = dict(raw.headers.items())
                return self._decode(
                    raw.read(), raw.headers.get("Content-Encoding")
                )
        except urllib.error.HTTPError as exc:
            self.last_headers = dict(exc.headers.items())
            try:
                payload = self._decode(
                    exc.read(), exc.headers.get("Content-Encoding")
                )
            except (ValueError, UnicodeDecodeError, OSError):
                payload = {}
            raise ServiceClientError(
                exc.code, payload.get("error", {"message": str(exc)})
            ) from None
