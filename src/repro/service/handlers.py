"""Endpoint handlers of the configuration service.

Each handler is a pure function from a *validated* request body (the
validation middleware has already applied the endpoint's schema from
:data:`SCHEMAS`) and the shared :class:`~repro.service.state.ServiceState`
to a JSON-ready response dict.  Handlers never see HTTP: the app layer
routes :class:`~repro.service.middleware.Request` objects here and
wraps the returned dicts in responses.

Evaluation-bearing endpoints report their own engine cost: the
``engine`` block of a ``/sweep``/``/configure``/``/recommend`` response
carries the number of real protect + measure executions *this request*
triggered — zero once the engine cache is warm, which is the service's
headline claim.
"""

from __future__ import annotations

import math
import os
import time
from typing import Callable, Dict, List, Mapping

from .. import __version__
from ..framework import Objective
from ..lppm import available_lppms, lppm_class, primary_param
from ..resilience.breaker import default_registry
from ..resilience.faults import fire as _fire_fault
from ..scenarios import SCENARIO_KINDS, ScenarioSpec
from .jobs import JOB_ENDPOINTS, JobManager
from .middleware import (
    ANONYMOUS_TENANT,
    Field,
    Request,
    ServiceError,
    check_deadline,
    validate_body,
)
from .state import ServiceState

__all__ = ["SCHEMAS", "make_handlers", "make_job_handlers", "tenant_of"]


def tenant_of(request: Request) -> str:
    """The request's tenant, as attached by the auth middleware.

    Requests that never passed an auth layer (bare pipelines in tests,
    direct handler calls) count as the anonymous tenant — the same
    namespace an anonymous-allowed service resolves keyless clients to.
    """
    tenant = request.context.get("tenant")
    return str(tenant) if tenant else ANONYMOUS_TENANT


#: Validation schemas, by ``"METHOD /path"`` endpoint key.  The
#: validation middleware rejects anything not conforming before the
#: handler — or the response cache — sees the request.
SCHEMAS: Dict[str, Mapping[str, Field]] = {
    "POST /protect": {
        "dataset": Field(type=dict, required=True),
        # No static choices: the LPPM registry is open (register_lppm),
        # so the name is checked against it at request time.
        "lppm": Field(type=str, default="geo_ind"),
        "param": Field(type=float, default=0.01),
        "seed": Field(type=int, default=0),
        "include_records": Field(type=bool, default=True),
    },
    "POST /sweep": {
        "dataset": Field(type=dict, required=True),
        "points": Field(type=int, default=10, low=2, high=200),
        "replications": Field(type=int, default=2, low=1, high=64),
    },
    "POST /configure": {
        "dataset": Field(type=dict, required=True),
        "points": Field(type=int, default=10, low=2, high=200),
        "replications": Field(type=int, default=2, low=1, high=64),
    },
    "POST /recommend": {
        "dataset": Field(type=dict, required=True),
        "points": Field(type=int, default=10, low=2, high=200),
        "replications": Field(type=int, default=2, low=1, high=64),
        "objectives": Field(type=list, required=True),
        "policy": Field(
            type=str, default="max_utility",
            choices=("max_utility", "max_privacy", "midpoint"),
        ),
    },
    "POST /jobs": {
        # The inner body is validated against the named endpoint's own
        # schema at submit time, so a malformed sweep fails with the
        # same typed 400 the sync endpoint gives — synchronously, not
        # as a failed job discovered by polling.
        "endpoint": Field(
            type=str, required=True, choices=tuple(sorted(JOB_ENDPOINTS)),
        ),
        "body": Field(type=dict, default=None),
    },
    "POST /datasets": {
        "name": Field(type=str, required=True),
        "kind": Field(type=str, required=True, choices=SCENARIO_KINDS),
        "params": Field(type=dict, default=None),
        "description": Field(type=str, default=""),
        # Redefining an existing name under a different spec must be
        # explicit: it changes what every later request means.
        "replace": Field(type=bool, default=False),
    },
    "POST /stream/<session>": {
        # One chunk of a live stream: a batch of [time_s, lat, lon]
        # updates.  Configuration rides with every chunk (the transport
        # has no session handshake); changing it mid-stream is a 409.
        "records": Field(type=list, required=True),
        "lppm": Field(type=str, default="geo_ind"),
        "param": Field(type=float, default=0.01),
        "seed": Field(type=int, default=0),
        "user": Field(type=str, default=None),
        "window_s": Field(type=float, default=None),
    },
}


def _parse_objectives(raw: List[object]) -> List[Objective]:
    if not raw:
        raise ServiceError(
            400, "invalid-request", "objectives must be a non-empty list"
        )
    objectives = []
    for i, item in enumerate(raw):
        if not isinstance(item, dict):
            raise ServiceError(
                400, "invalid-request",
                f"objectives[{i}]: expected an object with kind/op/target",
            )
        missing = [k for k in ("kind", "op", "target") if k not in item]
        unknown = sorted(set(item) - {"kind", "op", "target"})
        if missing or unknown:
            raise ServiceError(
                400, "invalid-request",
                f"objectives[{i}]: missing {missing}, unknown {unknown}",
            )
        target = item["target"]
        if isinstance(target, bool) or not isinstance(target, (int, float)):
            raise ServiceError(
                400, "invalid-request",
                f"objectives[{i}]: target must be a number",
            )
        try:
            objectives.append(
                Objective(item["kind"], item["op"], float(target))
            )
        except ValueError as exc:
            raise ServiceError(
                400, "invalid-request", f"objectives[{i}]: {exc}"
            )
    return objectives


def _model_dict(model) -> dict:
    """A fitted SystemModel as JSON (the paper's equation-2 view)."""
    a, b, alpha, beta = model.coefficients
    return {
        "system": model.system_name,
        "param": model.param_name,
        "coefficients": {"a": a, "b": b, "alpha": alpha, "beta": beta},
        "privacy_fit": {
            "r2": model.privacy.r2,
            "domain": [model.privacy.x_low, model.privacy.x_high],
        },
        "utility_fit": {
            "r2": model.utility.r2,
            "domain": [model.utility.x_low, model.utility.x_high],
        },
        "domain": list(model.domain()),
    }


def make_handlers(
    state: ServiceState,
) -> Dict[str, Callable[[Request], dict]]:
    """The endpoint routing table, bound to one service state."""

    def _engine_cost(run) -> dict:
        """Run ``run()``, reporting the thread's own engine cost.

        The engine is thread-safe and shared, so the receipt comes from
        a per-thread :meth:`~repro.engine.EvaluationEngine.measure`
        counter — concurrent requests cannot inflate each other's
        ``executions_this_request``.  Framework :class:`ValueError`\\ s
        (a sweep too coarse for the model fit, jointly degenerate
        objectives, …) are the caller's data, not server faults — they
        surface as typed 422s.
        """
        with state.engine.measure() as cost:
            try:
                result = run()
            except ValueError as exc:
                raise ServiceError(422, "evaluation-failed", str(exc))
        return result, {
            "executions_this_request": cost.count,
            **state.engine.stats,
        }

    # ------------------------------------------------------------------
    # POST /protect
    # ------------------------------------------------------------------
    def protect(request: Request) -> dict:
        body = request.body
        _, dataset = state.dataset_for(
            body["dataset"], tenant=tenant_of(request)
        )
        name = body["lppm"]
        if name not in available_lppms():
            raise ServiceError(
                400, "invalid-request",
                f"lppm: must be one of {available_lppms()}, got {name!r}",
            )
        try:
            param_name = primary_param(name)
            lppm = lppm_class(name)(**{param_name: body["param"]})
        except (TypeError, ValueError) as exc:
            # Covers out-of-range values and registered mechanisms
            # whose constructors do not take a scalar first parameter.
            raise ServiceError(
                400, "invalid-param", f"{name}: {exc}"
            )
        # No lock: LPPM protection is pure (per-(seed, user) RNG
        # derivation) and the dataset is read-only once registered.
        protected = lppm.protect(dataset, seed=body["seed"])
        payload = {
            "lppm": name,
            "param_name": param_name,
            "param": body["param"],
            "seed": body["seed"],
            "n_users": len(protected),
            "n_records": protected.n_records,
        }
        if body["include_records"]:
            # Columnar iteration: bulk array-to-float conversion per
            # trace instead of one TraceRecord allocation per point.
            payload["records"] = [
                [trace.user, t, lat, lon]
                for trace in protected.traces
                for t, lat, lon in trace.iter_arrays()
            ]
        return payload

    # ------------------------------------------------------------------
    # POST /sweep
    # ------------------------------------------------------------------
    def sweep(request: Request) -> dict:
        body = request.body
        key, dataset = state.dataset_for(
            body["dataset"], tenant=tenant_of(request)
        )

        def run():
            # sweep_for, not configurator_for: a degenerate model fit
            # must not discard a perfectly good sweep.
            return state.sweep_for(
                key, dataset, body["points"], body["replications"]
            )

        result, engine = _engine_cost(run)
        return {
            "param": result.param_name,
            "system": result.system_name,
            "points": [
                {
                    result.param_name: p.params[result.param_name],
                    "privacy_mean": p.privacy_mean,
                    "privacy_std": p.privacy_std,
                    "utility_mean": p.utility_mean,
                    "utility_std": p.utility_std,
                    "n_replications": p.n_replications,
                }
                for p in result.points
            ],
            "engine": engine,
        }

    # ------------------------------------------------------------------
    # POST /configure
    # ------------------------------------------------------------------
    def configure(request: Request) -> dict:
        body = request.body
        key, dataset = state.dataset_for(
            body["dataset"], tenant=tenant_of(request)
        )

        def run():
            configurator = state.configurator_for(
                key, dataset, body["points"], body["replications"]
            )
            return configurator.model

        model, engine = _engine_cost(run)
        return {"model": _model_dict(model), "engine": engine}

    # ------------------------------------------------------------------
    # POST /recommend
    # ------------------------------------------------------------------
    def recommend(request: Request) -> dict:
        body = request.body
        objectives = _parse_objectives(body["objectives"])
        key, dataset = state.dataset_for(
            body["dataset"], tenant=tenant_of(request)
        )

        def run():
            configurator = state.configurator_for(
                key, dataset, body["points"], body["replications"]
            )
            return configurator.recommend(objectives, policy=body["policy"])

        rec, engine = _engine_cost(run)
        return {
            "recommendation": {
                "param": rec.param_name,
                "value": rec.value,
                "feasible": rec.feasible,
                "interval": list(rec.interval),
                "predicted_privacy": rec.predicted_privacy,
                "predicted_utility": rec.predicted_utility,
                "notes": rec.notes,
            },
            "objectives": [str(o) for o in objectives],
            "policy": body["policy"],
            "engine": engine,
        }

    # ------------------------------------------------------------------
    # GET /datasets and POST /datasets — the scenario registry
    # ------------------------------------------------------------------
    def datasets_list(request: Request) -> dict:
        registry = state.scenarios_for(tenant_of(request))
        return {
            "tenant": tenant_of(request),
            "scenarios": [
                dict(spec.to_jsonable(), file_backed=spec.is_file_backed)
                for spec in registry.specs()
            ],
            "cache": registry.cache_stats(),
        }

    def datasets_register(request: Request) -> dict:
        body = request.body
        registry = state.scenarios_for(tenant_of(request))
        try:
            spec = ScenarioSpec.make(
                body["name"], body["kind"], body["params"] or {},
                body["description"],
            )
        except (TypeError, ValueError) as exc:
            raise ServiceError(400, "invalid-scenario", str(exc))
        if spec.is_file_backed:
            # Fail the registration, not some later sweep: the pinned
            # fingerprint doubles as an existence/readability check.
            try:
                spec.fingerprint()
            except FileNotFoundError:
                raise ServiceError(
                    404, "dataset-not-found",
                    f"no such path: {spec.params_dict['path']}",
                )
            except OSError as exc:
                raise ServiceError(
                    400, "invalid-scenario", f"unreadable path: {exc}"
                )
        try:
            # Through the state, not the registry directly: with a
            # shared_dir the registration persists for sibling workers.
            registry = state.register_scenario(
                spec, tenant=tenant_of(request), replace=body["replace"]
            )
        except ValueError as exc:
            raise ServiceError(409, "scenario-exists", str(exc))
        return {
            "registered": spec.to_jsonable(),
            "scenarios": len(registry),
        }

    # ------------------------------------------------------------------
    # /stream/<session> — the online protection path
    # ------------------------------------------------------------------
    def _stream_session_of(request: Request) -> str:
        name = request.context.get("stream_session")
        if not isinstance(name, str) or not name:
            raise ServiceError(
                404, "stream-session-not-found",
                "no stream session name in the request path",
            )
        return name

    def _stream_records_of(body: dict) -> list:
        records = body["records"]
        parsed = []
        for i, row in enumerate(records):
            if not isinstance(row, list) or len(row) != 3:
                raise ServiceError(
                    400, "invalid-records",
                    f"records[{i}]: expected [time_s, lat, lon]",
                )
            try:
                t, lat, lon = (float(v) for v in row)
            except (TypeError, ValueError):
                raise ServiceError(
                    400, "invalid-records",
                    f"records[{i}]: time/lat/lon must be numbers",
                )
            if not all(map(math.isfinite, (t, lat, lon))) \
                    or abs(lat) > 90.0 or abs(lon) > 180.0:
                raise ServiceError(
                    400, "invalid-records",
                    f"records[{i}]: values must be finite with "
                    "lat in [-90, 90] and lon in [-180, 180]",
                )
            parsed.append((t, lat, lon))
        return parsed

    def stream_update(request: Request) -> dict:
        body = request.body
        name = _stream_session_of(request)
        records = _stream_records_of(body)
        lppm_name = body["lppm"]
        if lppm_name not in available_lppms():
            raise ServiceError(
                400, "invalid-request",
                f"lppm: must be one of {available_lppms()}, "
                f"got {lppm_name!r}",
            )
        try:
            param_name = primary_param(lppm_name)
            lppm = lppm_class(lppm_name)(**{param_name: body["param"]})
        except (TypeError, ValueError) as exc:
            raise ServiceError(400, "invalid-param", f"{lppm_name}: {exc}")
        window_s = body["window_s"]
        if window_s is not None and window_s <= 0:
            raise ServiceError(
                400, "invalid-request", "window_s must be positive"
            )
        try:
            session, released = state.streaming.update(
                tenant_of(request), name, records,
                lppm=lppm, user=body["user"], seed=body["seed"],
                window_s=window_s,
            )
        except RuntimeError:
            raise ServiceError(
                503, "shutting-down",
                "the streaming layer is draining; retry against a "
                "fresh instance",
                headers={"Retry-After": "1"},
            )
        except ValueError as exc:
            # Records were validated above, so a ValueError here is the
            # session manager refusing a conflicting configuration.
            raise ServiceError(409, "stream-conflict", str(exc))
        return {
            "session": name,
            "tenant": tenant_of(request),
            "accepted": len(records),
            "released": [
                list(update) if update is not None else None
                for update in released
            ],
            "updates": session.updates,
            "dropped": session.dropped,
        }

    def stream_metrics(request: Request) -> dict:
        name = _stream_session_of(request)
        try:
            session = state.streaming.get(tenant_of(request), name)
        except KeyError:
            raise ServiceError(
                404, "stream-session-not-found",
                f"no live stream session {name!r}",
            )
        return {"session": name, **session.metrics()}

    def stream_close(request: Request) -> dict:
        name = _stream_session_of(request)
        try:
            final = state.streaming.close_session(tenant_of(request), name)
        except KeyError:
            raise ServiceError(
                404, "stream-session-not-found",
                f"no live stream session {name!r}",
            )
        return {"session": name, "closed": True, "final": final}

    # ------------------------------------------------------------------
    # GET /healthz and /metrics (metrics blocks are filled by the app,
    # which owns the middleware instances)
    # ------------------------------------------------------------------
    def healthz(request: Request) -> dict:
        degraded = default_registry().degraded()
        return {
            # Degraded-but-serving is the resilience layer's contract:
            # any disk tier whose circuit breaker is not closed flips
            # the status, and the tier list names the casualties.
            "status": "degraded" if degraded else "ok",
            "degraded": degraded,
            "version": __version__,
            "uptime_s": round(state.uptime_s, 3),
            # Which process answered, and whether it shares warm state
            # with sibling workers — pre-fork deployments poll this to
            # see the whole fleet.
            "worker_pid": os.getpid(),
            "shared_dir": (
                str(state.shared_dir)
                if state.shared_dir is not None else None
            ),
            "engine": {
                "policy": state.engine.policy,
                "max_workers": state.engine.max_workers,
                "cache_dir": (
                    str(state.engine.cache.cache_dir)
                    if state.engine.cache.cache_dir is not None
                    else None
                ),
            },
            "datasets": state.n_datasets,
            "configurators": state.n_configurators,
            "scenarios": state.n_scenarios,
        }

    handlers = {
        "POST /protect": protect,
        "POST /sweep": sweep,
        "POST /configure": configure,
        "POST /recommend": recommend,
        "GET /datasets": datasets_list,
        "POST /datasets": datasets_register,
        "POST /stream/<session>": stream_update,
        "GET /stream/<session>/metrics": stream_metrics,
        "DELETE /stream/<session>": stream_close,
        "GET /healthz": healthz,
    }
    # Every handler except the liveness probe carries the
    # handler.slow / handler.error fault points — healthz must stay
    # truthful even under chaos, it is how the harness tells a slow
    # daemon from a dead one.
    return {
        endpoint: (
            handler if endpoint == "GET /healthz"
            else _with_fault_points(handler)
        )
        for endpoint, handler in handlers.items()
    }


def _with_fault_points(
    handler: Callable[[Request], dict],
) -> Callable[[Request], dict]:
    """Wrap a handler with the ``handler.slow``/``handler.error``
    fault points (free when the injector is inactive)."""

    def probed(request: Request) -> dict:
        delay = _fire_fault("handler.slow")
        if delay:
            _sleep_respecting_deadline(
                request, 1.0 if delay is True else float(delay)
            )
        if _fire_fault("handler.error"):
            raise RuntimeError("injected handler.error fault")
        return handler(request)

    return probed


def _sleep_respecting_deadline(request: Request, seconds: float) -> None:
    """Sleep in small slices, honouring the request's deadline.

    This is what makes an injected slow handler a *deadline* test
    rather than a hang test: the typed 504 surfaces within one slice
    of the deadline, never ``seconds`` later.
    """
    remaining = max(0.0, float(seconds))
    while remaining > 0:
        check_deadline(request)
        step = min(0.025, remaining)
        time.sleep(step)
        remaining -= step
    check_deadline(request)


def make_job_handlers(
    manager: JobManager,
) -> Dict[str, Callable[[Request], dict]]:
    """The async-job routing table, bound to one :class:`JobManager`.

    ``/jobs/<id>`` paths are canonicalised by the app before dispatch:
    the handler reads the real id from ``request.context["job_id"]``.
    """

    def _job_id_of(request: Request) -> str:
        job_id = request.context.get("job_id")
        if not isinstance(job_id, str) or not job_id:
            raise ServiceError(
                404, "job-not-found", "no job id in the request path"
            )
        return job_id

    def submit(request: Request) -> dict:
        body = request.body
        endpoint = body["endpoint"]
        route = JOB_ENDPOINTS[endpoint]
        # Same validation as the sync endpoint — bad bodies fail the
        # POST /jobs request itself with the endpoint's typed 400.
        validated = validate_body(body["body"], SCHEMAS[route], route)
        job = manager.submit(endpoint, validated, tenant=tenant_of(request))
        return {
            "job_id": job.id,
            "endpoint": endpoint,
            # The status at enqueue time, not a re-read: a worker may
            # already have started (or even finished) a fast job, and
            # the documented 202 shape is "queued".
            "status": "queued",
            "poll": f"/jobs/{job.id}",
        }

    def status(request: Request) -> dict:
        job_id, tenant = _job_id_of(request), tenant_of(request)
        try:
            return manager.get(job_id, tenant=tenant).snapshot()
        except ServiceError:
            # Not owned by this process: in multi-worker deployments a
            # poll may land on a sibling of the worker that accepted
            # the job — the shared job store answers for it.
            snapshot = manager.remote_snapshot(job_id, tenant=tenant)
            if snapshot is None:
                raise
            return snapshot

    def cancel(request: Request) -> dict:
        job_id, tenant = _job_id_of(request), tenant_of(request)
        try:
            return manager.cancel(job_id, tenant=tenant).snapshot()
        except ServiceError:
            # Cross-worker cancel: leave a marker the owning worker
            # polls between engine chunks.
            snapshot = manager.request_remote_cancel(job_id, tenant=tenant)
            if snapshot is None:
                raise
            return snapshot

    def listing(request: Request) -> dict:
        return {
            "jobs": [
                job.snapshot(include_result=False)
                for job in manager.jobs(tenant=tenant_of(request))
            ],
            **manager.stats(),
        }

    return {
        "POST /jobs": submit,
        "GET /jobs": listing,
        "GET /jobs/<id>": status,
        "DELETE /jobs/<id>": cancel,
    }
