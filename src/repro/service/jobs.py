"""Async job subsystem: sweeps off the request path.

The sync evaluation endpoints answer on the caller's thread, which is
fine for warm-cache requests but makes a cold sweep's latency the
client's problem.  The :class:`JobManager` moves that work to a bounded
pool of worker threads: ``POST /jobs`` validates the body exactly as
the sync endpoint would, enqueues a :class:`Job`, and returns ``202``
with a job id immediately; ``GET /jobs/<id>`` reports status and
progress; ``DELETE /jobs/<id>`` cancels cooperatively between engine
chunks.  Finished jobs carry the full result payload — the same JSON
the sync endpoint would have returned, response cache included — and
expire after a TTL so a long-lived daemon's job table stays bounded.

Lifecycle::

    queued ──▶ running ──▶ done
       │          │   └──▶ failed      (typed error payload)
       └──────────┴──────▶ cancelled   (cooperative, between chunks)

Progress is threaded through the engine's per-thread hooks
(:meth:`repro.engine.EvaluationEngine.hooks`): each engine batch
announces its job count, and completions arrive chunk by chunk, so
``progress.completed / progress.total`` is monotone within a job.
"""

from __future__ import annotations

import copy
import itertools
import logging
import queue
import threading
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional

from ..engine import EvaluationCancelled
from .middleware import ANONYMOUS_TENANT, Response, ServiceError, instance_tag

__all__ = ["Job", "JobManager", "JOB_ENDPOINTS", "JOB_STATES"]

logger = logging.getLogger("repro.service")

#: Endpoints a job may run, by their short client-facing name.  Exactly
#: the sync evaluation endpoints whose work is long-running; ``/protect``
#: stays sync-only (it is cheap and its response embeds record dumps).
JOB_ENDPOINTS: Dict[str, str] = {
    "sweep": "POST /sweep",
    "configure": "POST /configure",
    "recommend": "POST /recommend",
}

JOB_STATES = ("queued", "running", "done", "failed", "cancelled")

#: States a job never leaves.
_TERMINAL = ("done", "failed", "cancelled")


class Job:
    """One asynchronous evaluation job and its observable state.

    All mutation happens under :attr:`lock`; readers take it too (every
    hold is a few field writes, never evaluation work, so status polls
    stay fast even while the job runs).
    """

    __slots__ = (
        "id", "endpoint", "body", "tenant", "status", "lock", "cancel",
        "created_at", "started_at", "finished_at", "expires_at",
        "completed", "total", "result", "error", "from_response_cache",
        "done_event", "on_update", "cancel_marker",
    )

    def __init__(
        self,
        job_id: str,
        endpoint: str,
        body: dict,
        tenant: str = ANONYMOUS_TENANT,
    ) -> None:
        self.id = job_id
        #: Short endpoint name ("sweep" | "configure" | "recommend").
        self.endpoint = endpoint
        #: The *validated* request body (defaults filled at submit).
        self.body = body
        #: The submitting tenant: quota accounting and job visibility
        #: are both namespaced on it.
        self.tenant = tenant
        self.status = "queued"
        self.lock = threading.Lock()
        #: Cooperative cancellation flag, polled between engine chunks.
        self.cancel = threading.Event()
        self.created_at = time.time()
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        #: Monotonic deadline after which a finished job is purged.
        self.expires_at: Optional[float] = None
        #: Progress in engine jobs (batch items); total grows as the
        #: framework submits batches, completed never decreases.
        self.completed = 0
        self.total = 0
        self.result: Optional[dict] = None
        self.error: Optional[dict] = None
        self.from_response_cache = False
        #: Set on entry to any terminal state (in-process waiters).
        self.done_event = threading.Event()
        #: Manager-installed callback fired (outside :attr:`lock`)
        #: after progress updates, so a shared job store sees them.
        self.on_update: Optional[Callable[[], None]] = None
        #: Path of the cross-process cancel-marker file (shared job
        #: store only): a sibling worker that cannot reach this
        #: process's :attr:`cancel` event touches this file instead.
        self.cancel_marker = None

    # -- engine hook targets (called from the worker thread) -----------
    def note_batch(self, n: int) -> None:
        with self.lock:
            self.total += n
        if self.on_update is not None:
            self.on_update()

    def note_done(self, n: int) -> None:
        with self.lock:
            self.completed += n
        if self.on_update is not None:
            self.on_update()

    def should_cancel(self) -> bool:
        """Cancellation predicate polled between engine chunks.

        True once the in-process event is set *or* a sibling worker
        left a cancel marker in the shared job store; the marker folds
        into the event so the file is stat'ed at most until first seen.
        """
        if self.cancel.is_set():
            return True
        marker = self.cancel_marker
        if marker is not None:
            try:
                found = marker.exists()
            except OSError:
                found = False
            if found:
                self.cancel.set()
                return True
        return False

    # -- snapshots ------------------------------------------------------
    def snapshot(self, include_result: bool = True) -> dict:
        """JSON-ready view of the job, as ``GET /jobs/<id>`` returns it."""
        result = None
        with self.lock:
            payload = {
                "job_id": self.id,
                "endpoint": self.endpoint,
                "tenant": self.tenant,
                "status": self.status,
                "progress": {
                    "completed": self.completed,
                    "total": self.total,
                },
                "created_at": self.created_at,
                "started_at": self.started_at,
                "finished_at": self.finished_at,
                "cancel_requested": self.cancel.is_set(),
            }
            if self.started_at is not None:
                end = self.finished_at or time.time()
                payload["runtime_s"] = round(end - self.started_at, 6)
            if self.status == "done":
                payload["from_response_cache"] = self.from_response_cache
                if include_result:
                    result = self.result
            if self.error is not None:
                payload["error"] = self.error
        if result is not None:
            # A fresh copy — in-process clients receive this dict
            # itself and must not be able to corrupt the stored result
            # through it (same discipline as the response cache's
            # replayed bodies) — made OUTSIDE the lock: the result is
            # immutable once the job is terminal, and a large payload's
            # deepcopy must not stall status polls on other threads.
            payload["result"] = copy.deepcopy(result)
        return payload


class JobManager:
    """Bounded worker pool running evaluation jobs off the request path.

    Parameters
    ----------
    execute:
        ``execute(job) -> Response`` — runs one job's endpoint through
        the response cache and handler with the engine's progress and
        cancellation hooks installed for ``job``.  Provided by
        :class:`~repro.service.app.ConfigService`, which owns the
        middleware instances.
    workers:
        Worker thread count — the daemon's evaluation concurrency.
    max_queued:
        Bound on *waiting* jobs (running jobs do not count).  A full
        queue turns ``POST /jobs`` into a typed ``429`` so a traffic
        spike degrades into backpressure instead of unbounded memory.
    max_jobs_per_tenant:
        Bound on one tenant's *live* (queued + running) jobs; the
        tenant at its quota gets a typed ``429 tenant-quota-exceeded``
        while every other tenant keeps submitting.  ``None`` disables
        the quota (single-tenant mode).
    ttl_s:
        Seconds a finished job (any terminal state) remains pollable;
        after that, ``GET /jobs/<id>`` is a 404 and the entry is gone.
    clock:
        Monotonic clock, injectable for TTL tests.
    shared_dir:
        Optional directory of the cross-process job store.  Every
        lifecycle transition (and each progress chunk) of a local job
        is mirrored there as an atomic JSON snapshot, so a *sibling*
        pre-fork worker polled for an id it does not own can answer
        from disk (:meth:`remote_snapshot`) and request cancellation
        via a marker file the owner polls between engine chunks
        (:meth:`request_remote_cancel`).  Job ids are unique across
        workers (the instance tag folds in process identity).
    """

    def __init__(
        self,
        execute: Callable[[Job], Response],
        workers: int = 2,
        max_queued: int = 16,
        max_jobs_per_tenant: Optional[int] = None,
        ttl_s: float = 600.0,
        clock: Callable[[], float] = time.monotonic,
        shared_dir=None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be at least 1")
        if max_queued < 1:
            raise ValueError("max_queued must be at least 1")
        if max_jobs_per_tenant is not None and max_jobs_per_tenant < 1:
            raise ValueError("max_jobs_per_tenant must be at least 1")
        if ttl_s <= 0:
            raise ValueError("ttl_s must be positive")
        self._execute = execute
        self.workers = int(workers)
        self.max_queued = int(max_queued)
        self.max_jobs_per_tenant = (
            int(max_jobs_per_tenant) if max_jobs_per_tenant is not None
            else None
        )
        self.ttl_s = float(ttl_s)
        self._clock = clock
        self.shared_dir = Path(shared_dir) if shared_dir is not None else None
        if self.shared_dir is not None:
            self.shared_dir.mkdir(parents=True, exist_ok=True)
        self._queue: "queue.Queue[Optional[Job]]" = queue.Queue()
        self._lock = threading.Lock()
        self._jobs: Dict[str, Job] = {}
        self._n_queued = 0
        self._n_running = 0
        self._accepting = True
        self._counter = itertools.count(1)
        self._instance = instance_tag(self)
        self._threads = [
            threading.Thread(
                target=self._worker, name=f"job-worker-{i}", daemon=True
            )
            for i in range(self.workers)
        ]
        for thread in self._threads:
            thread.start()

    # ------------------------------------------------------------------
    # Submission and lookup
    # ------------------------------------------------------------------
    def submit(
        self, endpoint: str, body: dict, tenant: str = ANONYMOUS_TENANT
    ) -> Job:
        """Enqueue a validated job; raises typed 429/503 when refused.

        Refusals, in checking order: draining (503), the *shared*
        waiting queue full (429 ``jobs-saturated``), and the tenant's
        own live-job quota exhausted (429 ``tenant-quota-exceeded``) —
        the same typed-429 saturation path, scoped to one tenant.
        """
        if endpoint not in JOB_ENDPOINTS:
            raise ServiceError(
                400, "invalid-request",
                f"endpoint must be one of {sorted(JOB_ENDPOINTS)}, "
                f"got {endpoint!r}",
            )
        job = Job(f"job-{self._instance}-{next(self._counter)}",
                  endpoint, body, tenant=tenant)
        with self._lock:
            self._purge_locked()
            if not self._accepting:
                raise ServiceError(
                    503, "shutting-down",
                    "the service is draining and accepts no new jobs",
                    headers={"Retry-After": "1"},
                )
            if self.max_jobs_per_tenant is not None:
                live = sum(
                    1 for tracked in self._jobs.values()
                    if tracked.tenant == tenant
                    and tracked.status in ("queued", "running")
                )
                if live >= self.max_jobs_per_tenant:
                    raise ServiceError(
                        429, "tenant-quota-exceeded",
                        f"tenant {tenant!r} already has {live} live "
                        f"job(s) (quota {self.max_jobs_per_tenant}); "
                        f"wait for one to finish or cancel it",
                        details={
                            "tenant": tenant,
                            "live": live,
                            "max_jobs_per_tenant":
                                self.max_jobs_per_tenant,
                        },
                    )
            if self._n_queued >= self.max_queued:
                raise ServiceError(
                    429, "jobs-saturated",
                    f"job queue is full ({self._n_queued} waiting, "
                    f"{self._n_running} running on {self.workers} "
                    f"worker(s)); retry later or raise --workers",
                    details={
                        "queued": self._n_queued,
                        "running": self._n_running,
                        "workers": self.workers,
                        "max_queued": self.max_queued,
                    },
                )
            self._jobs[job.id] = job
            self._n_queued += 1
        if self.shared_dir is not None:
            job.cancel_marker = self._cancel_path(job.id)
            job.on_update = lambda: self._persist(job)
            self._persist(job)
        self._queue.put(job)
        return job

    def get(self, job_id: str, tenant: Optional[str] = None) -> Job:
        """The job by id; typed 404 for unknown or expired ids.

        With ``tenant`` given, a job owned by a *different* tenant is
        the same 404 as an unknown id — another tenant's job ids are
        not even confirmed to exist.  ``tenant=None`` (internal
        callers) skips the ownership check.
        """
        with self._lock:
            self._purge_locked()
            job = self._jobs.get(job_id)
        if job is None or (tenant is not None and job.tenant != tenant):
            raise ServiceError(
                404, "job-not-found",
                f"no such job: {job_id} (unknown id, or expired after "
                f"{self.ttl_s:g}s TTL)",
            )
        return job

    def cancel(self, job_id: str, tenant: Optional[str] = None) -> Job:
        """Request cancellation; queued jobs cancel immediately.

        Running jobs abort cooperatively at the next engine chunk
        boundary; terminal jobs are left untouched (the returned
        snapshot shows their final state).  ``tenant`` scopes the
        lookup exactly as in :meth:`get`.
        """
        job = self.get(job_id, tenant=tenant)
        finished = False
        with job.lock:
            if job.status not in _TERMINAL:
                # Terminal jobs are left untouched — a late DELETE is a
                # no-op and must not claim a cancellation was requested.
                job.cancel.set()
            if job.status == "queued":
                job.status = "cancelled"
                job.finished_at = time.time()
                job.expires_at = self._clock() + self.ttl_s
                finished = True
        if finished:
            with self._lock:
                self._n_queued -= 1
            job.done_event.set()
        self._persist(job)
        return job

    def jobs(self, tenant: Optional[str] = None) -> List[Job]:
        """Live jobs, oldest first (purges expired entries).

        With ``tenant`` given, only that tenant's jobs are listed.
        """
        with self._lock:
            self._purge_locked()
            return [
                job for job in self._jobs.values()
                if tenant is None or job.tenant == tenant
            ]

    def stats(self) -> dict:
        """Queue/worker counters for ``GET /jobs`` and ``/metrics``."""
        with self._lock:
            self._purge_locked()
            by_status: Dict[str, int] = {}
            for job in self._jobs.values():
                with job.lock:
                    by_status[job.status] = by_status.get(job.status, 0) + 1
            return {
                "workers": self.workers,
                "max_queued": self.max_queued,
                "max_jobs_per_tenant": self.max_jobs_per_tenant,
                "ttl_s": self.ttl_s,
                "queued": self._n_queued,
                "running": self._n_running,
                "tracked": len(self._jobs),
                "by_status": by_status,
            }

    # ------------------------------------------------------------------
    # Shared job store (cross-process visibility)
    # ------------------------------------------------------------------
    def _job_path(self, job_id: str) -> Path:
        assert self.shared_dir is not None
        return self.shared_dir / f"{job_id}.json"

    def _cancel_path(self, job_id: str) -> Path:
        assert self.shared_dir is not None
        return self.shared_dir / f"{job_id}.cancel"

    def _persist(self, job: Job) -> None:
        """Mirror one local job's snapshot to the shared store.

        Atomic write, full result included, IO errors swallowed — a
        failed mirror only degrades sibling workers to 404, it never
        fails the job itself.
        """
        if self.shared_dir is None:
            return
        from ..framework.store import write_json_atomic
        from ..resilience.breaker import write_guarded

        payload = {
            "format_version": 1,
            "kind": "job_snapshot",
            "snapshot": job.snapshot(include_result=True),
        }
        try:
            write_guarded(
                "job_store",
                lambda: write_json_atomic(payload, self._job_path(job.id)),
            )
        except (TypeError, ValueError):
            pass

    def _unlink_shared(self, job_id: str) -> None:
        if self.shared_dir is None:
            return
        for path in (self._job_path(job_id), self._cancel_path(job_id)):
            try:
                path.unlink()
            except OSError:
                pass

    def remote_snapshot(
        self, job_id: str, tenant: Optional[str] = None
    ) -> Optional[dict]:
        """A *sibling worker's* job snapshot from the shared store.

        ``None`` means unknown there too (no store configured, no
        record, a corrupt record — quarantined — or a record past its
        TTL); with ``tenant`` given, another tenant's job is ``None``
        exactly as :meth:`get` would 404 it.  Callers try :meth:`get`
        first — the local table is authoritative for jobs this process
        owns.
        """
        if self.shared_dir is None:
            return None
        from ..framework.store import read_json_payload

        payload = read_json_payload(self._job_path(job_id), "job_snapshot")
        if payload is None:
            return None
        snapshot = payload.get("snapshot")
        if not isinstance(snapshot, dict) or \
                snapshot.get("job_id") != job_id:
            return None
        if tenant is not None and snapshot.get("tenant") != tenant:
            return None
        finished_at = snapshot.get("finished_at")
        if isinstance(finished_at, (int, float)) and \
                time.time() - finished_at > self.ttl_s:
            # The owner would have purged this by now; it may have
            # exited without cleaning up.  Enforce the TTL here so
            # orphaned snapshots expire from any worker.
            self._unlink_shared(job_id)
            return None
        return snapshot

    def request_remote_cancel(
        self, job_id: str, tenant: Optional[str] = None
    ) -> Optional[dict]:
        """Ask a sibling worker to cancel a job it owns.

        Leaves a marker file the owner's :meth:`Job.should_cancel`
        polls between engine chunks — the cross-process twin of setting
        the cancel event.  Returns the job's snapshot (with
        ``cancel_requested`` already true for non-terminal jobs), or
        ``None`` when the shared store does not know the id.
        """
        snapshot = self.remote_snapshot(job_id, tenant=tenant)
        if snapshot is None:
            return None
        if snapshot.get("status") not in _TERMINAL:
            try:
                self._cancel_path(job_id).write_text("cancel\n")
            except OSError:
                return None
            snapshot["cancel_requested"] = True
        return snapshot

    # ------------------------------------------------------------------
    # Worker loop
    # ------------------------------------------------------------------
    def _worker(self) -> None:
        while True:
            job = self._queue.get()
            if job is None:  # shutdown sentinel
                self._queue.task_done()
                return
            try:
                self._run_job(job)
            finally:
                self._queue.task_done()

    def _run_job(self, job: Job) -> None:
        with job.lock:
            if job.status != "queued":
                # Cancelled while waiting; counters already adjusted.
                return
            job.status = "running"
            job.started_at = time.time()
        with self._lock:
            self._n_queued -= 1
            self._n_running += 1
        self._persist(job)
        status, result, error, cached = "failed", None, None, False
        try:
            response = self._execute(job)
            if response.ok:
                status = "done"
                result = response.body
                cached = response.headers.get("X-Response-Cache") == "hit"
            else:  # pragma: no cover - handlers raise instead
                error = response.body.get("error", {"message": "failed"})
        except EvaluationCancelled:
            status = "cancelled"
        except ServiceError as exc:
            error = {"status": exc.status, "code": exc.code,
                     "message": exc.message}
            if exc.details is not None:
                error["details"] = exc.details
        except Exception:
            logger.exception("job %s (%s) crashed", job.id, job.endpoint)
            error = {"status": 500, "code": "internal-error",
                     "message": "internal server error"}
        with job.lock:
            job.status = status
            job.result = result
            job.error = error
            job.from_response_cache = cached
            job.finished_at = time.time()
            job.expires_at = self._clock() + self.ttl_s
        with self._lock:
            self._n_running -= 1
        self._persist(job)
        job.done_event.set()

    # ------------------------------------------------------------------
    # Expiry and shutdown
    # ------------------------------------------------------------------
    def _purge_locked(self) -> None:
        """Drop finished jobs past their TTL (``self._lock`` held)."""
        now = self._clock()
        expired = [
            job_id
            for job_id, job in self._jobs.items()
            if job.expires_at is not None and job.expires_at <= now
        ]
        for job_id in expired:
            del self._jobs[job_id]
            self._unlink_shared(job_id)

    def close(self, grace_s: float = 10.0) -> None:
        """Drain and stop the pool; idempotent.

        New submissions are refused immediately (typed 503), queued
        jobs are cancelled, and running jobs get ``grace_s`` seconds to
        finish before their cancellation flags are set and the workers
        are given one more short wait.  Worker threads are daemons, so
        a job that ignores cooperative cancellation cannot block
        process exit.
        """
        with self._lock:
            if not self._accepting and not any(
                t.is_alive() for t in self._threads
            ):
                return
            self._accepting = False
            tracked = list(self._jobs.values())
        for job in tracked:
            # Cancel queued jobs only, re-checked under the job lock: a
            # job that just went running keeps its grace period (the
            # join below) instead of being aborted at its next chunk.
            finished = False
            with job.lock:
                if job.status == "queued":
                    job.cancel.set()
                    job.status = "cancelled"
                    job.finished_at = time.time()
                    job.expires_at = self._clock() + self.ttl_s
                    finished = True
            if finished:
                with self._lock:
                    self._n_queued -= 1
                self._persist(job)
                job.done_event.set()
        for _ in self._threads:
            self._queue.put(None)
        deadline = time.monotonic() + max(0.0, grace_s)
        for thread in self._threads:
            thread.join(timeout=max(0.0, deadline - time.monotonic()))
        still_running = [t for t in self._threads if t.is_alive()]
        if still_running:
            with self._lock:
                running = [
                    job for job in self._jobs.values()
                    if job.status == "running"
                ]
            for job in running:
                job.cancel.set()
            for thread in still_running:
                thread.join(timeout=1.0)
