"""The service's composable middleware pipeline.

Every request entering the configuration service flows through an
ordered chain of middlewares before (and after) its endpoint handler —
the same onion model the middleware literature the paper sits in
describes: each layer sees the request on the way in and the response
on the way out, and any layer may short-circuit by answering itself.

The layers shipped here, in their default order:

1. :class:`RequestIdMiddleware` — tags the request with a unique id and
   echoes it as ``X-Request-Id``, so log lines and error responses of
   one request can be correlated across layers;
2. :class:`CompressionMiddleware` — gzip-encodes large response bodies
   when the client advertised ``Accept-Encoding: gzip``;
3. :class:`LoggingMiddleware` — one structured log line per request
   (method, path, status, wall-clock, request id);
4. :class:`MetricsMiddleware` — per-endpoint request/status/latency
   counters, surfaced by ``GET /metrics``;
5. :class:`ErrorBoundaryMiddleware` — converts :class:`ServiceError`
   into its typed JSON response and anything unexpected into a 500,
   so the layers above always see a response to log and count;
6. :class:`ApiKeyAuthMiddleware` — validates ``X-API-Key`` against an
   :class:`ApiKeyStore` and attaches the resolved *tenant* to the
   request context (typed 401/403 otherwise);
7. :class:`RateLimitMiddleware` — per-tenant token bucket; a drained
   bucket answers a typed 429 with ``Retry-After``;
8. :class:`ValidationMiddleware` — validates and normalises the JSON
   request body against the endpoint's declared field specs, rejecting
   bad requests with a typed 400 before any work happens;
9. :class:`ResponseCacheMiddleware` — innermost: answers a repeated
   deterministic request from a content-addressed, tenant-namespaced
   response cache without invoking the handler at all.

Ordering is semantics: the error boundary sits *inside* logging and
metrics so failures — auth denials and rate-limit 429s included — are
still logged and counted; auth runs before the rate limiter (buckets
are per tenant) and both run before validation, so a denied request
never costs validation or evaluation work; and the response cache sits
innermost so a cache hit still carries a fresh request id and shows up
in the metrics.
"""

from __future__ import annotations

import copy
import gzip as _gzip
import hashlib
import hmac
import itertools
import json
import logging
import math
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Set, Tuple

from ..engine import EvaluationCancelled

__all__ = [
    "Request",
    "Response",
    "ServiceError",
    "Middleware",
    "MiddlewarePipeline",
    "RequestIdMiddleware",
    "CompressionMiddleware",
    "LoggingMiddleware",
    "MetricsMiddleware",
    "ErrorBoundaryMiddleware",
    "ApiKeyAuthMiddleware",
    "ApiKeyStore",
    "RateLimitMiddleware",
    "DeadlineMiddleware",
    "LoadShedMiddleware",
    "ValidationMiddleware",
    "ResponseCacheMiddleware",
    "Field",
    "check_deadline",
    "DEADLINE_HEADER",
    "validate_body",
    "canonical_body_key",
    "header_value",
    "instance_tag",
    "ANONYMOUS_TENANT",
    "UNAUTHENTICATED_ENDPOINTS",
]

logger = logging.getLogger("repro.service")

#: The tenant attached to requests that carried no API key (anonymous-
#: allowed mode) and to requests entering a pipeline with no auth layer.
ANONYMOUS_TENANT = "anonymous"

#: Endpoints that must stay reachable without a key and without rate
#: limits: liveness probes and metric scrapers are infrastructure, not
#: tenants, and they must keep answering while every tenant is throttled.
UNAUTHENTICATED_ENDPOINTS = ("GET /healthz", "GET /metrics")


def header_value(request: "Request", name: str) -> Optional[str]:
    """The request header's value, matched case-insensitively.

    Transports disagree on header capitalisation (urllib title-cases,
    tests write literals), so every middleware reads headers through
    this one normaliser.
    """
    headers = request.headers or {}
    value = headers.get(name)
    if value is not None:
        return value
    lowered = name.lower()
    for candidate, value in headers.items():
        if candidate.lower() == lowered:
            return value
    return None


# ----------------------------------------------------------------------
# Request / response model
# ----------------------------------------------------------------------
@dataclass
class Request:
    """One service request, transport-agnostic.

    The HTTP front-end and the in-process client both build these, so
    the pipeline and handlers never see sockets.  ``context`` is the
    middlewares' scratch space (e.g. the assigned request id).
    """

    method: str
    path: str
    body: Optional[dict] = None
    headers: Mapping[str, str] = field(default_factory=dict)
    context: Dict[str, object] = field(default_factory=dict)

    @property
    def endpoint(self) -> str:
        """The routing key, e.g. ``"POST /sweep"``."""
        return f"{self.method} {self.path}"


@dataclass
class Response:
    """A JSON response: status code, payload, extra headers.

    ``encoded_body`` is the transport-ready byte payload when a
    middleware already serialised (and possibly compressed) ``body`` —
    the HTTP front-end sends it verbatim; in-process clients keep
    reading the ``body`` dict.
    """

    status: int = 200
    body: dict = field(default_factory=dict)
    headers: Dict[str, str] = field(default_factory=dict)
    encoded_body: Optional[bytes] = None

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300


class ServiceError(Exception):
    """A typed, client-visible error.

    Handlers and middlewares raise these; the error boundary renders
    them as ``{"error": {"code": ..., "message": ..., "details": ...}}``
    with the carried HTTP status.
    """

    def __init__(
        self,
        status: int,
        code: str,
        message: str,
        details: Optional[object] = None,
        headers: Optional[Mapping[str, str]] = None,
    ) -> None:
        super().__init__(message)
        self.status = int(status)
        self.code = code
        self.message = message
        self.details = details
        #: Extra response headers the error must carry (e.g. the rate
        #: limiter's ``Retry-After``).
        self.headers = dict(headers) if headers else {}

    def to_response(self, request_id: str = "") -> Response:
        error = {"code": self.code, "message": self.message}
        if self.details is not None:
            error["details"] = self.details
        if request_id:
            error["request_id"] = request_id
        return Response(
            status=self.status,
            body={"error": error},
            headers=dict(self.headers),
        )


#: A terminal request handler, and what middlewares wrap.
Handler = Callable[[Request], Response]


# ----------------------------------------------------------------------
# Pipeline
# ----------------------------------------------------------------------
class Middleware:
    """One layer of the onion.

    Subclasses override :meth:`handle`, calling ``call_next(request)``
    exactly once to continue inward — or not at all to short-circuit.
    """

    #: Stable name used in docs, metrics and pipeline introspection.
    name = "middleware"

    def handle(self, request: Request, call_next: Handler) -> Response:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class MiddlewarePipeline:
    """An ordered middleware chain around a terminal handler.

    ``pipeline.wrap(handler)`` composes the chain so that the *first*
    middleware in the list is the outermost layer.  The pipeline is
    immutable once built; services compose a new one to reconfigure.
    """

    def __init__(self, middlewares: Sequence[Middleware] = ()) -> None:
        self.middlewares: Tuple[Middleware, ...] = tuple(middlewares)
        names = [m.name for m in self.middlewares]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate middleware names: {names!r}")

    @property
    def names(self) -> List[str]:
        """Middleware names, outermost first."""
        return [m.name for m in self.middlewares]

    def wrap(self, handler: Handler) -> Handler:
        """The composed handler: every layer around ``handler``."""
        wrapped = handler
        for middleware in reversed(self.middlewares):
            wrapped = _bind(middleware, wrapped)
        return wrapped

    def __call__(self, request: Request, handler: Handler) -> Response:
        return self.wrap(handler)(request)

    def __len__(self) -> int:
        return len(self.middlewares)

    def __repr__(self) -> str:
        return f"MiddlewarePipeline({' -> '.join(self.names) or 'empty'})"


def _bind(middleware: Middleware, inner: Handler) -> Handler:
    def call(request: Request) -> Response:
        return middleware.handle(request, inner)

    return call


# ----------------------------------------------------------------------
# Request id + logging
# ----------------------------------------------------------------------
def instance_tag(owner: object) -> str:
    """Short per-instance tag for restart-safe id schemes.

    Request ids and job ids both embed one of these: a counter orders
    ids within one service instance, and this hash disambiguates
    across restarts without any global coordination.
    """
    seed = f"{id(owner)}-{time.time_ns()}".encode("utf-8")
    return hashlib.sha256(seed).hexdigest()[:6]


class RequestIdMiddleware(Middleware):
    """Assigns each request a unique id and echoes it to the client.

    Ids are ``req-<counter>-<hash>``: the counter orders requests of
    one service instance, the short hash disambiguates across restarts
    without needing any global coordination.
    """

    name = "request_id"

    def __init__(self) -> None:
        self._counter = itertools.count(1)
        self._instance = instance_tag(self)

    def handle(self, request: Request, call_next: Handler) -> Response:
        number = next(self._counter)
        request_id = f"req-{self._instance}-{number}"
        request.context["request_id"] = request_id
        response = call_next(request)
        response.headers.setdefault("X-Request-Id", request_id)
        return response


class LoggingMiddleware(Middleware):
    """One structured log line per request, on the way out."""

    name = "logging"

    def __init__(self, log: Optional[logging.Logger] = None) -> None:
        self._log = log or logger

    def handle(self, request: Request, call_next: Handler) -> Response:
        start = time.perf_counter()
        response = call_next(request)
        elapsed_ms = (time.perf_counter() - start) * 1000.0
        self._log.info(
            "%s %s -> %d in %.1f ms [%s]%s",
            request.method,
            # Canonicalised routes (e.g. /jobs/<id>) stash the real
            # path in context so the log line stays greppable by id.
            request.context.get("raw_path", request.path),
            response.status,
            elapsed_ms,
            request.context.get("request_id", "-"),
            " (response-cache hit)" if request.context.get("response_cache_hit")
            else "",
        )
        return response


# ----------------------------------------------------------------------
# Compression
# ----------------------------------------------------------------------
def _accepts_gzip(request: Request) -> bool:
    """Whether the request's ``Accept-Encoding`` admits gzip.

    Tokens are matched per the header's comma-separated list with
    ``q``-values honoured as on/off switches (``gzip;q=0`` is a
    refusal); ``*`` matches gzip like any other coding.
    """
    accept = header_value(request, "Accept-Encoding")
    if not accept:
        return False
    for element in accept.split(","):
        parts = element.split(";")
        coding = parts[0].strip().lower()
        if coding not in ("gzip", "x-gzip", "*"):
            continue
        for param in parts[1:]:
            name, _, value = param.partition("=")
            if name.strip().lower() == "q":
                try:
                    return float(value.strip()) > 0.0
                except ValueError:
                    return False
        return True
    return False


class CompressionMiddleware(Middleware):
    """Gzip-encodes large response bodies for clients that accept it.

    Sits near the outside of the onion (inside only the request id), so
    every response — sweep payloads, job results, even a verbose error
    body — is a candidate.  A response is compressed only when all of:

    * the client advertised ``gzip`` in ``Accept-Encoding``;
    * the serialised JSON body is at least ``min_bytes`` (tiny payloads
      cost more in CPU + headers than the bytes saved);
    * gzip actually shrank it (incompressible bodies ship as-is).

    The compressed bytes land in :attr:`Response.encoded_body` with
    ``Content-Encoding: gzip`` set — the HTTP front-end sends them
    verbatim, while in-process clients keep reading the ``body`` dict,
    so compression is a transport concern the handlers never see.
    The response cache sits far inside this layer and stores plain
    bodies, so one cached entry serves gzip and identity clients alike.
    """

    name = "compression"

    def __init__(self, min_bytes: int = 1024, level: int = 6) -> None:
        if min_bytes < 0:
            raise ValueError("min_bytes must be non-negative")
        self.min_bytes = int(min_bytes)
        self.level = int(level)
        self._lock = threading.Lock()
        self.responses_compressed = 0
        self.bytes_in = 0
        self.bytes_out = 0

    def handle(self, request: Request, call_next: Handler) -> Response:
        response = call_next(request)
        if not _accepts_gzip(request):
            return response
        if response.encoded_body is not None \
                or "Content-Encoding" in response.headers:
            return response
        payload = json.dumps(response.body).encode("utf-8")
        if len(payload) < self.min_bytes:
            return response
        compressed = _gzip.compress(payload, compresslevel=self.level)
        if len(compressed) >= len(payload):
            return response
        response.encoded_body = compressed
        response.headers["Content-Encoding"] = "gzip"
        response.headers.setdefault("Vary", "Accept-Encoding")
        with self._lock:
            self.responses_compressed += 1
            self.bytes_in += len(payload)
            self.bytes_out += len(compressed)
        return response

    def snapshot(self) -> dict:
        with self._lock:
            saved = self.bytes_in - self.bytes_out
            return {
                "responses_compressed": self.responses_compressed,
                "bytes_in": self.bytes_in,
                "bytes_out": self.bytes_out,
                "bytes_saved": saved,
            }


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------
class MetricsMiddleware(Middleware):
    """Per-endpoint request counters and wall-clock accounting.

    Counters live on the middleware itself and are read by the
    ``/metrics`` handler; access is lock-protected because the HTTP
    front-end is threaded.

    ``known_endpoints`` bounds label cardinality: requests to any other
    endpoint (scanners probing random paths, typo'd clients) are
    bucketed under one ``"<unrouted>"`` key instead of growing the
    counter dicts — and the ``/metrics`` payload — without bound.
    """

    name = "metrics"

    #: Bucket for requests to endpoints outside ``known_endpoints``.
    UNROUTED = "<unrouted>"

    def __init__(self, known_endpoints: Optional[Sequence[str]] = None) -> None:
        self._lock = threading.Lock()
        self.known_endpoints = (
            frozenset(known_endpoints) if known_endpoints is not None else None
        )
        self.requests_total = 0
        self.by_endpoint: Dict[str, int] = {}
        self.by_status: Dict[int, int] = {}
        self.wall_clock_s: Dict[str, float] = {}
        #: endpoint -> requests currently inside this layer (gauges,
        #: not counters: entries drop back out as requests complete).
        self.in_flight: Dict[str, int] = {}
        self.response_cache_hits = 0

    def handle(self, request: Request, call_next: Handler) -> Response:
        # The endpoint label is fixed *before* calling inward so the
        # in-flight gauge and the exit-side counters always agree, even
        # if an inner layer rewrites the request.
        endpoint = request.endpoint
        if (
            self.known_endpoints is not None
            and endpoint not in self.known_endpoints
        ):
            endpoint = self.UNROUTED
        with self._lock:
            self.in_flight[endpoint] = self.in_flight.get(endpoint, 0) + 1
        start = time.perf_counter()
        try:
            response = call_next(request)
        finally:
            elapsed = time.perf_counter() - start
            with self._lock:
                remaining = self.in_flight.get(endpoint, 1) - 1
                if remaining > 0:
                    self.in_flight[endpoint] = remaining
                else:
                    self.in_flight.pop(endpoint, None)
        with self._lock:
            self.requests_total += 1
            self.by_endpoint[endpoint] = self.by_endpoint.get(endpoint, 0) + 1
            self.by_status[response.status] = (
                self.by_status.get(response.status, 0) + 1
            )
            self.wall_clock_s[endpoint] = (
                self.wall_clock_s.get(endpoint, 0.0) + elapsed
            )
            if request.context.get("response_cache_hit"):
                self.response_cache_hits += 1
        return response

    def snapshot(self) -> dict:
        """A JSON-ready copy of every counter."""
        with self._lock:
            return {
                "requests_total": self.requests_total,
                "requests_by_endpoint": dict(self.by_endpoint),
                "responses_by_status": {
                    str(k): v for k, v in sorted(self.by_status.items())
                },
                "wall_clock_s_by_endpoint": {
                    k: round(v, 6) for k, v in self.wall_clock_s.items()
                },
                "in_flight_by_endpoint": dict(self.in_flight),
                "response_cache_hits": self.response_cache_hits,
            }


# ----------------------------------------------------------------------
# Error boundary
# ----------------------------------------------------------------------
class ErrorBoundaryMiddleware(Middleware):
    """Renders exceptions as typed JSON errors.

    :class:`ServiceError` keeps its status and code; anything else
    becomes an opaque 500 (logged with traceback) so internals never
    leak to clients.

    A transport may also hand in an error it hit *before* dispatch (a
    body that was not valid JSON) as ``context["transport_error"]``;
    raising it here — inside logging and metrics, outside validation —
    keeps such requests observable without asking the validation layer
    to reason about absent bodies.
    """

    name = "error_boundary"

    def __init__(self, log: Optional[logging.Logger] = None) -> None:
        self._log = log or logger

    def handle(self, request: Request, call_next: Handler) -> Response:
        request_id = str(request.context.get("request_id", ""))
        try:
            pending = request.context.get("transport_error")
            if isinstance(pending, ServiceError):
                raise pending
            return call_next(request)
        except ServiceError as exc:
            return exc.to_response(request_id)
        except Exception:
            self._log.exception(
                "unhandled error serving %s [%s]", request.endpoint, request_id
            )
            return ServiceError(
                500, "internal-error", "internal server error"
            ).to_response(request_id)


# ----------------------------------------------------------------------
# API-key authentication
# ----------------------------------------------------------------------
class ApiKeyStore:
    """API keys and the tenants they authenticate, compared in constant
    time.

    Keys are stored as SHA-256 digests, never as plaintext — a heap
    dump or a repr leaks no credentials — and a presented key is
    checked by hashing it once and then running
    :func:`hmac.compare_digest` against *every* stored digest, so the
    comparison's timing is independent of how much of any key matches
    and of which entry (if any) it matches.

    Revocation keeps the digest in a tombstone set: a revoked key is
    distinguishable from one that never existed (typed 403 vs 401),
    which operators need when rotating credentials.
    """

    def __init__(self, keys: Optional[Mapping[str, str]] = None) -> None:
        self._lock = threading.Lock()
        #: SHA-256 hexdigest of the key -> tenant name.
        self._tenants: Dict[str, str] = {}
        #: Digests of revoked keys.
        self._revoked: Set[str] = set()
        for key, tenant in (keys or {}).items():
            self.add(key, tenant)

    @staticmethod
    def _digest(key: str) -> str:
        return hashlib.sha256(key.encode("utf-8")).hexdigest()

    def add(self, key: str, tenant: str) -> None:
        """Register ``key`` as authenticating ``tenant``.

        Re-adding a previously revoked key un-revokes it (rotation:
        revoke the old key, add the new one — or re-instate).
        """
        if not isinstance(key, str) or not key:
            raise ValueError("api key must be a non-empty string")
        if not isinstance(tenant, str) or not tenant:
            raise ValueError("tenant must be a non-empty string")
        digest = self._digest(key)
        with self._lock:
            self._tenants[digest] = tenant
            self._revoked.discard(digest)

    def revoke(self, key: str) -> bool:
        """Revoke ``key``; returns whether it was a registered key."""
        digest = self._digest(key)
        with self._lock:
            known = digest in self._tenants
            if known:
                self._revoked.add(digest)
            return known

    def lookup(self, key: str) -> Tuple[str, Optional[str]]:
        """``(state, tenant)`` for a presented key.

        ``state`` is ``"ok"`` (tenant attached), ``"revoked"`` or
        ``"unknown"``.  Every stored digest is compared on every call —
        see the class docstring for why.
        """
        presented = self._digest(key)
        tenant: Optional[str] = None
        revoked = False
        with self._lock:
            for digest, candidate in self._tenants.items():
                if hmac.compare_digest(digest, presented):
                    tenant = candidate
            for digest in self._revoked:
                if hmac.compare_digest(digest, presented):
                    revoked = True
        if revoked:
            return "revoked", None
        if tenant is not None:
            return "ok", tenant
        return "unknown", None

    def __len__(self) -> int:
        with self._lock:
            return len(self._tenants)

    @classmethod
    def from_file(cls, path: str) -> "ApiKeyStore":
        """Load ``key:tenant`` lines from a file.

        Blank lines and ``#`` comments are skipped; the key is
        everything before the *first* colon (tenant names may not be
        empty).  This is the format ``serve --api-keys`` reads.
        """
        store = cls()
        with open(path, "r", encoding="utf-8") as fh:
            for lineno, raw in enumerate(fh, start=1):
                line = raw.strip()
                if not line or line.startswith("#"):
                    continue
                key, sep, tenant = line.partition(":")
                if not sep or not key.strip() or not tenant.strip():
                    raise ValueError(
                        f"{path}:{lineno}: expected 'key:tenant', "
                        f"got {line!r}"
                    )
                store.add(key.strip(), tenant.strip())
        return store


class ApiKeyAuthMiddleware(Middleware):
    """Resolves ``X-API-Key`` to a tenant, or denies with a typed error.

    The resolved tenant lands in ``request.context["tenant"]`` — the
    registries, the response cache and the job quotas all namespace on
    it — and is echoed as ``X-Tenant`` so clients can confirm which
    namespace served them.

    * no key, ``allow_anonymous=True`` → tenant ``"anonymous"`` (the
      backward-compatible single-tenant mode every pre-auth client
      lands in);
    * no key, ``allow_anonymous=False`` → typed ``401 missing-api-key``;
    * unrecognised key → typed ``401 invalid-api-key`` (never silently
      anonymous: presenting a bad credential is an error even when
      anonymous traffic is allowed);
    * revoked key → typed ``403 revoked-api-key``.

    ``GET /healthz`` and ``GET /metrics`` stay unauthenticated
    (``exempt``): probes and scrapers are infrastructure, not tenants.
    """

    name = "auth"

    def __init__(
        self,
        store: Optional[ApiKeyStore] = None,
        allow_anonymous: bool = True,
        exempt: Sequence[str] = UNAUTHENTICATED_ENDPOINTS,
        header: str = "X-API-Key",
    ) -> None:
        self.store = store if store is not None else ApiKeyStore()
        self.allow_anonymous = bool(allow_anonymous)
        self.exempt = frozenset(exempt)
        self.header = header
        self._lock = threading.Lock()
        self.authenticated = 0
        self.anonymous = 0
        self.denied: Dict[str, int] = {}

    def _deny(self, status: int, code: str, message: str) -> ServiceError:
        with self._lock:
            self.denied[code] = self.denied.get(code, 0) + 1
        return ServiceError(status, code, message)

    def handle(self, request: Request, call_next: Handler) -> Response:
        if request.endpoint in self.exempt:
            request.context.setdefault("tenant", ANONYMOUS_TENANT)
            return call_next(request)
        key = header_value(request, self.header)
        if key is None or key == "":
            if not self.allow_anonymous:
                raise self._deny(
                    401, "missing-api-key",
                    f"this service requires a {self.header} header",
                )
            request.context["tenant"] = ANONYMOUS_TENANT
            with self._lock:
                self.anonymous += 1
            return call_next(request)
        state, tenant = self.store.lookup(key)
        if state == "revoked":
            raise self._deny(
                403, "revoked-api-key", "this API key has been revoked"
            )
        if state != "ok":
            raise self._deny(
                401, "invalid-api-key", "unrecognised API key"
            )
        request.context["tenant"] = tenant
        with self._lock:
            self.authenticated += 1
        response = call_next(request)
        response.headers.setdefault("X-Tenant", str(tenant))
        return response

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "keys": len(self.store),
                "allow_anonymous": self.allow_anonymous,
                "authenticated": self.authenticated,
                "anonymous": self.anonymous,
                "denied": dict(self.denied),
            }


# ----------------------------------------------------------------------
# Rate limiting
# ----------------------------------------------------------------------
class RateLimitMiddleware(Middleware):
    """Per-tenant token bucket over every non-exempt endpoint.

    Each tenant owns one bucket of ``burst`` tokens refilling at
    ``rate`` tokens/second; a request spends one token, and an empty
    bucket answers a typed ``429 rate-limited`` whose ``Retry-After``
    header says when the next token lands.  All bucket arithmetic
    happens under one lock, so concurrent requests account exactly —
    N tenants at burst B admit exactly ``N x B`` requests before the
    first refill, never more, never fewer.

    ``rate=None`` disables limiting entirely (the layer stays in the
    pipeline so its position — and the metrics shape — never depends
    on configuration).  ``clock`` is injectable so tests can cross the
    refill boundary without sleeping.
    """

    name = "rate_limit"

    def __init__(
        self,
        rate: Optional[float] = None,
        burst: Optional[float] = None,
        exempt: Sequence[str] = UNAUTHENTICATED_ENDPOINTS,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate is not None and rate <= 0:
            raise ValueError("rate must be positive (or None to disable)")
        if burst is not None and burst < 1:
            raise ValueError("burst must be at least 1")
        self.rate = float(rate) if rate is not None else None
        self.burst = (
            float(burst) if burst is not None
            else max(1.0, self.rate) if self.rate is not None
            else None
        )
        self.exempt = frozenset(exempt)
        self._clock = clock
        self._lock = threading.Lock()
        #: tenant -> [tokens, last-refill timestamp].
        self._buckets: Dict[str, List[float]] = {}
        self.allowed = 0
        self.rejected = 0

    def handle(self, request: Request, call_next: Handler) -> Response:
        if self.rate is None or request.endpoint in self.exempt:
            return call_next(request)
        tenant = str(request.context.get("tenant") or ANONYMOUS_TENANT)
        with self._lock:
            now = self._clock()
            bucket = self._buckets.get(tenant)
            if bucket is None:
                bucket = self._buckets[tenant] = [self.burst, now]
            tokens, last = bucket
            tokens = min(self.burst, tokens + (now - last) * self.rate)
            if tokens >= 1.0:
                bucket[0] = tokens - 1.0
                bucket[1] = now
                self.allowed += 1
                retry_after = None
            else:
                bucket[0] = tokens
                bucket[1] = now
                self.rejected += 1
                retry_after = (1.0 - tokens) / self.rate
        if retry_after is not None:
            raise ServiceError(
                429, "rate-limited",
                f"tenant {tenant!r} exceeded {self.rate:g} requests/s "
                f"(burst {self.burst:g}); retry after "
                f"{retry_after:.3f}s",
                details={
                    "tenant": tenant,
                    "rate_per_s": self.rate,
                    "burst": self.burst,
                    "retry_after_s": round(retry_after, 6),
                },
                headers={
                    "Retry-After": str(max(1, math.ceil(retry_after)))
                },
            )
        return call_next(request)

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "rate_per_s": self.rate,
                "burst": self.burst,
                "tenants": len(self._buckets),
                "allowed": self.allowed,
                "rejected": self.rejected,
            }


# ----------------------------------------------------------------------
# Deadlines and load shedding
# ----------------------------------------------------------------------
#: Request header carrying the client's time budget in milliseconds.
DEADLINE_HEADER = "X-Request-Deadline-Ms"


def check_deadline(request: Request) -> None:
    """Raise the typed 504 if the request's deadline has passed.

    Cheap and callable from anywhere that can see the request —
    handlers, fault points, pipeline stages.  No-op for requests that
    carried no deadline.
    """
    deadline = request.context.get("deadline")
    if deadline is None:
        return
    clock = request.context.get("deadline_clock", time.monotonic)
    if clock() >= deadline:  # type: ignore[operator]
        raise ServiceError(
            504, "deadline-exceeded",
            "the request's deadline elapsed before the response "
            "was ready",
            details={
                "deadline_ms": request.context.get("deadline_ms"),
            },
        )


class DeadlineMiddleware(Middleware):
    """Propagate a client deadline into the request and the engine.

    Requests may carry ``X-Request-Deadline-Ms``, a time budget in
    milliseconds.  The middleware stamps the absolute deadline into
    ``request.context`` (where :func:`check_deadline` and the fault
    points read it) and — when built with an engine — installs a
    ``should_cancel`` hook for the calling thread, so a sweep that is
    mid-evaluation stops between chunks instead of finishing minutes
    after the client gave up.  Both paths surface as one typed
    ``504 deadline-exceeded``; completed chunks stay cached, so a
    retry with a saner budget resumes rather than restarts.

    Deadlines bound *synchronous* work: an async submit returns its
    202 well within any sane budget and the job then runs on a worker
    thread, outside this middleware's hook scope.
    """

    name = "deadline"

    def __init__(
        self,
        engine=None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.engine = engine
        self._clock = clock
        self._lock = threading.Lock()
        self.with_deadline = 0
        self.expired = 0

    def handle(self, request: Request, call_next: Handler) -> Response:
        raw = header_value(request, DEADLINE_HEADER)
        if raw is None:
            return call_next(request)
        try:
            budget_ms = float(raw)
        except ValueError:
            budget_ms = math.nan
        if not math.isfinite(budget_ms) or budget_ms <= 0:
            raise ServiceError(
                400, "invalid-deadline",
                f"{DEADLINE_HEADER} must be a positive number of "
                f"milliseconds, got {raw!r}",
            )
        deadline = self._clock() + budget_ms / 1000.0
        request.context["deadline"] = deadline
        request.context["deadline_ms"] = budget_ms
        request.context["deadline_clock"] = self._clock
        with self._lock:
            self.with_deadline += 1

        def overdue() -> bool:
            return self._clock() >= deadline

        try:
            if self.engine is not None:
                with self.engine.hooks(should_cancel=overdue):
                    return call_next(request)
            return call_next(request)
        except EvaluationCancelled:
            with self._lock:
                self.expired += 1
            raise ServiceError(
                504, "deadline-exceeded",
                "evaluation stopped between chunks: the request's "
                "deadline elapsed mid-sweep (completed chunks stay "
                "cached)",
                details={"deadline_ms": budget_ms},
            )
        except ServiceError as exc:
            if exc.code == "deadline-exceeded":
                with self._lock:
                    self.expired += 1
            raise

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "with_deadline": self.with_deadline,
                "expired": self.expired,
            }


class LoadShedMiddleware(Middleware):
    """Bounded in-flight depth: refuse early what cannot be served.

    With ``max_in_flight`` set, request number N+1 gets an immediate
    typed ``503 overloaded`` with ``Retry-After`` instead of queueing
    behind work the worker cannot start — bounded latency beats a
    deep queue of doomed requests.  Liveness endpoints are exempt for
    the same reason they skip auth: probes must see a struggling
    worker, not be shed by it.  ``max_in_flight=None`` disables
    shedding but keeps the layer (and its counters) in the pipeline.
    """

    name = "load_shed"

    def __init__(
        self,
        max_in_flight: Optional[int] = None,
        exempt: Sequence[str] = UNAUTHENTICATED_ENDPOINTS,
        retry_after_s: int = 1,
    ) -> None:
        if max_in_flight is not None and max_in_flight < 1:
            raise ValueError(
                "max_in_flight must be at least 1 (or None to disable)"
            )
        self.max_in_flight = (
            int(max_in_flight) if max_in_flight is not None else None
        )
        self.exempt = frozenset(exempt)
        self.retry_after_s = int(retry_after_s)
        self._lock = threading.Lock()
        self.in_flight = 0
        self.peak_in_flight = 0
        self.shed = 0

    def handle(self, request: Request, call_next: Handler) -> Response:
        if self.max_in_flight is None or request.endpoint in self.exempt:
            return call_next(request)
        with self._lock:
            if self.in_flight >= self.max_in_flight:
                self.shed += 1
                overloaded = True
            else:
                self.in_flight += 1
                self.peak_in_flight = max(
                    self.peak_in_flight, self.in_flight
                )
                overloaded = False
        if overloaded:
            raise ServiceError(
                503, "overloaded",
                f"{self.max_in_flight} requests already in flight on "
                f"this worker; retry shortly",
                details={"max_in_flight": self.max_in_flight},
                headers={"Retry-After": str(self.retry_after_s)},
            )
        try:
            return call_next(request)
        finally:
            with self._lock:
                self.in_flight -= 1

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "max_in_flight": self.max_in_flight,
                "in_flight": self.in_flight,
                "peak_in_flight": self.peak_in_flight,
                "shed": self.shed,
            }


# ----------------------------------------------------------------------
# Validation
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Field:
    """Declarative spec of one JSON body field.

    ``type`` is the Python type the value must be an instance of after
    coercion (ints are accepted where floats are declared); ``choices``
    restricts values; ``low``/``high`` bound numbers inclusively.
    """

    type: type = object
    required: bool = False
    default: object = None
    choices: Optional[Sequence[object]] = None
    low: Optional[float] = None
    high: Optional[float] = None

    def check(self, name: str, value: object, problems: List[str]) -> object:
        if self.type is float and isinstance(value, int) \
                and not isinstance(value, bool):
            value = float(value)
        if self.type in (int, float) and isinstance(value, bool):
            # bool subclasses int; JSON true/false are not numbers here.
            problems.append(
                f"{name}: expected {self.type.__name__}, got bool"
            )
            return value
        if self.type is not object and not isinstance(value, self.type):
            problems.append(
                f"{name}: expected {self.type.__name__}, "
                f"got {type(value).__name__}"
            )
            return value
        if self.choices is not None and value not in self.choices:
            problems.append(
                f"{name}: must be one of {sorted(map(str, self.choices))}, "
                f"got {value!r}"
            )
        if self.low is not None and isinstance(value, (int, float)) \
                and value < self.low:
            problems.append(f"{name}: must be >= {self.low}, got {value!r}")
        if self.high is not None and isinstance(value, (int, float)) \
                and value > self.high:
            problems.append(f"{name}: must be <= {self.high}, got {value!r}")
        return value


def validate_body(
    body: Optional[dict], schema: Mapping[str, Field], endpoint: str
) -> dict:
    """Validate and normalise a JSON body against a field schema.

    Returns a new dict with defaults filled in.  All problems are
    collected and reported together — clients fix a bad request in one
    round-trip, not one field at a time.
    """
    if body is None:
        body = {}
    if not isinstance(body, dict):
        raise ServiceError(
            400, "invalid-request",
            f"{endpoint}: request body must be a JSON object",
        )
    problems: List[str] = []
    unknown = sorted(set(body) - set(schema))
    if unknown:
        problems.append(f"unknown fields: {unknown}")
    normalised: dict = {}
    for name, spec in schema.items():
        if name in body:
            normalised[name] = spec.check(name, body[name], problems)
        elif spec.required:
            problems.append(f"{name}: required field is missing")
        else:
            normalised[name] = spec.default
    if problems:
        raise ServiceError(
            400, "invalid-request",
            f"{endpoint}: invalid request body",
            details=problems,
        )
    return normalised


class ValidationMiddleware(Middleware):
    """Applies the endpoint's :func:`validate_body` schema, if declared.

    The normalised body replaces ``request.body``, so handlers see
    defaults already filled in and never re-validate.
    """

    name = "validation"

    def __init__(self, schemas: Mapping[str, Mapping[str, Field]]) -> None:
        self.schemas = dict(schemas)

    def handle(self, request: Request, call_next: Handler) -> Response:
        schema = self.schemas.get(request.endpoint)
        if schema is not None:
            request.body = validate_body(
                request.body, schema, request.endpoint
            )
        return call_next(request)


# ----------------------------------------------------------------------
# Response cache
# ----------------------------------------------------------------------
def canonical_body_key(
    endpoint: str, body: Optional[dict], tenant: Optional[str] = None
) -> str:
    """Content key of a request: SHA-256 over canonical JSON.

    The same canonicalisation discipline as the engine's job
    fingerprints (:func:`repro.engine.jobs.job_fingerprint`): sorted
    keys, compact separators, so two dict orderings of the same request
    are the same cache entry.  ``tenant`` (when given) joins the keyed
    payload, so two tenants' identical requests can never share an
    entry — isolation by construction, not by filtering.
    """
    keyed: dict = {"endpoint": endpoint, "body": body or {}}
    if tenant is not None:
        keyed["tenant"] = tenant
    payload = json.dumps(keyed, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class ResponseCacheMiddleware(Middleware):
    """Answers repeated deterministic requests without calling inward.

    Only the endpoints named at construction are cacheable (sweeps,
    configurations — anything whose response is a pure function of the
    validated body); only 2xx responses are stored.  This sits *below*
    validation, so the key is computed over the normalised body — a
    request spelled with explicit defaults hits the same entry as one
    that omitted them.

    The engine's own result cache already makes a repeated sweep free
    of protect + measure executions; this layer removes the remaining
    model-fit and cache-lookup work, so a warm repeat costs one dict
    lookup.

    Entries are **tenant-namespaced**: the key folds in the request
    context's tenant (attached by the auth layer), so one tenant's
    cached responses are unreachable from another tenant's requests —
    and only 2xx responses are ever stored, so a denial (401/403/429)
    can never be replayed to anyone.

    ``should_cache`` (optional) vetoes caching per request — the app
    uses it to bypass requests whose responses are *not* pure functions
    of the body (e.g. dataset specs naming a server-side file that may
    change).  ``key_body`` (optional) canonicalises the request's body
    before keying — the app uses it to fill nested dataset-spec
    defaults, so equivalent spellings share one entry.  ``on_hit``
    (optional) post-processes the fresh copy of a replayed body — the
    app uses it to zero per-request cost counters, which would
    otherwise replay the original request's cost.

    ``spill_dir`` (optional) adds a persistent disk tier shared across
    processes: stored responses are written through as atomic JSON
    records keyed by the same content key, and a memory miss probes the
    disk before calling inward — which is how one pre-fork worker's
    sweep becomes every sibling worker's (and every restart's) cache
    hit.  Torn or corrupt records read as misses and are quarantined.
    """

    name = "response_cache"

    def __init__(
        self,
        cacheable: Sequence[str],
        max_entries: int = 1024,
        should_cache: Optional[Callable[[Request], bool]] = None,
        key_body: Optional[Callable[[Request], Optional[dict]]] = None,
        on_hit: Optional[Callable[[dict], dict]] = None,
        spill_dir=None,
    ) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be at least 1")
        self.cacheable = frozenset(cacheable)
        self.max_entries = int(max_entries)
        self.should_cache = should_cache
        self.key_body = key_body
        self.on_hit = on_hit
        self.spill_dir = Path(spill_dir) if spill_dir is not None else None
        self._lock = threading.Lock()
        self._entries: Dict[str, Response] = {}
        self.hits = 0
        self.misses = 0
        self.spill_hits = 0

    def _spill_path(self, key: str) -> "Path":
        assert self.spill_dir is not None
        return self.spill_dir / key[:2] / f"{key}.json"

    def _read_spill(self, key: str) -> Optional[Response]:
        """The spilled response under ``key``, or ``None`` on a miss."""
        # Imported lazily: the service layer sits above the framework,
        # whose store module owns the atomic/quarantining record IO.
        from ..framework.store import read_json_payload

        payload = read_json_payload(self._spill_path(key), "response")
        if payload is None:
            return None
        status, body = payload.get("status"), payload.get("body")
        headers = payload.get("headers")
        if not isinstance(status, int) or not isinstance(body, dict) \
                or not isinstance(headers, dict):
            return None
        return Response(status=status, body=body, headers=headers)

    def _write_spill(self, key: str, response: Response) -> None:
        """Persist one stored response; IO failures only cost warmth
        (and count against the ``response_spill`` circuit breaker)."""
        from ..framework.store import write_json_atomic
        from ..resilience.breaker import write_guarded

        payload = {
            "format_version": 1,
            "kind": "response",
            "status": response.status,
            "body": response.body,
            "headers": dict(response.headers),
        }
        try:
            write_guarded(
                "response_spill",
                lambda: write_json_atomic(payload, self._spill_path(key)),
            )
        except (TypeError, ValueError):
            pass

    def handle(self, request: Request, call_next: Handler) -> Response:
        if request.endpoint not in self.cacheable or (
            self.should_cache is not None and not self.should_cache(request)
        ):
            return call_next(request)
        body_for_key = (
            self.key_body(request) if self.key_body is not None
            else request.body
        )
        # The tenant is part of the key whenever one is attached — a
        # pipeline without an auth layer keys tenant-lessly, exactly as
        # before the tenant model existed.
        tenant = request.context.get("tenant")
        key = canonical_body_key(
            request.endpoint, body_for_key,
            tenant=str(tenant) if tenant is not None else None,
        )
        with self._lock:
            hit = self._entries.get(key)
        from_spill = False
        if hit is None and self.spill_dir is not None:
            # Disk probe outside the lock (pure IO); a hit is promoted
            # into the memory tier so repeats stay a dict lookup.
            hit = self._read_spill(key)
            from_spill = hit is not None
        if hit is not None:
            with self._lock:
                self.hits += 1
                if from_spill:
                    self.spill_hits += 1
                    if key not in self._entries:
                        if len(self._entries) >= self.max_entries:
                            self._entries.pop(next(iter(self._entries)))
                        self._entries[key] = hit
            request.context["response_cache_hit"] = True
            # Fresh copies, body included: in-process callers receive
            # the response dict itself, and must not be able to mutate
            # the cached entry through it.
            body = copy.deepcopy(hit.body)
            if self.on_hit is not None:
                body = self.on_hit(body)
            return Response(
                status=hit.status,
                body=body,
                headers=dict(hit.headers, **{"X-Response-Cache": "hit"}),
            )
        response = call_next(request)
        stored: Optional[Response] = None
        with self._lock:
            self.misses += 1
            if response.ok:
                if len(self._entries) >= self.max_entries:
                    # Drop the oldest entry (dicts preserve insertion
                    # order) — a plain bound, not an LRU, is enough for
                    # a cache of whole sweep responses.
                    self._entries.pop(next(iter(self._entries)))
                stored = Response(
                    status=response.status,
                    body=copy.deepcopy(response.body),
                    headers=dict(response.headers),
                )
                self._entries[key] = stored
        if stored is not None and self.spill_dir is not None:
            # Written through after releasing the lock: concurrent
            # requests never queue behind a JSON dump, and a torn file
            # from a crash mid-write reads back as a quarantined miss.
            self._write_spill(key, stored)
        response.headers.setdefault("X-Response-Cache", "miss")
        return response

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "spill_hits": self.spill_hits,
                "spill": self.spill_dir is not None,
            }

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
        if self.spill_dir is not None and self.spill_dir.exists():
            # Invalidation must reach the shared tier too, or a cleared
            # entry would resurrect from disk on the next miss.
            for path in self.spill_dir.glob("*/*.json"):
                try:
                    path.unlink()
                except OSError:
                    pass
