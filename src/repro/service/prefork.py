"""Pre-fork multi-worker serving for the configuration service.

:func:`serve_prefork` reserves the listening address once, forks N
workers, and supervises them.  Each worker runs the *existing* stack —
its own post-fork :class:`~repro.service.app.ConfigService` (middleware
pipeline, job manager, engine pools) behind the same threaded HTTP
server ``serve()`` uses — so a fleet of workers behaves exactly like N
independent daemons sharing one port and one ``shared_dir``.

Two socket strategies, picked at runtime:

``SO_REUSEPORT`` (Linux, modern BSDs)
    The parent binds a non-listening *guard* socket to reserve the
    port (and resolve ``port=0``); every worker then binds + listens
    on its **own** ``SO_REUSEPORT`` socket.  The kernel load-balances
    incoming connections across the listening sockets, and a guard
    that never calls ``listen()`` never joins the balancing group.

inherited-socket fallback
    The parent binds *and listens* once; forked workers adopt the
    inherited socket and compete on ``accept()``.  Connections queue
    in the shared backlog, so no request is lost during a restart.

Supervision: a worker that exits unexpectedly is restarted; too many
deaths inside a sliding window means a crash loop, and the supervisor
gives up with exit status 1 rather than fork-bombing.  SIGTERM/SIGINT
fan out to the workers, each drains with the usual ``grace_s`` bound,
and stragglers are SIGKILLed after grace (plus a margin) expires.

Everything here is stdlib; ``os.fork`` limits pre-fork mode to POSIX
platforms (the single-process path is unaffected elsewhere).
"""

from __future__ import annotations

import errno
import logging
import os
import select
import signal
import socket
import sys
import time
import traceback
from typing import Callable, Dict, Optional

logger = logging.getLogger("repro.service.prefork")

__all__ = ["serve_prefork", "reuseport_available"]

#: Crash-loop policy: more than this many unexpected worker deaths
#: within :data:`CRASH_WINDOW_S` seconds aborts the supervisor.
CRASH_STRIKES = 5
CRASH_WINDOW_S = 30.0

#: How long the parent waits for the initial fleet to signal ready.
BOOT_TIMEOUT_S = 60.0


class _SignalExit(Exception):
    """Raised *from the signal handler* to break out of ``waitpid``.

    Python retries interrupted syscalls after a handler returns
    (PEP 475), so a handler that merely sets a flag would leave the
    supervisor blocked in ``os.waitpid`` until the next worker death.
    Raising unwinds immediately.
    """

    def __init__(self, signo: int) -> None:
        super().__init__(signo)
        self.signo = signo


def reuseport_available() -> bool:
    """Whether this platform supports ``SO_REUSEPORT`` load balancing."""
    if not hasattr(socket, "SO_REUSEPORT"):
        return False
    try:
        probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    except OSError:
        return False
    try:
        probe.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        return True
    except OSError:
        return False
    finally:
        probe.close()


def _worker_server(app, host: str, port: int, inherited, use_reuseport):
    """Bind this worker's HTTP server under the chosen socket strategy."""
    server = app.make_server(host, port, bind_and_activate=False)
    if use_reuseport:
        # Fresh per-worker socket: joins the kernel's balancing group.
        server.socket.setsockopt(
            socket.SOL_SOCKET, socket.SO_REUSEPORT, 1
        )
        server.server_bind()
        server.server_activate()
    else:
        # Adopt the parent's already-listening socket; the default
        # unbound one the server constructed is discarded.
        server.socket.close()
        server.socket = inherited
        server.server_address = inherited.getsockname()
        host_name, server.server_port = server.server_address[:2]
        server.server_name = socket.getfqdn(host_name)
    return server


def _worker_main(
    make_service, host: str, port: int, grace_s: float,
    inherited, use_reuseport: bool, ready_fd: Optional[int],
) -> None:
    """Run one worker to completion; never returns (``os._exit``).

    ``os._exit`` (not ``sys.exit``) so a forked child can never fall
    back into the parent's stack — no double-flushed buffers, no
    second supervisor loop.
    """
    status = 1
    try:
        def _drain(signo, frame):
            # Same exception Ctrl-C raises: one shutdown path for
            # direct SIGINT (terminal process group) and the parent's
            # SIGTERM fan-out.
            raise KeyboardInterrupt

        signal.signal(signal.SIGTERM, _drain)
        signal.signal(signal.SIGINT, _drain)
        # The service (thread pools, job workers, engine state) must be
        # built *after* the fork: threads do not survive fork, and a
        # pre-fork JobManager would carry dead workers into the child.
        app = make_service()
        server = _worker_server(app, host, port, inherited, use_reuseport)
        if ready_fd is not None:
            os.write(ready_fd, b"1")
            os.close(ready_fd)
        try:
            server.serve_forever()
        except KeyboardInterrupt:
            pass
        finally:
            server.server_close()
            app.close(grace_s=grace_s)
        status = 0
    except BaseException:
        traceback.print_exc()
        status = 1
    finally:
        os._exit(status)


def serve_prefork(
    host: str,
    port: int,
    make_service: Callable[[], object],
    processes: int,
    grace_s: float = 10.0,
    ready=None,
) -> int:
    """Fork ``processes`` workers over one address and supervise them.

    ``make_service`` builds a fresh :class:`ConfigService` inside each
    worker (post-fork).  ``ready`` (a :class:`threading.Event`, if
    given) is set once every initial worker has bound and is accepting.
    Returns the supervisor's exit status: 0 on a clean signal-driven
    shutdown, 1 on boot failure or a crash loop.
    """
    if not hasattr(os, "fork"):
        raise RuntimeError(
            "pre-fork mode requires os.fork (POSIX); "
            "run with --processes 1 on this platform"
        )
    use_reuseport = reuseport_available()
    guard = None
    inherited = None
    if use_reuseport:
        guard = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        guard.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        guard.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        # bind without listen: reserves the port across worker
        # restarts and resolves port=0, but never receives connections.
        guard.bind((host, port))
        bound_host, bound_port = guard.getsockname()[:2]
    else:
        inherited = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        inherited.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        inherited.bind((host, port))
        inherited.listen(128)
        bound_host, bound_port = inherited.getsockname()[:2]

    children: Dict[int, int] = {}  # pid -> worker slot (for logs)
    death_times: list = []

    def _spawn(slot: int, handshake: bool) -> Optional[int]:
        """Fork one worker; returns the parent's ready-pipe fd."""
        read_fd = write_fd = None
        if handshake:
            read_fd, write_fd = os.pipe()
        pid = os.fork()
        if pid == 0:
            # --- child ---
            if read_fd is not None:
                os.close(read_fd)
            if guard is not None:
                guard.close()
            _worker_main(
                make_service, bound_host, bound_port, grace_s,
                inherited, use_reuseport, write_fd,
            )
            raise AssertionError("unreachable")  # _worker_main exits
        # --- parent ---
        if write_fd is not None:
            os.close(write_fd)
        children[pid] = slot
        logger.info("worker %d started (pid %d)", slot, pid)
        return read_fd

    def _signal_all(signo: int) -> None:
        for pid in list(children):
            try:
                os.kill(pid, signo)
            except ProcessLookupError:
                pass

    def _shutdown(status: int) -> int:
        # Ignore further signals: a second Ctrl-C must not unwind the
        # drain sequence half way through.
        signal.signal(signal.SIGTERM, signal.SIG_IGN)
        signal.signal(signal.SIGINT, signal.SIG_IGN)
        _signal_all(signal.SIGTERM)
        deadline = time.monotonic() + grace_s + 5.0
        while children and time.monotonic() < deadline:
            try:
                pid, _ = os.waitpid(-1, os.WNOHANG)
            except ChildProcessError:
                children.clear()
                break
            if pid == 0:
                time.sleep(0.05)
                continue
            children.pop(pid, None)
        if children:
            logger.warning(
                "%d worker(s) outlived the grace period; killing",
                len(children),
            )
            _signal_all(signal.SIGKILL)
            for pid in list(children):
                try:
                    os.waitpid(pid, 0)
                except ChildProcessError:
                    pass
                children.pop(pid, None)
        for sock in (guard, inherited):
            if sock is not None:
                sock.close()
        return status

    ready_fds = []
    for slot in range(processes):
        ready_fds.append(_spawn(slot, handshake=True))

    # Wait for every initial worker to report "bound and accepting".
    deadline = time.monotonic() + BOOT_TIMEOUT_S
    for fd in ready_fds:
        ok = False
        while time.monotonic() < deadline:
            timeout = max(0.0, deadline - time.monotonic())
            try:
                readable, _, _ = select.select([fd], [], [], timeout)
            except OSError as exc:
                if exc.errno == errno.EINTR:
                    continue
                raise
            if not readable:
                break
            data = os.read(fd, 1)
            ok = bool(data)  # b"" = EOF: the worker died before ready
            break
        os.close(fd)
        if not ok:
            print("worker failed to start; aborting", file=sys.stderr,
                  flush=True)
            return _shutdown(1)

    mode = "SO_REUSEPORT" if use_reuseport else "shared accept"
    logger.info(
        "pre-fork supervisor: %d workers on http://%s:%d via %s",
        processes, bound_host, bound_port, mode,
    )
    print(
        f"repro-lppm service listening on http://{bound_host}:{bound_port} "
        f"({processes} workers, {mode})",
        flush=True,
    )
    if ready is not None:
        ready.set()

    def _raise_exit(signo, frame):
        raise _SignalExit(signo)

    signal.signal(signal.SIGTERM, _raise_exit)
    signal.signal(signal.SIGINT, _raise_exit)
    try:
        while True:
            try:
                pid, status = os.waitpid(-1, 0)
            except ChildProcessError:
                # All workers gone without a signal: crash loop already
                # handled below would normally catch this first.
                return _shutdown(1)
            slot = children.pop(pid, None)
            if slot is None:
                continue  # not ours (e.g. a grandchild reparented in)
            code = (
                os.waitstatus_to_exitcode(status)
                if hasattr(os, "waitstatus_to_exitcode") else status
            )
            logger.warning(
                "worker %d (pid %d) exited unexpectedly (%s); restarting",
                slot, pid, code,
            )
            now = time.monotonic()
            death_times.append(now)
            death_times[:] = [
                t for t in death_times if now - t <= CRASH_WINDOW_S
            ]
            if len(death_times) > CRASH_STRIKES:
                print(
                    "workers are crash-looping "
                    f"(> {CRASH_STRIKES} deaths in {CRASH_WINDOW_S:.0f}s); "
                    "giving up",
                    file=sys.stderr, flush=True,
                )
                return _shutdown(1)
            _spawn(slot, handshake=False)
    except _SignalExit as exc:
        name = signal.Signals(exc.signo).name
        print(f"{name} received: draining {len(children)} worker(s)",
              flush=True)
        return _shutdown(0)
