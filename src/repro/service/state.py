"""Shared state of the configuration service.

The daemon's whole point is amortisation: one long-lived
:class:`~repro.engine.EvaluationEngine` (with its warm two-tier result
cache), one registry of loaded datasets, and one registry of fitted
:class:`~repro.framework.Configurator` models — shared by every request
instead of being rebuilt per CLI invocation.

Datasets are named by *content*: the canonical JSON of the request's
dataset spec is the registry key, so two clients asking for the same
synthetic fleet (or the same CSV path) share one in-memory dataset, one
engine fingerprint, and one fitted model.  The dataset registry is a
bounded **LRU**: the least recently requested dataset (with its fitted
configurators) is evicted when the bound is hit, so hot workloads stay
resident under scenario-diverse traffic.

Named scenarios (:mod:`repro.scenarios`) plug in as a fourth spec form:
``{"scenario": "taxi", "users": 5}`` resolves through the state's own
:class:`~repro.scenarios.ScenarioRegistry` — seeded with the built-in
workloads, extended by ``POST /datasets`` — and is keyed by the
scenario's *content fingerprint*, so re-registering a name under a
different spec (or editing a file-backed scenario's data) can never
serve stale datasets or stale cached responses.

Concurrency: the :class:`~repro.engine.EvaluationEngine` is itself
thread-safe (its bookkeeping sits under an internal lock, the protect +
measure work runs outside it), so requests and job workers evaluate
concurrently without any state-wide evaluation lock.  What *is*
deduplicated is model fitting: one never-shared-with-evaluation lock
per (dataset, resolution) key means two callers asking for the same
fit pay it once, while fits for different keys proceed in parallel.
The registry dicts sit under a separate, never-held-long lock, so
``/healthz``, ``/metrics`` and job-status polls stay responsive while
sweeps run.
"""

from __future__ import annotations

import hashlib
import os
import threading
import time
from collections import OrderedDict
from pathlib import Path
from typing import Callable, Dict, Optional, Tuple

from ..engine import EvaluationEngine
from ..framework import Configurator, geo_ind_system
from ..framework.spec import SystemDefinition
from ..framework.store import read_json_payload, write_json_atomic
from ..mobility import Dataset, Trace, read_csv
from ..scenarios import ScenarioRegistry, ScenarioSpec
from ..streaming import SessionManager
from ..synth import (
    CommuterConfig,
    TaxiFleetConfig,
    generate_commuters,
    generate_taxi_fleet,
)
from .middleware import ANONYMOUS_TENANT, ServiceError, canonical_body_key

__all__ = [
    "ServiceState",
    "resolve_dataset_spec",
    "resolve_scenario_spec",
    "normalised_dataset_spec",
]

#: Synthetic workloads a dataset spec may name.
_WORKLOADS = ("taxi", "commuters")


def normalised_dataset_spec(spec):
    """A workload spec with its omitted defaults made explicit.

    Pure (no IO): ``{"workload": "taxi"}`` and
    ``{"workload": "taxi", "users": 10, "seed": 0}`` describe the same
    data, and everything that keys on a spec — the dataset registry,
    the response cache — must see one spelling.  Non-workload specs
    pass through unchanged.
    """
    if isinstance(spec, dict) and "workload" in spec:
        return dict(
            spec, users=spec.get("users", 10), seed=spec.get("seed", 0)
        )
    return spec


def merge_scenario_spec(spec: dict, registry: ScenarioRegistry):
    """The merged (base + overrides) spec a scenario form describes.

    Every key besides ``scenario`` is a parameter override, validated
    by the scenario kind itself — so ``{"scenario": "taxi", "users": 5,
    "seed": 1}`` is the five-cab fleet regardless of what the
    registered base spec says.  Errors map to the service's typed
    vocabulary: unknown name → 404, bad overrides → 400.
    """
    name = spec.get("scenario")
    if not isinstance(name, str) or not name:
        raise ServiceError(
            400, "invalid-dataset", "scenario must be a non-empty string"
        )
    try:
        base = registry.get(name)
    except KeyError:
        raise ServiceError(
            404, "scenario-not-found",
            f"no scenario named {name!r}; known: {registry.names()}",
        )
    overrides = {k: v for k, v in spec.items() if k != "scenario"}
    try:
        return base.with_params(**overrides)
    except (TypeError, ValueError) as exc:
        raise ServiceError(
            400, "invalid-dataset", f"scenario {name!r}: {exc}"
        )


def _resolve_merged(
    merged, registry: ScenarioRegistry, fingerprint: Optional[str] = None
) -> Dataset:
    """Resolve a merged spec through the registry, with typed errors."""
    try:
        return registry.resolve_spec(merged, fingerprint=fingerprint)
    except FileNotFoundError as exc:
        raise ServiceError(404, "dataset-not-found", str(exc))
    except (ValueError, OSError) as exc:
        raise ServiceError(
            400, "invalid-dataset",
            f"scenario {merged.name!r} failed to resolve: {exc}",
        )


def resolve_scenario_spec(
    spec: dict, registry: ScenarioRegistry
) -> Dataset:
    """Resolve a ``{"scenario": name, **overrides}`` dataset spec
    through the registry's LRU; a file-backed scenario whose path
    vanished is a typed 404."""
    return _resolve_merged(merge_scenario_spec(spec, registry), registry)


def resolve_dataset_spec(
    spec: dict, registry: Optional[ScenarioRegistry] = None
) -> Dataset:
    """Build the dataset a request's ``dataset`` spec describes.

    Exactly one of four forms:

    * ``{"path": "traces.csv"}`` — a CSV file on the server's disk;
    * ``{"workload": "taxi"|"commuters", "users": N, "seed": S}`` — a
      synthetic workload, generated deterministically;
    * ``{"records": [[user, time_s, lat, lon], ...]}`` — inline data;
    * ``{"scenario": "name", ...overrides}`` — a named scenario from
      ``registry`` (:class:`~repro.scenarios.ScenarioRegistry`),
      resolved through its LRU dataset cache.
    """
    if not isinstance(spec, dict):
        raise ServiceError(
            400, "invalid-dataset", "dataset spec must be a JSON object"
        )
    if "scenario" in spec:
        # Scenario form first: its other keys are parameter overrides
        # (the scenario kind validates them), not competing forms —
        # this must agree with the cache keying in scenario_key_spec,
        # or a spec would 400 cold and succeed warm.
        if registry is None:
            # Standalone callers see the process-global registry; the
            # service always passes its own per-instance one.
            from ..scenarios import default_registry

            registry = default_registry()
        return resolve_scenario_spec(spec, registry)
    forms = [k for k in ("path", "workload", "records") if k in spec]
    if len(forms) != 1:
        raise ServiceError(
            400, "invalid-dataset",
            "dataset spec needs exactly one of 'path', 'workload', "
            f"'records' or 'scenario'; got {sorted(spec) or 'nothing'}",
        )
    allowed = {
        "path": {"path"},
        "workload": {"workload", "users", "seed"},
        "records": {"records"},
    }[forms[0]]
    unknown = sorted(set(spec) - allowed)
    if unknown:
        # Strictness is load-bearing, not pedantry: unrecognised keys
        # would change registry/cache keys without changing the data.
        raise ServiceError(
            400, "invalid-dataset",
            f"unknown dataset spec fields: {unknown}",
        )
    if "path" in spec:
        try:
            return read_csv(spec["path"])
        except FileNotFoundError:
            raise ServiceError(
                404, "dataset-not-found", f"no such file: {spec['path']}"
            )
        except (ValueError, OSError) as exc:
            raise ServiceError(
                400, "invalid-dataset", f"unreadable CSV: {exc}"
            )
    if "workload" in spec:
        # Read the generation inputs through the same normalisation
        # that keys the registries, so key and data cannot drift.
        spec = normalised_dataset_spec(spec)
        workload = spec["workload"]
        if workload not in _WORKLOADS:
            raise ServiceError(
                400, "invalid-dataset",
                f"workload must be one of {list(_WORKLOADS)}, "
                f"got {workload!r}",
            )
        users = spec["users"]
        seed = spec["seed"]
        if not isinstance(users, int) or isinstance(users, bool) or users < 1:
            raise ServiceError(
                400, "invalid-dataset", "users must be a positive integer"
            )
        if not isinstance(seed, int) or isinstance(seed, bool):
            raise ServiceError(400, "invalid-dataset", "seed must be an integer")
        if workload == "taxi":
            return generate_taxi_fleet(TaxiFleetConfig(n_cabs=users, seed=seed))
        return generate_commuters(CommuterConfig(n_users=users, seed=seed))
    records = spec["records"]
    if not isinstance(records, list) or not records:
        raise ServiceError(
            400, "invalid-dataset", "records must be a non-empty list"
        )
    by_user: Dict[str, list] = {}
    for i, row in enumerate(records):
        if not isinstance(row, list) or len(row) != 4:
            raise ServiceError(
                400, "invalid-dataset",
                f"records[{i}]: expected [user, time_s, lat, lon]",
            )
        user, t, lat, lon = row
        if not isinstance(user, str) or not user:
            raise ServiceError(
                400, "invalid-dataset",
                f"records[{i}]: user must be a non-empty string",
            )
        try:
            by_user.setdefault(user, []).append(
                (float(t), float(lat), float(lon))
            )
        except (TypeError, ValueError):
            raise ServiceError(
                400, "invalid-dataset",
                f"records[{i}]: time/lat/lon must be numbers",
            )
    try:
        traces = [
            Trace(
                user,
                [r[0] for r in rows],
                [r[1] for r in rows],
                [r[2] for r in rows],
            )
            for user, rows in by_user.items()
        ]
        return Dataset.from_traces(traces)
    except ValueError as exc:
        raise ServiceError(400, "invalid-dataset", str(exc))


class ServiceState:
    """Everything one service instance shares across requests.

    Parameters
    ----------
    engine:
        The shared evaluation engine; ``None`` builds a serial one.
        Pass ``EvaluationEngine(engine="process", cache_dir=...)`` for
        the production shape: parallel batches over a durable cache.
    system_factory:
        Builds the :class:`SystemDefinition` analysed by ``/sweep``,
        ``/configure`` and ``/recommend`` (default: the paper's GEO-I
        illustration).
    max_datasets:
        Bound on the dataset registry; the least recently used entry
        is evicted (with its fitted configurators) when the bound is
        hit.
    scenarios:
        The scenario registry backing ``{"scenario": ...}`` dataset
        specs and the ``/datasets`` endpoints; ``None`` builds a fresh
        one seeded with the built-in workloads.
    """

    def __init__(
        self,
        engine: Optional[EvaluationEngine] = None,
        system_factory: Callable[[], SystemDefinition] = geo_ind_system,
        max_datasets: int = 32,
        scenarios: Optional[ScenarioRegistry] = None,
        shared_dir=None,
    ) -> None:
        if max_datasets < 1:
            raise ValueError("max_datasets must be at least 1")
        self.engine = engine if engine is not None else EvaluationEngine()
        self.system = system_factory()
        #: Root of the cross-process warm-state directory (response
        #: spill + shared job store), ``None`` for a purely in-memory
        #: single-process service.  Held here for introspection
        #: (``/healthz`` reports it); the app wires the tiers.
        self.shared_dir = Path(shared_dir) if shared_dir is not None else None
        self.max_datasets = int(max_datasets)
        self.scenarios = (
            scenarios if scenarios is not None else ScenarioRegistry()
        )
        #: Named tenants' private scenario registries, created lazily on
        #: first use (each seeded with the built-ins).  The anonymous
        #: tenant keeps :attr:`scenarios` — the pre-tenant behaviour.
        self._tenant_scenarios: Dict[str, ScenarioRegistry] = {}
        # Scenario registrations persist under shared_dir so pre-fork
        # siblings (and restarts) see one tenant-namespaced registry
        # instead of per-process islands.
        self._scenario_store_lock = threading.Lock()
        self._scenario_mtimes: Dict[str, int] = {}
        #: Live streaming protection sessions (``/stream/...``); window
        #: metrics of evicted/closed sessions flush to the shared
        #: directory so a drain never loses the final numbers.
        self.streaming = SessionManager(
            flush_dir=(
                self.shared_dir / "streaming"
                if self.shared_dir is not None else None
            ),
        )
        self.started_at = time.time()
        self._monotonic_start = time.monotonic()
        # Guards only the registry dicts (and the fit-lock table).
        # Never held while evaluating, so introspection endpoints and
        # job-status polls never queue behind a sweep.
        self._registry_lock = threading.Lock()
        #: key -> dataset in LRU order (least recently used first).
        self._datasets: "OrderedDict[str, Dataset]" = OrderedDict()
        self._configurators: Dict[Tuple[str, int, int, int], Configurator] = {}
        # One lock per in-flight fit key: concurrent requests for the
        # SAME (dataset, resolution) deduplicate into one fit; fits for
        # different keys run in parallel on the thread-safe engine.
        self._fit_locks: Dict[Tuple[str, int, int, int], threading.Lock] = {}

    # ------------------------------------------------------------------
    # Registries
    # ------------------------------------------------------------------
    def scenarios_for(self, tenant: Optional[str] = None) -> ScenarioRegistry:
        """The scenario registry serving ``tenant``.

        The anonymous tenant (and tenant-less internal callers) share
        the instance-wide :attr:`scenarios` registry — exactly the
        pre-tenant behaviour — while every named tenant gets a private
        registry, created lazily and seeded with the built-ins.  One
        tenant's ``POST /datasets`` registrations are therefore
        invisible to (and un-evictable by) every other tenant.
        """
        if tenant is None or tenant == ANONYMOUS_TENANT:
            registry = self.scenarios
            tenant = ANONYMOUS_TENANT
        else:
            with self._registry_lock:
                registry = self._tenant_scenarios.get(tenant)
                if registry is None:
                    registry = ScenarioRegistry()
                    self._tenant_scenarios[tenant] = registry
        self._sync_scenarios(tenant, registry)
        return registry

    # ------------------------------------------------------------------
    # Scenario persistence (pre-fork visibility)
    # ------------------------------------------------------------------
    def _scenario_store_path(self, tenant: str) -> Optional[Path]:
        """Where ``tenant``'s registrations persist, or ``None``.

        The filename embeds a sanitised tenant name (readable) plus a
        hash of the exact name (collision-free even for tenants that
        sanitise identically).
        """
        if self.shared_dir is None:
            return None
        safe = "".join(
            c if c.isalnum() or c in "._-" else "_" for c in tenant
        ) or "tenant"
        digest = hashlib.sha256(tenant.encode("utf-8")).hexdigest()[:8]
        return self.shared_dir / "scenarios" / f"{safe}-{digest}.json"

    def _sync_scenarios(
        self, tenant: str, registry: ScenarioRegistry
    ) -> None:
        """Fold a sibling worker's persisted registrations into ``registry``.

        Cheap on the hot path: one ``stat`` per lookup; the file is only
        re-read when its mtime moved (a sibling registered something).
        Corrupt files are quarantined by the payload reader and read as
        empty — a torn write never poisons the registry.
        """
        path = self._scenario_store_path(tenant)
        if path is None:
            return
        try:
            mtime_ns = os.stat(path).st_mtime_ns
        except OSError:
            return
        with self._scenario_store_lock:
            if self._scenario_mtimes.get(tenant) == mtime_ns:
                return
            payload = read_json_payload(path, "scenario_registry")
            self._scenario_mtimes[tenant] = mtime_ns
        if payload is None:
            return
        scenarios = payload.get("scenarios")
        if not isinstance(scenarios, list):
            return
        for item in scenarios:
            if not isinstance(item, dict):
                continue
            try:
                spec = ScenarioSpec.make(
                    item.get("name"), item.get("kind"),
                    item.get("params") or {}, item.get("description") or "",
                )
                registry.register(spec, replace=True)
            except (TypeError, ValueError):
                # One bad record must not block the rest of the file.
                continue

    def register_scenario(
        self,
        spec: ScenarioSpec,
        tenant: Optional[str] = None,
        replace: bool = False,
    ) -> ScenarioRegistry:
        """Register ``spec`` in ``tenant``'s registry, persisting it.

        With a ``shared_dir``, the tenant's full registration list is
        written through as an atomic JSON record — so a registration
        accepted by one pre-fork worker is visible to its siblings (and
        survives restarts).  Raises :class:`ValueError` exactly as
        :meth:`ScenarioRegistry.register` does on a conflicting name.
        """
        tenant_key = tenant if tenant else ANONYMOUS_TENANT
        registry = self.scenarios_for(tenant_key)
        registry.register(spec, replace=replace)
        path = self._scenario_store_path(tenant_key)
        if path is not None:
            with self._scenario_store_lock:
                payload = {
                    "format_version": 1,
                    "kind": "scenario_registry",
                    "tenant": tenant_key,
                    "scenarios": [s.to_jsonable() for s in registry.specs()],
                }
                # Persistence is best-effort through the ``scenarios``
                # circuit breaker: the local registry is authoritative
                # for this worker either way.
                from ..resilience.breaker import write_guarded

                if write_guarded(
                    "scenarios",
                    lambda: write_json_atomic(payload, path),
                ):
                    try:
                        self._scenario_mtimes[tenant_key] = (
                            os.stat(path).st_mtime_ns
                        )
                    except OSError:
                        pass
        return registry

    def _key_spec_of(
        self, spec: dict, tenant: Optional[str] = None
    ) -> dict:
        """The spec as actually keyed: defaults filled, files pinned.

        Workload specs are normalised (omitted ``users``/``seed``
        become their defaults) so equivalent spellings share one
        dataset, one fitted model, and one cache entry.  Path-form
        specs are keyed by the file's identity (mtime and size) as
        well as its name, so a long-running daemon re-reads a CSV that
        changed on disk instead of serving the stale dataset forever.
        Scenario-form specs are keyed by the merged spec's *content
        fingerprint*, which carries the same guarantees: parameter
        spellings canonicalise, and file-backed scenarios pin the file
        tree's identity.
        """
        if not isinstance(spec, dict):
            return spec
        if "scenario" in spec:
            return self.scenario_key_spec(spec, tenant=tenant)
        if set(spec) == {"path"} and isinstance(spec.get("path"), str):
            try:
                stat = os.stat(spec["path"])
            except FileNotFoundError:
                raise ServiceError(
                    404, "dataset-not-found", f"no such file: {spec['path']}"
                )
            except OSError as exc:
                # Exists but cannot be examined (permissions, IO):
                # matches resolve_dataset_spec's diagnosis for a file
                # that fails at open time.
                raise ServiceError(
                    400, "invalid-dataset", f"unreadable CSV: {exc}"
                )
            return dict(spec, _mtime_ns=stat.st_mtime_ns, _size=stat.st_size)
        return normalised_dataset_spec(spec)

    def scenario_key_spec(
        self, spec: dict, tenant: Optional[str] = None
    ) -> dict:
        """Canonical key form of a ``{"scenario": ...}`` dataset spec.

        The key is the merged (base + overrides) spec's content
        fingerprint — and *only* the fingerprint: two names describing
        the same data (a preset and its spelled-out parameterisation)
        share one dataset, one fitted model and one response-cache
        entry, while re-registering a name with a different spec — or
        editing a file-backed scenario's data — changes the key
        instead of serving stale data.  The name resolves against
        ``tenant``'s own registry.
        """
        merged = merge_scenario_spec(spec, self.scenarios_for(tenant))
        return {"scenario_fingerprint": self._fingerprint_of(merged)}

    @staticmethod
    def _fingerprint_of(merged) -> str:
        """A merged scenario spec's fingerprint, with typed errors."""
        try:
            return merged.fingerprint()
        except FileNotFoundError as exc:
            raise ServiceError(404, "dataset-not-found", str(exc))
        except OSError as exc:
            raise ServiceError(
                400, "invalid-dataset",
                f"scenario {merged.name!r} is unreadable: {exc}",
            )

    def dataset_for(
        self, spec: dict, tenant: Optional[str] = None
    ) -> Tuple[str, Dataset]:
        """The (registry key, dataset) for a request's dataset spec.

        ``tenant`` namespaces everything: scenario names resolve in the
        tenant's own registry, and the returned key — which also keys
        the fitted-configurator registry — folds the tenant in, so one
        tenant's resident datasets and models are invisible to (and
        un-evictable through) another tenant's requests.
        """
        registry = self.scenarios_for(tenant)
        if isinstance(spec, dict) and "scenario" in spec:
            # Merge and fingerprint once, resolve against that same
            # identity: for file-backed scenarios each fingerprint is
            # a stat sweep of the tree, and key/data must agree even
            # if a file changes mid-request.
            merged = merge_scenario_spec(spec, registry)
            fingerprint = self._fingerprint_of(merged)
            key_spec: dict = {"scenario_fingerprint": fingerprint}

            def resolve() -> Dataset:
                return _resolve_merged(
                    merged, registry, fingerprint=fingerprint
                )
        else:
            key_spec = self._key_spec_of(spec, tenant=tenant)

            def resolve() -> Dataset:
                return resolve_dataset_spec(spec, registry=registry)

        key = canonical_body_key("dataset", key_spec, tenant=tenant)[:16]
        with self._registry_lock:
            dataset = self._datasets.get(key)
            if dataset is not None:
                self._datasets.move_to_end(key)
        if dataset is None:
            dataset = resolve()
            with self._registry_lock:
                existing = self._datasets.get(key)
                if existing is not None:
                    # Another thread resolved the same spec first; keep
                    # its object so fingerprint memoisation stays shared.
                    dataset = existing
                    self._datasets.move_to_end(key)
                else:
                    while len(self._datasets) >= self.max_datasets:
                        evicted, _ = self._datasets.popitem(last=False)
                        self._configurators = {
                            k: v
                            for k, v in self._configurators.items()
                            if k[0] != evicted
                        }
                        self._fit_locks = {
                            k: v
                            for k, v in self._fit_locks.items()
                            if k[0] != evicted
                        }
                    self._datasets[key] = dataset
        return key, dataset

    def configurator_for(
        self,
        dataset_key: str,
        dataset: Dataset,
        n_points: int,
        n_replications: int,
        base_seed: int = 0,
    ) -> Configurator:
        """A *fitted* configurator for (dataset, sweep resolution).

        Fitting is the expensive offline phase; the registry means each
        (dataset, resolution) pays it once per process — and with a
        warm engine cache, even that one fit performs zero protect +
        measure executions.
        """
        key = (dataset_key, int(n_points), int(n_replications), int(base_seed))
        with self._registry_lock:
            configurator = self._configurators.get(key)
            if configurator is not None:
                return configurator
            fit_lock = self._fit_locks.setdefault(key, threading.Lock())
        with fit_lock:
            # Double-check: a thread that queued behind the fitting one
            # finds the result instead of fitting again.
            with self._registry_lock:
                configurator = self._configurators.get(key)
            if configurator is None:
                configurator = Configurator(
                    self.system,
                    dataset,
                    n_points=n_points,
                    n_replications=n_replications,
                    base_seed=base_seed,
                    engine=self.engine,
                )
                configurator.fit()
                with self._registry_lock:
                    self._configurators[key] = configurator
                    # The result is registered; late arrivals re-check
                    # the registry, so the lock entry can go (a racer
                    # already holding the object just re-checks too).
                    self._fit_locks.pop(key, None)
            return configurator

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def sweep_for(
        self,
        dataset_key: str,
        dataset: Dataset,
        n_points: int,
        n_replications: int,
        base_seed: int = 0,
    ):
        """A sweep result for (dataset, resolution); model fit optional.

        ``/sweep`` responses never use the fitted model, so a sweep
        whose *fit* is degenerate (active region too narrow for the
        paper's log-linear model) is still served.  When the fit does
        succeed, the fitted configurator is registered exactly as
        :meth:`configurator_for` would — the usual case pays nothing
        extra.
        """
        try:
            return self.configurator_for(
                dataset_key, dataset, n_points, n_replications, base_seed
            ).sweep
        except ValueError:
            # The evaluations are in the engine cache; re-aggregating
            # the sweep without the model costs zero executions.
            configurator = Configurator(
                self.system,
                dataset,
                n_points=n_points,
                n_replications=n_replications,
                base_seed=base_seed,
                engine=self.engine,
            )
            return configurator.runner.sweep(n_points=n_points)

    @property
    def uptime_s(self) -> float:
        return time.monotonic() - self._monotonic_start

    @property
    def n_datasets(self) -> int:
        with self._registry_lock:
            return len(self._datasets)

    @property
    def n_configurators(self) -> int:
        with self._registry_lock:
            return len(self._configurators)

    @property
    def n_scenarios(self) -> int:
        """Registered scenarios across every tenant's registry."""
        with self._registry_lock:
            registries = list(self._tenant_scenarios.values())
        return len(self.scenarios) + sum(len(r) for r in registries)

    @property
    def n_tenants(self) -> int:
        """Named tenants with a private scenario registry."""
        with self._registry_lock:
            return len(self._tenant_scenarios)

    def clear_registries(self) -> None:
        """Drop every registered dataset and fitted configurator.

        Scenario *specs* stay registered (they are configuration, not
        cache) but their resolved-dataset LRU is dropped with the rest.
        The engine and its caches are untouched: a re-fit after this
        call re-reads cached evaluations (benchmarks use exactly that
        to isolate the warm-engine tier).
        """
        with self._registry_lock:
            self._datasets.clear()
            self._configurators.clear()
            self._fit_locks.clear()
            tenant_registries = list(self._tenant_scenarios.values())
        self.scenarios.clear_cache()
        for registry in tenant_registries:
            registry.clear_cache()

    def close(self, timeout_s: Optional[float] = None) -> None:
        """Release the engine's backend resources; idempotent.

        ``timeout_s`` bounds the wait for in-flight engine work (the
        daemon passes its shutdown grace period).  Streaming sessions
        flush first — their final window metrics persist to the shared
        directory (when configured) before anything shuts down, so a
        SIGTERM drain never discards a live session's numbers.
        """
        self.streaming.close()
        self.engine.close(timeout_s=timeout_s)
