"""Incremental (online) protection sessions.

The batch layers protect whole datasets; this package is the streaming
counterpart the middleware deployment needs: per-user
:class:`ProtectionSession` streams protected online through
:meth:`~repro.lppm.LPPM.protect_online`, with sliding-window
privacy/utility metrics and a bounded-memory :class:`SessionManager`
that the service and CLI build on.
"""

from .session import (
    DEFAULT_CELL_SIZE_M,
    DEFAULT_WINDOW_S,
    ProtectionSession,
    SessionManager,
)

__all__ = [
    "ProtectionSession",
    "SessionManager",
    "DEFAULT_WINDOW_S",
    "DEFAULT_CELL_SIZE_M",
]
