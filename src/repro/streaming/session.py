"""Incremental protection sessions: the online path of the middleware.

The paper's middleware sits between a user's device and an LBS and
protects location updates *as they happen*; everything else in this
library is batch-shaped.  This module is the incremental counterpart:

* :class:`ProtectionSession` — one ``(tenant, user)`` stream.  Each
  update is protected online through the mechanism's
  :meth:`~repro.lppm.LPPM.protect_online` seam (O(1) per update for
  the separable mechanisms), and privacy/utility metrics are
  maintained over a **sliding time window** — distortion between the
  actual and released records, stay-point/POI exposure of the actual
  window (through the analysis cache, so repeated metric reads of an
  unchanged window are dict lookups), and area-coverage F1 of the
  released window against the actual one.
* :class:`SessionManager` — a bounded, thread-safe registry of live
  sessions: capacity and idle-TTL eviction keep memory bounded, every
  eviction/close **flushes** the final window metrics first (optionally
  persisting them as atomic JSON records under a shared directory, so
  a pre-fork SIGTERM drain never loses the last window's numbers), and
  aggregate counters feed the service's ``GET /metrics``.

Replays are faithful: a session's :meth:`ProtectionSession.result`
re-protects the accumulated batch bit-identically to
:meth:`~repro.lppm.LPPM.protect`, which is what the online/batch
parity suite pins.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from ..analysis import AnalysisCache, pois_of, stay_points_of
from ..framework.store import write_json_atomic
from ..geo import LatLon, SpatialGrid, cell_f1, haversine_m_arrays
from ..lppm import LPPM
from ..mobility import Trace

__all__ = ["ProtectionSession", "SessionManager"]

#: Default sliding-window span: one hour of event time.
DEFAULT_WINDOW_S = 3600.0

#: Default area-coverage granularity (a city block, as in the metrics).
DEFAULT_CELL_SIZE_M = 200.0


class ProtectionSession:
    """One user's live protection stream plus sliding-window metrics.

    Not thread-safe on its own — the :class:`SessionManager` serialises
    updates per session.  Timestamps are event time (the ``time_s`` of
    the pushed records); the window always ends at the newest event
    seen and reaches back ``window_s`` seconds.
    """

    def __init__(
        self,
        lppm: LPPM,
        *,
        user: str = "stream",
        seed: int = 0,
        tenant: str = "anonymous",
        window_s: float = DEFAULT_WINDOW_S,
        cell_size_m: float = DEFAULT_CELL_SIZE_M,
        cache: Optional[AnalysisCache] = None,
    ) -> None:
        if window_s <= 0:
            raise ValueError("window span must be positive")
        self.lppm = lppm
        self.user = str(user)
        self.seed = int(seed)
        self.tenant = str(tenant)
        self.window_s = float(window_s)
        self.cell_size_m = float(cell_size_m)
        self._cache = cache if cache is not None else AnalysisCache()
        self._protector = lppm.protect_online(seed=self.seed, user=self.user)
        # Released (emitted) records paired with their actual inputs,
        # for window distortion/coverage.  Plain lists: appends are
        # O(1) and the window snapshot converts once per metrics read.
        self._pair_times: List[float] = []
        self._pair_actual: Tuple[List[float], List[float]] = ([], [])
        self._pair_released: Tuple[List[float], List[float]] = ([], [])
        self.updates = 0
        self.released = 0
        self.dropped = 0
        self._t_newest = -np.inf
        self._grid: Optional[SpatialGrid] = None
        # Metrics are recomputed only when the stream advanced.
        self._metrics_at = -1
        self._metrics: Optional[dict] = None

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def update(
        self, records: Iterable[Tuple[float, float, float]]
    ) -> List[Optional[Tuple[float, float, float]]]:
        """Protect a batch of ``(time_s, lat, lon)`` updates online.

        Returns one entry per input record: the released
        ``(time_s, lat, lon)`` tuple, or ``None`` when the mechanism
        suppressed the record (subsampling).
        """
        out: List[Optional[Tuple[float, float, float]]] = []
        for time_s, lat, lon in records:
            released = self._protector.push(time_s, lat, lon)
            self.updates += 1
            time_s = float(time_s)
            if time_s > self._t_newest:
                self._t_newest = time_s
            if self._grid is None:
                self._grid = SpatialGrid.around(
                    LatLon(float(lat), float(lon)), self.cell_size_m
                )
            if released is None:
                self.dropped += 1
            else:
                self.released += 1
                self._pair_times.append(time_s)
                self._pair_actual[0].append(float(lat))
                self._pair_actual[1].append(float(lon))
                self._pair_released[0].append(released[1])
                self._pair_released[1].append(released[2])
            out.append(released)
        return out

    # ------------------------------------------------------------------
    # Batch-parity view
    # ------------------------------------------------------------------
    def pushed_trace(self) -> Trace:
        """Every accepted update as a :class:`~repro.mobility.Trace`."""
        return self._protector.pushed_trace()

    def result(self) -> Trace:
        """Batch replay of the whole stream — bit-identical to
        :meth:`~repro.lppm.LPPM.protect` over the pushed trace."""
        return self._protector.result()

    # ------------------------------------------------------------------
    # Sliding-window metrics
    # ------------------------------------------------------------------
    def metrics(self) -> dict:
        """Session counters plus the current window's privacy/utility.

        The window covers event times ``(newest - window_s, newest]``.
        The stay-point/POI extraction of the actual window runs through
        the analysis cache, so re-reading the metrics of an unchanged
        window costs a content-key lookup, not a re-extraction.
        """
        if self._metrics is not None and self._metrics_at == self.updates:
            return self._metrics
        self._metrics = {
            "lppm": self.lppm.name,
            "user": self.user,
            "seed": self.seed,
            "updates": self.updates,
            "released": self.released,
            "dropped": self.dropped,
            "window": self._window_metrics(),
        }
        self._metrics_at = self.updates
        return self._metrics

    def _window_metrics(self) -> dict:
        if self.updates == 0:
            return {"span_s": self.window_s, "records": 0, "released": 0}
        hi = float(self._t_newest)
        lo = hi - self.window_s
        pushed = self.pushed_trace()
        in_window = pushed.times_s > lo
        actual = Trace._from_trusted(
            self.user,
            pushed.times_s[in_window],
            pushed.lats[in_window],
            pushed.lons[in_window],
        )
        pair_times = np.asarray(self._pair_times, dtype=float)
        pair_mask = pair_times > lo
        act_lats = np.asarray(self._pair_actual[0], dtype=float)[pair_mask]
        act_lons = np.asarray(self._pair_actual[1], dtype=float)[pair_mask]
        rel_lats = np.asarray(self._pair_released[0], dtype=float)[pair_mask]
        rel_lons = np.asarray(self._pair_released[1], dtype=float)[pair_mask]

        window: dict = {
            "span_s": self.window_s,
            "from_s": lo,
            "to_s": hi,
            "records": int(len(actual)),
            "released": int(rel_lats.size),
        }
        if rel_lats.size:
            window["distortion_m"] = float(np.mean(haversine_m_arrays(
                act_lats, act_lons, rel_lats, rel_lons
            )))
            window["coverage_f1"] = float(cell_f1(
                self._grid.covered_cells(act_lats, act_lons),
                self._grid.covered_cells(rel_lats, rel_lons),
            ))
        stays = stay_points_of(actual, cache=self._cache)
        window["stay_points"] = len(stays)
        window["pois"] = len(pois_of(actual, cache=self._cache))
        return window

    def flush(self) -> dict:
        """Final metrics of the session (computed, never from cache)."""
        self._metrics = None
        return self.metrics()


class SessionManager:
    """Bounded, thread-safe registry of live protection sessions.

    Sessions are keyed ``(tenant, name)`` so tenants never share or
    even see each other's streams.  Memory stays bounded two ways:
    a capacity bound (least-recently-updated sessions are evicted
    when ``max_sessions`` is exceeded) and an idle TTL (sessions not
    updated for ``idle_ttl_s`` are evicted opportunistically on any
    update and on :meth:`stats`).  Every eviction — and every explicit
    close and the final :meth:`close` — flushes the session's window
    metrics first; with ``flush_dir`` set, flushed windows are also
    persisted as atomic JSON records, the same write discipline as the
    other spill tiers.
    """

    def __init__(
        self,
        *,
        max_sessions: int = 256,
        idle_ttl_s: float = 900.0,
        window_s: float = DEFAULT_WINDOW_S,
        cell_size_m: float = DEFAULT_CELL_SIZE_M,
        flush_dir=None,
        cache: Optional[AnalysisCache] = None,
        clock=time.monotonic,
    ) -> None:
        if max_sessions < 1:
            raise ValueError("max_sessions must be at least 1")
        if idle_ttl_s <= 0:
            raise ValueError("idle TTL must be positive")
        self.max_sessions = int(max_sessions)
        self.idle_ttl_s = float(idle_ttl_s)
        self.window_s = float(window_s)
        self.cell_size_m = float(cell_size_m)
        self.flush_dir = flush_dir
        self._clock = clock
        self._cache = cache if cache is not None else AnalysisCache()
        self._lock = threading.Lock()
        #: (tenant, name) -> session, least recently updated first.
        self._sessions: "OrderedDict[Tuple[str, str], ProtectionSession]" = (
            OrderedDict()
        )
        self._last_update: Dict[Tuple[str, str], float] = {}
        self._flush_counter = 0
        self.sessions_opened = 0
        self.updates_total = 0
        self.evictions = 0
        self.flushes = 0
        self._closed = False

    # ------------------------------------------------------------------
    # Session lifecycle
    # ------------------------------------------------------------------
    def update(
        self,
        tenant: str,
        name: str,
        records: Iterable[Tuple[float, float, float]],
        *,
        lppm: Optional[LPPM] = None,
        user: Optional[str] = None,
        seed: int = 0,
        window_s: Optional[float] = None,
    ) -> Tuple[ProtectionSession, List[Optional[Tuple[float, float, float]]]]:
        """Route a record batch to ``(tenant, name)``, creating it if new.

        The first update must carry ``lppm`` (the configured mechanism);
        later updates may repeat the configuration, but a *conflicting*
        one raises :class:`ValueError` — silently re-configuring a live
        stream would change what its metrics mean.
        """
        key = (str(tenant), str(name))
        with self._lock:
            if self._closed:
                raise RuntimeError("session manager is closed")
            session = self._sessions.get(key)
            if session is None:
                if lppm is None:
                    raise ValueError(
                        f"stream session {name!r} does not exist yet; "
                        "the first update must configure its mechanism"
                    )
                session = ProtectionSession(
                    lppm,
                    user=user if user is not None else name,
                    seed=seed,
                    tenant=tenant,
                    window_s=window_s if window_s is not None else self.window_s,
                    cell_size_m=self.cell_size_m,
                    cache=self._cache,
                )
                self._sessions[key] = session
                self.sessions_opened += 1
            else:
                self._check_config(session, lppm, user, seed, window_s)
            self._sessions.move_to_end(key)
            self._last_update[key] = self._clock()
            evicted = self._over_capacity_locked()
        # Flush evictees and protect outside the lock: neither needs it,
        # and window extraction can be slow.
        for evicted_key, evicted_session in evicted:
            self._flush(evicted_key, evicted_session)
        live = session.update(records)
        with self._lock:
            self.updates_total += len(live)
        self.evict_idle()
        return session, live

    @staticmethod
    def _check_config(
        session: ProtectionSession, lppm, user, seed, window_s
    ) -> None:
        conflicts = []
        if lppm is not None and (
            lppm.name != session.lppm.name
            or dict(lppm.params()) != dict(session.lppm.params())
        ):
            conflicts.append("lppm")
        if user is not None and user != session.user:
            conflicts.append("user")
        if seed is not None and int(seed) != session.seed:
            conflicts.append("seed")
        if window_s is not None and float(window_s) != session.window_s:
            conflicts.append("window_s")
        if conflicts:
            raise ValueError(
                "stream session configuration conflict on: "
                + ", ".join(conflicts)
            )

    def get(self, tenant: str, name: str) -> ProtectionSession:
        """The live session, refreshing its recency; KeyError if absent."""
        key = (str(tenant), str(name))
        with self._lock:
            session = self._sessions.get(key)
            if session is None:
                raise KeyError(f"no live stream session {name!r}")
            return session

    def close_session(self, tenant: str, name: str) -> dict:
        """Flush and remove one session; returns its final metrics."""
        key = (str(tenant), str(name))
        with self._lock:
            session = self._sessions.pop(key, None)
            self._last_update.pop(key, None)
        if session is None:
            raise KeyError(f"no live stream session {name!r}")
        return self._flush(key, session, evicted=False)

    # ------------------------------------------------------------------
    # Eviction and flushing
    # ------------------------------------------------------------------
    def _over_capacity_locked(self):
        evicted = []
        while len(self._sessions) > self.max_sessions:
            key, session = self._sessions.popitem(last=False)
            self._last_update.pop(key, None)
            evicted.append((key, session))
        return evicted

    def evict_idle(self, now: Optional[float] = None) -> int:
        """Evict (and flush) sessions idle past the TTL; returns count."""
        now = self._clock() if now is None else now
        with self._lock:
            idle = [
                key
                for key, last in self._last_update.items()
                if now - last > self.idle_ttl_s
            ]
            evicted = []
            for key in idle:
                session = self._sessions.pop(key, None)
                self._last_update.pop(key, None)
                if session is not None:
                    evicted.append((key, session))
        for key, session in evicted:
            self._flush(key, session)
        return len(evicted)

    def _flush(self, key, session: ProtectionSession, evicted=True) -> dict:
        final = session.flush()
        with self._lock:
            self.flushes += 1
            if evicted:
                self.evictions += 1
            self._flush_counter += 1
            counter = self._flush_counter
        if self.flush_dir is not None:
            from pathlib import Path

            from ..resilience.breaker import write_guarded

            tenant, name = key
            payload = {
                "format_version": 1,
                "kind": "stream_flush",
                "tenant": tenant,
                "session": name,
                "evicted": bool(evicted),
                "metrics": final,
            }
            shard = (
                Path(self.flush_dir)
                / f"flush-{counter:06d}-{abs(hash(key)) % 10**8:08d}.json"
            )
            # Best-effort through the ``stream_flush`` breaker: losing
            # a flush shard on a full disk must not fail the close or
            # eviction that triggered it.
            write_guarded(
                "stream_flush",
                lambda: write_json_atomic(payload, shard),
            )
        return final

    # ------------------------------------------------------------------
    # Observability and shutdown
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """JSON-ready counters for ``GET /metrics``."""
        self.evict_idle()
        with self._lock:
            return {
                "sessions_active": len(self._sessions),
                "sessions_opened": self.sessions_opened,
                "updates_total": self.updates_total,
                "evictions": self.evictions,
                "flushes": self.flushes,
            }

    def close(self) -> None:
        """Flush every live session and refuse further updates.

        Idempotent; called from the service drain path so a SIGTERM
        never loses the final window's numbers.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            remaining = list(self._sessions.items())
            self._sessions.clear()
            self._last_update.clear()
        for key, session in remaining:
            self._flush(key, session, evicted=False)
