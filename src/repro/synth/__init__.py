"""Synthetic mobility workloads standing in for Cabspotting and GeoLife.

See DESIGN.md §2 for the substitution rationale: the paper's datasets
are public but unreachable offline, so the benchmarks run on these
generators; the real-data parsers in ``repro.mobility.io`` accept the
originals unchanged.
"""

from .base import PathSampler, TrackBuilder
from .city import BEIJING_CENTER, SAN_FRANCISCO_CENTER, CityModel
from .commuter import CommuterConfig, beijing_city, generate_commuters
from .taxi import TaxiFleetConfig, generate_taxi_fleet
from .waypoint import (
    LevyFlightConfig,
    RandomWaypointConfig,
    generate_levy_flight,
    generate_random_waypoint,
)

__all__ = [
    "CityModel",
    "SAN_FRANCISCO_CENTER",
    "BEIJING_CENTER",
    "PathSampler",
    "TrackBuilder",
    "TaxiFleetConfig",
    "generate_taxi_fleet",
    "CommuterConfig",
    "generate_commuters",
    "beijing_city",
    "RandomWaypointConfig",
    "generate_random_waypoint",
    "LevyFlightConfig",
    "generate_levy_flight",
]
