"""Shared building blocks for the synthetic mobility generators.

Generators work in a local tangent plane (metres) and convert to
lat/lon only when emitting a :class:`~repro.mobility.Trace`.  Two
primitives cover almost everything: sampling timestamped positions along
a polyline at a travel speed, and emitting jittered positions during a
stationary dwell.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

import numpy as np

from ..geo import LocalProjection
from ..mobility import Trace

__all__ = ["PathSampler", "TrackBuilder"]

XY = Tuple[float, float]


@dataclass
class TrackBuilder:
    """Accumulates ``(t, x, y)`` samples and emits a :class:`Trace`.

    The builder owns the simulation clock: movement and dwell segments
    advance ``now_s`` as a side effect, which keeps generator code linear
    and readable.
    """

    user: str
    projection: LocalProjection
    rng: np.random.Generator
    gps_noise_m: float = 10.0
    now_s: float = 0.0
    _times: List[float] = field(default_factory=list)
    _xs: List[float] = field(default_factory=list)
    _ys: List[float] = field(default_factory=list)

    def emit(self, x: float, y: float) -> None:
        """Record one GPS fix at the current clock, with receiver noise."""
        nx, ny = self.rng.normal(0.0, self.gps_noise_m, size=2)
        self._times.append(self.now_s)
        self._xs.append(x + nx)
        self._ys.append(y + ny)

    def dwell(self, x: float, y: float, duration_s: float, interval_s: float) -> None:
        """Stay at ``(x, y)`` for ``duration_s``, emitting fixes regularly."""
        if duration_s < 0 or interval_s <= 0:
            raise ValueError("dwell needs non-negative duration, positive interval")
        end = self.now_s + duration_s
        while self.now_s < end:
            self.emit(x, y)
            self.now_s += interval_s
        self.now_s = end

    def travel(
        self,
        waypoints: Sequence[XY],
        speed_mps: float,
        interval_s: float,
    ) -> None:
        """Move along ``waypoints`` at ``speed_mps``, emitting fixes regularly."""
        sampler = PathSampler(waypoints)
        if speed_mps <= 0 or interval_s <= 0:
            raise ValueError("travel needs positive speed and interval")
        total_time = sampler.length_m / speed_mps
        end = self.now_s + total_time
        elapsed = 0.0
        while self.now_s < end:
            x, y = sampler.at(elapsed * speed_mps)
            self.emit(x, y)
            self.now_s += interval_s
            elapsed += interval_s
        self.now_s = end

    def skip(self, duration_s: float) -> None:
        """Advance the clock without emitting (device off / no signal)."""
        if duration_s < 0:
            raise ValueError("cannot skip a negative duration")
        self.now_s += duration_s

    def build(self) -> Trace:
        """Convert accumulated samples into a :class:`Trace`."""
        if not self._times:
            raise ValueError(f"track for {self.user!r} has no samples")
        lats, lons = self.projection.to_latlon(
            np.asarray(self._xs), np.asarray(self._ys)
        )
        return Trace(self.user, np.asarray(self._times), lats, lons)


class PathSampler:
    """Arc-length parametrisation of a polyline in the local plane."""

    def __init__(self, waypoints: Sequence[XY]) -> None:
        if len(waypoints) < 1:
            raise ValueError("a path needs at least one waypoint")
        pts = np.asarray(waypoints, dtype=float)
        if pts.ndim != 2 or pts.shape[1] != 2:
            raise ValueError("waypoints must be (n, 2) shaped")
        self._pts = pts
        seg = np.diff(pts, axis=0)
        seg_len = np.hypot(seg[:, 0], seg[:, 1]) if len(pts) > 1 else np.asarray([])
        self._cum = np.concatenate([[0.0], np.cumsum(seg_len)])

    @property
    def length_m(self) -> float:
        """Total polyline length."""
        return float(self._cum[-1])

    def at(self, distance_m: float) -> XY:
        """Position after travelling ``distance_m`` along the path.

        Clamped to the endpoints outside ``[0, length_m]``.
        """
        if self._pts.shape[0] == 1 or self.length_m == 0.0:
            return (float(self._pts[0, 0]), float(self._pts[0, 1]))
        d = float(np.clip(distance_m, 0.0, self.length_m))
        i = int(np.searchsorted(self._cum, d, side="right") - 1)
        i = min(i, self._pts.shape[0] - 2)
        seg_start = self._cum[i]
        seg_len = self._cum[i + 1] - seg_start
        frac = 0.0 if seg_len == 0 else (d - seg_start) / seg_len
        p = self._pts[i] + frac * (self._pts[i + 1] - self._pts[i])
        return (float(p[0]), float(p[1]))
