"""A synthetic city: block grid, street routing and weighted hotspots.

The model is deliberately simple — a Manhattan grid of square blocks
with Zipf-popular hotspots at intersections — because the paper's
metrics only need (i) meaningful recurrent stop places and (ii) a
coverage footprint at block granularity.  Defaults approximate downtown
San Francisco (the Cabspotting area the paper evaluates on).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..geo import LatLon, LocalProjection

__all__ = ["CityModel", "SAN_FRANCISCO_CENTER", "BEIJING_CENTER"]

XY = Tuple[float, float]

#: Downtown San Francisco, the Cabspotting area.
SAN_FRANCISCO_CENTER = LatLon(37.7749, -122.4194)
#: Beijing, the GeoLife area (used by the commuter generator preset).
BEIJING_CENTER = LatLon(39.9042, 116.4074)


@dataclass(frozen=True)
class CityModel:
    """Square city of side ``2 * half_extent_m`` on a Manhattan block grid."""

    center: LatLon = SAN_FRANCISCO_CENTER
    half_extent_m: float = 4000.0
    block_m: float = 200.0

    def __post_init__(self) -> None:
        if self.half_extent_m <= 0 or self.block_m <= 0:
            raise ValueError("city extents and block size must be positive")
        if self.block_m > self.half_extent_m:
            raise ValueError("blocks larger than the city make no sense")

    @property
    def projection(self) -> LocalProjection:
        """Local tangent plane centred on the city centre."""
        return LocalProjection(self.center)

    def contains_xy(self, x: float, y: float) -> bool:
        """Whether a plane point lies within the city square."""
        return abs(x) <= self.half_extent_m and abs(y) <= self.half_extent_m

    def clamp_xy(self, x: float, y: float) -> XY:
        """Project a plane point back into the city square."""
        h = self.half_extent_m
        return (float(np.clip(x, -h, h)), float(np.clip(y, -h, h)))

    def snap_to_intersection(self, x: float, y: float) -> XY:
        """Nearest street intersection (multiples of the block size)."""
        bx = round(x / self.block_m) * self.block_m
        by = round(y / self.block_m) * self.block_m
        return self.clamp_xy(bx, by)

    def random_point(self, rng: np.random.Generator) -> XY:
        """Uniform point in the city square."""
        h = self.half_extent_m
        return (float(rng.uniform(-h, h)), float(rng.uniform(-h, h)))

    def random_intersection(self, rng: np.random.Generator) -> XY:
        """Uniform street intersection."""
        return self.snap_to_intersection(*self.random_point(rng))

    def street_route(self, a: XY, b: XY) -> List[XY]:
        """L-shaped Manhattan route from ``a`` to ``b`` along streets.

        The route snaps both endpoints' street legs to the grid: move
        along x on ``a``'s street, then along y on ``b``'s avenue.  The
        actual endpoints are kept so buildings need not sit exactly on
        intersections.
        """
        ax, ay = a
        bx, by = b
        a_street_y = round(ay / self.block_m) * self.block_m
        b_avenue_x = round(bx / self.block_m) * self.block_m
        route: List[XY] = [a]
        for waypoint in (
            (ax, a_street_y),
            (b_avenue_x, a_street_y),
            (b_avenue_x, by),
            b,
        ):
            if waypoint != route[-1]:
                route.append(waypoint)
        return route

    def hotspots(
        self,
        rng: np.random.Generator,
        n: int = 25,
        zipf_s: float = 1.1,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Sample ``n`` hotspot intersections with Zipf popularity weights.

        Returns ``(locations, weights)`` with locations shaped ``(n, 2)``
        and weights summing to 1.  Hotspots model taxi stands, offices,
        restaurants — the attractors recurrent mobility revolves around.
        """
        if n <= 0:
            raise ValueError("need at least one hotspot")
        locations = np.asarray(
            [self.random_intersection(rng) for _ in range(n)], dtype=float
        )
        ranks = np.arange(1, n + 1, dtype=float)
        weights = ranks ** (-zipf_s)
        weights /= weights.sum()
        return locations, weights
