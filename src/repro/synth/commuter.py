"""GeoLife-style synthetic commuters with daily home/work routines.

The paper's future work targets other datasets; GeoLife (Beijing daily
mobility) is the canonical one, so the second synthetic workload is a
population of commuters: every user has a home, a workplace and a couple
of leisure anchors, and repeats a jittered daily schedule over several
days.  Long recurrent dwells at the anchors give each user an
unambiguous ground-truth POI set.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..mobility import Dataset
from .base import TrackBuilder
from .city import BEIJING_CENTER, CityModel

__all__ = ["CommuterConfig", "generate_commuters", "beijing_city"]


def beijing_city(half_extent_m: float = 6000.0, block_m: float = 250.0) -> CityModel:
    """A city preset matching the GeoLife (Beijing) setting."""
    return CityModel(BEIJING_CENTER, half_extent_m, block_m)


@dataclass(frozen=True)
class CommuterConfig:
    """Knobs of the commuter simulator (defaults mimic GeoLife habits)."""

    n_users: int = 20
    n_days: int = 3
    n_leisure_anchors: int = 2
    leisure_probability: float = 0.5
    fix_interval_move_s: float = 30.0
    fix_interval_stay_s: float = 300.0
    walk_speed_mps: float = 1.4
    vehicle_speed_mps: float = 10.0
    gps_noise_m: float = 8.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_users <= 0 or self.n_days <= 0:
            raise ValueError("need at least one user and one day")
        if not 0.0 <= self.leisure_probability <= 1.0:
            raise ValueError("leisure probability must be in [0, 1]")


def generate_commuters(
    config: CommuterConfig = CommuterConfig(),
    city: CityModel = None,
) -> Dataset:
    """Simulate a commuter population and return it as a :class:`Dataset`."""
    if city is None:
        city = beijing_city()
    rng = np.random.default_rng(config.seed)
    day_s = 86400.0

    traces = []
    for u in range(config.n_users):
        user_rng = np.random.default_rng(rng.integers(0, 2**63))
        home = city.random_point(user_rng)
        work = city.random_point(user_rng)
        leisure = [city.random_point(user_rng) for _ in range(config.n_leisure_anchors)]
        commute_speed = (
            config.vehicle_speed_mps
            if user_rng.random() < 0.7
            else config.walk_speed_mps
        )
        track = TrackBuilder(
            user=f"user{u:03d}",
            projection=city.projection,
            rng=user_rng,
            gps_noise_m=config.gps_noise_m,
        )
        for day in range(config.n_days):
            day_start = day * day_s
            # Morning at home (device on from 6:30ish).
            track.now_s = day_start + user_rng.normal(6.5 * 3600.0, 900.0)
            leave_home = day_start + user_rng.normal(8.0 * 3600.0, 900.0)
            track.dwell(
                home[0],
                home[1],
                max(0.0, leave_home - track.now_s),
                config.fix_interval_stay_s,
            )
            # Commute, work day.
            track.travel(
                city.street_route(home, work),
                commute_speed,
                config.fix_interval_move_s,
            )
            leave_work = day_start + user_rng.normal(17.5 * 3600.0, 1800.0)
            track.dwell(
                work[0],
                work[1],
                max(0.0, leave_work - track.now_s),
                config.fix_interval_stay_s,
            )
            # Optional leisure stop on the way home.
            pos = work
            if leisure and user_rng.random() < config.leisure_probability:
                spot = leisure[int(user_rng.integers(len(leisure)))]
                track.travel(
                    city.street_route(pos, spot),
                    commute_speed,
                    config.fix_interval_move_s,
                )
                track.dwell(
                    spot[0],
                    spot[1],
                    float(user_rng.uniform(3600.0, 7200.0)),
                    config.fix_interval_stay_s,
                )
                pos = spot
            # Home for the evening (device off at ~23h).
            track.travel(
                city.street_route(pos, home),
                commute_speed,
                config.fix_interval_move_s,
            )
            bedtime = day_start + 23.0 * 3600.0
            track.dwell(
                home[0],
                home[1],
                max(0.0, bedtime - track.now_s),
                config.fix_interval_stay_s,
            )
        traces.append(track.build())
    return Dataset.from_traces(traces)
