"""Cabspotting-style synthetic taxi fleet.

The paper's running example protects "a whole dataset containing
mobility traces of taxi drivers around San Francisco" (Cabspotting).
With no network access we generate the closest synthetic equivalent: a
fleet of cabs alternating fares between Zipf-popular hotspots, cruising
between jobs, and taking recurrent breaks at a small set of per-cab
favourite stands.  The favourite stands produce exactly the recurrent,
significant stops the POI attack needs; street routing on the block grid
produces the block-scale coverage footprint the utility metric needs.

GPS cadence defaults to one fix per minute, matching Cabspotting.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..mobility import Dataset
from .base import TrackBuilder
from .city import CityModel

__all__ = ["TaxiFleetConfig", "generate_taxi_fleet"]


@dataclass(frozen=True)
class TaxiFleetConfig:
    """Knobs of the taxi-fleet simulator (defaults mimic Cabspotting)."""

    n_cabs: int = 30
    shift_hours: float = 10.0
    n_hotspots: int = 25
    stands_per_cab: int = 3
    fix_interval_s: float = 60.0
    speed_mps: float = 8.0
    gps_noise_m: float = 10.0
    mean_fare_wait_s: float = 300.0
    break_every_fares: int = 4
    break_duration_s: float = 1800.0
    #: Relative spread of per-cab habits (break cadence/length, speed).
    #: Heterogeneity widens the privacy transition band of Figure 1a,
    #: as real Cabspotting drivers do; 0 makes every cab identical.
    heterogeneity: float = 0.6
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_cabs <= 0:
            raise ValueError("need at least one cab")
        if self.stands_per_cab <= 0:
            raise ValueError("each cab needs at least one favourite stand")
        if self.break_every_fares <= 0:
            raise ValueError("break cadence must be positive")
        if not 0.0 <= self.heterogeneity < 1.0:
            raise ValueError("heterogeneity must be in [0, 1)")


def generate_taxi_fleet(
    config: TaxiFleetConfig = TaxiFleetConfig(),
    city: CityModel = CityModel(),
) -> Dataset:
    """Simulate a taxi fleet and return it as a :class:`Dataset`."""
    rng = np.random.default_rng(config.seed)
    hotspot_xy, hotspot_w = city.hotspots(rng, config.n_hotspots)
    n_hotspots = hotspot_xy.shape[0]

    traces = []
    for cab in range(config.n_cabs):
        cab_rng = np.random.default_rng(rng.integers(0, 2**63))
        stands_idx = cab_rng.choice(
            n_hotspots,
            size=min(config.stands_per_cab, n_hotspots),
            replace=False,
            p=hotspot_w,
        )
        track = TrackBuilder(
            user=f"cab{cab:03d}",
            projection=city.projection,
            rng=cab_rng,
            gps_noise_m=config.gps_noise_m,
        )
        # Per-cab habits: real fleets mix fast/slow reporters and
        # short/long breakers, which is what smears the privacy
        # transition of Figure 1a over a band of epsilon values.
        h = config.heterogeneity
        fix_interval = config.fix_interval_s * float(cab_rng.uniform(1 - h, 1 + 1.5 * h))
        break_duration = config.break_duration_s * float(
            cab_rng.uniform(1 - h, 1 + 1.5 * h)
        )
        break_every = max(
            1, int(round(config.break_every_fares * cab_rng.uniform(1 - h, 1 + h)))
        )
        speed = config.speed_mps * float(cab_rng.uniform(1 - h / 2, 1 + h / 2))
        pos = tuple(hotspot_xy[cab_rng.choice(stands_idx)])
        shift_end = config.shift_hours * 3600.0
        fares_since_break = 0
        while track.now_s < shift_end:
            if fares_since_break >= break_every:
                # Recurrent break at a favourite stand: this is what makes
                # cabs have POIs for the privacy metric to attack.
                stand = tuple(hotspot_xy[cab_rng.choice(stands_idx)])
                track.travel(
                    city.street_route(pos, stand), speed, fix_interval
                )
                track.dwell(stand[0], stand[1], break_duration, fix_interval)
                pos = stand
                fares_since_break = 0
                continue
            # Wait for the next fare where we are (short idle, sub-POI).
            wait = float(cab_rng.exponential(config.mean_fare_wait_s))
            track.dwell(pos[0], pos[1], wait, fix_interval)
            # Pick up somewhere popular, drop off somewhere popular.
            pickup = tuple(hotspot_xy[cab_rng.choice(n_hotspots, p=hotspot_w)])
            dropoff = tuple(hotspot_xy[cab_rng.choice(n_hotspots, p=hotspot_w)])
            track.travel(city.street_route(pos, pickup), speed, fix_interval)
            track.travel(city.street_route(pickup, dropoff), speed, fix_interval)
            pos = dropoff
            fares_since_break += 1
        traces.append(track.build())
    return Dataset.from_traces(traces)
