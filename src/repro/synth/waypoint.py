"""Textbook mobility models: random waypoint and Lévy flight.

These are not meant to look like real datasets — they have no recurrent
POIs by construction — but they are invaluable as *negative controls*
in tests (a POI attack should find little on them) and as fast
workloads for property-based testing.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..mobility import Dataset
from .base import TrackBuilder
from .city import CityModel

__all__ = ["RandomWaypointConfig", "generate_random_waypoint", "LevyFlightConfig",
           "generate_levy_flight"]


@dataclass(frozen=True)
class RandomWaypointConfig:
    """Knobs of the random-waypoint model."""

    n_users: int = 10
    n_legs: int = 20
    speed_mps: float = 5.0
    pause_s: float = 60.0
    fix_interval_s: float = 30.0
    gps_noise_m: float = 5.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_users <= 0 or self.n_legs <= 0:
            raise ValueError("need at least one user and one leg")


def generate_random_waypoint(
    config: RandomWaypointConfig = RandomWaypointConfig(),
    city: CityModel = CityModel(),
) -> Dataset:
    """Classic random waypoint: pick a uniform target, go straight, pause."""
    rng = np.random.default_rng(config.seed)
    traces = []
    for u in range(config.n_users):
        user_rng = np.random.default_rng(rng.integers(0, 2**63))
        track = TrackBuilder(
            user=f"rwp{u:03d}",
            projection=city.projection,
            rng=user_rng,
            gps_noise_m=config.gps_noise_m,
        )
        pos = city.random_point(user_rng)
        for _ in range(config.n_legs):
            target = city.random_point(user_rng)
            track.travel([pos, target], config.speed_mps, config.fix_interval_s)
            track.dwell(
                target[0], target[1], config.pause_s, config.fix_interval_s
            )
            pos = target
        traces.append(track.build())
    return Dataset.from_traces(traces)


@dataclass(frozen=True)
class LevyFlightConfig:
    """Knobs of the truncated Lévy-flight model."""

    n_users: int = 10
    n_legs: int = 30
    alpha: float = 1.6
    min_step_m: float = 50.0
    speed_mps: float = 5.0
    pause_s: float = 120.0
    fix_interval_s: float = 30.0
    gps_noise_m: float = 5.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.alpha <= 1.0:
            raise ValueError("Levy exponent must exceed 1")
        if self.min_step_m <= 0:
            raise ValueError("minimum step must be positive")


def generate_levy_flight(
    config: LevyFlightConfig = LevyFlightConfig(),
    city: CityModel = CityModel(),
) -> Dataset:
    """Truncated Lévy flight: power-law step lengths, uniform headings.

    Human mobility famously shows Lévy-like step distributions; this
    model reproduces the heavy-tailed hop statistics without any
    recurrent structure.
    """
    rng = np.random.default_rng(config.seed)
    max_step = 2.0 * city.half_extent_m
    traces = []
    for u in range(config.n_users):
        user_rng = np.random.default_rng(rng.integers(0, 2**63))
        track = TrackBuilder(
            user=f"levy{u:03d}",
            projection=city.projection,
            rng=user_rng,
            gps_noise_m=config.gps_noise_m,
        )
        pos = city.random_point(user_rng)
        for _ in range(config.n_legs):
            # Pareto step length, truncated to the city diameter.
            step = config.min_step_m * (1.0 + user_rng.pareto(config.alpha - 1.0))
            step = min(step, max_step)
            heading = user_rng.uniform(0.0, 2.0 * np.pi)
            target = city.clamp_xy(
                pos[0] + step * np.cos(heading), pos[1] + step * np.sin(heading)
            )
            track.travel([pos, target], config.speed_mps, config.fix_interval_s)
            track.dwell(target[0], target[1], config.pause_s, config.fix_interval_s)
            pos = target
        traces.append(track.build())
    return Dataset.from_traces(traces)
