"""Reference implementations of the vectorised attack kernels.

These are the pre-optimisation (seed) implementations of
``extract_stay_points`` and ``cluster_stay_points``, kept verbatim so
the parity suite can prove the vectorised kernels in
``repro.attacks`` return **bit-identical** results — same stays, same
POIs, same floats — on synthetic and adversarial traces alike.  They
are test fixtures, not library code: slow on purpose.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.attacks.poi import Poi
from repro.attacks.staypoints import StayPoint
from repro.geo import LocalProjection, haversine_m_arrays
from repro.mobility import Trace


def _reference_extract_stay_points(
    trace: Trace,
    roam_m: float = 200.0,
    min_dwell_s: float = 900.0,
) -> List[StayPoint]:
    """The seed anchor algorithm: full-suffix distance scan per anchor."""
    if roam_m <= 0 or min_dwell_s <= 0:
        raise ValueError("roaming radius and minimum dwell must be positive")
    n = len(trace)
    if n < 2:
        return []

    projection = LocalProjection.for_data(trace.lats, trace.lons)
    x, y = projection.to_xy(trace.lats, trace.lons)
    times = trace.times_s

    stays: List[StayPoint] = []
    i = 0
    while i < n - 1:
        d2 = (x[i + 1:] - x[i]) ** 2 + (y[i + 1:] - y[i]) ** 2
        outside = np.nonzero(d2 > roam_m**2)[0]
        j = (i + 1 + outside[0]) if outside.size else n
        if times[j - 1] - times[i] >= min_dwell_s:
            sl = slice(i, j)
            cx, cy = float(np.mean(x[sl])), float(np.mean(y[sl]))
            centre = projection.point_to_latlon(cx, cy)
            stays.append(
                StayPoint(
                    lat=centre.lat,
                    lon=centre.lon,
                    t_start_s=float(times[i]),
                    t_end_s=float(times[j - 1]),
                    n_records=j - i,
                )
            )
            i = j
        else:
            i += 1
    return stays


def _reference_cluster_stay_points(
    stays: Sequence[StayPoint],
    merge_m: float = 100.0,
    min_visits: int = 1,
) -> List[Poi]:
    """The seed greedy agglomeration: list-backed running centroids."""
    if merge_m <= 0:
        raise ValueError("merge radius must be positive")
    ordered = sorted(stays, key=lambda s: (-s.duration_s, s.t_start_s))
    lats: List[float] = []
    lons: List[float] = []
    visits: List[int] = []
    dwells: List[float] = []
    for stay in ordered:
        if lats:
            d = haversine_m_arrays(
                np.asarray(lats), np.asarray(lons), stay.lat, stay.lon
            )
            k = int(np.argmin(d))
            if float(d[k]) <= merge_m:
                w_old = dwells[k]
                w_new = stay.duration_s
                total = w_old + w_new
                if total > 0:
                    lats[k] = (lats[k] * w_old + stay.lat * w_new) / total
                    lons[k] = (lons[k] * w_old + stay.lon * w_new) / total
                visits[k] += 1
                dwells[k] += stay.duration_s
                continue
        lats.append(stay.lat)
        lons.append(stay.lon)
        visits.append(1)
        dwells.append(stay.duration_s)
    pois = [
        Poi(lat=la, lon=lo, n_visits=v, total_dwell_s=dw)
        for la, lo, v, dw in zip(lats, lons, visits, dwells)
        if v >= min_visits
    ]
    return sorted(pois, key=lambda p: (-p.total_dwell_s, -p.n_visits))


def _reference_extract_pois(trace: Trace, config) -> List[Poi]:
    """Seed POI pipeline: reference stays through reference clustering."""
    stays = _reference_extract_stay_points(
        trace, config.roam_m, config.min_dwell_s
    )
    return _reference_cluster_stay_points(
        stays, config.merge_m, config.min_visits
    )


def make_dwelling_trace(
    n: int,
    seed: int = 0,
    n_places: int = 6,
    block: int = 150,
    jitter_deg: float = 2e-4,
    user: str = None,
) -> Trace:
    """A trace alternating dwells and trips — genuine stay structure.

    Shared by the parity suite and ``benchmarks/bench_metrics.py`` so
    both measure/verify the kernels on the same workload shape:
    ``block`` records of dwelling at one of ``n_places`` anchors, then
    ``block`` records of travel, repeated.
    """
    rng = np.random.default_rng(seed)
    times = 1.3e9 + np.cumsum(rng.uniform(20.0, 90.0, n))
    places = [
        (48.85 + float(rng.normal(0, 0.02)), 2.35 + float(rng.normal(0, 0.02)))
        for _ in range(n_places)
    ]
    lats = np.empty(n)
    lons = np.empty(n)
    for i in range(n):
        phase = (i // block) % (2 * n_places)
        if phase % 2 == 0:  # dwelling at a place
            base = places[(phase // 2) % n_places]
            lats[i] = base[0] + float(rng.normal(0, jitter_deg))
            lons[i] = base[1] + float(rng.normal(0, jitter_deg))
        else:  # travelling between places
            lats[i] = 48.85 + float(rng.uniform(-0.05, 0.05))
            lons[i] = 2.35 + float(rng.uniform(-0.05, 0.05))
    return Trace(
        user if user is not None else f"u{seed}",
        times,
        np.clip(lats, -90, 90),
        np.clip(lons, -180, 180),
    )
