"""Behaviour of the analysis cache itself and its engine plumbing.

What the memoised analysis layer promises:

* repeated requests for the same (trace content, config) artifact are
  answered from the cache — and changing the extraction config misses;
* the LRU bound holds and evicts least recently used artifacts;
* the cache survives concurrent jobs (thread-safe, no torn state);
* the engine runs the actual-side POI pipeline **once per dataset per
  sweep**, whatever the number of configs, seeds and metrics — and
  surfaces the counters through ``engine.stats`` and ``/metrics``.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro import EvaluationEngine, geo_ind_system
from repro.analysis import (
    AnalysisCache,
    current_cache,
    default_cache,
    pois_of,
    stay_points_of,
    use_cache,
)
from repro.attacks import PoiExtractionConfig
from repro.engine import EvalJob
from repro.mobility import Trace


def _trace(seed: int, n: int = 400) -> Trace:
    rng = np.random.default_rng(seed)
    times = np.cumsum(rng.uniform(30.0, 90.0, n))
    lats = 48.85 + np.cumsum(rng.normal(0.0, 5e-5, n))
    lons = 2.35 + np.cumsum(rng.normal(0.0, 5e-5, n))
    return Trace(f"user{seed}", times, lats, lons)


class TestCacheBasics:
    def test_hit_on_repeat(self):
        cache = AnalysisCache()
        trace = _trace(0)
        first = pois_of(trace, cache=cache)
        second = pois_of(trace, cache=cache)
        assert first is second  # the artifact object itself is shared
        stats = cache.stats
        assert stats["hits"] >= 1
        kind = cache.kind_stats()
        assert kind["pois"]["misses"] == 1
        assert kind["pois"]["hits"] == 1

    def test_config_change_invalidates(self):
        cache = AnalysisCache()
        trace = _trace(1)
        a = pois_of(trace, PoiExtractionConfig(), cache=cache)
        b = pois_of(
            trace, PoiExtractionConfig(merge_m=50.0), cache=cache
        )
        assert cache.kind_stats()["pois"]["misses"] == 2
        # Shared stay-point parameters reuse the stay-point artifact.
        assert cache.kind_stats()["stay_points"]["misses"] == 1
        assert a is not b

    def test_same_content_different_object_shares_entry(self):
        cache = AnalysisCache()
        t1 = _trace(2)
        t2 = Trace(t1.user, t1.times_s.copy(), t1.lats.copy(), t1.lons.copy())
        assert t1 is not t2
        assert cache.trace_key(t1) == cache.trace_key(t2)
        a = stay_points_of(t1, cache=cache)
        b = stay_points_of(t2, cache=cache)
        assert a is b

    def test_lru_eviction_is_bounded(self):
        cache = AnalysisCache(max_entries=4)
        for seed in range(8):
            stay_points_of(_trace(seed, n=60), cache=cache)
        stats = cache.stats
        assert stats["entries"] <= 4
        assert stats["evictions"] == 4
        # The most recent artifact is still resident...
        stay_points_of(_trace(7, n=60), cache=cache)
        assert cache.kind_stats()["stay_points"]["hits"] == 1
        # ...and the oldest was evicted (recomputed = one more miss).
        before = cache.kind_stats()["stay_points"]["misses"]
        stay_points_of(_trace(0, n=60), cache=cache)
        assert cache.kind_stats()["stay_points"]["misses"] == before + 1

    def test_rejects_nonpositive_bound(self):
        with pytest.raises(ValueError):
            AnalysisCache(max_entries=0)

    def test_seeded_keys_use_dataset_fingerprint(self, taxi_dataset):
        cache = AnalysisCache()
        cache.seed_dataset(taxi_dataset, "f" * 64)
        user = taxi_dataset.users[0]
        key = cache.trace_key(taxi_dataset[user])
        assert key == f"d:{'f' * 64}:{user}"
        # Unseeded traces fall back to content hashing.
        assert cache.trace_key(_trace(3)).startswith("t:")

    def test_clear_drops_entries_not_counters(self):
        cache = AnalysisCache()
        stay_points_of(_trace(4), cache=cache)
        assert len(cache) == 1
        cache.clear()
        assert len(cache) == 0
        assert cache.stats["misses"] == 1


class TestAmbientSelection:
    def test_use_cache_installs_and_restores(self):
        mine = AnalysisCache()
        assert current_cache() is default_cache()
        with use_cache(mine):
            assert current_cache() is mine
            with use_cache(default_cache()):
                assert current_cache() is default_cache()
            assert current_cache() is mine
        assert current_cache() is default_cache()

    def test_other_threads_see_the_default(self):
        mine = AnalysisCache()
        seen = {}

        def observe():
            seen["cache"] = current_cache()

        with use_cache(mine):
            worker = threading.Thread(target=observe)
            worker.start()
            worker.join()
        assert seen["cache"] is default_cache()


class TestThreadSafety:
    def test_concurrent_jobs_share_one_computation_per_artifact(self):
        cache = AnalysisCache()
        traces = [_trace(seed) for seed in range(4)]
        results: dict = {}
        errors: list = []
        barrier = threading.Barrier(8)

        def work(worker_id: int):
            try:
                barrier.wait()
                local = []
                for trace in traces:
                    local.append(pois_of(trace, cache=cache))
                results[worker_id] = local
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        workers = [
            threading.Thread(target=work, args=(i,)) for i in range(8)
        ]
        for w in workers:
            w.start()
        for w in workers:
            w.join()
        assert not errors
        # Everyone saw equal artifacts for each trace.
        for i in range(1, 8):
            assert results[i] == results[0]
        # 8 threads x 4 traces = 32 requests; every request either hit
        # or was one of the racing computations, and the counters
        # reconcile exactly.
        kind = cache.kind_stats()["pois"]
        assert kind["hits"] + kind["misses"] == 32
        assert kind["misses"] >= 4
        assert cache.stats["entries"] <= cache.max_entries


class TestEngineIntegration:
    @pytest.fixture()
    def engine_and_jobs(self):
        engine = EvaluationEngine(engine="serial")
        jobs = [
            EvalJob.make({"epsilon": eps}, seed=seed)
            for eps in (0.002, 0.02)
            for seed in (0, 1)
        ]
        return engine, jobs

    def test_actual_side_pipeline_runs_once_per_sweep(
        self, taxi_dataset, engine_and_jobs
    ):
        engine, jobs = engine_and_jobs
        system = geo_ind_system()
        engine.run(system, taxi_dataset, jobs)
        kind = engine.analysis.kind_stats()
        n_users = len(taxi_dataset)
        # One extraction per actual trace for the WHOLE sweep, plus one
        # per protected trace per distinct execution (the protected
        # side genuinely differs per (params, seed)).
        expected = n_users * (1 + len(jobs))
        assert kind["stay_points"]["misses"] == expected
        assert kind["pois"]["misses"] == expected

    def test_repeated_sweep_adds_no_analysis_work(
        self, taxi_dataset, engine_and_jobs
    ):
        engine, jobs = engine_and_jobs
        system = geo_ind_system()
        engine.run(system, taxi_dataset, jobs)
        before = engine.analysis.stats
        results = engine.run(system, taxi_dataset, jobs)
        assert all(r.cached for r in results)
        after = engine.analysis.stats
        assert after["misses"] == before["misses"]
        assert after["hits"] == before["hits"]

    def test_engine_stats_expose_analysis_counters(
        self, taxi_dataset, engine_and_jobs
    ):
        engine, jobs = engine_and_jobs
        engine.run(geo_ind_system(), taxi_dataset, jobs[:1])
        stats = engine.stats
        for key in ("analysis_hits", "analysis_misses", "analysis_entries",
                    "analysis_evictions", "analysis_max_entries"):
            assert key in stats
        assert stats["analysis_misses"] > 0
        assert stats["analysis_entries"] > 0

    def test_engines_do_not_share_analysis_caches(self, taxi_dataset):
        a = EvaluationEngine()
        b = EvaluationEngine()
        assert a.analysis is not b.analysis
        job = [EvalJob.make({"epsilon": 0.01}, seed=0)]
        a.run(geo_ind_system(), taxi_dataset, job)
        assert b.analysis.stats["misses"] == 0


class TestServiceExposure:
    def test_metrics_endpoint_reports_analysis_counters(self):
        from repro.service import ConfigService, ServiceClient

        with ServiceClient(ConfigService()) as client:
            client.sweep(
                {"workload": "taxi", "users": 3, "seed": 1},
                points=2, replications=1,
            )
            metrics = client.metrics()
        engine_stats = metrics["engine"]
        for key in ("analysis_hits", "analysis_misses", "analysis_entries"):
            assert key in engine_stats
        assert engine_stats["analysis_misses"] > 0
