"""Bit-identity of the vectorised kernels against the seed kernels.

The perf work in ``repro.attacks`` (incremental stay-point window
extension, buffer-backed POI clustering) and the memoised accessors in
``repro.analysis`` must change *nothing* about the numbers: same stay
points, same POIs, same metric floats.  Every case here compares the
live implementations against the verbatim seed implementations kept in
``tests.analysis.reference`` — with ``==``, never ``approx``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import GeoIndistinguishability
from repro.analysis import AnalysisCache, pois_of, stay_points_of, use_cache
from repro.attacks import (
    PoiExtractionConfig,
    cluster_stay_points,
    extract_pois,
    extract_stay_points,
)
from repro.metrics import PoiRetrievalPrivacy, ReidentificationPrivacy
from repro.mobility import Trace

from .reference import (
    _reference_cluster_stay_points,
    _reference_extract_pois,
    _reference_extract_stay_points,
    make_dwelling_trace,
)


def _dwelling_trace(seed: int, n: int = 2000) -> Trace:
    """Alternating dwells and moves — plenty of genuine stay points."""
    return make_dwelling_trace(n, seed=seed)


def _adversarial_traces() -> dict:
    """The edge cases named by the issue, plus a two-record sliver."""
    hour = 3600.0
    return {
        "empty": Trace("e", [], [], []),
        "single_point": Trace("s", [0.0], [48.85], [2.35]),
        "two_points": Trace("p", [0.0, 2 * hour], [48.85, 48.85], [2.35, 2.35]),
        "all_within_radius": Trace(
            "a",
            np.arange(500) * 60.0,
            48.85 + np.sin(np.arange(500)) * 1e-4,
            2.35 + np.cos(np.arange(500)) * 1e-4,
        ),
        "duplicate_timestamps": Trace(
            "d",
            np.repeat(np.arange(250) * 120.0, 2),
            48.85 + np.tile([0.0, 1e-5], 250),
            2.35 + np.tile([0.0, -1e-5], 250),
        ),
        "never_dwells": Trace(
            "n",
            np.arange(400) * 30.0,
            48.0 + np.arange(400) * 0.01,
            2.0 + np.arange(400) * 0.01,
        ),
    }


PARAM_GRID = [
    (200.0, 900.0),
    (50.0, 300.0),
    (1000.0, 7200.0),
]


class TestStayPointParity:
    @pytest.mark.parametrize("roam_m,min_dwell_s", PARAM_GRID)
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_synthetic_traces_bit_identical(self, seed, roam_m, min_dwell_s):
        trace = _dwelling_trace(seed)
        assert extract_stay_points(trace, roam_m, min_dwell_s) == \
            _reference_extract_stay_points(trace, roam_m, min_dwell_s)

    @pytest.mark.parametrize("name", sorted(_adversarial_traces()))
    @pytest.mark.parametrize("roam_m,min_dwell_s", PARAM_GRID)
    def test_adversarial_traces_bit_identical(self, name, roam_m, min_dwell_s):
        trace = _adversarial_traces()[name]
        assert extract_stay_points(trace, roam_m, min_dwell_s) == \
            _reference_extract_stay_points(trace, roam_m, min_dwell_s)

    def test_dataset_traces_bit_identical(self, taxi_dataset, commuter_dataset):
        for dataset in (taxi_dataset, commuter_dataset):
            for trace in dataset.traces:
                assert extract_stay_points(trace) == \
                    _reference_extract_stay_points(trace)

    def test_block_boundary_independence(self):
        # Windows ending exactly at scan-block boundaries (64, 128, …)
        # must not shift the first-outside decision.
        for window in (63, 64, 65, 127, 128, 129, 191):
            n = 400
            lats = np.full(n, 10.0)
            lats[window:] = 20.0  # far outside any radius
            trace = Trace("b", np.arange(n) * 60.0, lats, np.full(n, 20.0))
            assert extract_stay_points(trace, 200.0, 300.0) == \
                _reference_extract_stay_points(trace, 200.0, 300.0)


class TestClusterParity:
    @pytest.mark.parametrize("merge_m,min_visits", [(100.0, 1), (25.0, 2), (500.0, 1)])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_clusters_bit_identical(self, seed, merge_m, min_visits):
        stays = _reference_extract_stay_points(_dwelling_trace(seed))
        assert cluster_stay_points(stays, merge_m, min_visits) == \
            _reference_cluster_stay_points(stays, merge_m, min_visits)

    def test_empty_and_singleton(self):
        assert cluster_stay_points([]) == _reference_cluster_stay_points([])
        stays = _reference_extract_stay_points(_dwelling_trace(3))[:1]
        assert cluster_stay_points(stays) == \
            _reference_cluster_stay_points(stays)

    def test_poi_fields_are_python_floats(self):
        # Cached artifacts are shared and fingerprinted; keep their
        # field types identical to the seed implementation's.
        stays = _reference_extract_stay_points(_dwelling_trace(0))
        for poi in cluster_stay_points(stays):
            assert type(poi.lat) is float and type(poi.lon) is float
            assert type(poi.n_visits) is int
            assert type(poi.total_dwell_s) is float


class TestPipelineParity:
    def test_extract_pois_matches_reference(self):
        config = PoiExtractionConfig(roam_m=150.0, min_dwell_s=600.0,
                                     merge_m=80.0, min_visits=1)
        for seed in (0, 1):
            trace = _dwelling_trace(seed)
            assert extract_pois(trace, config) == \
                _reference_extract_pois(trace, config)

    def test_cached_accessors_match_reference(self):
        config = PoiExtractionConfig()
        trace = _dwelling_trace(4)
        with use_cache(AnalysisCache()):
            assert list(stay_points_of(trace)) == \
                _reference_extract_stay_points(trace)
            # Twice: the cached answer must equal the computed one.
            assert list(pois_of(trace, config)) == \
                _reference_extract_pois(trace, config)
            assert list(pois_of(trace, config)) == \
                _reference_extract_pois(trace, config)

    def test_poi_retrieval_metric_matches_reference(self, commuter_dataset):
        from repro.attacks import retrieved_fraction

        protected = GeoIndistinguishability(epsilon=0.01).protect(
            commuter_dataset, seed=5
        )
        metric = PoiRetrievalPrivacy()
        with use_cache(AnalysisCache()):
            value = metric.evaluate(commuter_dataset, protected)
            per_user = metric.evaluate_per_user(commuter_dataset, protected)
        expected = {}
        for user in commuter_dataset.users:
            actual_pois = _reference_extract_pois(
                commuter_dataset[user], metric.extraction
            )
            if not actual_pois:
                continue
            found = _reference_extract_pois(protected[user], metric.extraction)
            expected[user] = retrieved_fraction(
                actual_pois, found, metric.match_m, metric.one_to_one
            )
        assert per_user == expected
        assert value == float(np.mean(list(expected.values())))

    def test_reidentification_metric_matches_reference(self, commuter_dataset):
        from repro.attacks.reident import fingerprint_distance_m

        protected = GeoIndistinguishability(epsilon=0.005).protect(
            commuter_dataset, seed=9
        )
        metric = ReidentificationPrivacy()
        with use_cache(AnalysisCache()):
            rate = metric.evaluate(commuter_dataset, protected)
        prints = {
            u: _reference_extract_pois(commuter_dataset[u], metric.extraction)
            for u in commuter_dataset.users
        }
        users = sorted(prints)
        correct = 0
        for user in users:
            found = _reference_extract_pois(protected[user], metric.extraction)
            distances = [fingerprint_distance_m(prints[u], found) for u in users]
            if users[int(np.argmin(distances))] == user:
                correct += 1
        assert rate == correct / len(users)

    def test_heatmap_distribution_matches_uncached_shape(self, taxi_dataset):
        from repro.geo import SpatialGrid
        from repro.metrics import visit_distribution

        grid = SpatialGrid.around(taxi_dataset.centroid(), 600.0)
        with use_cache(AnalysisCache()):
            dist_a = visit_distribution(taxi_dataset, grid)
            dist_b = visit_distribution(taxi_dataset, grid)  # cached pass
        assert dist_a == dist_b
        assert abs(sum(dist_a.values()) - 1.0) < 1e-12


class TestDatasetFingerprintStability:
    def test_fingerprint_unchanged_by_this_pr(self, taxi_dataset):
        # Job fingerprints key the durable disk cache; the memoisation
        # of dataset_fingerprint must not change its value.
        from repro.engine import dataset_fingerprint
        from repro.engine.jobs import _compute_dataset_fingerprint

        assert dataset_fingerprint(taxi_dataset) == \
            _compute_dataset_fingerprint(taxi_dataset)
        # Memoised repeat answers the same string.
        assert dataset_fingerprint(taxi_dataset) == \
            dataset_fingerprint(taxi_dataset)
