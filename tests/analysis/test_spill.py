"""The analysis cache's persistent spill tier.

What the spill promises:

* every spillable artifact round-trips **exactly** — a fresh process
  loading from disk sees the same values a recompute would produce;
* a fresh cache (a restarted daemon, a sibling pre-fork worker)
  pointed at the same spill directory starts warm: zero recomputes,
  ``spill_hits`` accounting for the saved work;
* corrupt or mismatched records are quarantined and recomputed,
  never raised;
* non-spillable shapes stay memory-only and IO failures only cost
  warmth, not correctness.
"""

from __future__ import annotations

import json

import numpy as np

from repro import EvaluationEngine, geo_ind_system
from repro.analysis import (
    SPILLABLE_KINDS,
    AnalysisCache,
    AnalysisSpill,
    pois_of,
    stay_points_of,
    visit_counts_of,
)
from repro.engine import EvalJob
from repro.geo import LatLon, SpatialGrid
from repro.mobility import Trace


def _trace(seed: int, n: int = 400) -> Trace:
    rng = np.random.default_rng(seed)
    times = np.cumsum(rng.uniform(30.0, 90.0, n))
    lats = 48.85 + np.cumsum(rng.normal(0.0, 5e-5, n))
    lons = 2.35 + np.cumsum(rng.normal(0.0, 5e-5, n))
    return Trace(f"user{seed}", times, lats, lons)


def _clone(trace: Trace) -> Trace:
    """Same content, different object: forces a fresh content key."""
    return Trace(
        trace.user, trace.times_s.copy(), trace.lats.copy(),
        trace.lons.copy(),
    )


class TestRoundTrip:
    def test_stay_points_exact(self, tmp_path):
        warm = AnalysisCache(spill_dir=tmp_path)
        computed = stay_points_of(_trace(0), cache=warm)
        assert computed  # a degenerate empty artifact proves nothing

        fresh = AnalysisCache(spill_dir=tmp_path)
        loaded = stay_points_of(_clone(_trace(0)), cache=fresh)
        assert loaded == computed  # dataclass equality: exact floats
        assert fresh.kind_stats()["stay_points"]["misses"] == 0
        assert fresh.stats["spill_hits"] == 1

    def test_pois_exact(self, tmp_path):
        warm = AnalysisCache(spill_dir=tmp_path)
        computed = pois_of(_trace(1), cache=warm)
        assert computed

        fresh = AnalysisCache(spill_dir=tmp_path)
        loaded = pois_of(_clone(_trace(1)), cache=fresh)
        assert loaded == computed
        # The layered stay-point artifact was served from the spill
        # too: nothing in the POI pipeline was recomputed.
        kind = fresh.kind_stats()
        assert kind["pois"]["misses"] == 0
        assert kind["stay_points"]["misses"] == 0

    def test_visit_counts_exact(self, tmp_path):
        grid = SpatialGrid.around(LatLon(48.85, 2.35), cell_size_m=150.0)
        warm = AnalysisCache(spill_dir=tmp_path)
        computed = visit_counts_of(_trace(2), grid, cache=warm)
        assert computed

        fresh = AnalysisCache(spill_dir=tmp_path)
        loaded = visit_counts_of(_clone(_trace(2)), grid, cache=fresh)
        assert loaded == computed
        assert all(
            isinstance(cell, tuple) and isinstance(n, int)
            for cell, n in loaded
        )
        assert fresh.kind_stats()["visit_counts"]["misses"] == 0


class TestSpillHygiene:
    def test_corrupt_record_is_quarantined_and_recomputed(self, tmp_path):
        warm = AnalysisCache(spill_dir=tmp_path)
        computed = stay_points_of(_trace(3), cache=warm)
        spill = AnalysisSpill(tmp_path)
        key = (warm.trace_key(_trace(3)), "stay_points",
               "200.0|900.0")
        path = spill._path_of(key)
        assert path.exists()
        path.write_text(path.read_text()[:20])  # torn write

        fresh = AnalysisCache(spill_dir=tmp_path)
        recomputed = stay_points_of(_clone(_trace(3)), cache=fresh)
        assert recomputed == computed
        assert fresh.kind_stats()["stay_points"]["misses"] == 1
        assert path.with_name(path.name + ".corrupt").exists()
        # The recompute wrote through again: the record is healed and
        # the *next* fresh process loads it without recomputing.
        assert spill.load(key, "stay_points") == tuple(computed)

    def test_wrong_key_under_digest_is_quarantined(self, tmp_path):
        spill = AnalysisSpill(tmp_path)
        key = ("t:" + "a" * 64, "stay_points", "200.0|900.0")
        path = spill._path_of(key)
        path.parent.mkdir(parents=True)
        path.write_text(json.dumps({
            "format_version": 1, "kind": "analysis_artifact",
            "artifact_kind": "stay_points",
            "key": ["somebody", "else", "entirely"], "items": [],
        }))
        assert spill.load(key, "stay_points") is None
        assert path.with_name(path.name + ".corrupt").exists()

    def test_only_closed_families_spill(self):
        key = ("t:" + "a" * 64, "stay_points", "sig")
        assert AnalysisSpill.handles(key, "stay_points")
        for kind in SPILLABLE_KINDS:
            assert AnalysisSpill.handles(key, kind)
        assert not AnalysisSpill.handles(key, "poi_fingerprint")
        # Non-string key parts have no stable digest; stay in memory.
        assert not AnalysisSpill.handles(("t:x", 42), "stay_points")

    def test_store_swallows_io_errors(self, tmp_path):
        blocker = tmp_path / "blocked"
        blocker.write_text("a file where the spill dir should be")
        spill = AnalysisSpill(blocker / "nested")
        spill.store(("t:" + "b" * 64, "stay_points", "sig"),
                    "stay_points", ())  # must not raise
        cache = AnalysisCache(spill_dir=blocker / "nested")
        assert stay_points_of(_trace(4), cache=cache) is not None


class TestEngineIntegration:
    def test_fresh_engine_starts_warm_from_spill(
        self, taxi_dataset, tmp_path
    ):
        system = geo_ind_system()
        jobs = [
            EvalJob.make({"epsilon": eps}, seed=seed)
            for eps in (0.002, 0.02)
            for seed in (0, 1)
        ]
        first = EvaluationEngine(engine="serial", cache_dir=tmp_path)
        results = first.run(system, taxi_dataset, jobs)
        assert first.analysis.stats["misses"] > 0

        # A "fresh process": no disk result cache (so every evaluation
        # really re-executes), but the analysis spill of the first
        # engine attached — protections are deterministic, so every
        # artifact (actual AND protected side) is already on disk.
        fresh = EvaluationEngine(engine="serial")
        fresh.analysis.attach_spill(tmp_path / "analysis")
        repeat = fresh.run(system, taxi_dataset, jobs)
        assert not any(r.cached for r in repeat)
        assert [(r.privacy, r.utility) for r in repeat] == \
            [(r.privacy, r.utility) for r in results]
        kind = fresh.analysis.kind_stats()
        assert kind["stay_points"]["misses"] == 0
        assert kind["pois"]["misses"] == 0
        assert fresh.analysis.stats["spill_hits"] > 0

    def test_cache_dir_engine_spills_automatically(
        self, taxi_dataset, tmp_path
    ):
        engine = EvaluationEngine(engine="serial", cache_dir=tmp_path)
        engine.run(
            geo_ind_system(), taxi_dataset,
            [EvalJob.make({"epsilon": 0.01}, seed=0)],
        )
        assert list((tmp_path / "analysis").glob("*/*.json"))

    def test_memory_only_engine_does_not_spill(self, taxi_dataset):
        engine = EvaluationEngine(engine="serial")
        engine.run(
            geo_ind_system(), taxi_dataset,
            [EvalJob.make({"epsilon": 0.01}, seed=0)],
        )
        assert engine.analysis.stats["spill_hits"] == 0
