"""Tests of the home/work inference attack."""

import numpy as np
import pytest

from repro.attacks import infer_home_work, overlap_with_hours_s
from repro.geo import LatLon, LocalProjection, haversine_m
from repro.mobility import Trace

SF = LatLon(37.7749, -122.4194)
PROJ = LocalProjection(SF)

NIGHT = (22.0, 6.0)
DAY = (9.0, 17.0)
HOUR = 3600.0


class TestOverlap:
    def test_fully_inside_plain_window(self):
        # 10:00 to 12:00 inside working hours.
        assert overlap_with_hours_s(10 * HOUR, 12 * HOUR, DAY) == 2 * HOUR

    def test_fully_outside(self):
        assert overlap_with_hours_s(7 * HOUR, 8 * HOUR, DAY) == 0.0

    def test_partial_overlap(self):
        # 8:00 to 10:00 overlaps working hours by one hour.
        assert overlap_with_hours_s(8 * HOUR, 10 * HOUR, DAY) == 1 * HOUR

    def test_wrapping_night_window(self):
        # 23:00 to 07:00: covers 23-06 of the night window = 7 hours.
        assert overlap_with_hours_s(23 * HOUR, 31 * HOUR, NIGHT) == 7 * HOUR

    def test_multi_day_interval(self):
        # Two full days contain 2 * 8 h of night.
        assert overlap_with_hours_s(0.0, 2 * 86400.0, NIGHT) == pytest.approx(
            2 * 8 * HOUR
        )

    def test_invalid_interval_rejected(self):
        with pytest.raises(ValueError):
            overlap_with_hours_s(10.0, 5.0, DAY)


def _synthetic_day_trace() -> Trace:
    """Night at 'home' (0,0), working hours at 'work' (3000, 0)."""
    times = []
    xs = []
    for day in range(2):
        base = day * 86400.0
        # Home 0:00-07:00 (sampled every 20 min).
        for t in np.arange(0.0, 7 * HOUR, 1200.0):
            times.append(base + t)
            xs.append(0.0)
        # Work 9:00-17:00.
        for t in np.arange(9 * HOUR, 17 * HOUR, 1200.0):
            times.append(base + t)
            xs.append(3000.0)
        # Evening home 20:00-24:00.
        for t in np.arange(20 * HOUR, 24 * HOUR, 1200.0):
            times.append(base + t)
            xs.append(0.0)
    lats, lons = PROJ.to_latlon(np.asarray(xs), np.zeros(len(xs)))
    return Trace("u", times, lats, lons)


class TestInference:
    def test_home_and_work_found(self):
        guess = infer_home_work(_synthetic_day_trace())
        assert guess.home is not None
        assert guess.work is not None
        home_x, _ = PROJ.point_to_xy(guess.home)
        work_x, _ = PROJ.point_to_xy(guess.work)
        assert abs(home_x - 0.0) < 100.0
        assert abs(work_x - 3000.0) < 100.0
        assert guess.home_dwell_s > 0
        assert guess.work_dwell_s > 0

    def test_work_requires_separation_from_home(self):
        # A user who never leaves home has no distinct workplace.
        n = 100
        lats, lons = PROJ.to_latlon(np.zeros(n), np.zeros(n))
        trace = Trace("u", np.arange(n) * 1200.0, lats, lons)
        guess = infer_home_work(trace)
        assert guess.home is not None
        assert guess.work is None

    def test_empty_trace_no_guess(self):
        guess = infer_home_work(Trace("u", [], [], []))
        assert guess.home is None
        assert guess.work is None

    def test_commuter_homes_are_stable(self, commuter_dataset):
        # The generator's home anchor dominates nights; the guess from
        # the first half of the trace must match the second half.
        from repro.mobility import split_by_time_fraction

        head, tail = split_by_time_fraction(commuter_dataset, 0.5)
        for user in head.users:
            a = infer_home_work(head[user])
            b = infer_home_work(tail[user])
            if a.home is None or b.home is None:
                continue
            assert haversine_m(a.home, b.home) < 300.0
