"""Tests of POI matching (the core of the privacy metric)."""

import numpy as np
import pytest

from repro.attacks import (
    Poi,
    poi_distance_matrix,
    retrieved_count,
    retrieved_fraction,
)


def _poi(lat: float, lon: float) -> Poi:
    return Poi(lat=lat, lon=lon, n_visits=1, total_dwell_s=1000.0)


HOME = _poi(37.7749, -122.4194)
WORK = _poi(37.7949, -122.4000)
NEAR_HOME = _poi(37.7750, -122.4194)     # ~11 m from home
FAR = _poi(37.70, -122.50)


class TestDistanceMatrix:
    def test_shape(self):
        m = poi_distance_matrix([HOME, WORK], [NEAR_HOME, FAR, WORK])
        assert m.shape == (2, 3)

    def test_empty_sides(self):
        assert poi_distance_matrix([], [HOME]).shape == (0, 1)
        assert poi_distance_matrix([HOME], []).shape == (1, 0)

    def test_values(self):
        m = poi_distance_matrix([HOME], [HOME, NEAR_HOME])
        assert m[0, 0] == pytest.approx(0.0, abs=1e-6)
        assert 5.0 < m[0, 1] < 20.0


class TestRetrievedCount:
    def test_exact_match_retrieved(self):
        assert retrieved_count([HOME], [HOME]) == 1

    def test_near_match_within_radius(self):
        assert retrieved_count([HOME], [NEAR_HOME], match_m=200.0) == 1

    def test_far_poi_not_retrieved(self):
        assert retrieved_count([HOME], [FAR], match_m=200.0) == 0

    def test_empty_sides(self):
        assert retrieved_count([], [HOME]) == 0
        assert retrieved_count([HOME], []) == 0

    def test_one_found_poi_covers_two_actual_by_default(self):
        close_pair = [_poi(37.7749, -122.4194), _poi(37.7750, -122.4194)]
        assert retrieved_count(close_pair, [HOME], match_m=200.0) == 2

    def test_one_to_one_restricts_coverage(self):
        close_pair = [_poi(37.7749, -122.4194), _poi(37.7750, -122.4194)]
        assert (
            retrieved_count(close_pair, [HOME], match_m=200.0, one_to_one=True)
            == 1
        )

    def test_one_to_one_optimal_for_disjoint_pairs(self):
        actual = [HOME, WORK]
        found = [NEAR_HOME, WORK]
        assert retrieved_count(actual, found, one_to_one=True) == 2

    def test_invalid_radius_rejected(self):
        with pytest.raises(ValueError):
            retrieved_count([HOME], [HOME], match_m=0.0)


class TestRetrievedFraction:
    def test_fraction_values(self):
        assert retrieved_fraction([HOME, WORK], [NEAR_HOME]) == pytest.approx(0.5)
        assert retrieved_fraction([HOME, WORK], [FAR]) == 0.0
        assert retrieved_fraction([HOME], [HOME]) == 1.0

    def test_no_actual_pois_is_zero(self):
        assert retrieved_fraction([], [HOME]) == 0.0

    def test_fraction_bounded(self):
        rng = np.random.default_rng(0)
        actual = [_poi(37.7 + rng.uniform(0, 0.05), -122.4) for _ in range(5)]
        found = [_poi(37.7 + rng.uniform(0, 0.05), -122.4) for _ in range(8)]
        frac = retrieved_fraction(actual, found)
        assert 0.0 <= frac <= 1.0
