"""Negative controls: the attacks must NOT fire on structureless data.

A POI attack that finds "meaningful places" everywhere is useless as a
privacy metric.  The textbook mobility models (random waypoint, Lévy
flight) have no recurrent anchors by construction, so they bound the
attack's false-positive behaviour.
"""

import numpy as np

from repro.attacks import extract_pois, infer_home_work
from repro.synth import (
    CityModel,
    LevyFlightConfig,
    RandomWaypointConfig,
    generate_levy_flight,
    generate_random_waypoint,
)


def _city() -> CityModel:
    return CityModel(half_extent_m=2000.0, block_m=200.0)


class TestRandomWaypoint:
    def test_far_fewer_pois_than_commuters(self, commuter_dataset):
        # Pauses are 60 s << the 15 min dwell threshold: almost nothing
        # should qualify as a POI.
        rwp = generate_random_waypoint(
            RandomWaypointConfig(n_users=5, n_legs=30, pause_s=60.0, seed=3),
            _city(),
        )
        rwp_pois = float(np.mean([len(extract_pois(t)) for t in rwp.traces]))
        commuter_pois = float(
            np.mean([len(extract_pois(t)) for t in commuter_dataset.traces])
        )
        assert rwp_pois < commuter_pois
        assert rwp_pois <= 1.0

    def test_long_pauses_do_create_stops(self):
        # Sanity inversion: with 20-minute pauses the attack must fire —
        # proving the negative result above is about the data, not a
        # broken attack.
        rwp = generate_random_waypoint(
            RandomWaypointConfig(n_users=3, n_legs=8, pause_s=1800.0, seed=3),
            _city(),
        )
        assert all(len(extract_pois(t)) >= 1 for t in rwp.traces)


class TestLevyFlight:
    def test_no_home_inferred_without_night_anchoring(self):
        levy = generate_levy_flight(
            LevyFlightConfig(n_users=4, n_legs=40, pause_s=60.0, seed=5),
            _city(),
        )
        guesses = [infer_home_work(t) for t in levy.traces]
        # Short pauses: no stay points at all, hence no home guesses.
        assert all(g.home is None for g in guesses)

    def test_commuters_homes_found(self, commuter_dataset):
        guesses = [infer_home_work(t) for t in commuter_dataset.traces]
        found = sum(1 for g in guesses if g.home is not None)
        assert found >= len(commuter_dataset) - 1
