"""Tests of POI clustering and end-to-end extraction."""

import pytest

from repro.attacks import (
    Poi,
    PoiExtractionConfig,
    StayPoint,
    cluster_stay_points,
    extract_pois,
)
from repro.geo import LatLon, haversine_m


def _stay(lat: float, lon: float, dwell_s: float = 1800.0, t0: float = 0.0) -> StayPoint:
    return StayPoint(
        lat=lat, lon=lon, t_start_s=t0, t_end_s=t0 + dwell_s, n_records=10
    )


class TestClustering:
    def test_nearby_stays_merge(self):
        # ~50 m apart: inside the 100 m merge radius.
        stays = [_stay(37.7749, -122.4194), _stay(37.77535, -122.4194, t0=10_000)]
        pois = cluster_stay_points(stays, merge_m=100.0)
        assert len(pois) == 1
        assert pois[0].n_visits == 2
        assert pois[0].total_dwell_s == pytest.approx(3600.0)

    def test_distant_stays_stay_separate(self):
        stays = [_stay(37.7749, -122.4194), _stay(37.7849, -122.4194, t0=10_000)]
        pois = cluster_stay_points(stays, merge_m=100.0)
        assert len(pois) == 2

    def test_centroid_dwell_weighted(self):
        a = _stay(37.7749, -122.4194, dwell_s=3000.0)
        b = _stay(37.77535, -122.4194, dwell_s=1000.0, t0=10_000)
        poi = cluster_stay_points([a, b], merge_m=200.0)[0]
        # Weighted centroid sits 1/4 of the way from a to b.
        expected_lat = (a.lat * 3000 + b.lat * 1000) / 4000
        assert poi.lat == pytest.approx(expected_lat, abs=1e-6)

    def test_min_visits_filter(self):
        stays = [
            _stay(37.7749, -122.4194),
            _stay(37.7749, -122.4194, t0=10_000),
            _stay(37.7949, -122.4194, t0=20_000),  # visited once
        ]
        pois = cluster_stay_points(stays, merge_m=100.0, min_visits=2)
        assert len(pois) == 1
        assert pois[0].n_visits == 2

    def test_sorted_by_significance(self):
        stays = [
            _stay(37.70, -122.40, dwell_s=600.0),
            _stay(37.75, -122.40, dwell_s=7200.0, t0=10_000),
        ]
        pois = cluster_stay_points(stays, merge_m=50.0)
        assert pois[0].total_dwell_s > pois[1].total_dwell_s

    def test_empty_input(self):
        assert cluster_stay_points([]) == []

    def test_invalid_merge_radius_rejected(self):
        with pytest.raises(ValueError):
            cluster_stay_points([], merge_m=0.0)


class TestConfig:
    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            PoiExtractionConfig(merge_m=0.0)
        with pytest.raises(ValueError):
            PoiExtractionConfig(min_visits=0)


class TestEndToEnd:
    def test_commuter_home_work_found(self, commuter_dataset):
        trace = commuter_dataset.traces[0]
        pois = extract_pois(trace)
        assert len(pois) >= 2
        # Home and work must be far apart (independent random anchors).
        d = haversine_m(pois[0].point, pois[1].point)
        assert d > 100.0

    def test_poi_point_accessor(self):
        poi = Poi(lat=37.0, lon=-122.0, n_visits=1, total_dwell_s=100.0)
        assert poi.point == LatLon(37.0, -122.0)
