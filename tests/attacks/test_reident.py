"""Tests of the POI-fingerprint re-identification attack."""

import pytest

from repro.attacks import (
    Poi,
    fingerprint_distance_m,
    reidentify,
)
from repro.lppm import GaussianPerturbation
from repro.mobility import Dataset


def _poi(lat: float, lon: float, dwell: float = 1000.0) -> Poi:
    return Poi(lat=lat, lon=lon, n_visits=1, total_dwell_s=dwell)


class TestFingerprintDistance:
    def test_identical_sets_zero(self):
        prints = [_poi(37.77, -122.41), _poi(37.79, -122.40)]
        assert fingerprint_distance_m(prints, prints) == pytest.approx(0.0, abs=1e-6)

    def test_symmetric(self):
        a = [_poi(37.77, -122.41)]
        b = [_poi(37.79, -122.40), _poi(37.70, -122.45)]
        assert fingerprint_distance_m(a, b) == pytest.approx(
            fingerprint_distance_m(b, a)
        )

    def test_empty_side_penalised(self):
        a = [_poi(37.77, -122.41)]
        assert fingerprint_distance_m(a, []) > 1e6
        assert fingerprint_distance_m([], []) > 1e6

    def test_dwell_weighting(self):
        # The long-dwell POI dominates: matching it matters more.
        anchor = [_poi(37.77, -122.41, dwell=10_000.0), _poi(37.70, -122.30, dwell=10.0)]
        match_dominant = [_poi(37.77, -122.41)]
        match_minor = [_poi(37.70, -122.30)]
        assert fingerprint_distance_m(anchor, match_dominant) < fingerprint_distance_m(
            anchor, match_minor
        )


class TestReidentify:
    def test_unprotected_data_fully_linked(self, commuter_dataset):
        result = reidentify(commuter_dataset, commuter_dataset)
        assert result.rate == 1.0
        assert result.n_total == len(commuter_dataset)
        assert all(u == g for u, g in result.assignment.items())

    def test_heavy_noise_breaks_linking(self, commuter_dataset):
        # 10 km Gaussian noise wipes out POI structure entirely.
        protected = GaussianPerturbation(10_000.0).protect(commuter_dataset, seed=0)
        result = reidentify(commuter_dataset, protected)
        assert result.rate < 1.0

    def test_empty_actual_rejected(self):
        with pytest.raises(ValueError):
            reidentify(Dataset({}), Dataset({}))
