"""Tests of stay-point extraction."""

import numpy as np
import pytest

from repro.attacks import extract_stay_points
from repro.geo import LatLon, LocalProjection
from repro.mobility import Trace

SF = LatLon(37.7749, -122.4194)
PROJ = LocalProjection(SF)


def _trace_from_xy(points) -> Trace:
    """Build a trace from (t, x, y) triples in the SF tangent plane."""
    ts = [p[0] for p in points]
    lat, lon = PROJ.to_latlon(
        np.asarray([p[1] for p in points], dtype=float),
        np.asarray([p[2] for p in points], dtype=float),
    )
    return Trace("u", ts, lat, lon)


def _stay(t0: float, x: float, y: float, minutes: float, step_s: float = 60.0):
    """(t, x, y) samples dwelling at one spot."""
    n = int(minutes * 60 / step_s)
    return [(t0 + i * step_s, x, y) for i in range(n + 1)]


def _move(t0: float, a, b, speed: float = 10.0, step_s: float = 60.0):
    """(t, x, y) samples travelling from a to b in a straight line."""
    dist = float(np.hypot(b[0] - a[0], b[1] - a[1]))
    n = max(1, int(dist / speed / step_s))
    out = []
    for i in range(1, n + 1):
        frac = i / n
        out.append(
            (t0 + i * step_s, a[0] + frac * (b[0] - a[0]), a[1] + frac * (b[1] - a[1]))
        )
    return out


class TestExtraction:
    def test_single_long_stay_detected(self):
        trace = _trace_from_xy(_stay(0.0, 100.0, 200.0, minutes=30))
        stays = extract_stay_points(trace, roam_m=200.0, min_dwell_s=900.0)
        assert len(stays) == 1
        x, y = PROJ.point_to_xy(stays[0].point)
        assert x == pytest.approx(100.0, abs=20.0)
        assert y == pytest.approx(200.0, abs=20.0)
        assert stays[0].duration_s >= 1700.0

    def test_short_stay_ignored(self):
        trace = _trace_from_xy(_stay(0.0, 0.0, 0.0, minutes=5))
        assert extract_stay_points(trace, min_dwell_s=900.0) == []

    def test_movement_produces_no_stays(self):
        trace = _trace_from_xy(_move(0.0, (0, 0), (5000, 0), speed=10.0))
        assert extract_stay_points(trace) == []

    def test_two_separate_stays(self):
        points = _stay(0.0, 0.0, 0.0, minutes=20)
        t = points[-1][0]
        points += _move(t, (0, 0), (2000, 0))
        t = points[-1][0]
        points += _stay(t + 60.0, 2000.0, 0.0, minutes=20)
        trace = _trace_from_xy(points)
        stays = extract_stay_points(trace)
        assert len(stays) == 2
        assert stays[0].t_end_s < stays[1].t_start_s

    def test_roam_radius_respected(self):
        # Oscillating 150 m around the anchor stays one stop at 200 m roam,
        # but none at 100 m roam.
        points = []
        for i in range(40):
            x = 150.0 if i % 2 else 0.0
            points.append((i * 60.0, x, 0.0))
        trace = _trace_from_xy(points)
        assert len(extract_stay_points(trace, roam_m=200.0)) == 1
        assert extract_stay_points(trace, roam_m=100.0) == []

    def test_records_counted(self):
        trace = _trace_from_xy(_stay(0.0, 0.0, 0.0, minutes=30))
        stays = extract_stay_points(trace)
        assert stays[0].n_records == len(trace)

    def test_tiny_traces(self):
        assert extract_stay_points(Trace("u", [], [], [])) == []
        assert extract_stay_points(Trace("u", [0.0], [37.0], [-122.0])) == []

    def test_invalid_parameters_rejected(self, simple_trace):
        with pytest.raises(ValueError):
            extract_stay_points(simple_trace, roam_m=0.0)
        with pytest.raises(ValueError):
            extract_stay_points(simple_trace, min_dwell_s=-5.0)
