"""Shared fixtures: small, fast synthetic datasets and generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    CommuterConfig,
    Dataset,
    TaxiFleetConfig,
    Trace,
    generate_commuters,
    generate_taxi_fleet,
)
from repro.synth import CityModel


@pytest.fixture(scope="session")
def small_city() -> CityModel:
    """A compact city so routes and sweeps stay fast."""
    return CityModel(half_extent_m=2000.0, block_m=200.0)


@pytest.fixture(scope="session")
def taxi_dataset(small_city) -> Dataset:
    """A small taxi fleet shared by integration-flavoured tests."""
    return generate_taxi_fleet(
        TaxiFleetConfig(n_cabs=6, shift_hours=5.0, seed=7), small_city
    )


@pytest.fixture(scope="session")
def commuter_dataset() -> Dataset:
    """A small commuter population (GeoLife-like)."""
    return generate_commuters(CommuterConfig(n_users=5, n_days=2, seed=7))


@pytest.fixture
def rng() -> np.random.Generator:
    """A fresh deterministic generator per test."""
    return np.random.default_rng(12345)


@pytest.fixture
def simple_trace() -> Trace:
    """A tiny hand-built trace around San Francisco."""
    return Trace(
        "alice",
        times_s=[0.0, 60.0, 120.0, 180.0],
        lats=[37.7749, 37.7750, 37.7751, 37.7752],
        lons=[-122.4194, -122.4193, -122.4192, -122.4191],
    )
