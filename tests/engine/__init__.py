"""Test package marker: gives relative imports (e.g. ``from .conftest import``) a package context."""
