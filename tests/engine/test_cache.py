"""Tests of fingerprints, the two-tier result cache and its disk format."""

import json

import pytest

from repro import Dataset, ResultCache, Trace
from repro.engine import EvalJob, dataset_fingerprint, job_fingerprint
from repro.framework import load_eval_record, save_eval_record


def _dataset(offset: float = 0.0) -> Dataset:
    return Dataset.from_traces([
        Trace("u0", [0.0, 60.0], [37.77, 37.78], [-122.42 + offset, -122.41]),
        Trace("u1", [0.0, 60.0], [37.70, 37.71], [-122.40, -122.40]),
    ])


class TestFingerprints:
    def test_dataset_fingerprint_deterministic(self):
        assert dataset_fingerprint(_dataset()) == dataset_fingerprint(_dataset())

    def test_dataset_fingerprint_sensitive_to_content(self):
        assert dataset_fingerprint(_dataset()) != dataset_fingerprint(
            _dataset(offset=1e-6)
        )

    def test_job_params_order_insensitive(self):
        a = EvalJob.make({"x": 1.0, "y": 2.0}, seed=3)
        b = EvalJob.make({"y": 2.0, "x": 1.0}, seed=3)
        assert a == b
        assert job_fingerprint("ds", "sys", a) == job_fingerprint("ds", "sys", b)

    def test_lambda_factories_with_different_closures_differ(self):
        from dataclasses import replace

        from repro import GeoIndistinguishability
        from repro.engine import system_signature
        from repro.framework import geo_ind_system

        def scaled_system(scale):
            return replace(
                geo_ind_system(),
                lppm_factory=lambda epsilon: GeoIndistinguishability(
                    epsilon * scale
                ),
            )

        sig_1 = system_signature(scaled_system(1.0))
        sig_100 = system_signature(scaled_system(100.0))
        assert sig_1 != sig_100
        # ...and the signature is stable for equal closures.
        assert sig_1 == system_signature(scaled_system(1.0))

    def test_partial_factory_signature_is_address_free(self):
        import functools
        import re

        from repro import GeoIndistinguishability
        from repro.engine.jobs import _factory_signature

        sig = _factory_signature(
            functools.partial(GeoIndistinguishability, epsilon=0.5)
        )
        assert "epsilon=0.5" in sig
        assert not re.search(r"0x[0-9a-f]+", sig)  # no memory addresses

    def test_object_valued_factory_config_is_stable_and_value_based(self):
        # Objects without value-based reprs (DensityMap holds a grid
        # and numpy-backed counts) must render by content, not address.
        import functools
        import re

        from repro import ElasticGeoIndistinguishability
        from repro.lppm import DensityMap
        from repro.engine.jobs import _factory_signature

        def make_sig(cell_size):
            density = DensityMap.from_dataset(_dataset(), cell_size_m=cell_size)
            return _factory_signature(functools.partial(
                ElasticGeoIndistinguishability, density=density
            ))

        sig_a, sig_b = make_sig(400.0), make_sig(400.0)
        assert sig_a == sig_b                       # equal config, equal sig
        assert not re.search(r"0x[0-9a-f]+", sig_a)  # address-free
        assert make_sig(800.0) != sig_a             # different prior differs

    def test_numpy_array_attributes_hash_by_content(self):
        import numpy as np

        from repro.engine.jobs import _stable_repr

        a = _stable_repr(np.arange(10_000, dtype=float))
        b = _stable_repr(np.arange(10_000, dtype=float))
        c = _stable_repr(np.arange(10_001, dtype=float))
        assert a == b != c
        assert "..." not in a  # no truncated repr

    def test_job_fingerprint_separates_everything(self):
        base = EvalJob.make({"x": 1.0}, seed=0)
        fps = {
            job_fingerprint("ds", "sys", base),
            job_fingerprint("ds2", "sys", base),
            job_fingerprint("ds", "sys2", base),
            job_fingerprint("ds", "sys", EvalJob.make({"x": 2.0}, seed=0)),
            job_fingerprint("ds", "sys", EvalJob.make({"x": 1.0}, seed=1)),
        }
        assert len(fps) == 5


class TestResultCache:
    def test_memory_only_roundtrip(self):
        cache = ResultCache()
        assert cache.get("fp") is None
        cache.put("fp", 0.1, 0.9)
        assert cache.get("fp") == (0.1, 0.9)
        assert cache.memory_hits == 1 and cache.misses == 1

    def test_disk_tier_survives_new_instance(self, tmp_path):
        ResultCache(tmp_path).put("ab" + "0" * 62, 0.25, 0.75)
        fresh = ResultCache(tmp_path)
        assert fresh.get("ab" + "0" * 62) == (0.25, 0.75)
        assert fresh.disk_hits == 1

    def test_corrupt_disk_entry_is_a_miss(self, tmp_path):
        fp = "cd" + "0" * 62
        cache = ResultCache(tmp_path)
        cache.put(fp, 0.5, 0.5)
        path = tmp_path / fp[:2] / f"{fp}.json"
        path.write_text("{not json")
        fresh = ResultCache(tmp_path)
        assert fresh.get(fp) is None

    def test_wellformed_but_incomplete_entry_is_a_miss(self, tmp_path):
        # Valid JSON of the right kind, missing the metric values: must
        # be treated as a miss, not crash the sweep.
        fp = "aa" + "0" * 62
        path = tmp_path / fp[:2] / f"{fp}.json"
        path.parent.mkdir(parents=True)
        path.write_text(json.dumps({
            "format_version": 1, "kind": "eval_record", "fingerprint": fp,
        }))
        assert ResultCache(tmp_path).get(fp) is None

    def test_clear_memory_keeps_disk(self, tmp_path):
        fp = "ef" + "0" * 62
        cache = ResultCache(tmp_path)
        cache.put(fp, 0.3, 0.6)
        cache.clear_memory()
        assert len(cache) == 0
        assert cache.get(fp) == (0.3, 0.6)  # promoted back from disk


class TestEvalRecordFormat:
    def test_roundtrip_with_provenance(self, tmp_path):
        record = {
            "fingerprint": "f" * 64,
            "privacy": 0.125,
            "utility": 0.875,
            "system_name": "geo_ind",
            "params": {"epsilon": 0.01},
            "seed": 7,
        }
        path = tmp_path / "record.json"
        save_eval_record(record, path)
        loaded = load_eval_record(path)
        assert loaded["privacy"] == 0.125
        assert loaded["utility"] == 0.875
        assert loaded["params"] == {"epsilon": 0.01}
        assert loaded["kind"] == "eval_record"

    def test_missing_fields_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            save_eval_record({"privacy": 0.1}, tmp_path / "bad.json")

    def test_wrong_kind_rejected(self, tmp_path):
        path = tmp_path / "wrong.json"
        path.write_text(json.dumps({"format_version": 1, "kind": "sweep"}))
        with pytest.raises(ValueError):
            load_eval_record(path)

    def test_float_precision_survives_json(self, tmp_path):
        value = 0.1234567890123456789
        path = tmp_path / "precise.json"
        save_eval_record(
            {"fingerprint": "a" * 64, "privacy": value, "utility": 1.0 / 3.0},
            path,
        )
        loaded = load_eval_record(path)
        assert loaded["privacy"] == value
        assert loaded["utility"] == 1.0 / 3.0
