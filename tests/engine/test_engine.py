"""Engine parity and caching guarantees.

The two load-bearing promises of the engine subsystem:

* **backend parity** — the process pool produces *bit-identical*
  results to the serial backend (same RNG derivation, same code path);
* **durable caching** — a warm disk cache answers a repeated sweep
  with zero new (protect + measure) executions.

These run against the real GEO-I system on a small synthetic fleet, so
randomised protection and both paper metrics are genuinely exercised.
"""

import pytest

from repro import (
    EvaluationEngine,
    ExperimentRunner,
    TaxiFleetConfig,
    generate_taxi_fleet,
    geo_ind_system,
)
from repro.engine import EvalJob, ProcessPoolBackend, SerialBackend


@pytest.fixture(scope="module")
def fleet():
    return generate_taxi_fleet(TaxiFleetConfig(n_cabs=4, shift_hours=1.0, seed=7))


def _sweep(engine, fleet, n_points=4, n_replications=2):
    runner = ExperimentRunner(
        geo_ind_system(), fleet, n_replications=n_replications, engine=engine
    )
    return runner.sweep(n_points=n_points), runner


def _assert_bit_identical(a, b):
    assert len(a) == len(b)
    for pa, pb in zip(a.points, b.points):
        assert pa.params == pb.params
        assert pa.privacy_mean == pb.privacy_mean      # exact, not approx
        assert pa.privacy_std == pb.privacy_std
        assert pa.utility_mean == pb.utility_mean
        assert pa.utility_std == pb.utility_std


class TestBackendParity:
    def test_process_sweep_bit_identical_to_serial(self, fleet):
        serial_sweep, _ = _sweep(EvaluationEngine(engine="serial"), fleet)
        process_sweep, _ = _sweep(
            EvaluationEngine(engine="process", jobs=2), fleet
        )
        _assert_bit_identical(serial_sweep, process_sweep)

    def test_trace_level_parallelism_bit_identical(self, fleet):
        # A single job cannot be split at the job level, so the pool
        # backend fans out per-trace through the LPPM mapper hook.
        system = geo_ind_system()
        job = EvalJob.make({"epsilon": 0.01}, seed=3)
        serial = SerialBackend().run(system, fleet, [job])
        parallel = ProcessPoolBackend(max_workers=2).run(system, fleet, [job])
        assert serial == parallel

    def test_legacy_protect_override_still_works_serially(self, fleet):
        # Mechanisms overriding protect() with the pre-engine
        # (dataset, seed) signature must keep working on the serial
        # path, where no mapper is passed.
        from dataclasses import replace

        from repro import GeoIndistinguishability

        class LegacyGeoInd(GeoIndistinguishability):
            def protect(self, dataset, seed=0):
                return super().protect(dataset, seed=seed)

        system = replace(geo_ind_system(), lppm_factory=LegacyGeoInd)
        [result] = SerialBackend().run(
            system, fleet, [EvalJob.make({"epsilon": 0.01}, seed=0)]
        )
        reference = SerialBackend().run(
            geo_ind_system(), fleet, [EvalJob.make({"epsilon": 0.01}, seed=0)]
        )
        assert [result] == reference

    def test_mapper_hook_preserves_protection(self, fleet):
        lppm = geo_ind_system().make_lppm(epsilon=0.01)
        plain = lppm.protect(fleet, seed=5)
        mapped = lppm.protect(fleet, seed=5, mapper=map)
        for user in plain.users:
            assert (plain[user].lats == mapped[user].lats).all()
            assert (plain[user].lons == mapped[user].lons).all()


class TestCaching:
    def test_warm_disk_cache_runs_zero_evaluations(self, fleet, tmp_path):
        cold = EvaluationEngine(cache_dir=tmp_path)
        _, cold_runner = _sweep(cold, fleet)
        assert cold_runner.n_evaluations == 4 * 2
        assert cold.n_executions == 8

        # A brand-new engine (fresh process, in spirit) with the same
        # cache dir must answer the same sweep entirely from disk.
        warm = EvaluationEngine(cache_dir=tmp_path)
        warm_sweep, warm_runner = _sweep(warm, fleet)
        assert warm_runner.n_evaluations == 0
        assert warm.n_executions == 0
        assert warm.stats["disk_hits"] == 8

        cold_sweep, _ = _sweep(EvaluationEngine(), fleet)
        _assert_bit_identical(cold_sweep, warm_sweep)

    def test_memory_cache_shared_across_runners(self, fleet):
        engine = EvaluationEngine()
        _, first = _sweep(engine, fleet)
        _, second = _sweep(engine, fleet)
        assert first.n_evaluations == 8
        assert second.n_evaluations == 0

    def test_duplicate_jobs_in_batch_execute_once(self, fleet):
        engine = EvaluationEngine()
        jobs = [EvalJob.make({"epsilon": 0.01}, seed=0)] * 3
        results = engine.run(geo_ind_system(), fleet, jobs)
        assert engine.n_executions == 1
        assert [r.cached for r in results] == [False, True, True]
        assert len({(r.privacy, r.utility) for r in results}) == 1
        # Accounting reconciles: the three requests were one distinct
        # piece of work, counted as one miss and one execution.
        assert engine.stats["misses"] == 1

    def test_cache_does_not_leak_across_mechanisms(self, fleet):
        # Same system name and metrics, different LPPM factory: the
        # signature must keep their fingerprints apart.
        from dataclasses import replace

        from repro import ElasticGeoIndistinguishability

        geo = geo_ind_system()
        elastic = replace(geo, lppm_factory=ElasticGeoIndistinguishability)
        engine = EvaluationEngine()
        job = [EvalJob.make({"epsilon": 0.01}, seed=0)]
        [a] = engine.run(geo, fleet, job)
        [b] = engine.run(elastic, fleet, job)
        assert not b.cached
        assert a.fingerprint != b.fingerprint
        assert (a.privacy, a.utility) != (b.privacy, b.utility)

    def test_cache_does_not_leak_across_datasets(self, fleet):
        other = generate_taxi_fleet(
            TaxiFleetConfig(n_cabs=4, shift_hours=1.0, seed=8)
        )
        engine = EvaluationEngine()
        job = [EvalJob.make({"epsilon": 0.01}, seed=0)]
        [a] = engine.run(geo_ind_system(), fleet, job)
        [b] = engine.run(geo_ind_system(), other, job)
        assert not b.cached
        assert a.fingerprint != b.fingerprint


class TestEngineLifecycle:
    def test_fingerprint_memo_does_not_pin_datasets(self):
        import weakref

        engine = EvaluationEngine()
        dataset = generate_taxi_fleet(
            TaxiFleetConfig(n_cabs=2, shift_hours=0.5, seed=1)
        )
        engine.fingerprint_of(dataset)
        ref = weakref.ref(dataset)
        del dataset
        assert ref() is None  # the engine held no strong reference

    def test_process_pool_persists_across_batches(self, fleet):
        from repro.engine import ProcessPoolBackend

        backend = ProcessPoolBackend(max_workers=2)
        system = geo_ind_system()
        jobs = [
            EvalJob.make({"epsilon": 0.01}, seed=s) for s in (0, 1)
        ]
        backend.run(system, fleet, jobs)
        pool = backend._job_pool
        assert pool is not None
        backend.run(system, fleet, jobs)
        assert backend._job_pool is pool  # same (system, dataset): reused
        # An equal-but-not-identical system with a content key also
        # reuses the warm pool.
        backend.run(geo_ind_system(), fleet, jobs, key=("sig", "ds"))
        rekeyed = backend._job_pool
        backend.run(geo_ind_system(), fleet, jobs, key=("sig", "ds"))
        assert backend._job_pool is rekeyed
        backend.close()
        assert backend._job_pool is None

    def test_engine_context_manager_closes(self, fleet):
        with EvaluationEngine(engine="process", jobs=2) as engine:
            runner = ExperimentRunner(
                geo_ind_system(), fleet, n_replications=2, engine=engine
            )
            runner.sweep(n_points=3)
        assert engine._process is None or engine._process._job_pool is None


class TestEngineValidation:
    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            EvaluationEngine(engine="gpu")

    def test_bad_jobs_rejected(self):
        with pytest.raises(ValueError):
            EvaluationEngine(jobs=0)

    def test_auto_policy_falls_back_to_serial_for_one_job(self, fleet):
        engine = EvaluationEngine(engine="auto", jobs=4)
        assert engine._backend_for(1).name == "serial"
        assert engine._backend_for(2).name == "process"


class TestRunnerReplicationValidation:
    def test_explicit_zero_replications_rejected(self, fleet):
        runner = ExperimentRunner(geo_ind_system(), fleet, n_replications=2)
        with pytest.raises(ValueError):
            runner.evaluate({"epsilon": 0.01}, n_replications=0)

    def test_explicit_one_replication_honoured(self, fleet):
        runner = ExperimentRunner(geo_ind_system(), fleet, n_replications=3)
        point = runner.evaluate({"epsilon": 0.01}, n_replications=1)
        assert point.n_replications == 1
        assert runner.n_evaluations == 1
