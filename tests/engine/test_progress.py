"""Progress hooks, cooperative cancellation and per-thread accounting.

The async job subsystem of the service relies on three engine
behaviours added alongside it:

* per-thread **hooks** report a batch's size and chunk-by-chunk
  completions, monotonically;
* **cancellation** raises :class:`EvaluationCancelled` between chunks,
  leaving already-computed chunks in the cache (resume, not restart);
* per-thread :meth:`EvaluationEngine.measure` counters attribute real
  executions to the thread that triggered them, even with concurrent
  callers on one shared engine.
"""

import threading
import time

import pytest

from repro import (
    EvaluationEngine,
    ExperimentRunner,
    TaxiFleetConfig,
    generate_taxi_fleet,
    geo_ind_system,
)
from repro.engine import EvalJob, EvaluationCancelled


@pytest.fixture(scope="module")
def fleet():
    return generate_taxi_fleet(
        TaxiFleetConfig(n_cabs=3, shift_hours=1.0, seed=5)
    )


@pytest.fixture(scope="module")
def system():
    return geo_ind_system()


def _jobs(n, seed0=0):
    return [
        EvalJob.make({"epsilon": 0.001 * (i + 1)}, seed=seed0 + i)
        for i in range(n)
    ]


class TestProgressHooks:
    def test_batch_start_then_monotone_completions(self, system, fleet):
        engine = EvaluationEngine()
        events = []
        with engine.hooks(
            batch_start=lambda n: events.append(("start", n)),
            jobs_done=lambda n: events.append(("done", n)),
        ):
            engine.run(system, fleet, _jobs(4))
        assert events[0] == ("start", 4)
        dones = [n for kind, n in events[1:] if kind == "done"]
        assert all(kind == "done" for kind, _ in events[1:])
        assert sum(dones) == 4
        assert all(n > 0 for n in dones)

    def test_cache_hits_report_done_immediately(self, system, fleet):
        engine = EvaluationEngine()
        engine.run(system, fleet, _jobs(3))
        events = []
        with engine.hooks(
            batch_start=lambda n: events.append(("start", n)),
            jobs_done=lambda n: events.append(("done", n)),
        ):
            engine.run(system, fleet, _jobs(3))
        # Fully warm: one start, one bulk completion, zero executions.
        assert events == [("start", 3), ("done", 3)]

    def test_duplicate_jobs_count_toward_completions(self, system, fleet):
        engine = EvaluationEngine()
        job = EvalJob.make({"epsilon": 0.01}, seed=1)
        total = []
        with engine.hooks(jobs_done=total.append):
            engine.run(system, fleet, [job, job, job])
        assert sum(total) == 3
        assert engine.n_executions == 1

    def test_hooks_are_thread_local(self, system, fleet):
        engine = EvaluationEngine()
        engine.run(system, fleet, _jobs(2))  # warm
        leaked = []
        with engine.hooks(jobs_done=leaked.append):
            other = threading.Thread(
                target=lambda: engine.run(system, fleet, _jobs(2))
            )
            other.start()
            other.join(timeout=30)
        assert leaked == []  # the other thread's batch stayed silent

    def test_hooks_uninstalled_after_block(self, system, fleet):
        engine = EvaluationEngine()
        events = []
        with engine.hooks(batch_start=lambda n: events.append(n)):
            engine.run(system, fleet, _jobs(1))
        engine.run(system, fleet, _jobs(1, seed0=9))
        assert events == [1]


class TestCancellation:
    def test_cancelled_before_first_chunk_runs_nothing(self, system, fleet):
        engine = EvaluationEngine()
        with engine.hooks(should_cancel=lambda: True):
            with pytest.raises(EvaluationCancelled):
                engine.run(system, fleet, _jobs(3))
        assert engine.n_executions == 0

    def test_cancel_between_chunks_keeps_partial_cache(self, system, fleet):
        engine = EvaluationEngine()
        done = []

        def cancel_after_first():
            return bool(done)

        with engine.hooks(
            jobs_done=done.append, should_cancel=cancel_after_first
        ):
            with pytest.raises(EvaluationCancelled):
                engine.run(system, fleet, _jobs(5))
        partial = engine.n_executions
        assert 0 < partial < 5
        # Resubmission resumes from the cache instead of restarting.
        engine.run(system, fleet, _jobs(5))
        assert engine.n_executions == 5

    def test_cancellation_does_not_leak_to_other_threads(
        self, system, fleet
    ):
        engine = EvaluationEngine()
        outcome = {}

        def other_thread():
            try:
                outcome["results"] = engine.run(system, fleet, _jobs(2))
            except EvaluationCancelled:  # pragma: no cover - the bug
                outcome["cancelled"] = True

        with engine.hooks(should_cancel=lambda: True):
            worker = threading.Thread(target=other_thread)
            worker.start()
            worker.join(timeout=30)
        assert "results" in outcome and len(outcome["results"]) == 2


class TestMeasure:
    def test_counts_only_this_threads_executions(self, system, fleet):
        engine = EvaluationEngine()
        barrier = threading.Barrier(2, timeout=30)
        counts = {}

        def worker(name, seed0, n):
            barrier.wait()
            with engine.measure() as cost:
                engine.run(system, fleet, _jobs(n, seed0=seed0))
            counts[name] = cost.count

        threads = [
            threading.Thread(target=worker, args=("a", 0, 2)),
            threading.Thread(target=worker, args=("b", 100, 3)),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert counts == {"a": 2, "b": 3}
        assert engine.n_executions == 5

    def test_warm_measure_is_zero(self, system, fleet):
        engine = EvaluationEngine()
        engine.run(system, fleet, _jobs(3))
        with engine.measure() as cost:
            engine.run(system, fleet, _jobs(3))
        assert cost.count == 0

    def test_nested_measures_both_count(self, system, fleet):
        engine = EvaluationEngine()
        with engine.measure() as outer:
            engine.run(system, fleet, _jobs(1))
            with engine.measure() as inner:
                engine.run(system, fleet, _jobs(1, seed0=50))
        assert inner.count == 1
        assert outer.count == 2


class TestChunkedParity:
    def test_chunked_results_match_single_shot(self, system, fleet):
        """Chunking is an execution detail: values are bit-identical."""
        a = EvaluationEngine().run(system, fleet, _jobs(4))
        b = EvaluationEngine().run(system, fleet, _jobs(4))
        assert [(r.privacy, r.utility) for r in a] == \
            [(r.privacy, r.utility) for r in b]

    def test_concurrent_runs_share_the_cache_consistently(
        self, system, fleet
    ):
        """Two threads sweeping the same grid agree and never crash."""
        engine = EvaluationEngine()
        results = {}

        def sweep(name):
            runner = ExperimentRunner(
                system, fleet, n_replications=1, engine=engine
            )
            results[name] = runner.sweep(n_points=4)

        threads = [
            threading.Thread(target=sweep, args=(name,))
            for name in ("a", "b")
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        assert set(results) == {"a", "b"}
        assert [p.privacy_mean for p in results["a"].points] == \
            [p.privacy_mean for p in results["b"].points]
        # The shared grid executed at most once per (point, seed); the
        # race window allows a duplicated execution but never a wrong
        # value, and the cache holds exactly the distinct jobs.
        assert engine.cache.stats["entries"] == 4

    def test_concurrent_identical_batches_execute_once(self, system, fleet):
        """A batch that queued behind the backend lease re-probes the
        cache and skips jobs a concurrent identical batch settled —
        the warm-repeat-is-free invariant must hold under concurrency,
        not just sequentially."""
        engine = EvaluationEngine(engine="process", jobs=2)
        outcomes = []

        def sweep():
            runner = ExperimentRunner(
                system, fleet, n_replications=1, engine=engine
            )
            outcomes.append(runner.sweep(n_points=4))

        try:
            threads = [threading.Thread(target=sweep) for _ in range(2)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=180)
            assert not any(t.is_alive() for t in threads)
            assert len(outcomes) == 2
            assert [p.privacy_mean for p in outcomes[0].points] == \
                [p.privacy_mean for p in outcomes[1].points]
            # 4 distinct jobs, 2 identical batches: the lease loser
            # found every job already settled.
            assert engine.n_executions == 4
        finally:
            engine.close()

    def test_concurrent_process_backend_distinct_datasets(self, system):
        """The pooled backend survives concurrent batches for
        *different* datasets: pool swaps serialise on the backend's
        lock instead of shutting a pool down under a running map."""
        from repro import TaxiFleetConfig, generate_taxi_fleet

        fleets = [
            generate_taxi_fleet(
                TaxiFleetConfig(n_cabs=2, shift_hours=0.5, seed=s)
            )
            for s in (11, 12)
        ]
        engine = EvaluationEngine(engine="process", jobs=2)
        outcomes, errors = [], []

        def sweep(i):
            try:
                runner = ExperimentRunner(
                    system, fleets[i % 2], n_replications=1, engine=engine
                )
                outcomes.append(runner.sweep(n_points=3))
            except Exception as exc:  # pragma: no cover - the bug
                errors.append(exc)

        try:
            threads = [
                threading.Thread(target=sweep, args=(i,)) for i in range(4)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=180)
            assert not any(t.is_alive() for t in threads), \
                "process backend deadlocked on concurrent datasets"
            assert not errors
            assert len(outcomes) == 4
        finally:
            engine.close()


class TestBoundedClose:
    def test_close_does_not_wait_past_timeout_for_a_held_lease(self):
        """Engine shutdown must stay bounded by the daemon's grace
        period even when a batch still holds the backend lease."""
        from repro.engine import ProcessPoolBackend

        backend = ProcessPoolBackend(max_workers=2)
        release = threading.Event()

        def leaseholder():
            with backend.batch_lock:
                release.wait(timeout=30)

        holder = threading.Thread(target=leaseholder, daemon=True)
        holder.start()
        time.sleep(0.05)  # let the holder acquire the lease
        start = time.monotonic()
        backend.close(timeout_s=0.2)
        elapsed = time.monotonic() - start
        release.set()
        holder.join(timeout=5)
        assert elapsed < 2.0, f"close blocked {elapsed:.1f}s on the lease"
        # A forced close is final: a late chunk must not resurrect the
        # pools (the exit path could not reap them).
        from repro import TaxiFleetConfig, generate_taxi_fleet, geo_ind_system

        fleet = generate_taxi_fleet(
            TaxiFleetConfig(n_cabs=2, shift_hours=0.5, seed=3)
        )
        with pytest.raises(RuntimeError):
            backend.run(geo_ind_system(), fleet, _jobs(2))
        backend.close()  # idempotent, now uncontended

    def test_service_close_bounded_with_busy_worker(self):
        """ConfigService.close(grace_s) returns promptly even while a
        job is mid-evaluation on a slow system."""
        from tests.service.test_jobs import slow_system_factory

        from repro.service import ConfigService, ServiceClient

        service = ConfigService(
            workers=1, system_factory=slow_system_factory(0.05)
        )
        client = ServiceClient(service)
        client.submit("sweep", {
            "dataset": {"workload": "taxi", "users": 4, "seed": 1},
            "points": 20, "replications": 4,
        })
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            if client.jobs()["by_status"].get("running"):
                break
            time.sleep(0.005)
        start = time.monotonic()
        service.close(grace_s=0.3)
        elapsed = time.monotonic() - start
        assert elapsed < 5.0, f"close took {elapsed:.1f}s"
