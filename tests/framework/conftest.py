"""Fast deterministic mock system for framework tests.

The mock LPPM shifts every point east by exactly ``shift_m`` metres;
the mock metrics are closed-form functions of the measured mean
displacement, chosen to be *exactly* linear in ``ln(shift_m)`` so the
model layer can be tested against known coefficients without running
the (slower) POI machinery.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np
import pytest

from repro.framework import ExperimentRunner, ParameterSpec, SystemDefinition
from repro.geo import LocalProjection, haversine_m_arrays
from repro.lppm import LPPM
from repro.metrics import Metric
from repro.mobility import Dataset, Trace

#: Ground-truth coefficients of the mock system (paper notation).
MOCK_A, MOCK_B = 0.05, 0.10      # privacy = a + b ln(shift)
MOCK_ALPHA, MOCK_BETA = 1.00, -0.08   # utility = alpha + beta ln(shift)


class ShiftEast(LPPM):
    """Deterministically translate every point ``shift_m`` metres east."""

    name = "shift_east"

    def __init__(self, shift_m: float) -> None:
        if shift_m <= 0:
            raise ValueError("shift must be positive")
        self.shift_m = float(shift_m)

    def params(self) -> Mapping[str, float]:
        return {"shift_m": self.shift_m}

    def protect_trace(self, trace: Trace, rng: np.random.Generator) -> Trace:
        projection = LocalProjection.for_data(trace.lats, trace.lons)
        x, y = projection.to_xy(trace.lats, trace.lons)
        lats, lons = projection.to_latlon(x + self.shift_m, y)
        return trace.with_coords(lats, lons)


def _mean_displacement_m(actual: Dataset, protected: Dataset) -> float:
    values = []
    for user in actual.users:
        a, p = actual[user], protected[user]
        values.append(
            float(np.mean(haversine_m_arrays(a.lats, a.lons, p.lats, p.lons)))
        )
    return float(np.mean(values))


class LogPrivacy(Metric):
    """privacy = MOCK_A + MOCK_B * ln(mean displacement)."""

    name = "mock_log_privacy"
    kind = "privacy"

    def evaluate(self, actual: Dataset, protected: Dataset) -> float:
        return MOCK_A + MOCK_B * np.log(_mean_displacement_m(actual, protected))


class LogUtility(Metric):
    """utility = MOCK_ALPHA + MOCK_BETA * ln(mean displacement)."""

    name = "mock_log_utility"
    kind = "utility"

    def evaluate(self, actual: Dataset, protected: Dataset) -> float:
        return MOCK_ALPHA + MOCK_BETA * np.log(
            _mean_displacement_m(actual, protected)
        )


class ShiftScale(LPPM):
    """Two-parameter mock: translate east by ``shift_m * factor``.

    The displacement is multiplicative in the parameters, so both mock
    metrics are exactly linear in ``ln(shift_m) + ln(factor)`` — the
    ground truth the multi-parameter model must recover.
    """

    name = "shift_scale"

    def __init__(self, shift_m: float, factor: float) -> None:
        if shift_m <= 0 or factor <= 0:
            raise ValueError("shift and factor must be positive")
        self.shift_m = float(shift_m)
        self.factor = float(factor)

    def params(self) -> Mapping[str, float]:
        return {"shift_m": self.shift_m, "factor": self.factor}

    def protect_trace(self, trace: Trace, rng: np.random.Generator) -> Trace:
        return ShiftEast(self.shift_m * self.factor).protect_trace(trace, rng)


class SizeAwarePrivacy(Metric):
    """privacy = 0.01 * n_users + MOCK_B * ln(mean displacement).

    The intercept depends linearly on a dataset property (user count),
    which is what the transfer regression must learn.
    """

    name = "mock_size_privacy"
    kind = "privacy"

    def evaluate(self, actual: Dataset, protected: Dataset) -> float:
        return 0.01 * len(actual) + MOCK_B * np.log(
            _mean_displacement_m(actual, protected)
        )


def make_tiny_dataset(n_users: int = 3) -> Dataset:
    traces = []
    for i in range(n_users):
        n = 10
        traces.append(
            Trace(
                f"u{i}",
                np.arange(n, dtype=float) * 60.0,
                np.full(n, 37.77 + 0.01 * i),
                np.full(n, -122.42),
            )
        )
    return Dataset.from_traces(traces)


@pytest.fixture(scope="session")
def tiny_dataset() -> Dataset:
    return make_tiny_dataset(3)


@pytest.fixture
def mock_system() -> SystemDefinition:
    return SystemDefinition(
        name="mock",
        lppm_factory=ShiftEast,
        parameters=[ParameterSpec("shift_m", 1.0, 10_000.0, scale="log")],
        privacy_metric=LogPrivacy(),
        utility_metric=LogUtility(),
    )


@pytest.fixture
def mock_runner(mock_system, tiny_dataset) -> ExperimentRunner:
    return ExperimentRunner(mock_system, tiny_dataset, n_replications=2)


@pytest.fixture
def two_param_system() -> SystemDefinition:
    return SystemDefinition(
        name="mock2",
        lppm_factory=ShiftScale,
        parameters=[
            ParameterSpec("shift_m", 1.0, 10_000.0, scale="log"),
            ParameterSpec("factor", 0.1, 10.0, scale="log"),
        ],
        privacy_metric=LogPrivacy(),
        utility_metric=LogUtility(),
    )


@pytest.fixture
def two_param_runner(two_param_system, tiny_dataset) -> ExperimentRunner:
    return ExperimentRunner(two_param_system, tiny_dataset, n_replications=1)
