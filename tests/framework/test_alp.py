"""Tests of the ALP-style greedy configuration baseline."""

import numpy as np
import pytest

from repro.framework import AlpConfig, Objective, alp_configure

from .conftest import MOCK_A, MOCK_B


class TestAlpConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            AlpConfig(step_factor=1.0)
        with pytest.raises(ValueError):
            AlpConfig(shrink=0.0)
        with pytest.raises(ValueError):
            AlpConfig(max_iterations=0)


class TestConvergence:
    def test_converges_to_privacy_objective(self, mock_system, mock_runner):
        # Privacy grows with shift: demanding a low value forces the
        # search down toward small shifts.
        target = MOCK_A + MOCK_B * np.log(50.0)
        result = alp_configure(
            mock_system,
            mock_runner,
            [Objective("privacy", "<=", target)],
            initial=5000.0,
        )
        assert result.satisfied
        assert result.final_value is not None
        assert result.final_value <= 50.0 * 1.5
        assert result.n_iterations >= 2

    def test_already_satisfied_returns_immediately(self, mock_system, mock_runner):
        target = MOCK_A + MOCK_B * np.log(9000.0)
        result = alp_configure(
            mock_system,
            mock_runner,
            [Objective("privacy", "<=", target)],
            initial=100.0,
        )
        assert result.satisfied
        assert result.final_value == 100.0
        assert result.n_iterations == 1

    def test_trajectory_recorded(self, mock_system, mock_runner):
        target = MOCK_A + MOCK_B * np.log(50.0)
        result = alp_configure(
            mock_system,
            mock_runner,
            [Objective("privacy", "<=", target)],
            initial=5000.0,
        )
        assert len(result.trajectory) == result.n_iterations
        assert result.trajectory[0].value == 5000.0
        assert all(np.isfinite(s.privacy) for s in result.trajectory)

    def test_infeasible_target_unsatisfied(self, mock_system, mock_runner):
        # Privacy below the value at the range minimum is unreachable.
        impossible = MOCK_A + MOCK_B * np.log(0.1)
        result = alp_configure(
            mock_system,
            mock_runner,
            [Objective("privacy", "<=", impossible)],
            initial=100.0,
            config=AlpConfig(max_iterations=10),
        )
        assert not result.satisfied

    def test_evaluation_count_positive_and_bounded(self, mock_system, mock_runner):
        target = MOCK_A + MOCK_B * np.log(50.0)
        config = AlpConfig(max_iterations=15)
        result = alp_configure(
            mock_system,
            mock_runner,
            [Objective("privacy", "<=", target)],
            initial=5000.0,
            config=config,
        )
        assert 0 < result.n_evaluations <= (config.max_iterations + 2)


class TestValidation:
    def test_empty_objectives_rejected(self, mock_system, mock_runner):
        with pytest.raises(ValueError):
            alp_configure(mock_system, mock_runner, [])

    def test_initial_out_of_range_rejected(self, mock_system, mock_runner):
        with pytest.raises(ValueError):
            alp_configure(
                mock_system,
                mock_runner,
                [Objective("privacy", "<=", 0.5)],
                initial=99_999.0,
            )
