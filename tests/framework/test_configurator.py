"""Tests of objective-driven configuration (framework step 3)."""

import numpy as np
import pytest

from repro.framework import Configurator, Objective

from .conftest import MOCK_A, MOCK_ALPHA, MOCK_B, MOCK_BETA


def _configurator(mock_system, tiny_dataset) -> Configurator:
    c = Configurator(mock_system, tiny_dataset, n_points=10, n_replications=1)
    c.fit(use_active_region=False)
    return c


class TestObjective:
    def test_validation(self):
        with pytest.raises(ValueError):
            Objective("speed", "<=", 1.0)
        with pytest.raises(ValueError):
            Objective("privacy", "<", 1.0)

    def test_satisfied_by(self):
        le = Objective("privacy", "<=", 0.1)
        assert le.satisfied_by(0.05)
        assert not le.satisfied_by(0.2)
        assert le.satisfied_by(0.12, tol=0.05)
        ge = Objective("utility", ">=", 0.8)
        assert ge.satisfied_by(0.9)
        assert not ge.satisfied_by(0.7)

    def test_str(self):
        assert str(Objective("privacy", "<=", 0.1)) == "privacy <= 0.1"


class TestRecommend:
    def test_requires_fit(self, mock_system, tiny_dataset):
        c = Configurator(mock_system, tiny_dataset)
        with pytest.raises(RuntimeError):
            c.recommend([Objective("privacy", "<=", 0.5)])
        with pytest.raises(RuntimeError):
            _ = c.sweep

    def test_privacy_only_objective(self, mock_system, tiny_dataset):
        c = _configurator(mock_system, tiny_dataset)
        target = MOCK_A + MOCK_B * np.log(200.0)  # satisfied for shift <= 200
        rec = c.recommend([Objective("privacy", "<=", target)])
        assert rec.feasible
        # Privacy grows with shift; utility falls with shift, so the
        # max_utility policy picks the low (small-shift) side of the
        # interval, backed off the edge by the safety margin.
        lo, hi = rec.interval
        assert lo <= rec.value <= np.sqrt(lo * hi) * 1.0001
        assert rec.predicted_privacy <= target + 1e-6

    def test_zero_safety_picks_exact_edge(self, mock_system, tiny_dataset):
        c = _configurator(mock_system, tiny_dataset)
        target = MOCK_A + MOCK_B * np.log(200.0)
        rec = c.recommend([Objective("privacy", "<=", target)], safety=0.0)
        assert rec.value == pytest.approx(rec.interval[0], rel=1e-9)

    def test_safety_validation(self, mock_system, tiny_dataset):
        c = _configurator(mock_system, tiny_dataset)
        with pytest.raises(ValueError):
            c.recommend([Objective("privacy", "<=", 0.5)], safety=0.6)
        with pytest.raises(ValueError):
            c.recommend([Objective("privacy", "<=", 0.5)], tolerance=-0.1)

    def test_tight_intervals_resolved_within_tolerance(
        self, mock_system, tiny_dataset
    ):
        c = _configurator(mock_system, tiny_dataset)
        # Objectives whose model bounds cross by a hair: privacy wants
        # shift <= x, utility wants shift >= x * 1.02.
        x = 300.0
        rec = c.recommend(
            [
                Objective("privacy", "<=", MOCK_A + MOCK_B * np.log(x)),
                Objective("utility", "<=", MOCK_ALPHA + MOCK_BETA * np.log(x * 1.02)),
            ],
            tolerance=0.05,
        )
        assert rec.feasible
        assert "tight" in rec.notes
        assert rec.value == pytest.approx(x * np.sqrt(1.02), rel=0.05)

    def test_joint_objectives_feasible(self, mock_system, tiny_dataset):
        c = _configurator(mock_system, tiny_dataset)
        pr_target = MOCK_A + MOCK_B * np.log(1000.0)   # shift <= 1000
        ut_target = MOCK_ALPHA + MOCK_BETA * np.log(50.0)  # shift <= 50 for >=
        rec = c.recommend([
            Objective("privacy", "<=", pr_target),
            Objective("utility", ">=", ut_target),
        ])
        assert rec.feasible
        lo, hi = rec.interval
        assert lo <= rec.value <= hi
        assert hi <= 1000.0 * 1.05
        assert hi <= 50.0 * 1.05  # utility is the binding constraint

    def test_infeasible_detected(self, mock_system, tiny_dataset):
        c = _configurator(mock_system, tiny_dataset)
        # Demand very low privacy (small shift) and very low utility
        # metric (huge shift) simultaneously: impossible.
        rec = c.recommend([
            Objective("privacy", "<=", MOCK_A + MOCK_B * np.log(5.0)),
            Objective("utility", "<=", MOCK_ALPHA + MOCK_BETA * np.log(5000.0)),
        ])
        assert not rec.feasible
        assert rec.value is None

    def test_policies_order(self, mock_system, tiny_dataset):
        c = _configurator(mock_system, tiny_dataset)
        objectives = [Objective("privacy", "<=", MOCK_A + MOCK_B * np.log(500.0))]
        max_ut = c.recommend(objectives, policy="max_utility").value
        max_pr = c.recommend(objectives, policy="max_privacy").value
        mid = c.recommend(objectives, policy="midpoint").value
        # Utility falls with shift: max_utility => smallest shift;
        # max_privacy => the most protective extreme (largest shift here,
        # since the mock privacy metric grows with shift... the policy
        # simply picks the other end of the interval).
        assert max_ut < mid < max_pr

    def test_unknown_policy_rejected(self, mock_system, tiny_dataset):
        c = _configurator(mock_system, tiny_dataset)
        with pytest.raises(ValueError):
            c.recommend([Objective("privacy", "<=", 0.5)], policy="vibes")

    def test_empty_objectives_rejected(self, mock_system, tiny_dataset):
        c = _configurator(mock_system, tiny_dataset)
        with pytest.raises(ValueError):
            c.recommend([])


class TestVerify:
    def test_verification_matches_prediction(self, mock_system, tiny_dataset):
        c = _configurator(mock_system, tiny_dataset)
        rec = c.recommend(
            [Objective("privacy", "<=", MOCK_A + MOCK_B * np.log(300.0))]
        )
        measured_pr, measured_ut = c.verify(rec)
        assert measured_pr == pytest.approx(rec.predicted_privacy, abs=0.02)
        assert measured_ut == pytest.approx(rec.predicted_utility, abs=0.02)

    def test_verify_infeasible_rejected(self, mock_system, tiny_dataset):
        c = _configurator(mock_system, tiny_dataset)
        rec = c.recommend([
            Objective("privacy", "<=", MOCK_A + MOCK_B * np.log(5.0)),
            Objective("utility", "<=", MOCK_ALPHA + MOCK_BETA * np.log(5000.0)),
        ])
        with pytest.raises(ValueError):
            c.verify(rec)
