"""Tests of the invertible log-linear metric models."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.framework import LogLinearMetricModel, fit_system_model

from .conftest import MOCK_A, MOCK_ALPHA, MOCK_B, MOCK_BETA


class TestFit:
    def test_exact_line_recovered(self):
        xs = np.geomspace(1e-4, 1.0, 20)
        ys = 0.84 + 0.17 * np.log(xs)  # the paper's privacy model
        model = LogLinearMetricModel.fit(xs, ys)
        assert model.intercept == pytest.approx(0.84, abs=1e-9)
        assert model.slope == pytest.approx(0.17, abs=1e-9)
        assert model.r2 == pytest.approx(1.0)

    def test_r2_degrades_with_noise(self):
        rng = np.random.default_rng(0)
        xs = np.geomspace(1e-3, 1.0, 40)
        clean = 0.5 + 0.1 * np.log(xs)
        noisy = clean + rng.normal(0, 0.2, size=40)
        assert LogLinearMetricModel.fit(xs, noisy).r2 < LogLinearMetricModel.fit(
            xs, clean
        ).r2

    def test_domain_and_range_recorded(self):
        xs = np.asarray([0.01, 0.1, 1.0])
        ys = np.asarray([0.2, 0.5, 0.8])
        model = LogLinearMetricModel.fit(xs, ys)
        assert model.x_low == 0.01
        assert model.x_high == 1.0
        assert model.y_low == 0.2
        assert model.y_high == 0.8

    def test_validation(self):
        with pytest.raises(ValueError):
            LogLinearMetricModel.fit([1.0], [1.0])
        with pytest.raises(ValueError):
            LogLinearMetricModel.fit([0.0, 1.0], [0.0, 1.0])
        with pytest.raises(ValueError):
            LogLinearMetricModel.fit([1.0, 2.0], [1.0])


class TestPredictInvert:
    @pytest.fixture
    def model(self) -> LogLinearMetricModel:
        xs = np.geomspace(1e-4, 1.0, 20)
        return LogLinearMetricModel.fit(xs, 0.84 + 0.17 * np.log(xs))

    def test_invert_round_trip(self, model):
        for x in (1e-3, 1e-2, 1e-1):
            y = float(model.predict(x))
            assert model.invert(y) == pytest.approx(x, rel=1e-6)

    def test_paper_worked_example(self, model):
        # Pr = 0.1 with a=0.84, b=0.17 gives eps = exp((0.1-0.84)/0.17).
        eps = model.invert(0.1)
        assert eps == pytest.approx(np.exp((0.1 - 0.84) / 0.17), rel=1e-9)

    def test_predict_clamps_to_fitted_range(self, model):
        below = float(model.predict(1e-8))
        assert below >= model.y_low - 1e-12

    def test_predict_rejects_nonpositive(self, model):
        with pytest.raises(ValueError):
            model.predict(0.0)

    def test_invert_clamped(self, model):
        assert model.invert_clamped(-10.0) == model.x_low
        assert model.invert_clamped(10.0) == model.x_high

    def test_flat_model_invert_rejected(self):
        model = LogLinearMetricModel(
            intercept=0.5, slope=0.0, x_low=0.1, x_high=1.0,
            y_low=0.5, y_high=0.5, r2=1.0,
        )
        with pytest.raises(ValueError):
            model.invert(0.5)

    @given(st.floats(min_value=0.01, max_value=0.99))
    @settings(max_examples=30)
    def test_invert_predict_consistency_property(self, y):
        xs = np.geomspace(1e-4, 1.0, 10)
        model = LogLinearMetricModel.fit(xs, 0.5 + 0.12 * np.log(xs))
        x = model.invert(y)
        if model.x_low <= x <= model.x_high:
            assert float(model.predict(x)) == pytest.approx(y, abs=1e-9)


class TestSystemModel:
    def test_fit_recovers_mock_coefficients(self, mock_runner):
        sweep = mock_runner.sweep(n_points=12)
        model = fit_system_model(sweep, use_active_region=False)
        a, b, alpha, beta = model.coefficients
        assert a == pytest.approx(MOCK_A, abs=0.02)
        assert b == pytest.approx(MOCK_B, abs=0.01)
        assert alpha == pytest.approx(MOCK_ALPHA, abs=0.02)
        assert beta == pytest.approx(MOCK_BETA, abs=0.01)
        assert model.privacy.r2 > 0.999
        assert model.utility.r2 > 0.999

    def test_predict_pair(self, mock_runner):
        sweep = mock_runner.sweep(n_points=8)
        model = fit_system_model(sweep, use_active_region=False)
        pr, ut = model.predict(100.0)
        assert pr == pytest.approx(MOCK_A + MOCK_B * np.log(100.0), abs=0.02)
        assert ut == pytest.approx(MOCK_ALPHA + MOCK_BETA * np.log(100.0), abs=0.02)

    def test_inversions(self, mock_runner):
        sweep = mock_runner.sweep(n_points=8)
        model = fit_system_model(sweep, use_active_region=False)
        target_pr = MOCK_A + MOCK_B * np.log(500.0)
        assert model.invert_privacy(target_pr) == pytest.approx(500.0, rel=0.05)
        target_ut = MOCK_ALPHA + MOCK_BETA * np.log(500.0)
        assert model.invert_utility(target_ut) == pytest.approx(500.0, rel=0.05)

    def test_domain_intersection(self, mock_runner):
        sweep = mock_runner.sweep(n_points=8)
        model = fit_system_model(sweep, use_active_region=False)
        lo, hi = model.domain()
        assert lo >= 1.0
        assert hi <= 10_000.0
        assert lo < hi

    def test_active_region_fit_also_accurate(self, mock_runner):
        # With a strictly linear response the active region trims edges
        # but the fitted slope is unchanged.
        sweep = mock_runner.sweep(n_points=12)
        model = fit_system_model(sweep, use_active_region=True)
        assert model.privacy.slope == pytest.approx(MOCK_B, abs=0.01)
