"""Tests of the multi-parameter grid sweeps and models."""

import numpy as np
import pytest

from repro.framework import (
    ParameterSpec,
    fit_multi_system_model,
    grid_sweep,
)
from repro.framework.multi import MultiLinearMetricModel

from .conftest import MOCK_A, MOCK_ALPHA, MOCK_B, MOCK_BETA


class TestGridSweep:
    def test_grid_size(self, two_param_runner):
        sweep = grid_sweep(two_param_runner, n_points=4)
        assert len(sweep) == 16
        assert sweep.param_names == ["shift_m", "factor"]
        assert sweep.param_matrix().shape == (16, 2)

    def test_covers_all_combinations(self, two_param_runner):
        sweep = grid_sweep(two_param_runner, n_points=3)
        matrix = sweep.param_matrix()
        assert np.unique(matrix[:, 0]).size == 3
        assert np.unique(matrix[:, 1]).size == 3

    def test_single_axis_selection(self, two_param_runner):
        sweep = grid_sweep(two_param_runner, n_points=4, param_names=["factor"])
        assert len(sweep) == 4
        assert sweep.param_names == ["factor"]


class TestMultiLinearModel:
    def test_exact_recovery_on_mock(self, two_param_system, two_param_runner):
        # Displacement = shift * factor, so both slopes equal MOCK_B
        # (privacy) and MOCK_BETA (utility) exactly.
        sweep = grid_sweep(two_param_runner, n_points=4)
        model = fit_multi_system_model(two_param_system, sweep)
        assert model.privacy.intercept == pytest.approx(MOCK_A, abs=0.02)
        assert model.privacy.slopes[0] == pytest.approx(MOCK_B, abs=0.01)
        assert model.privacy.slopes[1] == pytest.approx(MOCK_B, abs=0.01)
        assert model.utility.intercept == pytest.approx(MOCK_ALPHA, abs=0.02)
        assert model.utility.slopes[0] == pytest.approx(MOCK_BETA, abs=0.01)
        assert model.privacy.r2 > 0.999
        assert model.utility.r2 > 0.999

    def test_predict_matches_ground_truth(self, two_param_system, two_param_runner):
        sweep = grid_sweep(two_param_runner, n_points=4)
        model = fit_multi_system_model(two_param_system, sweep)
        params = {"shift_m": 500.0, "factor": 2.0}
        pr, ut = model.predict(params)
        truth_pr = MOCK_A + MOCK_B * np.log(500.0 * 2.0)
        truth_ut = MOCK_ALPHA + MOCK_BETA * np.log(500.0 * 2.0)
        assert pr == pytest.approx(truth_pr, abs=0.02)
        assert ut == pytest.approx(truth_ut, abs=0.02)

    def test_partial_inversion_round_trip(self, two_param_system, two_param_runner):
        sweep = grid_sweep(two_param_runner, n_points=4)
        model = fit_multi_system_model(two_param_system, sweep)
        target = MOCK_A + MOCK_B * np.log(300.0 * 1.5)
        shift = model.privacy.invert_for(
            "shift_m", target, fixed={"factor": 1.5}
        )
        assert shift == pytest.approx(300.0, rel=0.05)
        factor = model.privacy.invert_for(
            "factor", target, fixed={"shift_m": 300.0}
        )
        assert factor == pytest.approx(1.5, rel=0.05)

    def test_missing_parameters_rejected(self, two_param_system, two_param_runner):
        sweep = grid_sweep(two_param_runner, n_points=3)
        model = fit_multi_system_model(two_param_system, sweep)
        with pytest.raises(KeyError):
            model.privacy.predict({"shift_m": 100.0})
        with pytest.raises(KeyError):
            model.privacy.invert_for("shift_m", 0.5, fixed={})
        with pytest.raises(KeyError):
            model.privacy.invert_for("nope", 0.5, fixed={"factor": 1.0})

    def test_prediction_clamped_to_fitted_range(
        self, two_param_system, two_param_runner
    ):
        sweep = grid_sweep(two_param_runner, n_points=3)
        model = fit_multi_system_model(two_param_system, sweep)
        extreme = model.utility.predict({"shift_m": 10_000.0, "factor": 10.0})
        assert extreme >= model.utility.y_low - 1e-9

    def test_linear_scale_axis_uses_identity_transform(self):
        # y = 1 + 2*x exactly, on a linear-scale parameter.
        spec = ParameterSpec("k", 0.0, 10.0, scale="linear")
        xs = np.linspace(0.0, 10.0, 12).reshape(-1, 1)
        ys = 1.0 + 2.0 * xs[:, 0]
        model = MultiLinearMetricModel.fit([spec], xs, ys)
        assert model.intercept == pytest.approx(1.0, abs=1e-9)
        assert model.slopes[0] == pytest.approx(2.0, abs=1e-9)
        assert model.invert_for("k", 7.0, fixed={}) == pytest.approx(3.0)

    def test_fit_validation(self):
        spec = ParameterSpec("k", 1.0, 10.0)
        with pytest.raises(ValueError):
            MultiLinearMetricModel.fit([spec], np.ones((1, 1)), np.ones(1))
        with pytest.raises(ValueError):
            MultiLinearMetricModel.fit([spec], np.ones((5, 2)), np.ones(5))

    def test_flat_axis_inversion_rejected(self):
        model = MultiLinearMetricModel(
            param_names=("a", "b"),
            scales=("log", "log"),
            intercept=0.5,
            slopes=(0.2, 0.0),   # the metric ignores parameter b
            y_low=0.0,
            y_high=1.0,
            r2=1.0,
        )
        with pytest.raises(ValueError):
            model.invert_for("b", 0.6, fixed={"a": 2.0})