"""Multi-parameter end-to-end on a real mechanism stack.

A Subsampling -> GEO-I pipeline has two knobs (keep fraction, epsilon);
both raise exposure and utility as they grow, so the fitted planes must
show two positive slopes, and per-axis inversion must give sensible
trade-offs.  This is the smallest real instance of the paper's
``f(p_1..p_n)``.
"""

import pytest

from repro.framework import (
    ExperimentRunner,
    ParameterSpec,
    SystemDefinition,
    fit_multi_system_model,
    grid_sweep,
)
from repro.lppm import GeoIndistinguishability, Pipeline, Subsampling
from repro.metrics import AreaCoverageUtility, PoiRetrievalPrivacy


def _pipeline_lppm(keep_fraction: float, epsilon: float) -> Pipeline:
    return Pipeline([Subsampling(keep_fraction), GeoIndistinguishability(epsilon)])


@pytest.fixture(scope="module")
def pipeline_model(taxi_dataset):
    system = SystemDefinition(
        name="subsample_geoi",
        lppm_factory=_pipeline_lppm,
        parameters=[
            ParameterSpec("keep_fraction", 0.1, 1.0, scale="log"),
            ParameterSpec("epsilon", 1e-3, 1e-1, scale="log"),
        ],
        privacy_metric=PoiRetrievalPrivacy(),
        utility_metric=AreaCoverageUtility(cell_size_m=600.0),
    )
    runner = ExperimentRunner(system, taxi_dataset, n_replications=1)
    sweep = grid_sweep(runner, n_points=4)
    return system, fit_multi_system_model(system, sweep)


class TestPipelineGrid:
    def test_both_axes_raise_exposure(self, pipeline_model):
        _, model = pipeline_model
        keep_slope, eps_slope = model.privacy.slopes
        assert keep_slope > 0, "keeping more records must expose more POIs"
        assert eps_slope > 0, "less noise must expose more POIs"

    def test_both_axes_raise_utility(self, pipeline_model):
        _, model = pipeline_model
        keep_slope, eps_slope = model.utility.slopes
        assert keep_slope > 0
        assert eps_slope > 0

    def test_fit_quality(self, pipeline_model):
        _, model = pipeline_model
        # Grid fits include the saturated corners (no per-axis active
        # zone detection yet), so planes are rougher than the 1-D fits;
        # they must still capture a clear majority of the variance.
        assert model.utility.r2 > 0.7
        assert model.privacy.r2 > 0.5

    def test_tradeoff_inversion(self, pipeline_model):
        _, model = pipeline_model
        # For a fixed utility target, keeping fewer records must be
        # compensated by a larger epsilon (less noise).
        target = (model.utility.y_low + model.utility.y_high) / 2.0
        eps_at_low_keep = model.utility.invert_for(
            "epsilon", target, fixed={"keep_fraction": 0.2}
        )
        eps_at_high_keep = model.utility.invert_for(
            "epsilon", target, fixed={"keep_fraction": 0.9}
        )
        assert eps_at_low_keep > eps_at_high_keep

    def test_predictions_bounded(self, pipeline_model):
        _, model = pipeline_model
        pr, ut = model.predict({"keep_fraction": 0.5, "epsilon": 0.01})
        assert 0.0 <= pr <= 1.0
        assert 0.0 <= ut <= 1.0
