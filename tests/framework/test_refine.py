"""Tests of measurement-guided recommendation refinement."""

import numpy as np
import pytest

from repro.framework import (
    Configurator,
    Objective,
    Recommendation,
    refine_recommendation,
)

from .conftest import MOCK_A, MOCK_B


def _recommendation(value, interval):
    return Recommendation(
        param_name="shift_m",
        value=value,
        feasible=True,
        interval=interval,
        predicted_privacy=None,
        predicted_utility=None,
    )


class TestRefine:
    def test_already_satisfied_single_evaluation(self, mock_runner):
        target = MOCK_A + MOCK_B * np.log(1000.0)
        rec = _recommendation(200.0, (50.0, 1000.0))
        result = refine_recommendation(
            mock_runner, rec, [Objective("privacy", "<=", target)]
        )
        assert result.satisfied
        assert result.value == 200.0
        assert result.n_evaluations == 1
        assert len(result.trail) == 1

    def test_violation_bisects_to_feasibility(self, mock_runner):
        # Objective satisfied only below shift=100; recommendation sits
        # at 800 near the top of its interval.
        target = MOCK_A + MOCK_B * np.log(100.0)
        rec = _recommendation(800.0, (10.0, 1000.0))
        result = refine_recommendation(
            mock_runner, rec, [Objective("privacy", "<=", target)],
            max_evaluations=8,
        )
        assert result.satisfied
        assert result.value < 100.0 * 1.05
        assert result.n_evaluations >= 2
        assert result.trail[0][0] == 800.0

    def test_budget_exhaustion_reports_unsatisfied(self, mock_runner):
        # Feasible only below 20, but the bracket barely reaches there:
        # with max 2 evaluations the bisection cannot land.
        target = MOCK_A + MOCK_B * np.log(20.0)
        rec = _recommendation(900.0, (700.0, 1000.0))
        result = refine_recommendation(
            mock_runner, rec, [Objective("privacy", "<=", target)],
            max_evaluations=2,
        )
        assert not result.satisfied
        assert result.n_evaluations == 2

    def test_infeasible_recommendation_rejected(self, mock_runner):
        bad = Recommendation(
            param_name="shift_m", value=None, feasible=False,
            interval=(1.0, 0.5), predicted_privacy=None, predicted_utility=None,
        )
        with pytest.raises(ValueError):
            refine_recommendation(mock_runner, bad, [Objective("privacy", "<=", 1.0)])

    def test_validation(self, mock_runner):
        rec = _recommendation(100.0, (10.0, 1000.0))
        with pytest.raises(ValueError):
            refine_recommendation(
                mock_runner, rec, [Objective("privacy", "<=", 1.0)],
                max_evaluations=0,
            )

    def test_end_to_end_with_configurator(self, mock_system, tiny_dataset):
        configurator = Configurator(
            mock_system, tiny_dataset, n_points=8, n_replications=1
        )
        configurator.fit(use_active_region=False)
        target = MOCK_A + MOCK_B * np.log(150.0)
        rec = configurator.recommend([Objective("privacy", "<=", target)])
        result = refine_recommendation(
            configurator.runner, rec, [Objective("privacy", "<=", target)]
        )
        assert result.satisfied
        assert result.privacy <= target + 1e-6
