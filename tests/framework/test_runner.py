"""Tests of the experiment runner (sweeps, caching, replication)."""

import numpy as np
import pytest

from repro.framework import ExperimentRunner


class TestEvaluate:
    def test_deterministic_mock_metrics(self, mock_runner):
        point = mock_runner.evaluate({"shift_m": 100.0})
        # ShiftEast is deterministic: replications agree exactly.
        assert point.privacy_std == pytest.approx(0.0, abs=1e-12)
        assert point.utility_std == pytest.approx(0.0, abs=1e-12)
        assert point.n_replications == 2

    def test_known_metric_values(self, mock_runner):
        from .conftest import MOCK_A, MOCK_ALPHA, MOCK_B, MOCK_BETA

        shift = 1000.0
        point = mock_runner.evaluate({"shift_m": shift})
        assert point.privacy_mean == pytest.approx(
            MOCK_A + MOCK_B * np.log(shift), rel=1e-3
        )
        assert point.utility_mean == pytest.approx(
            MOCK_ALPHA + MOCK_BETA * np.log(shift), rel=1e-3
        )

    def test_out_of_range_rejected(self, mock_runner):
        with pytest.raises(ValueError):
            mock_runner.evaluate({"shift_m": 99_999.0})


class TestCaching:
    def test_repeat_evaluations_cached(self, mock_runner):
        mock_runner.evaluate({"shift_m": 50.0})
        count = mock_runner.n_evaluations
        mock_runner.evaluate({"shift_m": 50.0})
        assert mock_runner.n_evaluations == count

    def test_distinct_values_not_cached(self, mock_runner):
        mock_runner.evaluate({"shift_m": 50.0})
        count = mock_runner.n_evaluations
        mock_runner.evaluate({"shift_m": 51.0})
        assert mock_runner.n_evaluations == count + 2  # two replications

    def test_sweep_then_evaluate_shares_cache(self, mock_runner):
        sweep = mock_runner.sweep(n_points=5)
        count = mock_runner.n_evaluations
        mock_runner.evaluate({"shift_m": float(sweep.param_values()[0])})
        assert mock_runner.n_evaluations == count


class TestSweep:
    def test_sweep_length_and_order(self, mock_runner):
        sweep = mock_runner.sweep(n_points=7)
        assert len(sweep) == 7
        values = sweep.param_values()
        assert np.all(np.diff(values) > 0)
        assert values[0] == pytest.approx(1.0)
        assert values[-1] == pytest.approx(10_000.0)

    def test_sweep_custom_values(self, mock_runner):
        sweep = mock_runner.sweep(values=[10.0, 100.0, 1000.0])
        assert sweep.param_values().tolist() == [10.0, 100.0, 1000.0]

    def test_sweep_monotone_metrics(self, mock_runner):
        sweep = mock_runner.sweep(n_points=6)
        assert np.all(np.diff(sweep.privacy()) > 0)
        assert np.all(np.diff(sweep.utility()) < 0)

    def test_param_name_required_only_for_multiparam(self, mock_runner):
        sweep = mock_runner.sweep()
        assert sweep.param_name == "shift_m"

    def test_to_rows_and_csv(self, mock_runner, tmp_path):
        sweep = mock_runner.sweep(n_points=4)
        rows = sweep.to_rows()
        assert len(rows) == 4
        assert len(rows[0]) == 5
        out = tmp_path / "sweep.csv"
        sweep.write_csv(out)
        lines = out.read_text().splitlines()
        assert lines[0].startswith("shift_m,privacy_mean")
        assert len(lines) == 5

    def test_replication_count_validation(self, mock_system, tiny_dataset):
        with pytest.raises(ValueError):
            ExperimentRunner(mock_system, tiny_dataset, n_replications=0)
