"""Tests of non-saturated-zone detection."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.framework import find_active_region, smooth


def _sigmoid_curve(n: int = 30) -> np.ndarray:
    """A saturating response like the paper's Figure 1a."""
    x = np.linspace(-8, 8, n)
    return 0.45 / (1.0 + np.exp(-x))


class TestSmooth:
    def test_window_one_is_identity(self):
        ys = np.asarray([1.0, 5.0, 2.0])
        assert np.array_equal(smooth(ys, window=1), ys)

    def test_preserves_length(self):
        ys = np.random.default_rng(0).normal(size=20)
        assert smooth(ys, window=5).shape == ys.shape

    def test_reduces_noise(self):
        rng = np.random.default_rng(0)
        ys = np.linspace(0, 1, 50) + rng.normal(0, 0.1, size=50)
        rough = np.sum(np.abs(np.diff(ys)))
        smoothed = np.sum(np.abs(np.diff(smooth(ys, window=5))))
        assert smoothed < rough

    def test_even_window_rejected(self):
        with pytest.raises(ValueError):
            smooth(np.zeros(5), window=2)


class TestActiveRegion:
    def test_sigmoid_excludes_plateaus(self):
        ys = _sigmoid_curve()
        region = find_active_region(ys, rel_tol=0.05)
        assert region.start > 0
        assert region.stop < len(ys) - 1
        # The transition midpoint must be inside.
        assert region.start <= len(ys) // 2 <= region.stop

    def test_flat_curve_returns_full_range(self):
        region = find_active_region(np.full(10, 0.3))
        assert region.start == 0
        assert region.stop == 9

    def test_strictly_monotone_line_keeps_interior(self):
        ys = np.linspace(0.0, 1.0, 20)
        region = find_active_region(ys, rel_tol=0.05)
        assert region.n_points >= 15

    def test_step_curve_straddles_jump(self):
        ys = np.concatenate([np.zeros(10), np.ones(10)])
        region = find_active_region(ys, rel_tol=0.2, window=1)
        assert region.start <= 10 <= region.stop + 1

    def test_plateau_values_recorded(self):
        ys = _sigmoid_curve()
        region = find_active_region(ys)
        assert region.low_plateau == pytest.approx(float(ys.min()), abs=0.02)
        assert region.high_plateau == pytest.approx(float(ys.max()), abs=0.02)

    def test_indices_helper(self):
        ys = _sigmoid_curve()
        region = find_active_region(ys)
        idx = region.indices()
        assert idx[0] == region.start
        assert idx[-1] == region.stop

    def test_clip_intersection(self):
        ys = _sigmoid_curve()
        a = find_active_region(ys)
        from repro.framework import ActiveRegion

        b = ActiveRegion(a.start + 2, a.stop + 5, 0.0, 1.0)
        clipped = a.clip(b)
        assert clipped.start == a.start + 2
        assert clipped.stop == a.stop

    def test_disjoint_clip_rejected(self):
        from repro.framework import ActiveRegion

        with pytest.raises(ValueError):
            ActiveRegion(0, 3, 0, 1).clip(ActiveRegion(5, 9, 0, 1))

    def test_validation(self):
        with pytest.raises(ValueError):
            find_active_region(np.zeros(2))
        with pytest.raises(ValueError):
            find_active_region(np.zeros(10), rel_tol=0.6)

    @given(st.integers(min_value=5, max_value=60))
    @settings(max_examples=25)
    def test_region_always_within_bounds(self, n):
        rng = np.random.default_rng(n)
        ys = np.cumsum(rng.normal(size=n))  # random walk
        region = find_active_region(ys)
        assert 0 <= region.start <= region.stop <= n - 1
