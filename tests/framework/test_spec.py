"""Tests of parameter specs and system definitions."""

import numpy as np
import pytest

from repro.framework import ParameterSpec, SystemDefinition, geo_ind_system
from repro.lppm import GeoIndistinguishability
from repro.metrics import AreaCoverageUtility, PoiRetrievalPrivacy


class TestParameterSpec:
    def test_log_values_geometric(self):
        spec = ParameterSpec("eps", 1e-4, 1.0, scale="log")
        values = spec.values(5)
        ratios = values[1:] / values[:-1]
        assert np.allclose(ratios, ratios[0])
        assert values[0] == pytest.approx(1e-4)
        assert values[-1] == pytest.approx(1.0)

    def test_linear_values_arithmetic(self):
        spec = ParameterSpec("k", 0.0, 1.0, scale="linear")
        values = spec.values(5)
        assert np.allclose(np.diff(values), 0.25)

    def test_contains(self):
        spec = ParameterSpec("eps", 1e-4, 1.0)
        assert spec.contains(0.01)
        assert spec.contains(1e-4)
        assert not spec.contains(2.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            ParameterSpec("x", 1.0, 0.5)
        with pytest.raises(ValueError):
            ParameterSpec("x", 0.0, 1.0, scale="log")
        with pytest.raises(ValueError):
            ParameterSpec("x", 0.0, 1.0, scale="cubic")
        with pytest.raises(ValueError):
            ParameterSpec("x", 0.0, 1.0, scale="linear").values(1)


class TestSystemDefinition:
    def test_geo_ind_preset(self):
        system = geo_ind_system()
        assert system.parameter_names == ["epsilon"]
        lppm = system.make_lppm(epsilon=0.01)
        assert isinstance(lppm, GeoIndistinguishability)

    def test_make_lppm_range_enforced(self):
        system = geo_ind_system(eps_low=1e-3, eps_high=0.1)
        with pytest.raises(ValueError):
            system.make_lppm(epsilon=0.5)

    def test_make_lppm_unknown_param(self):
        with pytest.raises(KeyError):
            geo_ind_system().make_lppm(sigma=1.0)

    def test_defaults_are_midpoints(self):
        system = geo_ind_system(eps_low=1e-4, eps_high=1.0)
        default = system.defaults()["epsilon"]
        assert default == pytest.approx(1e-2)  # geometric midpoint

    def test_parameter_lookup(self):
        system = geo_ind_system()
        assert system.parameter("epsilon").scale == "log"
        with pytest.raises(KeyError):
            system.parameter("nope")

    def test_metric_kind_validation(self):
        with pytest.raises(ValueError):
            SystemDefinition(
                name="bad",
                lppm_factory=GeoIndistinguishability,
                parameters=[ParameterSpec("epsilon", 1e-4, 1.0)],
                privacy_metric=AreaCoverageUtility(),  # wrong kind
                utility_metric=AreaCoverageUtility(),
            )

    def test_duplicate_parameters_rejected(self):
        with pytest.raises(ValueError):
            SystemDefinition(
                name="bad",
                lppm_factory=GeoIndistinguishability,
                parameters=[
                    ParameterSpec("epsilon", 1e-4, 1.0),
                    ParameterSpec("epsilon", 1e-4, 1.0),
                ],
                privacy_metric=PoiRetrievalPrivacy(),
                utility_metric=AreaCoverageUtility(),
            )

    def test_empty_parameters_rejected(self):
        with pytest.raises(ValueError):
            SystemDefinition(
                name="bad",
                lppm_factory=GeoIndistinguishability,
                parameters=[],
                privacy_metric=PoiRetrievalPrivacy(),
                utility_metric=AreaCoverageUtility(),
            )
