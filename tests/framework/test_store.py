"""Tests of sweep/model JSON persistence."""

import json

import pytest

from repro.framework import (
    fit_system_model,
    load_model,
    load_sweep,
    save_model,
    save_sweep,
)


class TestSweepRoundTrip:
    def test_round_trip(self, mock_runner, tmp_path):
        sweep = mock_runner.sweep(n_points=6)
        path = tmp_path / "sweep.json"
        save_sweep(sweep, path)
        loaded = load_sweep(path)
        assert loaded.system_name == sweep.system_name
        assert loaded.param_name == sweep.param_name
        assert loaded.param_values().tolist() == sweep.param_values().tolist()
        assert loaded.privacy().tolist() == sweep.privacy().tolist()
        assert loaded.points[0].n_replications == sweep.points[0].n_replications

    def test_creates_parent_dirs(self, mock_runner, tmp_path):
        sweep = mock_runner.sweep(n_points=4)
        path = tmp_path / "deep" / "dir" / "sweep.json"
        save_sweep(sweep, path)
        assert path.exists()


class TestModelRoundTrip:
    def test_round_trip(self, mock_runner, tmp_path):
        sweep = mock_runner.sweep(n_points=8)
        model = fit_system_model(sweep)
        path = tmp_path / "model.json"
        save_model(model, path)
        loaded = load_model(path)
        assert loaded.coefficients == model.coefficients
        assert loaded.param_name == model.param_name
        assert loaded.domain() == model.domain()
        assert loaded.privacy_region.start == model.privacy_region.start
        # The reloaded model answers inversions identically.
        mid = (model.privacy.y_low + model.privacy.y_high) / 2.0
        assert loaded.invert_privacy(mid) == model.invert_privacy(mid)

    def test_loaded_model_drives_configurator(
        self, mock_system, mock_runner, tiny_dataset, tmp_path
    ):
        from repro.framework import Configurator, Objective

        sweep = mock_runner.sweep(n_points=8)
        model = fit_system_model(sweep, use_active_region=False)
        path = tmp_path / "model.json"
        save_model(model, path)

        configurator = Configurator(mock_system, tiny_dataset)
        configurator._model = load_model(path)
        rec = configurator.recommend([Objective("privacy", "<=", 0.6)])
        assert rec.feasible


class TestErrorHandling:
    def test_wrong_kind_rejected(self, mock_runner, tmp_path):
        sweep = mock_runner.sweep(n_points=4)
        path = tmp_path / "sweep.json"
        save_sweep(sweep, path)
        with pytest.raises(ValueError):
            load_model(path)

    def test_garbage_json_rejected(self, tmp_path):
        path = tmp_path / "garbage.json"
        path.write_text("{not json")
        with pytest.raises(ValueError):
            load_sweep(path)

    def test_unknown_version_rejected(self, mock_runner, tmp_path):
        sweep = mock_runner.sweep(n_points=4)
        path = tmp_path / "sweep.json"
        save_sweep(sweep, path)
        payload = json.loads(path.read_text())
        payload["format_version"] = 999
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError):
            load_sweep(path)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_sweep(tmp_path / "nope.json")
