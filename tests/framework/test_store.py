"""Tests of sweep/model JSON persistence and the shared record store.

The tolerant reader / atomic writer pair (``read_eval_record`` /
``save_eval_record``) is what makes one on-disk cache directory safe
for a pre-fork worker fleet: any torn or corrupted record must read as
a miss and be quarantined — never crash a sweep — and concurrent
writers of the same key must never leave a reader a partial file.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.framework import (
    fit_system_model,
    load_model,
    load_sweep,
    read_eval_record,
    save_eval_record,
    save_model,
    save_sweep,
)


class TestSweepRoundTrip:
    def test_round_trip(self, mock_runner, tmp_path):
        sweep = mock_runner.sweep(n_points=6)
        path = tmp_path / "sweep.json"
        save_sweep(sweep, path)
        loaded = load_sweep(path)
        assert loaded.system_name == sweep.system_name
        assert loaded.param_name == sweep.param_name
        assert loaded.param_values().tolist() == sweep.param_values().tolist()
        assert loaded.privacy().tolist() == sweep.privacy().tolist()
        assert loaded.points[0].n_replications == sweep.points[0].n_replications

    def test_creates_parent_dirs(self, mock_runner, tmp_path):
        sweep = mock_runner.sweep(n_points=4)
        path = tmp_path / "deep" / "dir" / "sweep.json"
        save_sweep(sweep, path)
        assert path.exists()


class TestModelRoundTrip:
    def test_round_trip(self, mock_runner, tmp_path):
        sweep = mock_runner.sweep(n_points=8)
        model = fit_system_model(sweep)
        path = tmp_path / "model.json"
        save_model(model, path)
        loaded = load_model(path)
        assert loaded.coefficients == model.coefficients
        assert loaded.param_name == model.param_name
        assert loaded.domain() == model.domain()
        assert loaded.privacy_region.start == model.privacy_region.start
        # The reloaded model answers inversions identically.
        mid = (model.privacy.y_low + model.privacy.y_high) / 2.0
        assert loaded.invert_privacy(mid) == model.invert_privacy(mid)

    def test_loaded_model_drives_configurator(
        self, mock_system, mock_runner, tiny_dataset, tmp_path
    ):
        from repro.framework import Configurator, Objective

        sweep = mock_runner.sweep(n_points=8)
        model = fit_system_model(sweep, use_active_region=False)
        path = tmp_path / "model.json"
        save_model(model, path)

        configurator = Configurator(mock_system, tiny_dataset)
        configurator._model = load_model(path)
        rec = configurator.recommend([Objective("privacy", "<=", 0.6)])
        assert rec.feasible


class TestErrorHandling:
    def test_wrong_kind_rejected(self, mock_runner, tmp_path):
        sweep = mock_runner.sweep(n_points=4)
        path = tmp_path / "sweep.json"
        save_sweep(sweep, path)
        with pytest.raises(ValueError):
            load_model(path)

    def test_garbage_json_rejected(self, tmp_path):
        path = tmp_path / "garbage.json"
        path.write_text("{not json")
        with pytest.raises(ValueError):
            load_sweep(path)

    def test_unknown_version_rejected(self, mock_runner, tmp_path):
        sweep = mock_runner.sweep(n_points=4)
        path = tmp_path / "sweep.json"
        save_sweep(sweep, path)
        payload = json.loads(path.read_text())
        payload["format_version"] = 999
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError):
            load_sweep(path)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_sweep(tmp_path / "nope.json")


def _record(value: float = 0.5) -> dict:
    return {"fingerprint": "abc123", "privacy": value, "utility": 2 * value}


class TestTolerantRecordReads:
    """``read_eval_record``: any bad file is a miss, never a crash."""

    def test_round_trip(self, tmp_path):
        path = tmp_path / "rec.json"
        save_eval_record(_record(), path)
        loaded = read_eval_record(path)
        assert loaded["privacy"] == 0.5 and loaded["utility"] == 1.0

    def test_missing_file_is_a_plain_miss(self, tmp_path):
        path = tmp_path / "nope.json"
        assert read_eval_record(path) is None
        # Nothing to quarantine: the directory stays untouched.
        assert list(tmp_path.iterdir()) == []

    def test_truncated_record_is_a_miss_and_quarantined(self, tmp_path):
        path = tmp_path / "rec.json"
        save_eval_record(_record(), path)
        text = path.read_text()
        path.write_text(text[: len(text) // 2])  # torn write

        assert read_eval_record(path) is None
        corrupt = path.with_name(path.name + ".corrupt")
        assert corrupt.exists() and not path.exists()
        # The key is now writable again and recovers fully.
        save_eval_record(_record(0.25), path)
        assert read_eval_record(path)["privacy"] == 0.25

    def test_wrong_kind_is_quarantined(self, tmp_path):
        path = tmp_path / "rec.json"
        path.write_text(json.dumps({
            "format_version": 1, "kind": "sweep", "points": [],
        }))
        assert read_eval_record(path) is None
        assert path.with_name(path.name + ".corrupt").exists()

    def test_non_numeric_metrics_are_quarantined(self, tmp_path):
        path = tmp_path / "rec.json"
        save_eval_record(_record(), path)
        payload = json.loads(path.read_text())
        payload["privacy"] = "NaN-ish nonsense"
        path.write_text(json.dumps(payload))
        assert read_eval_record(path) is None
        assert path.with_name(path.name + ".corrupt").exists()

    def test_atomic_writer_leaves_no_temp_files(self, tmp_path):
        path = tmp_path / "rec.json"
        for _ in range(5):
            save_eval_record(_record(), path)
        assert [p.name for p in tmp_path.iterdir()] == ["rec.json"]


_WRITER_PROGRAM = """
import sys
sys.path.insert(0, {src!r})
from repro.framework import read_eval_record, save_eval_record

root = {root!r}
for round_no in range({rounds}):
    for key in range({keys}):
        path = f"{{root}}/key{{key}}.json"
        save_eval_record(
            {{"fingerprint": f"fp{{key}}",
              "privacy": key * 0.1, "utility": key * 0.2}},
            path,
        )
        loaded = read_eval_record(path)
        if loaded is not None and loaded["fingerprint"] != f"fp{{key}}":
            sys.exit(3)
"""


class TestConcurrentWriters:
    def test_two_processes_hammer_the_same_keys(self, tmp_path):
        """Two writer processes + a concurrent reader, no torn records.

        Both writers rewrite the same key-space with identical content
        per key (the content-addressed store's real access pattern);
        the parent reads throughout.  Every successful read must be a
        complete, correct record, both writers must exit 0, and no
        temp or quarantine files may remain.
        """
        src = str(Path(repro.__file__).parents[1])
        n_keys, n_rounds = 6, 40
        program = _WRITER_PROGRAM.format(
            src=src, root=str(tmp_path), rounds=n_rounds, keys=n_keys,
        )
        writers = [
            subprocess.Popen([sys.executable, "-c", program])
            for _ in range(2)
        ]
        try:
            while any(w.poll() is None for w in writers):
                for key in range(n_keys):
                    loaded = read_eval_record(tmp_path / f"key{key}.json")
                    if loaded is not None:
                        assert loaded["fingerprint"] == f"fp{key}"
                        assert loaded["privacy"] == pytest.approx(key * 0.1)
        finally:
            for w in writers:
                w.wait(timeout=60.0)
        assert [w.returncode for w in writers] == [0, 0]

        for key in range(n_keys):
            loaded = read_eval_record(tmp_path / f"key{key}.json")
            assert loaded is not None
            assert loaded["utility"] == pytest.approx(key * 0.2)
        leftovers = [p.name for p in tmp_path.iterdir()
                     if p.suffix != ".json"]
        assert leftovers == []  # no .tmp orphans, nothing quarantined


_FAULTED_WRITER_PROGRAM = """
import sys
sys.path.insert(0, {src!r})
from repro.framework import read_eval_record, save_eval_record
from repro.resilience import default_injector

root = {root!r}
injector = default_injector()
for round_no in range({rounds}):
    for key in range({keys}):
        path = f"{{root}}/key{{key}}.json"
        # Every few writes this process's disk "fails": one counted
        # ENOSPC, alternating between a clean refusal and a torn file
        # left at the final path.
        if (round_no * {keys} + key) % 5 == {phase}:
            mode = "disk.write:1:partial" if round_no % 2 else "disk.write:1"
            injector.configure(mode)
        try:
            save_eval_record(
                {{"fingerprint": f"fp{{key}}",
                  "privacy": key * 0.1, "utility": key * 0.2}},
                path,
            )
        except OSError:
            pass  # a full disk fails the write, never the writer
        loaded = read_eval_record(path)
        if loaded is not None and loaded["fingerprint"] != f"fp{{key}}":
            sys.exit(3)
injector.clear()
# A final clean pass heals every key the faults may have torn.
for key in range({keys}):
    save_eval_record(
        {{"fingerprint": f"fp{{key}}",
          "privacy": key * 0.1, "utility": key * 0.2}},
        f"{{root}}/key{{key}}.json",
    )
"""


class TestConcurrentWritersUnderFaults:
    def test_hammer_with_injected_enospc_and_torn_writes(self, tmp_path):
        """The same hammer, now with each writer suffering periodic
        injected ``ENOSPC`` failures — half of them leaving a torn
        file at the final path.  Sibling readers must still never see
        a wrong record (torn files quarantine to misses), writers must
        exit 0, and after a final clean pass every key reads back
        complete with no ``.tmp`` orphans left behind.
        """
        src = str(Path(repro.__file__).parents[1])
        n_keys, n_rounds = 6, 40
        writers = [
            subprocess.Popen([
                sys.executable, "-c",
                _FAULTED_WRITER_PROGRAM.format(
                    src=src, root=str(tmp_path), rounds=n_rounds,
                    keys=n_keys, phase=phase,
                ),
            ])
            for phase in (1, 3)
        ]
        try:
            while any(w.poll() is None for w in writers):
                for key in range(n_keys):
                    loaded = read_eval_record(tmp_path / f"key{key}.json")
                    if loaded is not None:
                        assert loaded["fingerprint"] == f"fp{key}"
                        assert loaded["privacy"] == pytest.approx(key * 0.1)
        finally:
            for w in writers:
                w.wait(timeout=60.0)
        assert [w.returncode for w in writers] == [0, 0]

        for key in range(n_keys):
            loaded = read_eval_record(tmp_path / f"key{key}.json")
            assert loaded is not None
            assert loaded["utility"] == pytest.approx(key * 0.2)
        # Quarantined casualties of the torn writes are expected; what
        # must never survive is a .tmp orphan (the atomic writer's
        # discipline) or an unreadable live key (checked above).
        leftovers = [
            p.name for p in tmp_path.iterdir()
            if p.suffix not in (".json", ".corrupt")
        ]
        assert leftovers == []
