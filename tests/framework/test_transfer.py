"""Tests of cross-dataset coefficient transfer."""

import numpy as np
import pytest

from repro.framework import ModelTransfer, ParameterSpec, SystemDefinition
from repro.properties import PropertyExtractor

from .conftest import (
    MOCK_B,
    LogUtility,
    ShiftEast,
    SizeAwarePrivacy,
    make_tiny_dataset,
)

N_USERS = PropertyExtractor("n_users", lambda ds: float(len(ds)))


@pytest.fixture
def size_system() -> SystemDefinition:
    return SystemDefinition(
        name="mock_transfer",
        lppm_factory=ShiftEast,
        parameters=[ParameterSpec("shift_m", 1.0, 10_000.0, scale="log")],
        privacy_metric=SizeAwarePrivacy(),
        utility_metric=LogUtility(),
    )


class TestModelTransfer:
    def test_validation(self, size_system):
        with pytest.raises(ValueError):
            ModelTransfer(size_system, [])
        transfer = ModelTransfer(size_system, [N_USERS])
        with pytest.raises(ValueError):
            transfer.fit([make_tiny_dataset(2)])  # too few datasets
        with pytest.raises(RuntimeError):
            transfer.predict_model(make_tiny_dataset(3))

    def test_multi_parameter_system_rejected(self, two_param_system):
        with pytest.raises(ValueError):
            ModelTransfer(two_param_system, [N_USERS])

    def test_learns_property_dependence(self, size_system):
        transfer = ModelTransfer(size_system, [N_USERS], n_points=8)
        training = [make_tiny_dataset(k) for k in (2, 4, 6, 8)]
        transfer.fit(training)

        # SizeAwarePrivacy's intercept is 0.01 * n_users by construction:
        # the held-out prediction must reproduce that.
        held_out = make_tiny_dataset(5)
        predicted = transfer.predict_model(held_out)
        a, b, alpha, beta = predicted.coefficients
        assert a == pytest.approx(0.01 * 5, abs=0.01)
        assert b == pytest.approx(MOCK_B, abs=0.01)
        assert beta == pytest.approx(-0.08, abs=0.01)  # MOCK_BETA

    def test_residuals_small_on_linear_truth(self, size_system):
        transfer = ModelTransfer(size_system, [N_USERS], n_points=8)
        transfer.fit([make_tiny_dataset(k) for k in (2, 4, 6, 8)])
        assert transfer.residual_rms is not None
        assert np.all(transfer.residual_rms < 0.02)

    def test_predicted_model_is_invertible(self, size_system):
        transfer = ModelTransfer(size_system, [N_USERS], n_points=8)
        transfer.fit([make_tiny_dataset(k) for k in (2, 4, 6, 8)])
        predicted = transfer.predict_model(make_tiny_dataset(5))
        model = predicted.model
        # Invert privacy at a mid-range target and check ground truth:
        # privacy = 0.05 + MOCK_B ln(shift) for 5 users.
        target = 0.05 + MOCK_B * np.log(700.0)
        assert model.invert_privacy(target) == pytest.approx(700.0, rel=0.1)
        lo, hi = model.domain()
        assert (lo, hi) == (1.0, 10_000.0)

    def test_training_models_exposed(self, size_system):
        transfer = ModelTransfer(size_system, [N_USERS], n_points=8)
        with pytest.raises(RuntimeError):
            transfer.training_models
        transfer.fit([make_tiny_dataset(k) for k in (2, 4)])
        assert len(transfer.training_models) == 2