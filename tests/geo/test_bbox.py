"""Tests of the lat/lon bounding box."""

import numpy as np
import pytest

from repro.geo import BoundingBox, LatLon


@pytest.fixture
def box() -> BoundingBox:
    return BoundingBox(37.0, -123.0, 38.0, -122.0)


class TestConstruction:
    def test_inverted_latitudes_rejected(self):
        with pytest.raises(ValueError):
            BoundingBox(38.0, -123.0, 37.0, -122.0)

    def test_inverted_longitudes_rejected(self):
        with pytest.raises(ValueError):
            BoundingBox(37.0, -122.0, 38.0, -123.0)

    def test_degenerate_point_box_allowed(self):
        BoundingBox(37.0, -122.0, 37.0, -122.0)

    def test_of_tight_bounds(self):
        lats = np.asarray([37.2, 37.8, 37.5])
        lons = np.asarray([-122.9, -122.1, -122.5])
        box = BoundingBox.of(lats, lons)
        assert box.min_lat == 37.2
        assert box.max_lat == 37.8
        assert box.min_lon == -122.9
        assert box.max_lon == -122.1

    def test_of_empty_rejected(self):
        with pytest.raises(ValueError):
            BoundingBox.of(np.asarray([]), np.asarray([]))


class TestQueries:
    def test_contains_inside(self, box):
        assert box.contains(LatLon(37.5, -122.5))

    def test_contains_boundary(self, box):
        assert box.contains(LatLon(37.0, -123.0))
        assert box.contains(LatLon(38.0, -122.0))

    def test_contains_outside(self, box):
        assert not box.contains(LatLon(36.9, -122.5))
        assert not box.contains(LatLon(37.5, -121.9))

    def test_contains_arrays(self, box):
        lats = np.asarray([37.5, 36.0, 38.0])
        lons = np.asarray([-122.5, -122.5, -122.0])
        mask = box.contains_arrays(lats, lons)
        assert mask.tolist() == [True, False, True]

    def test_center(self, box):
        c = box.center
        assert c.lat == pytest.approx(37.5)
        assert c.lon == pytest.approx(-122.5)

    def test_extents_positive_and_plausible(self, box):
        # 1 degree of latitude is ~111 km.
        assert box.height_m == pytest.approx(111_000, rel=0.01)
        assert 0 < box.width_m < box.height_m  # longitude shrinks with cos(lat)
        assert box.area_m2 == pytest.approx(box.width_m * box.height_m)


class TestCombinators:
    def test_expanded(self, box):
        bigger = box.expanded(0.5)
        assert bigger.min_lat == pytest.approx(36.5)
        assert bigger.max_lon == pytest.approx(-121.5)

    def test_expanded_clamps_to_globe(self):
        box = BoundingBox(89.0, 179.0, 90.0, 180.0)
        grown = box.expanded(5.0)
        assert grown.max_lat == 90.0
        assert grown.max_lon == 180.0

    def test_expanded_negative_rejected(self, box):
        with pytest.raises(ValueError):
            box.expanded(-0.1)

    def test_union_covers_both(self, box):
        other = BoundingBox(39.0, -121.0, 40.0, -120.0)
        u = box.union(other)
        assert u.contains(LatLon(37.5, -122.5))
        assert u.contains(LatLon(39.5, -120.5))
