"""Tests of the spatial grid and cell-set similarity measures."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geo import LatLon, SpatialGrid, cell_f1, cell_jaccard, haversine_m

SF = LatLon(37.7749, -122.4194)


@pytest.fixture
def grid() -> SpatialGrid:
    return SpatialGrid.around(SF, cell_size_m=200.0)


class TestCells:
    def test_reference_point_in_cell_zero(self, grid):
        assert grid.cell_of(SF) == (0, 0)

    def test_invalid_cell_size_rejected(self):
        with pytest.raises(ValueError):
            SpatialGrid.around(SF, cell_size_m=0.0)

    def test_cells_of_shape(self, grid):
        lats = np.full(5, SF.lat)
        lons = np.full(5, SF.lon)
        cells = grid.cells_of(lats, lons)
        assert cells.shape == (5, 2)

    def test_neighbouring_cells(self, grid):
        # 300 m east of the reference is cell (1, 0) on a 200 m grid.
        east = grid.projection.point_to_latlon(300.0, 0.0)
        assert grid.cell_of(east) == (1, 0)
        north = grid.projection.point_to_latlon(0.0, 300.0)
        assert grid.cell_of(north) == (0, 1)
        southwest = grid.projection.point_to_latlon(-50.0, -50.0)
        assert grid.cell_of(southwest) == (-1, -1)

    def test_covered_cells_dedup(self, grid):
        lats = np.full(10, SF.lat)
        lons = np.full(10, SF.lon)
        assert grid.covered_cells(lats, lons) == frozenset({(0, 0)})

    def test_cell_center_round_trip(self, grid):
        centre = grid.cell_center((3, -2))
        assert grid.cell_of(centre) == (3, -2)

    def test_snap_moves_less_than_half_diagonal(self, grid):
        p = grid.projection.point_to_latlon(137.0, -263.0)
        lat, lon = grid.snap(np.asarray([p.lat]), np.asarray([p.lon]))
        moved = haversine_m(p, LatLon(float(lat[0]), float(lon[0])))
        assert moved <= 200.0 * np.sqrt(2) / 2 + 1e-6

    def test_snap_idempotent(self, grid):
        p = grid.projection.point_to_latlon(137.0, -263.0)
        lat1, lon1 = grid.snap(np.asarray([p.lat]), np.asarray([p.lon]))
        lat2, lon2 = grid.snap(lat1, lon1)
        assert np.allclose(lat1, lat2, atol=1e-12)
        assert np.allclose(lon1, lon2, atol=1e-12)

    @given(
        st.floats(min_value=-5000, max_value=5000),
        st.floats(min_value=-5000, max_value=5000),
    )
    @settings(max_examples=50)
    def test_snap_stays_in_cell_property(self, x, y):
        grid = SpatialGrid.around(SF, cell_size_m=200.0)
        p = grid.projection.point_to_latlon(x, y)
        cell_before = grid.cell_of(p)
        lat, lon = grid.snap(np.asarray([p.lat]), np.asarray([p.lon]))
        cell_after = grid.cell_of(LatLon(float(lat[0]), float(lon[0])))
        assert cell_before == cell_after


class TestCellSimilarity:
    def test_both_empty_is_one(self):
        assert cell_f1([], []) == 1.0
        assert cell_jaccard([], []) == 1.0

    def test_one_empty_is_zero(self):
        assert cell_f1([(0, 0)], []) == 0.0
        assert cell_jaccard([(0, 0)], []) == 0.0

    def test_identical_is_one(self):
        cells = [(0, 0), (1, 2), (-3, 4)]
        assert cell_f1(cells, cells) == 1.0
        assert cell_jaccard(cells, cells) == 1.0

    def test_disjoint_is_zero(self):
        assert cell_f1([(0, 0)], [(5, 5)]) == 0.0
        assert cell_jaccard([(0, 0)], [(5, 5)]) == 0.0

    def test_half_overlap_values(self):
        a = [(0, 0), (0, 1)]
        b = [(0, 0), (9, 9)]
        assert cell_jaccard(a, b) == pytest.approx(1 / 3)
        assert cell_f1(a, b) == pytest.approx(0.5)

    def test_f1_at_least_jaccard(self):
        a = [(0, 0), (0, 1), (0, 2)]
        b = [(0, 0), (0, 1), (9, 9)]
        assert cell_f1(a, b) >= cell_jaccard(a, b)

    def test_duplicates_ignored(self):
        assert cell_f1([(0, 0), (0, 0)], [(0, 0)]) == 1.0
